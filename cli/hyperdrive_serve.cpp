// hyperdrive_serve — the always-on multi-tenant service front-end (DESIGN.md
// §14). Wraps StudyService + Server around the crash-recoverable coordinator:
// tenants submit study specs over TCP, an admission controller enforces
// server-wide and per-tenant quotas, and every admitted study runs on the
// deterministic sim clock with durable checkpoints, so a SIGKILL'd server
// resumes all in-flight studies byte-identically on restart.
//
//   hyperdrive_serve --state-dir /var/lib/hd --port 7777
//   hyperdrive_serve --state-dir d --port 0 --port-file p \
//       --max-running 2 --tenant-max-slots 8 --arbitration fair
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "svc/server.hpp"
#include "svc/service.hpp"
#include "util/cli_options.hpp"
#include "util/log.hpp"

using namespace hyperdrive;

namespace {

struct ServeConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string port_file;
  std::size_t machines = 4;
  std::uint64_t seed = 1;
  std::size_t max_running = 4;
  std::size_t max_queue = 16;
  std::size_t tenant_max_slots = 16;
  std::size_t tenant_max_queued = 8;
  std::string arbitration = "fair";
  std::string tenants;
  std::string state_dir;
  double checkpoint_every_s = 0.0;
  std::size_t kill_after_checkpoints = 0;
  std::size_t max_connections = 64;
  std::string metrics_out;
};

cli::Options make_options(ServeConfig& config) {
  cli::Options options("hyperdrive_serve",
                       "always-on multi-tenant study service (README \"Service mode\")");
  options.section("endpoint (defaults in brackets)");
  options.bind("--host", "ADDR", "listen address  [127.0.0.1]", config.host);
  options.bind("--port", "N", "TCP port, 0 = ephemeral  [0]", config.port);
  options.bind("--port-file", "FILE",
               "write the bound port to FILE once listening\n"
               "(how scripts discover an ephemeral port)",
               config.port_file);
  options.bind("--max-connections", "N", "concurrent client connections  [64]",
               config.max_connections);

  options.section("study execution (mirrors batch-mode hyperdrive_cli)");
  options.bind("--machines", "N", "machine slots per study cluster  [4]", config.machines);
  options.bind("--seed", "S", "base seed for every study manager  [1]", config.seed);
  options.bind("--checkpoint-every", "SECONDS",
               "durable checkpoint cadence per study, simulated\n"
               "seconds (0 = only the final frame)  [0]",
               config.checkpoint_every_s);
  options.bind("--kill-after-checkpoints", "N",
               "testing: SIGKILL this process right after the Nth\n"
               "durable checkpoint write (CI serve smoke)  [0]",
               config.kill_after_checkpoints);

  options.section("admission control & per-tenant quotas (DESIGN.md \"Service\")");
  options.bind("--max-running", "N", "concurrently running studies  [4]",
               config.max_running);
  options.bind("--max-queue", "N", "server-wide queue depth  [16]", config.max_queue);
  options.bind("--tenant-max-slots", "N",
               "machine slots one tenant's running studies may\n"
               "hold in total  [16]",
               config.tenant_max_slots);
  options.bind("--tenant-max-queued", "N", "queued studies per tenant  [8]",
               config.tenant_max_queued);
  options.bind("--arbitration", "MODE",
               "static|fair|deadline|cost queue arbitration across\n"
               "tenants  [fair]",
               config.arbitration);
  options.bind("--tenants", "A,B,...",
               "comma-separated tenant allowlist; submissions from\n"
               "other tenants are rejected (\"unknown-tenant: <t>\").\n"
               "Empty (default) admits any tenant",
               config.tenants);

  options.section("durability & observability");
  options.bind("--state-dir", "DIR",
               "durable journal root (required): submissions,\n"
               "checkpoints, artifacts; restarting with the same DIR\n"
               "resumes every unfinished study",
               config.state_dir);
  options.bind("--metrics-out", "FILE", "write the svc.* metrics snapshot CSV on exit",
               config.metrics_out);
  options.add("--log-level", "LEVEL",
              "debug|info|warn|error|off (overrides HD_LOG)  [warn]",
              [](const std::string& level) {
                util::set_log_level(util::log_level_from_string(level));
                return true;
              });
  return options;
}

svc::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->request_stop();  // atomic flag + pipe write
}

}  // namespace

int main(int argc, char** argv) {
  util::init_log_level_from_env();
  ServeConfig config;
  const cli::Options options = make_options(config);
  if (!options.parse(argc, argv)) return 2;
  if (config.state_dir.empty()) {
    std::fprintf(stderr, "--state-dir is required (the service journal must be durable)\n");
    return 2;
  }

  svc::ServiceOptions sopts;
  sopts.machines = config.machines;
  sopts.seed = config.seed;
  sopts.state_dir = config.state_dir;
  sopts.checkpoint_every_s = config.checkpoint_every_s;
  sopts.kill_after_checkpoints = config.kill_after_checkpoints;
  sopts.admission.max_running = config.max_running;
  sopts.admission.max_queued = config.max_queue;
  sopts.admission.tenant.max_slots = config.tenant_max_slots;
  sopts.admission.tenant.max_queued = config.tenant_max_queued;
  for (std::size_t start = 0; start < config.tenants.size();) {
    const std::size_t comma = config.tenants.find(',', start);
    const std::size_t end = comma == std::string::npos ? config.tenants.size() : comma;
    if (end > start) {
      sopts.allowed_tenants.push_back(config.tenants.substr(start, end - start));
    }
    start = end + 1;
  }
  try {
    sopts.admission.arbitration = core::arbitration_from_string(config.arbitration);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  obs::MetricsRegistry registry;
  svc::preregister_service_metrics(registry);
  sopts.obs.metrics = &registry;

  try {
    svc::StudyService service(sopts);
    if (service.resumed_count() > 0) {
      std::printf("resumed %zu unfinished submission(s) from %s\n",
                  service.resumed_count(), config.state_dir.c_str());
    }

    svc::ServerOptions server_opts;
    server_opts.host = config.host;
    server_opts.port = config.port;
    server_opts.max_connections = config.max_connections;
    server_opts.metrics = &registry;
    svc::Server server(service, server_opts);
    g_server = &server;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    server.start();
    std::printf("listening on %s:%u\n", config.host.c_str(),
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);
    if (!config.port_file.empty()) {
      // tmp + rename: a script polling for the file never reads it half-written.
      const std::string tmp = config.port_file + ".tmp";
      std::ofstream out(tmp);
      out << server.port() << "\n";
      out.close();
      std::filesystem::rename(tmp, config.port_file);
    }

    server.wait_shutdown();
    g_server = nullptr;
    std::printf("shutting down: letting running studies finish\n");
    service.stop();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hyperdrive_serve: %s\n", e.what());
    return 1;
  }
  if (!config.metrics_out.empty()) {
    registry.save_csv_file(config.metrics_out);
    std::printf("metrics snapshot written to %s\n", config.metrics_out.c_str());
  }
  return 0;
}
