// hyperdrive_cli — command-line experiment driver (the Experiment Runner
// client of §4.2 ➀ as an executable).
//
//   hyperdrive_cli --workload cifar10 --policy pop --machines 4 --repeats 3
//   hyperdrive_cli --workload lunarlander --policy bandit --substrate cluster
//   hyperdrive_cli --workload ptb_lstm --policy hyperband --generator tpe
//   hyperdrive_cli --help
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "core/experiment_runner.hpp"
#include "core/policies/barrier_policy.hpp"
#include "core/study/study_manager.hpp"
#include "core/sweep_engine.hpp"
#include "core/policies/hyperband_policy.hpp"
#include "util/stats.hpp"
#include "workload/cifar_model.hpp"
#include "workload/lunar_model.hpp"
#include "workload/ptb_lstm_model.hpp"

using namespace hyperdrive;

namespace {

struct CliOptions {
  std::string workload = "cifar10";
  std::string policy = "pop";
  std::string generator = "random";
  std::string substrate = "replay";
  std::string save_trace;
  std::size_t machines = 4;
  std::size_t configs = 100;
  std::size_t repeats = 1;
  /// Sweep worker threads; 0 = all hardware cores. Repeats are independent
  /// cells, so they fan out without changing any reported number.
  std::size_t jobs = 0;
  /// When set, write the SweepTable CSV (EXPERIMENTS.md "Sweep CSV schema").
  std::string csv;
  std::uint64_t seed = 1;
  double tmax_hours = 48.0;
  bool stop_on_target = true;
  bool barrier = false;
  bool verbose = false;
  /// Fault profile (cluster substrate only; see DESIGN.md "Fault model").
  cluster::FaultPlan fault_plan;
  /// Gray-failure detection & mitigation (cluster substrate only; §7).
  bool health = false;
  /// Multi-study mode (§9): study spec files sharing one cluster.
  std::vector<std::string> studies;
  std::string arbitration = "fair";
};

void print_usage() {
  std::printf(
      "hyperdrive_cli — run a hyperparameter-exploration experiment\n\n"
      "options (defaults in brackets):\n"
      "  --workload cifar10|lunarlander|ptb_lstm   [cifar10]\n"
      "  --policy pop|bandit|earlyterm|default|hyperband  [pop]\n"
      "  --generator random|grid|adaptive|tpe      [random]\n"
      "  --substrate replay|cluster                [replay]\n"
      "  --machines N                              [4]\n"
      "  --configs N                               [100]\n"
      "  --repeats N   (fresh training noise each) [1]\n"
      "  --jobs N      (parallel sweep workers, 0 = all cores; results\n"
      "                 are identical for any N)           [0]\n"
      "  --csv FILE    (write the per-repeat sweep table as CSV)\n"
      "  --seed S                                  [1]\n"
      "  --tmax-hours H                            [48]\n"
      "  --run-all     (don't stop at the target)\n"
      "  --barrier     (barrier-like breadth-first epoch scheduling)\n"
      "  --save-trace FILE  (write the trace CSV)\n"
      "  --verbose\n"
      "  --help\n"
      "fault injection (cluster substrate only; deterministic per seed):\n"
      "  --fault-plan FILE          load a full fault plan from FILE (see\n"
      "                             DESIGN.md; combines with the flags below)\n"
      "  --health                   enable gray-failure detection & mitigation\n"
      "                             (heartbeats, quarantine, straggler migration)\n"
      "  --fault-drop P             drop each message with probability P\n"
      "  --fault-dup P              duplicate each message with probability P\n"
      "  --fault-delay P            delay messages with probability P (exp, 0.2s mean)\n"
      "  --fault-crash M:T[:R]      crash machine M at T hours; restart after R hours\n"
      "                             (omit R for a permanent loss; repeatable)\n"
      "  --fault-snapshot-fail P    snapshot capture/upload aborts with probability P\n"
      "  --fault-snapshot-corrupt P stored snapshot gets a flipped bit with prob. P\n"
      "  --fault-seed S             seed of the fault decision stream    [0]\n"
      "multi-study mode (README \"Multi-tenant studies\"):\n"
      "  --study FILE               admit the study described by FILE (repeat\n"
      "                             the flag for concurrent studies; each file\n"
      "                             names its own workload/policy/target/deadline\n"
      "                             and the studies share the --machines pool)\n"
      "  --arbitration static|fair|deadline   capacity arbitration  [fair]\n"
      "                             (--csv then writes the multi-study table)\n");
}

bool parse_args(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      std::exit(0);
    } else if (arg == "--workload") {
      options.workload = next();
    } else if (arg == "--policy") {
      options.policy = next();
    } else if (arg == "--generator") {
      options.generator = next();
    } else if (arg == "--substrate") {
      options.substrate = next();
    } else if (arg == "--machines") {
      options.machines = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--configs") {
      options.configs = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--repeats") {
      options.repeats = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--jobs") {
      options.jobs = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--csv") {
      options.csv = next();
    } else if (arg == "--seed") {
      options.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--tmax-hours") {
      options.tmax_hours = std::strtod(next(), nullptr);
    } else if (arg == "--run-all") {
      options.stop_on_target = false;
    } else if (arg == "--barrier") {
      options.barrier = true;
    } else if (arg == "--fault-plan") {
      const char* path = next();
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "cannot open fault plan '%s'\n", path);
        return false;
      }
      try {
        options.fault_plan = cluster::load_fault_plan(in);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "bad fault plan '%s': %s\n", path, e.what());
        return false;
      }
    } else if (arg == "--health") {
      options.health = true;
    } else if (arg == "--study") {
      options.studies.emplace_back(next());
    } else if (arg == "--arbitration") {
      options.arbitration = next();
    } else if (arg == "--fault-drop") {
      options.fault_plan.default_message_faults.drop_prob = std::strtod(next(), nullptr);
    } else if (arg == "--fault-dup") {
      options.fault_plan.default_message_faults.duplicate_prob =
          std::strtod(next(), nullptr);
    } else if (arg == "--fault-delay") {
      options.fault_plan.default_message_faults.delay_prob = std::strtod(next(), nullptr);
    } else if (arg == "--fault-crash") {
      // M:T[:R] — machine, crash time in hours, optional restart delay hours.
      const std::string spec = next();
      cluster::NodeCrashEvent crash;
      char* rest = nullptr;
      crash.machine =
          static_cast<cluster::MachineId>(std::strtoull(spec.c_str(), &rest, 10));
      if (rest == nullptr || *rest != ':') {
        std::fprintf(stderr, "bad --fault-crash spec '%s' (want M:T[:R])\n", spec.c_str());
        return false;
      }
      crash.at = util::SimTime::hours(std::strtod(rest + 1, &rest));
      if (rest != nullptr && *rest == ':') {
        crash.restart_after = util::SimTime::hours(std::strtod(rest + 1, nullptr));
      }
      options.fault_plan.crashes.push_back(crash);
    } else if (arg == "--fault-snapshot-fail") {
      options.fault_plan.snapshot_upload_fail_prob = std::strtod(next(), nullptr);
    } else if (arg == "--fault-snapshot-corrupt") {
      options.fault_plan.snapshot_corrupt_prob = std::strtod(next(), nullptr);
    } else if (arg == "--fault-seed") {
      options.fault_plan.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--save-trace") {
      options.save_trace = next();
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else {
      std::fprintf(stderr, "unknown option: %s (try --help)\n", arg.c_str());
      return false;
    }
  }
  return true;
}

std::unique_ptr<workload::WorkloadModel> make_workload(const std::string& name) {
  if (name == "cifar10") return std::make_unique<workload::CifarWorkloadModel>();
  if (name == "lunarlander") return std::make_unique<workload::LunarWorkloadModel>();
  if (name == "ptb_lstm") return std::make_unique<workload::PtbLstmWorkloadModel>();
  std::fprintf(stderr, "unknown workload: %s\n", name.c_str());
  std::exit(2);
}

std::unique_ptr<core::HyperparameterGenerator> make_generator(
    const std::string& name, const workload::HyperparameterSpace& space,
    std::uint64_t seed) {
  if (name == "random") return core::make_random_generator(space, seed);
  if (name == "grid") return core::make_grid_generator(space, 3);
  if (name == "adaptive") return core::make_adaptive_generator(space, seed);
  if (name == "tpe") return core::make_tpe_generator(space, seed);
  std::fprintf(stderr, "unknown generator: %s\n", name.c_str());
  std::exit(2);
}

std::unique_ptr<core::SchedulingPolicy> make_base_policy(const CliOptions& options,
                                                         std::uint64_t repeat);

std::unique_ptr<core::SchedulingPolicy> make_cli_policy(const CliOptions& options,
                                                        std::uint64_t repeat) {
  auto policy = make_base_policy(options, repeat);
  if (options.barrier) {
    return std::make_unique<core::BarrierPolicy>(std::move(policy));
  }
  return policy;
}

std::unique_ptr<core::SchedulingPolicy> make_base_policy(const CliOptions& options,
                                                         std::uint64_t repeat) {
  if (options.policy == "hyperband") {
    return std::make_unique<core::HyperbandPolicy>();
  }
  core::PolicySpec spec;
  if (options.policy == "pop") {
    spec.kind = core::PolicyKind::Pop;
  } else if (options.policy == "bandit") {
    spec.kind = core::PolicyKind::Bandit;
  } else if (options.policy == "earlyterm") {
    spec.kind = core::PolicyKind::EarlyTerm;
  } else if (options.policy == "default") {
    spec.kind = core::PolicyKind::Default;
  } else {
    std::fprintf(stderr, "unknown policy: %s\n", options.policy.c_str());
    std::exit(2);
  }
  const auto predictor = core::make_default_predictor(options.seed ^ repeat);
  spec.pop.predictor = predictor;
  spec.pop.tmax = util::SimTime::hours(options.tmax_hours);
  spec.earlyterm.predictor = predictor;
  return core::make_policy(spec);
}

/// Multi-study mode: every --study file becomes a tenant of one shared
/// cluster; the remaining single-experiment flags are ignored (each spec
/// names its own workload/policy/generator/seed).
int run_studies(const CliOptions& options) {
  std::vector<core::StudySpec> specs;
  for (const auto& path : options.studies) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open study file '%s'\n", path.c_str());
      return 2;
    }
    try {
      specs.push_back(core::load_study_spec(in));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad study file '%s': %s\n", path.c_str(), e.what());
      return 2;
    }
  }

  core::StudyManagerOptions manager_options;
  manager_options.machines = options.machines;
  manager_options.seed = options.seed;
  manager_options.health.enabled = options.health;
  try {
    manager_options.arbitration = core::arbitration_from_string(options.arbitration);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  std::printf("multi-study: %zu studies, machines=%zu, arbitration=%s\n",
              specs.size(), options.machines,
              std::string(core::to_string(manager_options.arbitration)).c_str());
  core::MultiStudyResult result;
  try {
    result = core::run_multi_study(specs, manager_options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "multi-study run failed: %s\n", e.what());
    return 2;
  }

  for (const auto& study : result.studies) {
    const auto& r = study.result;
    std::printf("study %-12s (%s/%s): %s%s, best=%.3f, slot-hours=%.1f "
                "grants=%zu reclaims=%zu%s%s\n",
                study.spec.name.c_str(), study.spec.workload.c_str(),
                study.spec.policy.c_str(),
                r.reached_target ? "target reached in " : "target not reached",
                r.reached_target ? util::format_duration(r.time_to_target).c_str() : "",
                r.best_perf, r.slot_seconds.to_hours(), r.lease_grants, r.lease_reclaims,
                study.spec.has_deadline()
                    ? (study.deadline_met ? ", deadline met" : ", deadline MISSED")
                    : "",
                study.cancelled ? ", cancelled" : "");
  }
  std::printf("total %s, rebalances=%zu\n",
              util::format_duration(result.total_time).c_str(), result.rebalances);
  if (!options.csv.empty()) {
    std::ofstream out(options.csv);
    result.save_csv(out);
    std::printf("multi-study table written to %s\n", options.csv.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!parse_args(argc, argv, options)) return 2;
  if (!options.studies.empty()) return run_studies(options);
  if (options.fault_plan.any() && options.substrate != "cluster") {
    std::fprintf(stderr, "fault injection requires --substrate cluster\n");
    return 2;
  }
  if (options.health && options.substrate != "cluster") {
    std::fprintf(stderr, "--health requires --substrate cluster\n");
    return 2;
  }

  const auto model = make_workload(options.workload);
  const auto generator =
      make_generator(options.generator, model->space(), options.seed);
  const auto base = core::trace_from_generator(*model, *generator, options.configs,
                                               options.seed, /*report_feedback=*/true);
  if (!options.save_trace.empty()) {
    std::ofstream out(options.save_trace);
    base.save_csv(out);
    std::printf("trace written to %s\n", options.save_trace.c_str());
  }

  std::printf("workload=%s policy=%s generator=%s machines=%zu configs=%zu "
              "substrate=%s repeats=%zu\n",
              options.workload.c_str(), options.policy.c_str(), options.generator.c_str(),
              options.machines, options.configs, options.substrate.c_str(),
              options.repeats);
  if (!base.target_reachable()) {
    std::printf("note: no configuration in this set reaches the target %.3f\n",
                base.target_performance);
  }

  // Every repeat is an independent sweep cell (fresh noise, fresh policy),
  // executed by the SweepEngine — in parallel under --jobs, with results
  // identical to the serial run (DESIGN.md §8).
  core::SweepSpec spec;
  spec.name = "hyperdrive_cli";
  spec.base_seed = options.seed;
  const auto repeat_ax = spec.add_repeat_axis(options.repeats);
  spec.trace = [&](const core::SweepCell& cell) {
    const std::uint64_t r = cell.at(repeat_ax);
    workload::Trace trace = base;
    if (r > 0) {
      for (auto& job : trace.jobs) job.curve = model->realize(job.config, options.seed ^ r);
    }
    return trace;
  };
  spec.policy = [&](const core::SweepCell& cell) {
    return make_cli_policy(options, cell.at(repeat_ax));
  };
  spec.options = [&](const core::SweepCell& cell) {
    core::RunnerOptions ropts;
    ropts.substrate = options.substrate == "cluster" ? core::Substrate::Cluster
                                                     : core::Substrate::TraceReplay;
    ropts.machines = options.machines;
    ropts.max_experiment_time = util::SimTime::hours(options.tmax_hours);
    ropts.stop_on_target = options.stop_on_target;
    ropts.seed = options.seed ^ cell.at(repeat_ax);
    ropts.overheads = options.workload == "lunarlander"
                          ? cluster::lunar_criu_overhead_model()
                          : cluster::cifar_overhead_model();
    ropts.fault_plan = options.fault_plan;
    ropts.health.enabled = options.health;
    return ropts;
  };

  const auto table = core::run_sweep(spec, options.jobs);
  if (!options.csv.empty()) {
    table.save_csv_file(options.csv);
    std::printf("sweep table written to %s\n", options.csv.c_str());
  }

  std::vector<double> times_min;
  for (const auto& row : table.rows) {
    const std::uint64_t r = row.cell.at(repeat_ax);
    const auto& result = row.result;
    if (result.reached_target) times_min.push_back(result.time_to_target.to_minutes());
    std::printf("repeat %llu: %s%s, best=%.3f, started=%zu terminated=%zu suspended=%zu, "
                "machine-time=%s\n",
                static_cast<unsigned long long>(r),
                result.reached_target ? "target reached in " : "target not reached",
                result.reached_target
                    ? util::format_duration(result.time_to_target).c_str()
                    : "",
                result.best_perf, result.jobs_started, result.terminations,
                result.suspends, util::format_duration(result.total_machine_time).c_str());
    if (options.fault_plan.any()) {
      const auto& rec = result.recovery;
      std::printf("  recovery: crashes=%zu restarts=%zu requeued=%zu epochs-lost=%zu "
                  "snapshots-lost=%zu restore-failures=%zu stats-lost=%zu "
                  "dup-stats-ignored=%zu\n",
                  rec.node_crashes, rec.node_restarts, rec.jobs_requeued, rec.epochs_lost,
                  rec.snapshots_lost, rec.snapshot_restore_failures, rec.stat_reports_lost,
                  rec.duplicate_stats_ignored);
    }
    if (options.health) {
      const auto& rec = result.recovery;
      std::printf("  health: migrated=%zu quarantined=%zu reinstated=%zu hung=%zu "
                  "wrong-kills=%zu\n",
                  rec.jobs_migrated, rec.nodes_quarantined, rec.nodes_reinstated,
                  rec.hung_jobs_detected, rec.wrong_kills);
    }
    if (options.verbose) {
      for (const auto& js : result.job_stats) {
        if (js.epochs_completed == 0) continue;
        std::printf("  job %4llu: %3zu epochs, %s, best %.3f\n",
                    static_cast<unsigned long long>(js.job_id), js.epochs_completed,
                    util::format_duration(js.execution_time).c_str(), js.best_perf);
      }
    }
  }
  if (times_min.size() > 1) {
    std::printf("time-to-target over %zu successful repeats: %s [min]\n", times_min.size(),
                util::to_string(util::box_stats(times_min)).c_str());
  }
  return 0;
}
