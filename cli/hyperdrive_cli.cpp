// hyperdrive_cli — command-line experiment driver (the Experiment Runner
// client of §4.2 ➀ as an executable).
//
//   hyperdrive_cli --workload cifar10 --policy pop --machines 4 --repeats 3
//   hyperdrive_cli --workload lunarlander --policy bandit --substrate cluster
//   hyperdrive_cli --workload ptb_lstm --policy hyperband --generator tpe
//   hyperdrive_cli --trace-out run.csv --metrics-out metrics.csv ...
//   hyperdrive_cli --help
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>

#include "cluster/cluster.hpp"
#include "core/experiment_runner.hpp"
#include "core/policies/barrier_policy.hpp"
#include "core/study/coordinator.hpp"
#include "core/study/study_manager.hpp"
#include "core/policy_registry.hpp"
#include "core/sweep_engine.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "util/cli_options.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "workload/cifar_model.hpp"
#include "workload/lunar_model.hpp"
#include "workload/ptb_lstm_model.hpp"

using namespace hyperdrive;

namespace {

struct CliConfig {
  std::string workload = "cifar10";
  std::string policy = "pop";
  /// Raw --policy-opt KEY=VALUE tokens, validated against the registry.
  std::vector<std::string> policy_opts;
  std::string generator = "random";
  std::string substrate = "replay";
  std::string save_trace;
  std::size_t machines = 4;
  std::size_t configs = 100;
  std::size_t repeats = 1;
  /// Sweep worker threads; 0 = all hardware cores. Repeats are independent
  /// cells, so they fan out without changing any reported number.
  std::size_t jobs = 0;
  /// When set, write the SweepTable CSV (EXPERIMENTS.md "Sweep CSV schema").
  std::string csv;
  std::uint64_t seed = 1;
  double tmax_hours = 48.0;
  bool stop_on_target = true;
  bool barrier = false;
  bool verbose = false;
  /// Observability exports (DESIGN.md §10).
  std::string trace_out;
  std::string metrics_out;
  /// Fault profile (cluster substrate only; see DESIGN.md "Fault model").
  cluster::FaultPlan fault_plan;
  /// Gray-failure detection & mitigation (cluster substrate only; §7).
  bool health = false;
  /// Multi-study mode (§9): study spec files sharing one cluster.
  std::vector<std::string> studies;
  std::string arbitration = "fair";
  /// Elastic cost-aware capacity (DESIGN.md §15; multi-study mode only).
  cluster::NodeCatalog catalog;
  double budget_usd = std::numeric_limits<double>::infinity();
  /// Coordinator crash-recovery (DESIGN.md §12; multi-study mode only).
  std::string checkpoint_out;
  double checkpoint_every_s = 0.0;
  std::string resume_from;
  std::size_t kill_after_checkpoints = 0;

  [[nodiscard]] bool any_checkpointing() const {
    return !checkpoint_out.empty() || checkpoint_every_s > 0.0 || !resume_from.empty() ||
           kill_after_checkpoints != 0;
  }
};

/// The full flag table; --help is generated from it, so the usage screen and
/// the parser cannot drift apart.
cli::Options make_options(CliConfig& config) {
  cli::Options options("hyperdrive_cli",
                       "run a hyperparameter-exploration experiment");
  options.section("experiment (defaults in brackets)");
  options.bind("--workload", "NAME", "cifar10|lunarlander|ptb_lstm  [cifar10]",
               config.workload);
  // Both the help text and the validation come from the PolicyRegistry, so
  // adding a policy there is all it takes to expose it here.
  options.bind("--policy", "NAME",
               core::PolicyRegistry::instance().name_list('|') + "  [pop]",
               config.policy);
  options.add("--policy-opt", "K=V",
              "policy-specific option, e.g. eta=4 (repeatable;\n"
              "valid keys per policy in DESIGN.md \"Scheduler zoo\")",
              [&config](const std::string& kv) {
                config.policy_opts.push_back(kv);
                return true;
              });
  options.bind("--generator", "NAME", "random|grid|adaptive|tpe  [random]",
               config.generator);
  options.bind("--substrate", "NAME", "replay|cluster  [replay]", config.substrate);
  options.bind("--machines", "N", "machine slots  [4]", config.machines);
  options.bind("--configs", "N", "hyperparameter configurations  [100]", config.configs);
  options.bind("--repeats", "N", "repeats (fresh training noise each)  [1]",
               config.repeats);
  options.bind("--jobs", "N",
               "parallel sweep workers, 0 = all cores; results\n"
               "are identical for any N  [0]",
               config.jobs);
  options.bind("--csv", "FILE", "write the per-repeat sweep table as CSV", config.csv);
  options.bind("--seed", "S", "base seed  [1]", config.seed);
  options.bind("--tmax-hours", "H", "experiment time limit  [48]", config.tmax_hours);
  options.add_flag("--run-all", "don't stop at the target",
                   [&config]() { config.stop_on_target = false; });
  options.add_flag("--barrier", "barrier-like breadth-first epoch scheduling",
                   config.barrier);
  options.bind("--save-trace", "FILE", "write the trace CSV", config.save_trace);
  options.add_flag("--verbose", "per-job epoch summary after each repeat",
                   config.verbose);

  options.section("observability (DESIGN.md \"Observability\")");
  options.bind("--trace-out", "FILE",
               "write the typed event timeline: single/sweep runs emit the\n"
               "cell-prefixed timeline CSV, multi-study runs the plain\n"
               "timeline (\".jsonl\" extension selects JSONL there)",
               config.trace_out);
  options.bind("--metrics-out", "FILE",
               "write the end-of-run metrics snapshot CSV", config.metrics_out);
  options.add("--log-level", "LEVEL",
              "debug|info|warn|error|off (overrides HD_LOG)  [warn]",
              [](const std::string& level) {
                util::set_log_level(util::log_level_from_string(level));
                return true;
              });

  options.section("fault injection (cluster substrate only; deterministic per seed)");
  options.add("--fault-plan", "FILE",
              "load a full fault plan from FILE (see DESIGN.md;\n"
              "combines with the flags below)",
              [&config](const std::string& path) {
                std::ifstream in(path);
                if (!in) {
                  throw std::invalid_argument("cannot open fault plan '" + path + "'");
                }
                config.fault_plan = cluster::load_fault_plan(in);
                return true;
              });
  options.add_flag("--health",
                   "enable gray-failure detection & mitigation\n"
                   "(heartbeats, quarantine, straggler migration)",
                   config.health);
  options.bind("--fault-drop", "P", "drop each message with probability P",
               config.fault_plan.default_message_faults.drop_prob);
  options.bind("--fault-dup", "P", "duplicate each message with probability P",
               config.fault_plan.default_message_faults.duplicate_prob);
  options.bind("--fault-delay", "P",
               "delay messages with probability P (exp, 0.2s mean)",
               config.fault_plan.default_message_faults.delay_prob);
  options.add("--fault-crash", "M:T[:R]",
              "crash machine M at T hours; restart after R hours\n"
              "(omit R for a permanent loss; repeatable)",
              [&config](const std::string& spec) {
                cluster::NodeCrashEvent crash;
                char* rest = nullptr;
                crash.machine = static_cast<cluster::MachineId>(
                    std::strtoull(spec.c_str(), &rest, 10));
                if (rest == nullptr || *rest != ':') {
                  throw std::invalid_argument("'" + spec + "' (want M:T[:R])");
                }
                crash.at = util::SimTime::hours(std::strtod(rest + 1, &rest));
                if (rest != nullptr && *rest == ':') {
                  crash.restart_after =
                      util::SimTime::hours(std::strtod(rest + 1, nullptr));
                }
                config.fault_plan.crashes.push_back(crash);
                return true;
              });
  options.bind("--fault-snapshot-fail", "P",
               "snapshot capture/upload aborts with probability P",
               config.fault_plan.snapshot_upload_fail_prob);
  options.bind("--fault-snapshot-corrupt", "P",
               "stored snapshot gets a flipped bit with probability P",
               config.fault_plan.snapshot_corrupt_prob);
  options.bind("--fault-seed", "S", "seed of the fault decision stream  [0]",
               config.fault_plan.seed);

  options.section("multi-study mode (README \"Multi-tenant studies\")");
  options.add("--study", "FILE",
              "admit the study described by FILE (repeat the flag for\n"
              "concurrent studies; each file names its own workload/\n"
              "policy/target/deadline and the studies share the\n"
              "--machines pool)",
              [&config](const std::string& path) {
                config.studies.push_back(path);
                return true;
              });
  options.bind("--arbitration", "MODE",
               "static|fair|deadline|cost capacity arbitration  [fair]\n"
               "(--csv then writes the multi-study table)",
               config.arbitration);
  options.add("--catalog", "FILE",
              "node catalog file: typed node classes with prices,\n"
              "speed factors and spot markers (README \"Node\n"
              "catalogs\"); overrides --machines with its total",
              [&config](const std::string& path) {
                std::ifstream in(path);
                if (!in) {
                  throw std::invalid_argument("cannot open node catalog '" + path + "'");
                }
                config.catalog = cluster::load_node_catalog(in);
                return true;
              });
  options.bind("--budget", "USD",
               "autoscaler spend ceiling for the whole run\n"
               "(cost arbitration; default unbounded)",
               config.budget_usd);

  options.section("coordinator crash-recovery (multi-study mode; DESIGN.md \"Crash "
                  "recovery\")");
  options.bind("--checkpoint-out", "DIR",
               "write durable coordinator checkpoints into DIR\n"
               "(atomic ckpt-NNNNNN.hdck frames)",
               config.checkpoint_out);
  options.bind("--checkpoint-every", "SECONDS",
               "periodic checkpoint cadence in simulated seconds\n"
               "(0 = only the final frame)  [0]",
               config.checkpoint_every_s);
  options.bind("--resume-from", "DIR",
               "resume from the newest valid checkpoint in DIR\n"
               "(replays and byte-verifies; --study flags optional —\n"
               "the frame records the original specs)",
               config.resume_from);
  options.bind("--kill-after-checkpoints", "N",
               "testing: SIGKILL this process right after the Nth\n"
               "durable checkpoint write (CI crash-resume smoke)  [0]",
               config.kill_after_checkpoints);
  return options;
}

std::shared_ptr<workload::WorkloadModel> make_workload(const std::string& name) {
  if (name == "cifar10") return std::make_shared<workload::CifarWorkloadModel>();
  if (name == "lunarlander") return std::make_shared<workload::LunarWorkloadModel>();
  if (name == "ptb_lstm") return std::make_shared<workload::PtbLstmWorkloadModel>();
  std::fprintf(stderr, "unknown workload: %s\n", name.c_str());
  std::exit(2);
}

std::unique_ptr<core::HyperparameterGenerator> make_generator(
    const std::string& name, const workload::HyperparameterSpace& space,
    std::uint64_t seed) {
  if (name == "random") return core::make_random_generator(space, seed);
  if (name == "grid") return core::make_grid_generator(space, 3);
  if (name == "adaptive") return core::make_adaptive_generator(space, seed);
  if (name == "tpe") return core::make_tpe_generator(space, seed);
  std::fprintf(stderr, "unknown generator: %s\n", name.c_str());
  std::exit(2);
}

/// Registry-backed policy construction (DESIGN.md §13): --policy selects the
/// factory, --policy-opt key=value feeds its typed parameter bag, and
/// --barrier wraps whatever came out — so barrier composes with every
/// registered policy, not a hand-maintained subset.
std::unique_ptr<core::SchedulingPolicy> make_cli_policy(const CliConfig& config,
                                                        std::uint64_t repeat) {
  core::PolicyContext ctx;
  ctx.seed = config.seed ^ repeat;
  ctx.tmax = util::SimTime::hours(config.tmax_hours);
  auto policy = core::make_registry_policy(
      config.policy, core::PolicyParams::parse(config.policy_opts), ctx);
  if (config.barrier) {
    return std::make_unique<core::BarrierPolicy>(std::move(policy));
  }
  return policy;
}

/// Fail fast (before any sweep thread spins up) on an unknown policy name or
/// a malformed/unaccepted --policy-opt. The throwaway instance exercises the
/// same factory the sweep cells will use.
bool validate_cli_policy(const CliConfig& config) {
  try {
    (void)make_cli_policy(config, 0);
    return true;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return false;
  }
}

/// Multi-study mode: every --study file becomes a tenant of one shared
/// cluster; the remaining single-experiment flags are ignored (each spec
/// names its own workload/policy/generator/seed).
int run_studies(const CliConfig& config) {
  std::vector<core::StudySpec> specs;
  for (const auto& path : config.studies) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open study file '%s'\n", path.c_str());
      return 2;
    }
    try {
      specs.push_back(core::load_study_spec(in));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad study file '%s': %s\n", path.c_str(), e.what());
      return 2;
    }
  }

  core::StudyManagerOptions manager_options;
  manager_options.machines = config.machines;
  manager_options.catalog = config.catalog;
  manager_options.budget_usd = config.budget_usd;
  manager_options.seed = config.seed;
  manager_options.health.enabled = config.health;
  manager_options.fault_plan = config.fault_plan;
  try {
    manager_options.arbitration = core::arbitration_from_string(config.arbitration);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  // One shared scope: every tenant cluster publishes into the same registry
  // and sink; events carry their study name, so the merged timeline stays
  // attributable.
  obs::MetricsRegistry registry;
  obs::RecordingSink sink;
  if (!config.metrics_out.empty()) {
    cluster::preregister_cluster_metrics(registry);
    if (config.any_checkpointing()) core::preregister_checkpoint_metrics(registry);
    manager_options.obs.metrics = &registry;
  }
  if (!config.trace_out.empty()) manager_options.obs.sink = &sink;

  std::printf("multi-study: %zu studies, machines=%zu, arbitration=%s\n",
              specs.size(),
              config.catalog.empty() ? config.machines : config.catalog.total_nodes(),
              std::string(core::to_string(manager_options.arbitration)).c_str());
  core::MultiStudyResult result;
  core::CoordinatorRecoveryStats recovery;
  try {
    if (config.any_checkpointing()) {
      // Recoverable path: checkpoints, crash events, resume. The legacy path
      // below stays byte-untouched when no checkpoint flag is given.
      core::CheckpointOptions ckpt;
      ckpt.dir = config.resume_from.empty() ? config.checkpoint_out : config.resume_from;
      ckpt.every = util::SimTime::seconds(config.checkpoint_every_s);
      ckpt.resume = !config.resume_from.empty();
      ckpt.kill_after_checkpoints = config.kill_after_checkpoints;
      auto run = core::run_recoverable_multi_study(specs, manager_options, ckpt);
      result = std::move(run.result);
      recovery = run.recovery;
    } else {
      result = core::run_multi_study(specs, manager_options);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "multi-study run failed: %s\n", e.what());
    return 2;
  }

  for (const auto& study : result.studies) {
    const auto& r = study.result;
    std::printf("study %-12s (%s/%s): %s%s, best=%.3f, slot-hours=%.1f "
                "grants=%zu reclaims=%zu%s%s\n",
                study.spec.name.c_str(), study.spec.workload.c_str(),
                study.spec.policy.c_str(),
                r.reached_target ? "target reached in " : "target not reached",
                r.reached_target ? util::format_duration(r.time_to_target).c_str() : "",
                r.best_perf, r.slot_seconds.to_hours(), r.lease_grants, r.lease_reclaims,
                study.spec.has_deadline()
                    ? (study.deadline_met ? ", deadline met" : ", deadline MISSED")
                    : "",
                study.cancelled ? ", cancelled" : "");
  }
  std::printf("total %s, rebalances=%zu, spend=$%.2f\n",
              util::format_duration(result.total_time).c_str(), result.rebalances,
              result.spend_usd);
  if (config.any_checkpointing()) {
    std::printf("recovery: checkpoints=%llu (%llu bytes) crashes=%llu loads=%llu "
                "fallbacks=%llu cold-restarts=%llu verified-replays=%llu\n",
                static_cast<unsigned long long>(recovery.checkpoints_written),
                static_cast<unsigned long long>(recovery.checkpoint_bytes_total),
                static_cast<unsigned long long>(recovery.coordinator_crashes),
                static_cast<unsigned long long>(recovery.checkpoint_loads),
                static_cast<unsigned long long>(recovery.checkpoint_fallbacks),
                static_cast<unsigned long long>(recovery.cold_restarts),
                static_cast<unsigned long long>(recovery.replay_verifications));
  }
  if (!config.csv.empty()) {
    std::ofstream out(config.csv);
    result.save_csv(out);
    std::printf("multi-study table written to %s\n", config.csv.c_str());
  }
  if (!config.trace_out.empty()) {
    obs::save_timeline_file(config.trace_out, sink.events);
    std::printf("timeline (%zu events) written to %s\n", sink.events.size(),
                config.trace_out.c_str());
  }
  if (!config.metrics_out.empty()) {
    registry.save_csv_file(config.metrics_out);
    std::printf("metrics snapshot written to %s\n", config.metrics_out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::init_log_level_from_env();  // HD_LOG; --log-level overrides
  CliConfig config;
  const cli::Options options = make_options(config);
  if (!options.parse(argc, argv)) return 2;
  if (!config.resume_from.empty() && !config.checkpoint_out.empty()) {
    std::fprintf(stderr, "--resume-from and --checkpoint-out are mutually exclusive "
                         "(resume keeps writing into its own directory)\n");
    return 2;
  }
  if (!config.studies.empty() || !config.resume_from.empty()) return run_studies(config);
  if (config.any_checkpointing()) {
    std::fprintf(stderr,
                 "--checkpoint-out/--checkpoint-every/--kill-after-checkpoints require "
                 "multi-study mode (--study or --resume-from)\n");
    return 2;
  }
  if (config.fault_plan.any() && config.substrate != "cluster") {
    std::fprintf(stderr, "fault injection requires --substrate cluster\n");
    return 2;
  }
  if (config.health && config.substrate != "cluster") {
    std::fprintf(stderr, "--health requires --substrate cluster\n");
    return 2;
  }
  if (!validate_cli_policy(config)) return 2;

  const auto model = make_workload(config.workload);
  const auto generator =
      make_generator(config.generator, model->space(), config.seed);
  const auto base = core::trace_from_generator(*model, *generator, config.configs,
                                               config.seed, /*report_feedback=*/true);
  if (!config.save_trace.empty()) {
    std::ofstream out(config.save_trace);
    base.save_csv(out);
    std::printf("trace written to %s\n", config.save_trace.c_str());
  }

  std::printf("workload=%s policy=%s generator=%s machines=%zu configs=%zu "
              "substrate=%s repeats=%zu\n",
              config.workload.c_str(), config.policy.c_str(), config.generator.c_str(),
              config.machines, config.configs, config.substrate.c_str(),
              config.repeats);
  if (!base.target_reachable()) {
    std::printf("note: no configuration in this set reaches the target %.3f\n",
                base.target_performance);
  }

  // Shared metrics registry: counters commute, and preregistration pins the
  // export order, so the snapshot is byte-deterministic under --jobs N.
  obs::MetricsRegistry registry;
  if (!config.metrics_out.empty()) cluster::preregister_cluster_metrics(registry);

  // Every repeat is an independent sweep cell (fresh noise, fresh policy),
  // executed by the SweepEngine — in parallel under --jobs, with results
  // identical to the serial run (DESIGN.md §8).
  core::SweepSpec spec;
  spec.name = "hyperdrive_cli";
  spec.base_seed = config.seed;
  spec.capture_events = !config.trace_out.empty();
  const auto repeat_ax = spec.add_repeat_axis(config.repeats);
  spec.trace = [&](const core::SweepCell& cell) {
    const std::uint64_t r = cell.at(repeat_ax);
    workload::Trace trace = base;
    if (r > 0) {
      for (auto& job : trace.jobs) job.curve = model->realize(job.config, config.seed ^ r);
    }
    return trace;
  };
  spec.policy = [&](const core::SweepCell& cell) {
    return make_cli_policy(config, cell.at(repeat_ax));
  };
  spec.options = [&](const core::SweepCell& cell) {
    core::RunnerOptions ropts;
    ropts.substrate = config.substrate == "cluster" ? core::Substrate::Cluster
                                                    : core::Substrate::TraceReplay;
    ropts.machines = config.machines;
    ropts.max_experiment_time = util::SimTime::hours(config.tmax_hours);
    ropts.stop_on_target = config.stop_on_target;
    ropts.seed = config.seed ^ cell.at(repeat_ax);
    ropts.overheads = config.workload == "lunarlander"
                          ? cluster::lunar_criu_overhead_model()
                          : cluster::cifar_overhead_model();
    ropts.fault_plan = config.fault_plan;
    ropts.health.enabled = config.health;
    if (!config.metrics_out.empty()) ropts.obs.metrics = &registry;
    // Weight-migration hook (inert unless the policy calls clone_job; only
    // PBT does). Seeded by the clone stream, not the cell, so it stays
    // byte-invisible to every non-cloning policy.
    ropts.explore = core::make_model_explore(model);
    return ropts;
  };

  const auto table = core::run_sweep(spec, config.jobs);
  if (!config.csv.empty()) {
    table.save_csv_file(config.csv);
    std::printf("sweep table written to %s\n", config.csv.c_str());
  }
  if (!config.trace_out.empty()) {
    table.save_timeline_csv_file(config.trace_out);
    std::size_t events = 0;
    for (const auto& row : table.rows) events += row.events.size();
    std::printf("timeline (%zu events) written to %s\n", events,
                config.trace_out.c_str());
  }
  if (!config.metrics_out.empty()) {
    registry.save_csv_file(config.metrics_out);
    std::printf("metrics snapshot written to %s\n", config.metrics_out.c_str());
  }

  std::vector<double> times_min;
  for (const auto& row : table.rows) {
    const std::uint64_t r = row.cell.at(repeat_ax);
    const auto& result = row.result;
    if (result.reached_target) times_min.push_back(result.time_to_target.to_minutes());
    std::printf("repeat %llu: %s%s, best=%.3f, started=%zu terminated=%zu suspended=%zu, "
                "machine-time=%s\n",
                static_cast<unsigned long long>(r),
                result.reached_target ? "target reached in " : "target not reached",
                result.reached_target
                    ? util::format_duration(result.time_to_target).c_str()
                    : "",
                result.best_perf, result.jobs_started, result.terminations,
                result.suspends, util::format_duration(result.total_machine_time).c_str());
    if (config.fault_plan.any()) {
      const auto& rec = result.recovery;
      std::printf("  recovery: crashes=%zu restarts=%zu requeued=%zu epochs-lost=%zu "
                  "snapshots-lost=%zu restore-failures=%zu stats-lost=%zu "
                  "dup-stats-ignored=%zu\n",
                  rec.node_crashes, rec.node_restarts, rec.jobs_requeued, rec.epochs_lost,
                  rec.snapshots_lost, rec.snapshot_restore_failures, rec.stat_reports_lost,
                  rec.duplicate_stats_ignored);
    }
    if (config.health) {
      const auto& rec = result.recovery;
      std::printf("  health: migrated=%zu quarantined=%zu reinstated=%zu hung=%zu "
                  "wrong-kills=%zu\n",
                  rec.jobs_migrated, rec.nodes_quarantined, rec.nodes_reinstated,
                  rec.hung_jobs_detected, rec.wrong_kills);
    }
    if (config.verbose) {
      for (const auto& js : result.job_stats) {
        if (js.epochs_completed == 0) continue;
        std::printf("  job %4llu: %3zu epochs, %s, best %.3f\n",
                    static_cast<unsigned long long>(js.job_id), js.epochs_completed,
                    util::format_duration(js.execution_time).c_str(), js.best_perf);
      }
    }
  }
  if (times_min.size() > 1) {
    std::printf("time-to-target over %zu successful repeats: %s [min]\n", times_min.size(),
                util::to_string(util::box_stats(times_min)).c_str());
  }
  return 0;
}
