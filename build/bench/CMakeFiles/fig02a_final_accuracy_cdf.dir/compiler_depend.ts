# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig02a_final_accuracy_cdf.
