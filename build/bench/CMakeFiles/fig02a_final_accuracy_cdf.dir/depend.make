# Empty dependencies file for fig02a_final_accuracy_cdf.
# This may be replaced when dependencies are built.
