file(REMOVE_RECURSE
  "CMakeFiles/fig02a_final_accuracy_cdf.dir/fig02a_final_accuracy_cdf.cpp.o"
  "CMakeFiles/fig02a_final_accuracy_cdf.dir/fig02a_final_accuracy_cdf.cpp.o.d"
  "fig02a_final_accuracy_cdf"
  "fig02a_final_accuracy_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02a_final_accuracy_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
