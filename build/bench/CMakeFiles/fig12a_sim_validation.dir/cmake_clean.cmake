file(REMOVE_RECURSE
  "CMakeFiles/fig12a_sim_validation.dir/fig12a_sim_validation.cpp.o"
  "CMakeFiles/fig12a_sim_validation.dir/fig12a_sim_validation.cpp.o.d"
  "fig12a_sim_validation"
  "fig12a_sim_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12a_sim_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
