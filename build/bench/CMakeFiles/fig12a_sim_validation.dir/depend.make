# Empty dependencies file for fig12a_sim_validation.
# This may be replaced when dependencies are built.
