file(REMOVE_RECURSE
  "CMakeFiles/fig12b_resource_capacity.dir/fig12b_resource_capacity.cpp.o"
  "CMakeFiles/fig12b_resource_capacity.dir/fig12b_resource_capacity.cpp.o.d"
  "fig12b_resource_capacity"
  "fig12b_resource_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12b_resource_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
