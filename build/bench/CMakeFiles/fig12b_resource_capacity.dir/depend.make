# Empty dependencies file for fig12b_resource_capacity.
# This may be replaced when dependencies are built.
