file(REMOVE_RECURSE
  "CMakeFiles/ext_overlap_prediction.dir/ext_overlap_prediction.cpp.o"
  "CMakeFiles/ext_overlap_prediction.dir/ext_overlap_prediction.cpp.o.d"
  "ext_overlap_prediction"
  "ext_overlap_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_overlap_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
