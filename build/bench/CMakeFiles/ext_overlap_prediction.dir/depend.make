# Empty dependencies file for ext_overlap_prediction.
# This may be replaced when dependencies are built.
