# Empty dependencies file for cmp_hyperband.
# This may be replaced when dependencies are built.
