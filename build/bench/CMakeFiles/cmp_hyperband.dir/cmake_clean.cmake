file(REMOVE_RECURSE
  "CMakeFiles/cmp_hyperband.dir/cmp_hyperband.cpp.o"
  "CMakeFiles/cmp_hyperband.dir/cmp_hyperband.cpp.o.d"
  "cmp_hyperband"
  "cmp_hyperband.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmp_hyperband.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
