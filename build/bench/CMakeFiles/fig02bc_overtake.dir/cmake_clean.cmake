file(REMOVE_RECURSE
  "CMakeFiles/fig02bc_overtake.dir/fig02bc_overtake.cpp.o"
  "CMakeFiles/fig02bc_overtake.dir/fig02bc_overtake.cpp.o.d"
  "fig02bc_overtake"
  "fig02bc_overtake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02bc_overtake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
