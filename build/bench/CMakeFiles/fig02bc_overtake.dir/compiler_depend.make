# Empty compiler generated dependencies file for fig02bc_overtake.
# This may be replaced when dependencies are built.
