# Empty dependencies file for ext_scale_imagenet.
# This may be replaced when dependencies are built.
