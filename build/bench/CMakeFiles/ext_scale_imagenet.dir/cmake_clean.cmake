file(REMOVE_RECURSE
  "CMakeFiles/ext_scale_imagenet.dir/ext_scale_imagenet.cpp.o"
  "CMakeFiles/ext_scale_imagenet.dir/ext_scale_imagenet.cpp.o.d"
  "ext_scale_imagenet"
  "ext_scale_imagenet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_scale_imagenet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
