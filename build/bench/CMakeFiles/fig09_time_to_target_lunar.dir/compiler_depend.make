# Empty compiler generated dependencies file for fig09_time_to_target_lunar.
# This may be replaced when dependencies are built.
