file(REMOVE_RECURSE
  "CMakeFiles/fig09_time_to_target_lunar.dir/fig09_time_to_target_lunar.cpp.o"
  "CMakeFiles/fig09_time_to_target_lunar.dir/fig09_time_to_target_lunar.cpp.o.d"
  "fig09_time_to_target_lunar"
  "fig09_time_to_target_lunar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_time_to_target_lunar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
