# Empty compiler generated dependencies file for tab_mcmc_samples.
# This may be replaced when dependencies are built.
