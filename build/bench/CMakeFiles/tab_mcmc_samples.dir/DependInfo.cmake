
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/tab_mcmc_samples.cpp" "bench/CMakeFiles/tab_mcmc_samples.dir/tab_mcmc_samples.cpp.o" "gcc" "bench/CMakeFiles/tab_mcmc_samples.dir/tab_mcmc_samples.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/curve/CMakeFiles/hd_curve.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
