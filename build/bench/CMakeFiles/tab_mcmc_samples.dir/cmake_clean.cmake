file(REMOVE_RECURSE
  "CMakeFiles/tab_mcmc_samples.dir/tab_mcmc_samples.cpp.o"
  "CMakeFiles/tab_mcmc_samples.dir/tab_mcmc_samples.cpp.o.d"
  "tab_mcmc_samples"
  "tab_mcmc_samples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_mcmc_samples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
