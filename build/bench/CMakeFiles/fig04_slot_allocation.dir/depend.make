# Empty dependencies file for fig04_slot_allocation.
# This may be replaced when dependencies are built.
