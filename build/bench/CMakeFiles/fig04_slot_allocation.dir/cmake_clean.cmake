file(REMOVE_RECURSE
  "CMakeFiles/fig04_slot_allocation.dir/fig04_slot_allocation.cpp.o"
  "CMakeFiles/fig04_slot_allocation.dir/fig04_slot_allocation.cpp.o.d"
  "fig04_slot_allocation"
  "fig04_slot_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_slot_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
