file(REMOVE_RECURSE
  "CMakeFiles/fig07_time_to_target_cifar.dir/fig07_time_to_target_cifar.cpp.o"
  "CMakeFiles/fig07_time_to_target_cifar.dir/fig07_time_to_target_cifar.cpp.o.d"
  "fig07_time_to_target_cifar"
  "fig07_time_to_target_cifar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_time_to_target_cifar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
