# Empty compiler generated dependencies file for fig07_time_to_target_cifar.
# This may be replaced when dependencies are built.
