file(REMOVE_RECURSE
  "CMakeFiles/fig01_cifar_curves.dir/fig01_cifar_curves.cpp.o"
  "CMakeFiles/fig01_cifar_curves.dir/fig01_cifar_curves.cpp.o.d"
  "fig01_cifar_curves"
  "fig01_cifar_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_cifar_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
