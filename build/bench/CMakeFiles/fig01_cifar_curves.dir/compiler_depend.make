# Empty compiler generated dependencies file for fig01_cifar_curves.
# This may be replaced when dependencies are built.
