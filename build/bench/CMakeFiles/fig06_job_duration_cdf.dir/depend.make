# Empty dependencies file for fig06_job_duration_cdf.
# This may be replaced when dependencies are built.
