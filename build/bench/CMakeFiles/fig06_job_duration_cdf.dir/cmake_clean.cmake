file(REMOVE_RECURSE
  "CMakeFiles/fig06_job_duration_cdf.dir/fig06_job_duration_cdf.cpp.o"
  "CMakeFiles/fig06_job_duration_cdf.dir/fig06_job_duration_cdf.cpp.o.d"
  "fig06_job_duration_cdf"
  "fig06_job_duration_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_job_duration_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
