# Empty dependencies file for tab_overhead_cifar.
# This may be replaced when dependencies are built.
