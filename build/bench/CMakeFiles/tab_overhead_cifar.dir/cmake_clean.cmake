file(REMOVE_RECURSE
  "CMakeFiles/tab_overhead_cifar.dir/tab_overhead_cifar.cpp.o"
  "CMakeFiles/tab_overhead_cifar.dir/tab_overhead_cifar.cpp.o.d"
  "tab_overhead_cifar"
  "tab_overhead_cifar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_overhead_cifar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
