file(REMOVE_RECURSE
  "CMakeFiles/fig12c_config_order.dir/fig12c_config_order.cpp.o"
  "CMakeFiles/fig12c_config_order.dir/fig12c_config_order.cpp.o.d"
  "fig12c_config_order"
  "fig12c_config_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12c_config_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
