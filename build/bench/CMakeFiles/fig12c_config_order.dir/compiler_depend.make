# Empty compiler generated dependencies file for fig12c_config_order.
# This may be replaced when dependencies are built.
