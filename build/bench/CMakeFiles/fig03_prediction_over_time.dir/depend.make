# Empty dependencies file for fig03_prediction_over_time.
# This may be replaced when dependencies are built.
