file(REMOVE_RECURSE
  "CMakeFiles/fig03_prediction_over_time.dir/fig03_prediction_over_time.cpp.o"
  "CMakeFiles/fig03_prediction_over_time.dir/fig03_prediction_over_time.cpp.o.d"
  "fig03_prediction_over_time"
  "fig03_prediction_over_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_prediction_over_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
