file(REMOVE_RECURSE
  "CMakeFiles/fig08_lunar_curves.dir/fig08_lunar_curves.cpp.o"
  "CMakeFiles/fig08_lunar_curves.dir/fig08_lunar_curves.cpp.o.d"
  "fig08_lunar_curves"
  "fig08_lunar_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_lunar_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
