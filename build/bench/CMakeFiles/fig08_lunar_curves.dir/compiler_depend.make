# Empty compiler generated dependencies file for fig08_lunar_curves.
# This may be replaced when dependencies are built.
