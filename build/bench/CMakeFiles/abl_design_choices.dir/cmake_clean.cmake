file(REMOVE_RECURSE
  "CMakeFiles/abl_design_choices.dir/abl_design_choices.cpp.o"
  "CMakeFiles/abl_design_choices.dir/abl_design_choices.cpp.o.d"
  "abl_design_choices"
  "abl_design_choices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_design_choices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
