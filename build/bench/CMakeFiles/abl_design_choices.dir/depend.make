# Empty dependencies file for abl_design_choices.
# This may be replaced when dependencies are built.
