# Empty compiler generated dependencies file for fig10_overhead_lunar.
# This may be replaced when dependencies are built.
