file(REMOVE_RECURSE
  "CMakeFiles/fig10_overhead_lunar.dir/fig10_overhead_lunar.cpp.o"
  "CMakeFiles/fig10_overhead_lunar.dir/fig10_overhead_lunar.cpp.o.d"
  "fig10_overhead_lunar"
  "fig10_overhead_lunar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_overhead_lunar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
