# Empty dependencies file for ext_lstm_sparsity.
# This may be replaced when dependencies are built.
