file(REMOVE_RECURSE
  "CMakeFiles/ext_lstm_sparsity.dir/ext_lstm_sparsity.cpp.o"
  "CMakeFiles/ext_lstm_sparsity.dir/ext_lstm_sparsity.cpp.o.d"
  "ext_lstm_sparsity"
  "ext_lstm_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_lstm_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
