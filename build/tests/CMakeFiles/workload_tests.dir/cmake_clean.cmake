file(REMOVE_RECURSE
  "CMakeFiles/workload_tests.dir/workload/hyperparameters_test.cpp.o"
  "CMakeFiles/workload_tests.dir/workload/hyperparameters_test.cpp.o.d"
  "CMakeFiles/workload_tests.dir/workload/ptb_lstm_test.cpp.o"
  "CMakeFiles/workload_tests.dir/workload/ptb_lstm_test.cpp.o.d"
  "CMakeFiles/workload_tests.dir/workload/trace_test.cpp.o"
  "CMakeFiles/workload_tests.dir/workload/trace_test.cpp.o.d"
  "CMakeFiles/workload_tests.dir/workload/workload_model_test.cpp.o"
  "CMakeFiles/workload_tests.dir/workload/workload_model_test.cpp.o.d"
  "workload_tests"
  "workload_tests.pdb"
  "workload_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
