file(REMOVE_RECURSE
  "CMakeFiles/curve_tests.dir/curve/caching_predictor_test.cpp.o"
  "CMakeFiles/curve_tests.dir/curve/caching_predictor_test.cpp.o.d"
  "CMakeFiles/curve_tests.dir/curve/ensemble_test.cpp.o"
  "CMakeFiles/curve_tests.dir/curve/ensemble_test.cpp.o.d"
  "CMakeFiles/curve_tests.dir/curve/mcmc_test.cpp.o"
  "CMakeFiles/curve_tests.dir/curve/mcmc_test.cpp.o.d"
  "CMakeFiles/curve_tests.dir/curve/nelder_mead_test.cpp.o"
  "CMakeFiles/curve_tests.dir/curve/nelder_mead_test.cpp.o.d"
  "CMakeFiles/curve_tests.dir/curve/parametric_models_test.cpp.o"
  "CMakeFiles/curve_tests.dir/curve/parametric_models_test.cpp.o.d"
  "CMakeFiles/curve_tests.dir/curve/predictor_test.cpp.o"
  "CMakeFiles/curve_tests.dir/curve/predictor_test.cpp.o.d"
  "curve_tests"
  "curve_tests.pdb"
  "curve_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curve_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
