# Empty dependencies file for curve_tests.
# This may be replaced when dependencies are built.
