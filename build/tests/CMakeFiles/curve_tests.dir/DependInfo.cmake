
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/curve/caching_predictor_test.cpp" "tests/CMakeFiles/curve_tests.dir/curve/caching_predictor_test.cpp.o" "gcc" "tests/CMakeFiles/curve_tests.dir/curve/caching_predictor_test.cpp.o.d"
  "/root/repo/tests/curve/ensemble_test.cpp" "tests/CMakeFiles/curve_tests.dir/curve/ensemble_test.cpp.o" "gcc" "tests/CMakeFiles/curve_tests.dir/curve/ensemble_test.cpp.o.d"
  "/root/repo/tests/curve/mcmc_test.cpp" "tests/CMakeFiles/curve_tests.dir/curve/mcmc_test.cpp.o" "gcc" "tests/CMakeFiles/curve_tests.dir/curve/mcmc_test.cpp.o.d"
  "/root/repo/tests/curve/nelder_mead_test.cpp" "tests/CMakeFiles/curve_tests.dir/curve/nelder_mead_test.cpp.o" "gcc" "tests/CMakeFiles/curve_tests.dir/curve/nelder_mead_test.cpp.o.d"
  "/root/repo/tests/curve/parametric_models_test.cpp" "tests/CMakeFiles/curve_tests.dir/curve/parametric_models_test.cpp.o" "gcc" "tests/CMakeFiles/curve_tests.dir/curve/parametric_models_test.cpp.o.d"
  "/root/repo/tests/curve/predictor_test.cpp" "tests/CMakeFiles/curve_tests.dir/curve/predictor_test.cpp.o" "gcc" "tests/CMakeFiles/curve_tests.dir/curve/predictor_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/curve/CMakeFiles/hd_curve.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/hd_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hd_sap.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hd_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
