file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/barrier_policy_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/barrier_policy_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/extensions_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/extensions_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/generators_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/generators_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/integration_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/integration_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/policies_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/policies_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/properties_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/properties_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
