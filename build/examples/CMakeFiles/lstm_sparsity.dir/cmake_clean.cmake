file(REMOVE_RECURSE
  "CMakeFiles/lstm_sparsity.dir/lstm_sparsity.cpp.o"
  "CMakeFiles/lstm_sparsity.dir/lstm_sparsity.cpp.o.d"
  "lstm_sparsity"
  "lstm_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lstm_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
