# Empty dependencies file for lstm_sparsity.
# This may be replaced when dependencies are built.
