# Empty dependencies file for lunar_rl.
# This may be replaced when dependencies are built.
