file(REMOVE_RECURSE
  "CMakeFiles/lunar_rl.dir/lunar_rl.cpp.o"
  "CMakeFiles/lunar_rl.dir/lunar_rl.cpp.o.d"
  "lunar_rl"
  "lunar_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lunar_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
