# Empty dependencies file for dynamic_target.
# This may be replaced when dependencies are built.
