file(REMOVE_RECURSE
  "CMakeFiles/dynamic_target.dir/dynamic_target.cpp.o"
  "CMakeFiles/dynamic_target.dir/dynamic_target.cpp.o.d"
  "dynamic_target"
  "dynamic_target.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
