# Empty compiler generated dependencies file for cifar_sweep.
# This may be replaced when dependencies are built.
