file(REMOVE_RECURSE
  "CMakeFiles/cifar_sweep.dir/cifar_sweep.cpp.o"
  "CMakeFiles/cifar_sweep.dir/cifar_sweep.cpp.o.d"
  "cifar_sweep"
  "cifar_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cifar_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
