file(REMOVE_RECURSE
  "libhd_sim.a"
)
