# Empty compiler generated dependencies file for hd_sim.
# This may be replaced when dependencies are built.
