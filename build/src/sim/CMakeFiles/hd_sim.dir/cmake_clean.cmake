file(REMOVE_RECURSE
  "CMakeFiles/hd_sim.dir/simulation.cpp.o"
  "CMakeFiles/hd_sim.dir/simulation.cpp.o.d"
  "CMakeFiles/hd_sim.dir/trace_replay.cpp.o"
  "CMakeFiles/hd_sim.dir/trace_replay.cpp.o.d"
  "libhd_sim.a"
  "libhd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
