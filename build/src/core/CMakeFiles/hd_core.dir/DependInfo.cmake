
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/experiment_runner.cpp" "src/core/CMakeFiles/hd_core.dir/experiment_runner.cpp.o" "gcc" "src/core/CMakeFiles/hd_core.dir/experiment_runner.cpp.o.d"
  "/root/repo/src/core/generators/hyperparameter_generator.cpp" "src/core/CMakeFiles/hd_core.dir/generators/hyperparameter_generator.cpp.o" "gcc" "src/core/CMakeFiles/hd_core.dir/generators/hyperparameter_generator.cpp.o.d"
  "/root/repo/src/core/policies/bandit_policy.cpp" "src/core/CMakeFiles/hd_core.dir/policies/bandit_policy.cpp.o" "gcc" "src/core/CMakeFiles/hd_core.dir/policies/bandit_policy.cpp.o.d"
  "/root/repo/src/core/policies/barrier_policy.cpp" "src/core/CMakeFiles/hd_core.dir/policies/barrier_policy.cpp.o" "gcc" "src/core/CMakeFiles/hd_core.dir/policies/barrier_policy.cpp.o.d"
  "/root/repo/src/core/policies/default_policy.cpp" "src/core/CMakeFiles/hd_core.dir/policies/default_policy.cpp.o" "gcc" "src/core/CMakeFiles/hd_core.dir/policies/default_policy.cpp.o.d"
  "/root/repo/src/core/policies/earlyterm_policy.cpp" "src/core/CMakeFiles/hd_core.dir/policies/earlyterm_policy.cpp.o" "gcc" "src/core/CMakeFiles/hd_core.dir/policies/earlyterm_policy.cpp.o.d"
  "/root/repo/src/core/policies/hyperband_policy.cpp" "src/core/CMakeFiles/hd_core.dir/policies/hyperband_policy.cpp.o" "gcc" "src/core/CMakeFiles/hd_core.dir/policies/hyperband_policy.cpp.o.d"
  "/root/repo/src/core/policies/pop_policy.cpp" "src/core/CMakeFiles/hd_core.dir/policies/pop_policy.cpp.o" "gcc" "src/core/CMakeFiles/hd_core.dir/policies/pop_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hd_sap.dir/DependInfo.cmake"
  "/root/repo/build/src/curve/CMakeFiles/hd_curve.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hd_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/hd_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
