# Empty dependencies file for hd_core.
# This may be replaced when dependencies are built.
