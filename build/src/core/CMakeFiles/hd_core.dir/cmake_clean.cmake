file(REMOVE_RECURSE
  "CMakeFiles/hd_core.dir/experiment_runner.cpp.o"
  "CMakeFiles/hd_core.dir/experiment_runner.cpp.o.d"
  "CMakeFiles/hd_core.dir/generators/hyperparameter_generator.cpp.o"
  "CMakeFiles/hd_core.dir/generators/hyperparameter_generator.cpp.o.d"
  "CMakeFiles/hd_core.dir/policies/bandit_policy.cpp.o"
  "CMakeFiles/hd_core.dir/policies/bandit_policy.cpp.o.d"
  "CMakeFiles/hd_core.dir/policies/barrier_policy.cpp.o"
  "CMakeFiles/hd_core.dir/policies/barrier_policy.cpp.o.d"
  "CMakeFiles/hd_core.dir/policies/default_policy.cpp.o"
  "CMakeFiles/hd_core.dir/policies/default_policy.cpp.o.d"
  "CMakeFiles/hd_core.dir/policies/earlyterm_policy.cpp.o"
  "CMakeFiles/hd_core.dir/policies/earlyterm_policy.cpp.o.d"
  "CMakeFiles/hd_core.dir/policies/hyperband_policy.cpp.o"
  "CMakeFiles/hd_core.dir/policies/hyperband_policy.cpp.o.d"
  "CMakeFiles/hd_core.dir/policies/pop_policy.cpp.o"
  "CMakeFiles/hd_core.dir/policies/pop_policy.cpp.o.d"
  "libhd_core.a"
  "libhd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
