file(REMOVE_RECURSE
  "libhd_core.a"
)
