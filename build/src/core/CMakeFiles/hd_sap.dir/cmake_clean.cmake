file(REMOVE_RECURSE
  "CMakeFiles/hd_sap.dir/sap.cpp.o"
  "CMakeFiles/hd_sap.dir/sap.cpp.o.d"
  "libhd_sap.a"
  "libhd_sap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_sap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
