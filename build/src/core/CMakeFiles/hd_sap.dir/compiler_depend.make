# Empty compiler generated dependencies file for hd_sap.
# This may be replaced when dependencies are built.
