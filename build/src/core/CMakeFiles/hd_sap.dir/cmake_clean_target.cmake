file(REMOVE_RECURSE
  "libhd_sap.a"
)
