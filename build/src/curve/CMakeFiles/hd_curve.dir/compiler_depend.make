# Empty compiler generated dependencies file for hd_curve.
# This may be replaced when dependencies are built.
