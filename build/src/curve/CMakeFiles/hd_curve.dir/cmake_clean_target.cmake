file(REMOVE_RECURSE
  "libhd_curve.a"
)
