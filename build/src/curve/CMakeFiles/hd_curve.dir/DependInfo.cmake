
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/curve/caching_predictor.cpp" "src/curve/CMakeFiles/hd_curve.dir/caching_predictor.cpp.o" "gcc" "src/curve/CMakeFiles/hd_curve.dir/caching_predictor.cpp.o.d"
  "/root/repo/src/curve/ensemble.cpp" "src/curve/CMakeFiles/hd_curve.dir/ensemble.cpp.o" "gcc" "src/curve/CMakeFiles/hd_curve.dir/ensemble.cpp.o.d"
  "/root/repo/src/curve/mcmc.cpp" "src/curve/CMakeFiles/hd_curve.dir/mcmc.cpp.o" "gcc" "src/curve/CMakeFiles/hd_curve.dir/mcmc.cpp.o.d"
  "/root/repo/src/curve/nelder_mead.cpp" "src/curve/CMakeFiles/hd_curve.dir/nelder_mead.cpp.o" "gcc" "src/curve/CMakeFiles/hd_curve.dir/nelder_mead.cpp.o.d"
  "/root/repo/src/curve/parametric_models.cpp" "src/curve/CMakeFiles/hd_curve.dir/parametric_models.cpp.o" "gcc" "src/curve/CMakeFiles/hd_curve.dir/parametric_models.cpp.o.d"
  "/root/repo/src/curve/predictor.cpp" "src/curve/CMakeFiles/hd_curve.dir/predictor.cpp.o" "gcc" "src/curve/CMakeFiles/hd_curve.dir/predictor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
