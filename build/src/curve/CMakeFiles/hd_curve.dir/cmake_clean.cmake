file(REMOVE_RECURSE
  "CMakeFiles/hd_curve.dir/caching_predictor.cpp.o"
  "CMakeFiles/hd_curve.dir/caching_predictor.cpp.o.d"
  "CMakeFiles/hd_curve.dir/ensemble.cpp.o"
  "CMakeFiles/hd_curve.dir/ensemble.cpp.o.d"
  "CMakeFiles/hd_curve.dir/mcmc.cpp.o"
  "CMakeFiles/hd_curve.dir/mcmc.cpp.o.d"
  "CMakeFiles/hd_curve.dir/nelder_mead.cpp.o"
  "CMakeFiles/hd_curve.dir/nelder_mead.cpp.o.d"
  "CMakeFiles/hd_curve.dir/parametric_models.cpp.o"
  "CMakeFiles/hd_curve.dir/parametric_models.cpp.o.d"
  "CMakeFiles/hd_curve.dir/predictor.cpp.o"
  "CMakeFiles/hd_curve.dir/predictor.cpp.o.d"
  "libhd_curve.a"
  "libhd_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
