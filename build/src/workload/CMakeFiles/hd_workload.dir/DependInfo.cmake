
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/cifar_model.cpp" "src/workload/CMakeFiles/hd_workload.dir/cifar_model.cpp.o" "gcc" "src/workload/CMakeFiles/hd_workload.dir/cifar_model.cpp.o.d"
  "/root/repo/src/workload/hyperparameters.cpp" "src/workload/CMakeFiles/hd_workload.dir/hyperparameters.cpp.o" "gcc" "src/workload/CMakeFiles/hd_workload.dir/hyperparameters.cpp.o.d"
  "/root/repo/src/workload/imagenet_model.cpp" "src/workload/CMakeFiles/hd_workload.dir/imagenet_model.cpp.o" "gcc" "src/workload/CMakeFiles/hd_workload.dir/imagenet_model.cpp.o.d"
  "/root/repo/src/workload/lunar_model.cpp" "src/workload/CMakeFiles/hd_workload.dir/lunar_model.cpp.o" "gcc" "src/workload/CMakeFiles/hd_workload.dir/lunar_model.cpp.o.d"
  "/root/repo/src/workload/ptb_lstm_model.cpp" "src/workload/CMakeFiles/hd_workload.dir/ptb_lstm_model.cpp.o" "gcc" "src/workload/CMakeFiles/hd_workload.dir/ptb_lstm_model.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/workload/CMakeFiles/hd_workload.dir/trace.cpp.o" "gcc" "src/workload/CMakeFiles/hd_workload.dir/trace.cpp.o.d"
  "/root/repo/src/workload/workload_model.cpp" "src/workload/CMakeFiles/hd_workload.dir/workload_model.cpp.o" "gcc" "src/workload/CMakeFiles/hd_workload.dir/workload_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
