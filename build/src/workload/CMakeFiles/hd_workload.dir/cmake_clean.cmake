file(REMOVE_RECURSE
  "CMakeFiles/hd_workload.dir/cifar_model.cpp.o"
  "CMakeFiles/hd_workload.dir/cifar_model.cpp.o.d"
  "CMakeFiles/hd_workload.dir/hyperparameters.cpp.o"
  "CMakeFiles/hd_workload.dir/hyperparameters.cpp.o.d"
  "CMakeFiles/hd_workload.dir/imagenet_model.cpp.o"
  "CMakeFiles/hd_workload.dir/imagenet_model.cpp.o.d"
  "CMakeFiles/hd_workload.dir/lunar_model.cpp.o"
  "CMakeFiles/hd_workload.dir/lunar_model.cpp.o.d"
  "CMakeFiles/hd_workload.dir/ptb_lstm_model.cpp.o"
  "CMakeFiles/hd_workload.dir/ptb_lstm_model.cpp.o.d"
  "CMakeFiles/hd_workload.dir/trace.cpp.o"
  "CMakeFiles/hd_workload.dir/trace.cpp.o.d"
  "CMakeFiles/hd_workload.dir/workload_model.cpp.o"
  "CMakeFiles/hd_workload.dir/workload_model.cpp.o.d"
  "libhd_workload.a"
  "libhd_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
