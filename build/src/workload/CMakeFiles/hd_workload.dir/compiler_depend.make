# Empty compiler generated dependencies file for hd_workload.
# This may be replaced when dependencies are built.
