file(REMOVE_RECURSE
  "libhd_workload.a"
)
