# Empty compiler generated dependencies file for hd_util.
# This may be replaced when dependencies are built.
