file(REMOVE_RECURSE
  "CMakeFiles/hd_util.dir/csv.cpp.o"
  "CMakeFiles/hd_util.dir/csv.cpp.o.d"
  "CMakeFiles/hd_util.dir/log.cpp.o"
  "CMakeFiles/hd_util.dir/log.cpp.o.d"
  "CMakeFiles/hd_util.dir/rng.cpp.o"
  "CMakeFiles/hd_util.dir/rng.cpp.o.d"
  "CMakeFiles/hd_util.dir/sim_time.cpp.o"
  "CMakeFiles/hd_util.dir/sim_time.cpp.o.d"
  "CMakeFiles/hd_util.dir/stats.cpp.o"
  "CMakeFiles/hd_util.dir/stats.cpp.o.d"
  "CMakeFiles/hd_util.dir/thread_pool.cpp.o"
  "CMakeFiles/hd_util.dir/thread_pool.cpp.o.d"
  "libhd_util.a"
  "libhd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
