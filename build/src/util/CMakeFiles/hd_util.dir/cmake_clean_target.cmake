file(REMOVE_RECURSE
  "libhd_util.a"
)
