file(REMOVE_RECURSE
  "libhd_cluster.a"
)
