
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/app_stat_db.cpp" "src/cluster/CMakeFiles/hd_cluster.dir/app_stat_db.cpp.o" "gcc" "src/cluster/CMakeFiles/hd_cluster.dir/app_stat_db.cpp.o.d"
  "/root/repo/src/cluster/cluster.cpp" "src/cluster/CMakeFiles/hd_cluster.dir/cluster.cpp.o" "gcc" "src/cluster/CMakeFiles/hd_cluster.dir/cluster.cpp.o.d"
  "/root/repo/src/cluster/job_manager.cpp" "src/cluster/CMakeFiles/hd_cluster.dir/job_manager.cpp.o" "gcc" "src/cluster/CMakeFiles/hd_cluster.dir/job_manager.cpp.o.d"
  "/root/repo/src/cluster/messaging.cpp" "src/cluster/CMakeFiles/hd_cluster.dir/messaging.cpp.o" "gcc" "src/cluster/CMakeFiles/hd_cluster.dir/messaging.cpp.o.d"
  "/root/repo/src/cluster/node_agent.cpp" "src/cluster/CMakeFiles/hd_cluster.dir/node_agent.cpp.o" "gcc" "src/cluster/CMakeFiles/hd_cluster.dir/node_agent.cpp.o.d"
  "/root/repo/src/cluster/overhead_model.cpp" "src/cluster/CMakeFiles/hd_cluster.dir/overhead_model.cpp.o" "gcc" "src/cluster/CMakeFiles/hd_cluster.dir/overhead_model.cpp.o.d"
  "/root/repo/src/cluster/resource_manager.cpp" "src/cluster/CMakeFiles/hd_cluster.dir/resource_manager.cpp.o" "gcc" "src/cluster/CMakeFiles/hd_cluster.dir/resource_manager.cpp.o.d"
  "/root/repo/src/cluster/snapshot_codec.cpp" "src/cluster/CMakeFiles/hd_cluster.dir/snapshot_codec.cpp.o" "gcc" "src/cluster/CMakeFiles/hd_cluster.dir/snapshot_codec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hd_sap.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hd_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
