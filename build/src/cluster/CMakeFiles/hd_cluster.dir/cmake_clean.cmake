file(REMOVE_RECURSE
  "CMakeFiles/hd_cluster.dir/app_stat_db.cpp.o"
  "CMakeFiles/hd_cluster.dir/app_stat_db.cpp.o.d"
  "CMakeFiles/hd_cluster.dir/cluster.cpp.o"
  "CMakeFiles/hd_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/hd_cluster.dir/job_manager.cpp.o"
  "CMakeFiles/hd_cluster.dir/job_manager.cpp.o.d"
  "CMakeFiles/hd_cluster.dir/messaging.cpp.o"
  "CMakeFiles/hd_cluster.dir/messaging.cpp.o.d"
  "CMakeFiles/hd_cluster.dir/node_agent.cpp.o"
  "CMakeFiles/hd_cluster.dir/node_agent.cpp.o.d"
  "CMakeFiles/hd_cluster.dir/overhead_model.cpp.o"
  "CMakeFiles/hd_cluster.dir/overhead_model.cpp.o.d"
  "CMakeFiles/hd_cluster.dir/resource_manager.cpp.o"
  "CMakeFiles/hd_cluster.dir/resource_manager.cpp.o.d"
  "CMakeFiles/hd_cluster.dir/snapshot_codec.cpp.o"
  "CMakeFiles/hd_cluster.dir/snapshot_codec.cpp.o.d"
  "libhd_cluster.a"
  "libhd_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
