# Empty dependencies file for hd_cluster.
# This may be replaced when dependencies are built.
