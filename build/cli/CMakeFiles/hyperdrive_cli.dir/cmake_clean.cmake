file(REMOVE_RECURSE
  "CMakeFiles/hyperdrive_cli.dir/hyperdrive_cli.cpp.o"
  "CMakeFiles/hyperdrive_cli.dir/hyperdrive_cli.cpp.o.d"
  "hyperdrive_cli"
  "hyperdrive_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperdrive_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
