# Empty compiler generated dependencies file for hyperdrive_cli.
# This may be replaced when dependencies are built.
