# CMake generated Testfile for 
# Source directory: /root/repo/cli
# Build directory: /root/repo/build/cli
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
