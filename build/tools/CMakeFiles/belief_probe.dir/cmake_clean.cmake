file(REMOVE_RECURSE
  "CMakeFiles/belief_probe.dir/belief_probe.cpp.o"
  "CMakeFiles/belief_probe.dir/belief_probe.cpp.o.d"
  "belief_probe"
  "belief_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/belief_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
