# Empty compiler generated dependencies file for belief_probe.
# This may be replaced when dependencies are built.
