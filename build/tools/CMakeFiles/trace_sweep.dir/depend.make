# Empty dependencies file for trace_sweep.
# This may be replaced when dependencies are built.
