file(REMOVE_RECURSE
  "CMakeFiles/trace_sweep.dir/trace_sweep.cpp.o"
  "CMakeFiles/trace_sweep.dir/trace_sweep.cpp.o.d"
  "trace_sweep"
  "trace_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
