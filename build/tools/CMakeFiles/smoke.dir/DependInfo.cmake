
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/smoke.cpp" "tools/CMakeFiles/smoke.dir/smoke.cpp.o" "gcc" "tools/CMakeFiles/smoke.dir/smoke.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/curve/CMakeFiles/hd_curve.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/hd_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hd_sap.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hd_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
