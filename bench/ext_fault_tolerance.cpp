// Extension: fault tolerance of the reliability protocol. The paper's
// production deployment treats HyperDrive as a long-running service, so the
// cluster model grew a fault-injection subsystem (DESIGN.md "Fault model &
// recovery"): seeded message drop/duplication/delay, node crashes with
// optional restart, and snapshot upload failure/corruption, survived by
// ack/retransmit + dedup, crash requeue from the last durable snapshot, and
// history replay from the AppStat database.
//
// This bench sweeps fault intensity on the same CIFAR POP sweep and reports
// the price of recovery: time-to-target degradation vs the fault-free run,
// the recovery counters, and the RPC overhead the retries add.
#include "bench_common.hpp"

using namespace hyperdrive;

namespace {

struct Scenario {
  const char* label;
  double drop = 0.0;
  bool crash = false;          // one mid-run crash of machine 2...
  bool restart = false;        // ...restarting 30 simulated minutes later
  double snapshot_fail = 0.0;  // capture/upload abort probability
};

}  // namespace

int main(int argc, char** argv) {
  const auto bench_options = bench::parse_bench_args(argc, argv);
  bench::print_header("Extension: fault tolerance",
                      "CIFAR POP sweep under injected faults (cluster substrate)");

  workload::CifarWorkloadModel model;
  constexpr std::size_t kMachines = 4;

  const std::vector<Scenario> scenarios = {
      {"fault-free"},
      {"drop 1%", 0.01},
      {"drop 5%", 0.05},
      {"drop 15%", 0.15},
      {"crash (no restart)", 0.0, true, false},
      {"crash + restart", 0.0, true, true},
      {"drop 5% + crash + restart", 0.05, true, true},
      {"snapshot-fail 25%", 0.0, false, false, 0.25},
  };

  core::SweepSpec spec;
  spec.name = "ext_fault_tolerance";
  std::vector<std::string> scenario_labels;
  for (const auto& s : scenarios) scenario_labels.push_back(s.label);
  const auto scenario_ax = spec.add_axis("scenario", scenario_labels);
  const auto repeat_ax = spec.add_repeat_axis(bench_options.repeats(5));
  spec.trace = [&](const core::SweepCell& cell) {
    return bench::suitable_trace(model, 100, 4700 + cell.at(repeat_ax) * 31, kMachines * 2);
  };
  spec.policy = [&](const core::SweepCell& cell) {
    return bench::make_bench_policy("pop", cell.at(repeat_ax));
  };
  spec.options = [&](const core::SweepCell& cell) {
    const Scenario& s = scenarios[cell.at(scenario_ax)];
    const std::uint64_t r = cell.at(repeat_ax);
    core::RunnerOptions options;
    options.substrate = core::Substrate::Cluster;
    options.machines = kMachines;
    options.max_experiment_time = util::SimTime::hours(96);
    options.seed = r + 1;
    options.fault_plan.seed = 1000 + r;
    cluster::MessageFaultProfile faults;
    faults.drop_prob = s.drop;
    options.fault_plan.set_uniform_message_faults(faults);
    options.fault_plan.snapshot_upload_fail_prob = s.snapshot_fail;
    if (s.crash) {
      cluster::NodeCrashEvent crash;
      crash.machine = 2;
      crash.at = util::SimTime::hours(2);
      if (s.restart) crash.restart_after = util::SimTime::minutes(30);
      options.fault_plan.crashes.push_back(crash);
    }
    return options;
  };
  // duplicate_stats_ignored is not a standard SweepTable CSV column, so it
  // rides along as an extra metric.
  spec.extra_columns = {"dup_stats"};
  spec.collect = [](const core::SweepCell&, const core::SchedulingPolicy&,
                    const core::ExperimentResult& result) {
    return std::vector<double>{
        static_cast<double>(result.recovery.duplicate_stats_ignored)};
  };

  const auto table = bench::run_bench_sweep(spec, bench_options);
  const int repeats = static_cast<int>(table.axes[repeat_ax].values.size());

  std::printf("  %-26s %10s %9s %9s %9s %9s %9s\n", "scenario", "ttt[min]", "vs-free",
              "retrans", "requeued", "ep-lost", "dup-stat");
  double free_minutes = 0.0;
  for (const auto& label : scenario_labels) {
    double total_minutes = 0.0;
    std::size_t reached = 0;
    std::uint64_t retrans = 0;
    std::size_t requeued = 0, epochs_lost = 0, dup_stats = 0;
    for (const auto* row : table.where("scenario", label)) {
      total_minutes += row->minutes_to_target();
      if (row->result.reached_target) ++reached;
      retrans += row->result.retransmissions;
      requeued += row->result.recovery.jobs_requeued;
      epochs_lost += row->result.recovery.epochs_lost;
      dup_stats += static_cast<std::size_t>(row->extra.at(0));
    }
    const double avg_minutes = total_minutes / repeats;
    if (free_minutes == 0.0) free_minutes = avg_minutes;
    std::printf("  %-26s %10.1f %+8.1f%% %9llu %9zu %9zu %9zu", label.c_str(), avg_minutes,
                100.0 * (avg_minutes - free_minutes) / free_minutes,
                static_cast<unsigned long long>(retrans), requeued, epochs_lost,
                dup_stats);
    if (reached < static_cast<std::size_t>(repeats)) {
      std::printf("  (%d/%d reached target)", static_cast<int>(reached), repeats);
    }
    std::printf("\n");
  }

  std::printf("\n  Degradation stays bounded while every scenario still reaches the\n"
              "  target: retries absorb drops, requeue + snapshot rollback absorb\n"
              "  crashes, and the AppStatDb dedup absorbs re-trained epochs.\n");
  return 0;
}
