// Figure 12c: sensitivity to configuration order — CDF of time to the
// CIFAR-10 target across 25 random configuration orders on 5 machines.
// Paper: POP dominates at every percentile and has a far smaller spread
// (4.05 h max-min vs 8.33 Bandit, 8.50 EarlyTerm, 25.74 Default).
#include "bench_common.hpp"

using namespace hyperdrive;

int main() {
  bench::print_header("Figure 12c", "time-to-target CDF over 25 random config orders");

  workload::CifarWorkloadModel model;
  const auto base_trace = bench::reachable_trace(model, 100, 4242);
  util::Rng order_rng(777);

  // Pre-generate the 25 orders so every policy sees the same ones.
  std::vector<workload::Trace> orders;
  orders.push_back(base_trace);
  for (int i = 1; i < 25; ++i) orders.push_back(base_trace.shuffled(order_rng));

  std::printf("policy      spread(h)\n");
  for (const auto kind : bench::all_policies()) {
    std::vector<double> hours;
    for (std::size_t i = 0; i < orders.size(); ++i) {
      core::RunnerOptions options;
      options.substrate = core::Substrate::TraceReplay;
      options.machines = 5;
      options.max_experiment_time = util::SimTime::hours(200);
      const auto result =
          core::run_experiment(orders[i], bench::policy_spec(kind, i), options);
      hours.push_back(result.reached_target ? result.time_to_target.to_hours()
                                            : result.total_time.to_hours());
    }
    bench::print_ecdf(std::string(core::to_string(kind)), hours, "h");
    std::printf("             max-min spread: %.2f h\n",
                util::max_of(hours) - util::min_of(hours));
  }
  std::printf("\n(paper spreads: POP 4.05 h, Bandit 8.33 h, EarlyTerm 8.50 h, "
              "Default 25.74 h)\n");
  return 0;
}
