// Figure 12c: sensitivity to configuration order — CDF of time to the
// CIFAR-10 target across 25 random configuration orders on 5 machines.
// Paper: POP dominates at every percentile and has a far smaller spread
// (4.05 h max-min vs 8.33 Bandit, 8.50 EarlyTerm, 25.74 Default).
#include "bench_common.hpp"

using namespace hyperdrive;

int main(int argc, char** argv) {
  const auto bench_options = bench::parse_bench_args(argc, argv);
  bench::print_header("Figure 12c", "time-to-target CDF over 25 random config orders");

  workload::CifarWorkloadModel model;
  const auto base_trace = bench::reachable_trace(model, 100, 4242);
  util::Rng order_rng(777);

  // Pre-generate the 25 orders so every policy sees the same ones.
  std::vector<workload::Trace> orders;
  orders.push_back(base_trace);
  for (int i = 1; i < 25; ++i) orders.push_back(base_trace.shuffled(order_rng));

  core::SweepSpec spec;
  spec.name = "fig12c_config_order";
  const auto policy_ax = spec.add_policy_axis(bench::all_policies());
  std::vector<std::string> order_labels;
  for (std::size_t i = 0; i < orders.size(); ++i) order_labels.push_back(std::to_string(i));
  const auto order_ax = spec.add_axis("order", order_labels);
  spec.trace = [&](const core::SweepCell& cell) { return orders[cell.at(order_ax)]; };
  spec.policy = [&](const core::SweepCell& cell) {
    return bench::make_bench_policy(bench::all_policies()[cell.at(policy_ax)],
                                    cell.at(order_ax));
  };
  spec.options = [&](const core::SweepCell&) {
    core::RunnerOptions options;
    options.substrate = core::Substrate::TraceReplay;
    options.machines = 5;
    options.max_experiment_time = util::SimTime::hours(200);
    return options;
  };

  const auto table = bench::run_bench_sweep(spec, bench_options);

  std::printf("policy      spread(h)\n");
  for (const auto& label : bench::all_policies()) {
    const auto hours = core::SweepTable::collect(
        table.where("policy", label),
        [](const core::SweepRow& row) { return row.hours_to_target(); });
    bench::print_ecdf(label, hours, "h");
    std::printf("             max-min spread: %.2f h\n",
                util::max_of(hours) - util::min_of(hours));
  }
  std::printf("\n(paper spreads: POP 4.05 h, Bandit 8.33 h, EarlyTerm 8.50 h, "
              "Default 25.74 h)\n");
  return 0;
}
