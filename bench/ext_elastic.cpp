// Extension: elastic cost-aware capacity (DESIGN.md §15). The ext_multi_study
// tenant mix — an *urgent* deadline sweep, a *batch* sweep and a *quick*
// exploratory study — runs on a priced two-class catalog (8 standard
// on-demand nodes at $1/hr + 4 premium spot nodes at $3/hr) with a budget
// autoscaler closing the cloud bill and a mid-run spot preemption draining
// one premium node. The bench sweeps the arbitration mode over 20 fresh-noise
// repeats and compares:
//
//   * static   — weighted split at admission; the full fleet stays acquired
//                until the last study finishes.
//   * fair     — fair share; capacity drained by finished studies is released
//                by the autoscaler.
//   * deadline — fair share + urgency boosting (meets the most deadlines,
//                ignores prices).
//   * cost     — deadline boosting + per-tenant caps at the runnable-job
//                count; the autoscaler sheds everything the studies cannot
//                actually use, most expensive nodes first.
//
// Report: deadlines met (urgent study), mean spend, and $-per-target-reached.
// The headline property (ISSUE §15): cost arbitration meets at least as many
// deadlines as the deadline mode at measurably (≥5%) lower spend.
#include "bench_common.hpp"
#include "bench_json.hpp"

#include "core/study/study_manager.hpp"

using namespace hyperdrive;

namespace {

struct ArmResult {
  std::size_t runs = 0;
  std::size_t deadlines_met = 0;
  std::size_t targets_reached = 0;
  double urgent_minutes = 0.0;   // mean urgent time-to-target
  double makespan_minutes = 0.0; // mean study makespan
  double spend_usd = 0.0;        // summed cloud bill
};

}  // namespace

int main(int argc, char** argv) {
  const auto bench_options = bench::parse_bench_args(argc, argv);
  bench::print_header(
      "Extension: elastic cost-aware capacity",
      "3 studies on an 8×$1 + 4×$3-spot catalog, arbitration static|fair|deadline|cost");

  const auto kDeadline = util::SimTime::minutes(150);
  constexpr double kQuickTarget = 0.35;
  constexpr std::size_t kMachines = 12;  // catalog total below

  cluster::NodeCatalog catalog;
  catalog.add({"standard", 8, 1.0, 1.0, false});
  catalog.add({"premium", 4, 3.0, 1.0, true});

  workload::CifarWorkloadModel model;
  const auto urgent_base = bench::suitable_trace(model, 40, 7100, kMachines);
  const auto batch_base = bench::suitable_trace(model, 48, 7200, kMachines);
  const auto quick_base = bench::suitable_trace(model, 8, 7300, 4);

  core::SweepSpec spec;
  spec.name = "ext_elastic";
  const auto mode_ax =
      spec.add_axis("arbitration", {"static", "fair", "deadline", "cost"});
  const auto repeat_ax = spec.add_repeat_axis(bench_options.repeats(20));
  std::vector<core::MultiStudyResult> outcomes(spec.cells());
  spec.run = [&](const core::SweepCell& cell) {
    const std::uint64_t r = cell.at(repeat_ax);
    core::StudyManagerOptions options;
    options.catalog = catalog;
    options.arbitration = core::arbitration_from_string(
        spec.axes[mode_ax].values[cell.at(mode_ax)]);
    options.arbitration_interval = util::SimTime::minutes(5);
    options.seed = 40 + r;
    // One premium spot node is reclaimed an hour in (2-minute warning): its
    // occupant snapshot-migrates out and the node leaves every arm's fleet.
    cluster::SpotPreemptionEvent preemption;
    preemption.machine = 8;  // first premium node
    preemption.at = util::SimTime::minutes(60);
    options.fault_plan.spot_preemptions.push_back(preemption);
    core::StudyManager manager(options);

    core::StudySpec urgent;
    urgent.name = "urgent";
    urgent.deadline = kDeadline;
    urgent.node_class = "premium";  // prefers the fast-to-free spot block
    urgent.seed = 100 + r;
    manager.add_study(urgent, bench::renoise(model, urgent_base, 100 + r), [&, r] {
      return bench::make_bench_policy("pop", 100 + r);
    });

    core::StudySpec batch;
    batch.name = "batch";
    batch.seed = 200 + r;
    manager.add_study(batch, bench::renoise(model, batch_base, 200 + r), [&, r] {
      return bench::make_bench_policy("pop", 200 + r);
    });

    core::StudySpec quick;
    quick.name = "quick";
    quick.policy = "default";
    quick.target = kQuickTarget;
    quick.seed = 300 + r;
    auto quick_trace = bench::renoise(model, quick_base, 300 + r);
    quick_trace.target_performance = kQuickTarget;
    manager.add_study(quick, std::move(quick_trace), [&, r] {
      return bench::make_bench_policy("default", 300 + r);
    });

    auto result = manager.run();
    auto aggregate = result.aggregate();
    outcomes[cell.linear] = std::move(result);
    return aggregate;
  };

  const auto table = bench::run_bench_sweep(spec, bench_options);

  std::vector<ArmResult> arms(table.axes[mode_ax].values.size());
  for (const auto& row : table.rows) {
    const auto& multi = outcomes[row.cell.linear];
    ArmResult& arm = arms[row.cell.at(mode_ax)];
    ++arm.runs;
    arm.spend_usd += multi.spend_usd;
    util::SimTime makespan = util::SimTime::zero();
    for (const auto& study : multi.studies) {
      if (study.result.reached_target) {
        ++arm.targets_reached;
        if (study.result.time_to_target > makespan) {
          makespan = study.result.time_to_target;
        }
      }
      if (study.spec.name == "urgent") {
        if (study.deadline_met) ++arm.deadlines_met;
        arm.urgent_minutes += study.result.reached_target
                                  ? study.result.time_to_target.to_minutes()
                                  : study.spec.tmax.to_minutes();
      }
    }
    arm.makespan_minutes += makespan.to_minutes();
  }

  std::printf("  urgent-study deadline: %.0f min; %zu repeats per mode\n\n",
              kDeadline.to_minutes(), arms[0].runs);
  std::printf("  %-10s %14s %13s %14s %11s %12s\n", "mode", "deadlines-met",
              "urgent[min]", "makespan[min]", "spend[$]", "$/target");
  for (std::size_t m = 0; m < arms.size(); ++m) {
    const ArmResult& arm = arms[m];
    const double n = static_cast<double>(arm.runs);
    const double per_target =
        arm.targets_reached > 0
            ? arm.spend_usd / static_cast<double>(arm.targets_reached)
            : 0.0;
    std::printf("  %-10s %8zu/%-5zu %13.1f %14.1f %11.2f %12.2f\n",
                table.axes[mode_ax].values[m].c_str(), arm.deadlines_met, arm.runs,
                arm.urgent_minutes / n, arm.makespan_minutes / n, arm.spend_usd / n,
                per_target);
  }

  const ArmResult& deadline = arms[2];
  const ArmResult& cost = arms[3];
  const double deadline_spend = deadline.spend_usd / static_cast<double>(deadline.runs);
  const double cost_spend = cost.spend_usd / static_cast<double>(cost.runs);
  const bool no_fewer_deadlines = cost.deadlines_met >= deadline.deadlines_met;
  const bool measurably_cheaper = cost_spend <= 0.95 * deadline_spend;
  std::printf(
      "\n  Cost vs deadline arbitration: %zu vs %zu deadlines met (%s), mean spend\n"
      "  $%.2f vs $%.2f (%s). Both arms boost the urgent study the same way; the\n"
      "  cost arm additionally caps every tenant at its runnable-job count, and\n"
      "  the autoscaler sheds the surplus — the $3/hr premium nodes first.\n",
      cost.deadlines_met, deadline.deadlines_met,
      no_fewer_deadlines ? "no fewer" : "FEWER",
      cost_spend, deadline_spend,
      measurably_cheaper ? "measurably cheaper" : "NOT measurably cheaper");

  bench::BenchJson json("ext_elastic");
  json.set("deadline_spend_usd", deadline_spend);
  json.set("cost_spend_usd", cost_spend);
  json.set("spend_ratio", deadline_spend > 0.0 ? cost_spend / deadline_spend : 0.0);
  json.set_count("deadline_deadlines_met", deadline.deadlines_met);
  json.set_count("cost_deadlines_met", cost.deadlines_met);
  json.set_count("repeats", arms[0].runs);
  json.set_count("smoke", bench_options.smoke ? 1 : 0);
  json.write_file(bench_options.out.empty() ? "BENCH_elastic.json" : bench_options.out);

  // The property is statistical: enforce it on the full 20-repeat run only
  // (the 2-repeat --smoke pass just exercises the machinery end to end).
  if (!bench_options.smoke && (!no_fewer_deadlines || !measurably_cheaper)) {
    std::fprintf(stderr, "ext_elastic: headline property violated\n");
    return 1;
  }
  return 0;
}
