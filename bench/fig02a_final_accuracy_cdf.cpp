// Figure 2a: CDF of final validation accuracy across 90 randomly selected
// CIFAR-10 configurations. The paper's red-circle annotation: 32% of
// configurations are at or below the 10% random-guess accuracy.
#include "bench_common.hpp"

using namespace hyperdrive;

int main() {
  bench::print_header("Figure 2a", "final-accuracy CDF of 90 random CIFAR-10 configs");

  workload::CifarWorkloadModel model;
  const auto trace = workload::generate_trace(model, 90, /*seed=*/90210);

  std::vector<double> finals;
  for (const auto& job : trace.jobs) finals.push_back(job.curve.final_perf());
  const util::Ecdf ecdf(finals);

  std::printf("final_accuracy  cdf\n");
  for (double x = 0.05; x <= 0.85 + 1e-9; x += 0.05) {
    std::printf("      %.2f      %.3f\n", x, ecdf.eval(x));
  }

  const double at_random = ecdf.eval(0.105);
  std::printf("\nfraction at/below random accuracy (10%%): %.1f%% (paper: 32%%)\n",
              100.0 * at_random);
  std::printf("fraction above 75%%: %.1f%%\n", 100.0 * (1.0 - ecdf.eval(0.75)));
  return 0;
}
