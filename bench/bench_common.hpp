// Shared helpers for the figure-reproduction benches. Each bench binary
// regenerates the data behind one figure/table of the paper and prints it as
// labelled text series (the repository's equivalent of the plots).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment_runner.hpp"
#include "util/stats.hpp"
#include "workload/cifar_model.hpp"
#include "workload/lunar_model.hpp"
#include "workload/trace.hpp"

namespace hyperdrive::bench {

inline void print_header(const std::string& id, const std::string& what) {
  std::printf("\n=============================================================\n");
  std::printf("%s — %s\n", id.c_str(), what.c_str());
  std::printf("=============================================================\n");
}

/// Generate a trace and re-seed until the target is reachable (the paper's
/// experiments always contain at least one satisfying configuration).
inline workload::Trace reachable_trace(const workload::WorkloadModel& model,
                                       std::size_t configs, std::uint64_t seed) {
  auto trace = workload::generate_trace(model, configs, seed);
  while (!trace.target_reachable()) {
    trace = workload::generate_trace(model, configs, ++seed);
  }
  return trace;
}

/// Position (0-based) of the first job whose curve reaches the target, or
/// the job count if none does.
inline std::size_t first_winner_index(const workload::Trace& trace) {
  for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
    if (trace.jobs[i].curve.first_epoch_reaching(trace.target_performance) != 0) return i;
  }
  return trace.jobs.size();
}

/// A trace suitable for time-to-target studies: the target is reachable with
/// some margin (so per-repeat noise cannot erase it) and no winner sits in
/// the very first scheduling wave (which would make every policy trivially
/// tie). Mirrors §6.1: one hyperparameter set is drawn once and reused.
inline workload::Trace suitable_trace(const workload::WorkloadModel& model,
                                      std::size_t configs, std::uint64_t seed,
                                      std::size_t machines) {
  for (;; ++seed) {
    auto trace = workload::generate_trace(model, configs, seed);
    if (!trace.target_reachable()) continue;
    if (first_winner_index(trace) < machines) continue;
    double best = 0.0;
    for (const auto& job : trace.jobs) best = std::max(best, job.curve.best_perf());
    if (best < trace.target_performance + 0.01) continue;
    return trace;
  }
}

/// The paper repeats each experiment with the same hyperparameter set and
/// fresh training noise (§6.1 Non-Determinism). This re-realizes every job's
/// curve under a new experiment seed while keeping the configurations (and
/// hence their intrinsic quality and epoch durations) fixed.
inline workload::Trace renoise(const workload::WorkloadModel& model,
                               const workload::Trace& base,
                               std::uint64_t experiment_seed) {
  workload::Trace out = base;
  for (auto& job : out.jobs) {
    job.curve = model.realize(job.config, experiment_seed);
  }
  return out;
}

/// Standard policy spec for one of the four evaluated policies, with the
/// fast LSQ predictor (the full-MCMC predictor is measured separately by
/// bench_mcmc_samples).
inline core::PolicySpec policy_spec(core::PolicyKind kind, std::uint64_t seed,
                                    util::SimTime tmax = util::SimTime::hours(48)) {
  core::PolicySpec spec;
  spec.kind = kind;
  const auto predictor = core::make_default_predictor(seed);
  spec.earlyterm.predictor = predictor;
  spec.pop.predictor = predictor;
  spec.pop.tmax = tmax;
  return spec;
}

inline const std::vector<core::PolicyKind>& evaluated_policies() {
  static const std::vector<core::PolicyKind> kinds = {
      core::PolicyKind::Pop, core::PolicyKind::Bandit, core::PolicyKind::EarlyTerm};
  return kinds;
}

inline const std::vector<core::PolicyKind>& all_policies() {
  static const std::vector<core::PolicyKind> kinds = {
      core::PolicyKind::Pop, core::PolicyKind::Bandit, core::PolicyKind::EarlyTerm,
      core::PolicyKind::Default};
  return kinds;
}

/// Print a five-number box-plot summary line (what Fig. 7 / Fig. 9 plot).
inline void print_box(const std::string& label, const std::vector<double>& xs,
                      const std::string& unit) {
  const auto b = util::box_stats(xs);
  std::printf("  %-10s min=%7.1f q1=%7.1f med=%7.1f q3=%7.1f max=%7.1f mean=%7.1f %s\n",
              label.c_str(), b.min, b.q1, b.median, b.q3, b.max, b.mean, unit.c_str());
}

/// Print an ECDF as fixed quantiles.
inline void print_ecdf(const std::string& label, const std::vector<double>& xs,
                       const std::string& unit) {
  if (xs.empty()) {
    std::printf("  %-10s (no samples)\n", label.c_str());
    return;
  }
  const util::Ecdf ecdf(xs);
  std::printf("  %-10s", label.c_str());
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1.0}) {
    std::printf(" p%-3.0f=%-8.2f", q * 100, ecdf.quantile(q));
  }
  std::printf("[%s]\n", unit.c_str());
}

}  // namespace hyperdrive::bench
