// Shared helpers for the figure-reproduction benches. Each bench binary
// regenerates the data behind one figure/table of the paper and prints it as
// labelled text series (the repository's equivalent of the plots). Every
// repeated experiment grid runs through the SweepEngine (src/core), so all
// benches accept:
//   --jobs N      sweep worker threads (default: hardware concurrency)
//   --csv PATH    write the SweepTable as CSV (EXPERIMENTS.md schema)
//   --smoke       tiny-repeat run for the bench_smoke CTest label
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/experiment_runner.hpp"
#include "core/policy_registry.hpp"
#include "core/sweep_engine.hpp"
#include "util/stats.hpp"
#include "workload/cifar_model.hpp"
#include "workload/lunar_model.hpp"
#include "workload/trace.hpp"
#include "workload/trace_tools.hpp"

namespace hyperdrive::bench {

// Trace helpers live in src/workload (library code with unit tests);
// re-exported here so the bench sources read naturally.
using workload::first_winner_index;
using workload::reachable_trace;
using workload::renoise;
using workload::suitable_trace;

/// Fresh policy instance by registry name with the standard fast-LSQ
/// predictor wiring (core::make_standard_policy; DESIGN.md §13).
inline std::unique_ptr<core::SchedulingPolicy> make_bench_policy(
    const std::string& name, std::uint64_t seed,
    util::SimTime tmax = util::SimTime::hours(48)) {
  return core::make_standard_policy(name, seed, tmax);
}

inline const std::vector<std::string>& evaluated_policies() {
  static const std::vector<std::string> names = {"pop", "bandit", "earlyterm"};
  return names;
}

inline const std::vector<std::string>& all_policies() {
  static const std::vector<std::string> names = {"pop", "bandit", "earlyterm",
                                                 "default"};
  return names;
}

/// Common bench command line (see header comment).
struct BenchOptions {
  std::size_t jobs = 0;  ///< sweep threads; 0 = hardware concurrency
  std::string csv;       ///< write the sweep table here when non-empty
  std::string out;       ///< perf_* benches: override the BENCH_*.json path
  bool smoke = false;    ///< CTest smoke mode: shrink repeat counts

  /// Repeats to run: the figure's count, or at most 2 under --smoke.
  [[nodiscard]] std::size_t repeats(std::size_t figure_repeats) const {
    return smoke && figure_repeats > 2 ? 2 : figure_repeats;
  }
};

inline BenchOptions parse_bench_args(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--jobs") {
      options.jobs = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--csv") {
      options.csv = next();
    } else if (arg == "--out") {
      options.out = next();
    } else if (arg == "--smoke") {
      options.smoke = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("bench options: [--jobs N] [--csv PATH] [--out PATH] [--smoke]\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown bench option: %s (try --help)\n", arg.c_str());
      std::exit(2);
    }
  }
  return options;
}

/// Run the sweep on the requested worker count, print the engine timing
/// line, and honor --csv. Every bench's grid goes through here.
inline core::SweepTable run_bench_sweep(const core::SweepSpec& spec,
                                        const BenchOptions& options) {
  auto table = core::run_sweep(spec, options.jobs);
  std::printf("[sweep] %s: %zu cells on %zu threads in %.2f s\n", table.name.c_str(),
              table.rows.size(), table.threads, table.wall_seconds);
  if (!options.csv.empty()) {
    table.save_csv_file(options.csv);
    std::printf("[sweep] table written to %s\n", options.csv.c_str());
  }
  return table;
}

inline void print_header(const std::string& id, const std::string& what) {
  std::printf("\n=============================================================\n");
  std::printf("%s — %s\n", id.c_str(), what.c_str());
  std::printf("=============================================================\n");
}

/// Print a five-number box-plot summary line (what Fig. 7 / Fig. 9 plot).
inline void print_box(const std::string& label, const std::vector<double>& xs,
                      const std::string& unit) {
  const auto b = util::box_stats(xs);
  std::printf("  %-10s min=%7.1f q1=%7.1f med=%7.1f q3=%7.1f max=%7.1f mean=%7.1f %s\n",
              label.c_str(), b.min, b.q1, b.median, b.q3, b.max, b.mean, unit.c_str());
}

/// Print an ECDF as fixed quantiles.
inline void print_ecdf(const std::string& label, const std::vector<double>& xs,
                       const std::string& unit) {
  if (xs.empty()) {
    std::printf("  %-10s (no samples)\n", label.c_str());
    return;
  }
  const util::Ecdf ecdf(xs);
  std::printf("  %-10s", label.c_str());
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1.0}) {
    std::printf(" p%-3.0f=%-8.2f", q * 100, ecdf.quantile(q));
  }
  std::printf("[%s]\n", unit.c_str());
}

}  // namespace hyperdrive::bench
