// Ablation bench: isolates the design choices the paper argues for in §2.
//
//   1. dynamic p_thred vs static thresholds {0.2, 0.5, 0.8}   (§2.2c)
//   2. learning-curve predictor vs instantaneous last-value   (§2.2a)
//   3. with vs without the domain-knowledge kill rule         (§2.1)
//   4. with vs without opportunistic suspend/rotate           (§3.2 / §4)
//
// Each variant reports mean time-to-target over the same repeated CIFAR-10
// experiments (trace-driven simulator, 4 machines).
#include "bench_common.hpp"

#include "core/policies/pop_policy.hpp"
#include "sim/trace_replay.hpp"

using namespace hyperdrive;

namespace {

struct AblResult {
  double mean_minutes = 0.0;
  double mean_predictions = 0.0;
};

AblResult mean_time_to_target(const workload::CifarWorkloadModel& model,
                              const std::function<core::PopConfig(std::uint64_t)>& make_config) {
  AblResult out;
  constexpr int kRepeats = 5;
  for (std::uint64_t r = 0; r < kRepeats; ++r) {
    const auto trace = bench::suitable_trace(model, 100, 1500 + r * 41, 25);
    core::PopPolicy policy(make_config(r));
    sim::ReplayOptions options;
    options.machines = 4;
    options.max_experiment_time = util::SimTime::hours(200);
    const auto result = sim::replay_experiment(trace, policy, options);
    out.mean_minutes += result.reached_target ? result.time_to_target.to_minutes()
                                              : result.total_time.to_minutes();
    out.mean_predictions += static_cast<double>(policy.predictions_made());
  }
  out.mean_minutes /= kRepeats;
  out.mean_predictions /= kRepeats;
  return out;
}

core::PopConfig base_config(std::uint64_t seed) {
  core::PopConfig config;
  config.tmax = util::SimTime::hours(48);
  config.predictor = core::make_default_predictor(seed);
  return config;
}

}  // namespace

int main() {
  bench::print_header("Ablations", "POP design choices (CIFAR-10, 4 machines, 5 repeats)");

  workload::CifarWorkloadModel model;

  const auto full = mean_time_to_target(model, base_config);
  std::printf("  %-38s %8.1f min            (baseline, %.0f predictions)\n",
              "POP (dynamic threshold, full)", full.mean_minutes, full.mean_predictions);

  auto report = [&](const std::string& label, const AblResult& r) {
    std::printf("  %-38s %8.1f min (%+6.1f%%) (%.0f predictions)\n", label.c_str(),
                r.mean_minutes, 100.0 * (r.mean_minutes - full.mean_minutes) / full.mean_minutes,
                r.mean_predictions);
  };

  for (const double thr : {0.2, 0.5, 0.8}) {
    report("static p_thred = " + std::to_string(thr).substr(0, 3),
           mean_time_to_target(model, [&](std::uint64_t seed) {
             auto config = base_config(seed);
             config.static_threshold = thr;
             return config;
           }));
  }

  report("instantaneous (last-value) predictor",
         mean_time_to_target(model, [&](std::uint64_t seed) {
           auto config = base_config(seed);
           curve::PredictorConfig pc;
           pc.seed = seed;
           config.predictor = std::shared_ptr<const curve::CurvePredictor>(
               curve::make_last_value_predictor(pc));
           return config;
         }));

  report("no kill-threshold domain knowledge",
         mean_time_to_target(model, [&](std::uint64_t seed) {
           auto config = base_config(seed);
           config.use_kill_threshold = false;
           return config;
         }));

  report("no opportunistic rotation (no suspend)",
         mean_time_to_target(model, [&](std::uint64_t seed) {
           auto config = base_config(seed);
           config.rotate_opportunistic = false;
           return config;
         }));

  std::printf("\n(positive %% = slower than full POP; each §2 design choice should cost\n"
              " time when removed)\n");
  return 0;
}
