// Ablation bench: isolates the design choices the paper argues for in §2.
//
//   1. dynamic p_thred vs static thresholds {0.2, 0.5, 0.8}   (§2.2c)
//   2. learning-curve predictor vs instantaneous last-value   (§2.2a)
//   3. with vs without the domain-knowledge kill rule         (§2.1)
//   4. with vs without opportunistic suspend/rotate           (§3.2 / §4)
//
// Each variant reports mean time-to-target over the same repeated CIFAR-10
// experiments (trace-driven simulator, 4 machines).
#include "bench_common.hpp"

#include "core/policies/pop_policy.hpp"

using namespace hyperdrive;

namespace {

core::PopConfig base_config(std::uint64_t seed) {
  core::PopConfig config;
  config.tmax = util::SimTime::hours(48);
  config.predictor = core::make_default_predictor(seed);
  return config;
}

struct Variant {
  std::string label;
  std::function<core::PopConfig(std::uint64_t)> make_config;
};

}  // namespace

int main(int argc, char** argv) {
  const auto bench_options = bench::parse_bench_args(argc, argv);
  bench::print_header("Ablations", "POP design choices (CIFAR-10, 4 machines, 5 repeats)");

  workload::CifarWorkloadModel model;

  std::vector<Variant> variants;
  variants.push_back({"POP (dynamic threshold, full)", base_config});
  for (const double thr : {0.2, 0.5, 0.8}) {
    variants.push_back({"static p_thred = " + std::to_string(thr).substr(0, 3),
                        [thr](std::uint64_t seed) {
                          auto config = base_config(seed);
                          config.static_threshold = thr;
                          return config;
                        }});
  }
  variants.push_back({"instantaneous (last-value) predictor", [](std::uint64_t seed) {
                        auto config = base_config(seed);
                        curve::PredictorConfig pc;
                        pc.seed = seed;
                        config.predictor = std::shared_ptr<const curve::CurvePredictor>(
                            curve::make_last_value_predictor(pc));
                        return config;
                      }});
  variants.push_back({"no kill-threshold domain knowledge", [](std::uint64_t seed) {
                        auto config = base_config(seed);
                        config.use_kill_threshold = false;
                        return config;
                      }});
  variants.push_back({"no opportunistic rotation (no suspend)", [](std::uint64_t seed) {
                        auto config = base_config(seed);
                        config.rotate_opportunistic = false;
                        return config;
                      }});

  core::SweepSpec spec;
  spec.name = "abl_design_choices";
  std::vector<std::string> variant_labels;
  for (const auto& v : variants) variant_labels.push_back(v.label);
  const auto variant_ax = spec.add_axis("variant", variant_labels);
  const auto repeat_ax = spec.add_repeat_axis(bench_options.repeats(5));
  spec.trace = [&](const core::SweepCell& cell) {
    return bench::suitable_trace(model, 100, 1500 + cell.at(repeat_ax) * 41, 25);
  };
  spec.policy = [&](const core::SweepCell& cell) {
    return std::make_unique<core::PopPolicy>(
        variants[cell.at(variant_ax)].make_config(cell.at(repeat_ax)));
  };
  spec.options = [&](const core::SweepCell&) {
    core::RunnerOptions options;
    options.substrate = core::Substrate::TraceReplay;
    options.machines = 4;
    options.max_experiment_time = util::SimTime::hours(200);
    return options;
  };
  spec.extra_columns = {"predictions"};
  spec.collect = [](const core::SweepCell&, const core::SchedulingPolicy& policy,
                    const core::ExperimentResult&) {
    const auto& pop = dynamic_cast<const core::PopPolicy&>(policy);
    return std::vector<double>{static_cast<double>(pop.predictions_made())};
  };

  const auto table = bench::run_bench_sweep(spec, bench_options);

  const auto mean_of = [&](const std::string& label) {
    const auto rows = table.where("variant", label);
    double minutes = 0.0, predictions = 0.0;
    for (const auto* row : rows) {
      minutes += row->minutes_to_target();
      predictions += row->extra.at(table.extra_column("predictions"));
    }
    const double n = static_cast<double>(rows.size());
    return std::pair<double, double>{minutes / n, predictions / n};
  };

  const auto [full_minutes, full_predictions] = mean_of(variants[0].label);
  std::printf("  %-38s %8.1f min            (baseline, %.0f predictions)\n",
              variants[0].label.c_str(), full_minutes, full_predictions);
  for (std::size_t v = 1; v < variants.size(); ++v) {
    const auto [minutes, predictions] = mean_of(variants[v].label);
    std::printf("  %-38s %8.1f min (%+6.1f%%) (%.0f predictions)\n",
                variants[v].label.c_str(), minutes,
                100.0 * (minutes - full_minutes) / full_minutes, predictions);
  }

  std::printf("\n(positive %% = slower than full POP; each §2 design choice should cost\n"
              " time when removed)\n");
  return 0;
}
