// Figure 12b: sensitivity to resource capacity — time to the 77% CIFAR-10
// target under 5 / 10 / 15 / 25 machines for all four policies, via the
// trace-driven simulator. Paper: everyone improves with more machines, POP
// is always best, and its margin grows with capacity.
#include "bench_common.hpp"

using namespace hyperdrive;

int main(int argc, char** argv) {
  const auto bench_options = bench::parse_bench_args(argc, argv);
  bench::print_header("Figure 12b", "time to target vs machine count (CIFAR-10, simulator)");

  workload::CifarWorkloadModel model;
  const std::vector<std::size_t> capacities = {5, 10, 15, 25};

  core::SweepSpec spec;
  spec.name = "fig12b_resource_capacity";
  std::vector<std::string> capacity_labels;
  for (const std::size_t m : capacities) capacity_labels.push_back(std::to_string(m));
  const auto machines_ax = spec.add_axis("machines", capacity_labels);
  const auto policy_ax = spec.add_policy_axis(bench::all_policies());
  const auto repeat_ax = spec.add_repeat_axis(bench_options.repeats(5));
  spec.trace = [&](const core::SweepCell& cell) {
    // Winner outside the first wave at every tested capacity, so the
    // policies' scanning efficiency (not first-batch luck) is measured.
    return bench::suitable_trace(model, 100, 1200 + cell.at(repeat_ax) * 37, 25);
  };
  spec.policy = [&](const core::SweepCell& cell) {
    return bench::make_bench_policy(bench::all_policies()[cell.at(policy_ax)],
                                    cell.at(repeat_ax));
  };
  spec.options = [&](const core::SweepCell& cell) {
    core::RunnerOptions options;
    options.substrate = core::Substrate::TraceReplay;
    options.machines = capacities[cell.at(machines_ax)];
    options.max_experiment_time = util::SimTime::hours(200);
    return options;
  };

  const auto table = bench::run_bench_sweep(spec, bench_options);

  std::printf("machines |");
  for (const auto& label : bench::all_policies()) {
    std::printf(" %10s", label.c_str());
  }
  std::printf("   (mean minutes to target)\n");

  for (const auto& capacity : capacity_labels) {
    std::printf("%8s |", capacity.c_str());
    double pop_mean = 0.0;
    std::vector<double> others;
    for (const auto& label : bench::all_policies()) {
      std::vector<double> minutes;
      for (const auto* row : table.where("machines", capacity)) {
        if (table.label(*row, "policy") == label) minutes.push_back(row->minutes_to_target());
      }
      const double mean = util::mean(minutes);
      if (label == "pop") pop_mean = mean; else others.push_back(mean);
      std::printf(" %10.1f", mean);
    }
    std::printf("   pop lead over 2nd-best %.2fx\n", util::min_of(others) / pop_mean);
  }
  return 0;
}
