// Figure 12b: sensitivity to resource capacity — time to the 77% CIFAR-10
// target under 5 / 10 / 15 / 25 machines for all four policies, via the
// trace-driven simulator. Paper: everyone improves with more machines, POP
// is always best, and its margin grows with capacity.
#include "bench_common.hpp"

using namespace hyperdrive;

int main() {
  bench::print_header("Figure 12b", "time to target vs machine count (CIFAR-10, simulator)");

  workload::CifarWorkloadModel model;
  const std::vector<std::size_t> capacities = {5, 10, 15, 25};
  constexpr int kRepeats = 5;

  std::printf("machines |");
  for (const auto kind : bench::all_policies()) {
    std::printf(" %10s", std::string(core::to_string(kind)).c_str());
  }
  std::printf("   (mean minutes to target)\n");

  for (const std::size_t machines : capacities) {
    std::printf("%8zu |", machines);
    std::vector<double> row;
    for (const auto kind : bench::all_policies()) {
      double total = 0.0;
      for (std::uint64_t r = 0; r < kRepeats; ++r) {
        // Winner outside the first wave at every tested capacity, so the
        // policies' scanning efficiency (not first-batch luck) is measured.
        const auto trace = bench::suitable_trace(model, 100, 1200 + r * 37, 25);
        core::RunnerOptions options;
        options.substrate = core::Substrate::TraceReplay;
        options.machines = machines;
        options.max_experiment_time = util::SimTime::hours(200);
        const auto result =
            core::run_experiment(trace, bench::policy_spec(kind, r), options);
        total += result.reached_target ? result.time_to_target.to_minutes()
                                       : result.total_time.to_minutes();
      }
      row.push_back(total / kRepeats);
      std::printf(" %10.1f", total / kRepeats);
    }
    const double margin = row[1] / row[0];  // bandit / pop
    std::printf("   pop lead over 2nd-best %.2fx\n", std::min({row[1], row[2], row[3]}) / row[0]);
    (void)margin;
  }
  return 0;
}
