// Figure 1: validation accuracy of 50 randomly selected CIFAR-10
// configurations as a function of training iterations. The paper's headline
// observations: only ~3 of 50 exceed 75% accuracy, the majority never escape
// ~20%, and each configuration needs ~120 iterations of ~1 minute.
#include "bench_common.hpp"

using namespace hyperdrive;

int main() {
  bench::print_header("Figure 1", "50 random CIFAR-10 configurations, accuracy vs epoch");

  workload::CifarWorkloadModel model;
  const auto trace = workload::generate_trace(model, 50, /*seed=*/20170907);

  std::printf("config |");
  for (std::size_t e = 10; e <= 120; e += 10) std::printf(" e%-4zu", e);
  std::printf("| final  best\n");

  std::size_t over75 = 0, under20 = 0;
  double total_minutes = 0.0;
  for (const auto& job : trace.jobs) {
    std::printf("%6llu |", static_cast<unsigned long long>(job.job_id));
    for (std::size_t e = 10; e <= 120; e += 10) {
      std::printf(" %.3f", job.curve.perf.at(e - 1));
    }
    std::printf("| %.3f %.3f\n", job.curve.final_perf(), job.curve.best_perf());
    if (job.curve.best_perf() > 0.75) ++over75;
    if (job.curve.final_perf() < 0.20) ++under20;
    total_minutes +=
        job.curve.epoch_duration.to_minutes() * static_cast<double>(job.curve.max_epochs());
  }

  std::printf("\nsummary:\n");
  std::printf("  configurations exceeding 75%% accuracy: %zu of 50 (paper: 3 of 50)\n",
              over75);
  std::printf("  configurations never exceeding 20%%:    %zu of 50 (paper: majority)\n",
              under20);
  std::printf("  total compute to explore all 50:       %.1f days (paper: >4 days)\n",
              total_minutes / 60.0 / 24.0);
  return 0;
}
