// Extension bench (§9 "Ongoing Work"): multi-metric exploration of an
// LSTM language model with group-Lasso structural sparsity.
//
// The paper: "exploring lambda values (plus other hyperparameters) while
// monitoring both perplexity and a sparsity-related metric ... significantly
// reduced training times by enabling user-defined global termination
// criteria through HyperDrive's SAP API."
//
// The user goal here: perplexity <= 100 AND sparsity >= 0.5. We compare
//   (a) POP aware of the primary metric only (it still stops when some job
//       happens to satisfy the combined goal), vs
//   (b) POP plus a model-owner rule that kills configurations whose lambda
//       demonstrably cannot deliver the sparsity goal (visible within a few
//       epochs of the sparsity ramp).
#include "bench_common.hpp"

#include <cmath>

#include "core/policies/pop_policy.hpp"
#include "workload/ptb_lstm_model.hpp"

using namespace hyperdrive;

int main(int argc, char** argv) {
  const auto bench_options = bench::parse_bench_args(argc, argv);
  bench::print_header("Extension §9",
                      "LSTM + group-Lasso: perplexity <= 100 AND sparsity >= 0.5");

  workload::PtbLstmWorkloadModel model;
  const double ppl_goal = model.normalize_ppl(100.0);
  constexpr double kSparsityGoal = 0.5;

  // The combined user-defined global termination criterion (§9).
  const core::GlobalStopCriterion combined_goal = [ppl_goal](const core::JobEvent& event) {
    return event.perf >= ppl_goal && !std::isnan(event.secondary) &&
           event.secondary >= kSparsityGoal;
  };

  const std::size_t repeats = bench_options.repeats(5);

  // Candidate sets where the combined goal is achievable, one per repeat.
  // Pre-generated (the achievability search is an open-ended seed scan, so
  // it stays out of the per-cell callbacks).
  std::vector<workload::Trace> traces;
  for (std::uint64_t r = 0; r < repeats; ++r) {
    workload::Trace trace;
    for (std::uint64_t seed = 3000 + r * 59;; ++seed) {
      trace = workload::generate_trace(model, 100, seed);
      bool achievable = false;
      for (const auto& job : trace.jobs) {
        for (std::size_t e = 0; e < job.curve.perf.size(); ++e) {
          if (job.curve.perf[e] >= ppl_goal && job.curve.secondary[e] >= kSparsityGoal) {
            achievable = true;
            break;
          }
        }
        if (achievable) break;
      }
      if (achievable) break;
    }
    traces.push_back(std::move(trace));
  }

  core::SweepSpec spec;
  spec.name = "ext_lstm_sparsity";
  // "plain" = POP steering the primary metric only; "guided" adds the
  // model-owner sparsity rule.
  const auto mode_ax = spec.add_axis("mode", {"plain", "guided"});
  const auto repeat_ax = spec.add_repeat_axis(repeats);
  spec.trace = [&](const core::SweepCell& cell) { return traces[cell.at(repeat_ax)]; };
  spec.policy = [&](const core::SweepCell& cell) {
    core::PopConfig config;
    config.tmax = util::SimTime::hours(96);
    config.predictor = core::make_default_predictor(cell.at(repeat_ax));
    // POP steers the primary metric toward the perplexity goal.
    config.target = ppl_goal;
    if (cell.at(mode_ax) == 1) {
      // Model-owner rule: after 10 epochs the sparsity ramp is well under
      // way; a job below 40% of the goal will not catch up (the ramp's
      // logistic midpoint is at ~6-14 epochs) — kill it.
      config.owner_rule =
          [](const core::JobEvent& event) -> std::optional<core::JobDecision> {
        if (event.epoch >= 10 && !std::isnan(event.secondary) &&
            event.secondary < 0.4 * kSparsityGoal) {
          return core::JobDecision::Terminate;
        }
        return std::nullopt;
      };
    }
    return std::make_unique<core::PopPolicy>(config);
  };
  spec.options = [&](const core::SweepCell&) {
    core::RunnerOptions options;
    options.substrate = core::Substrate::TraceReplay;
    options.machines = 8;
    options.max_experiment_time = util::SimTime::hours(96);
    options.stop_criterion = combined_goal;
    return options;
  };
  spec.extra_columns = {"predictions"};
  spec.collect = [](const core::SweepCell&, const core::SchedulingPolicy& policy,
                    const core::ExperimentResult&) {
    const auto& pop = dynamic_cast<const core::PopPolicy&>(policy);
    return std::vector<double>{static_cast<double>(pop.predictions_made())};
  };

  const auto table = bench::run_bench_sweep(spec, bench_options);

  const auto arm_of = [&](const std::string& mode) {
    double minutes = 0.0;
    std::size_t predictions = 0;
    for (const auto* row : table.where("mode", mode)) {
      minutes += row->minutes_to_target();
      predictions += static_cast<std::size_t>(row->extra.at(0));
    }
    return std::pair<double, std::size_t>{minutes, predictions};
  };

  const auto [plain_total, plain_preds] = arm_of("plain");
  const auto [guided_total, guided_preds] = arm_of("guided");
  std::printf("  POP, perplexity-only view:        %8.1f min avg  (%zu predictions)\n",
              plain_total / static_cast<double>(repeats), plain_preds / repeats);
  std::printf("  POP + sparsity owner rule:        %8.1f min avg  (%zu predictions)\n",
              guided_total / static_cast<double>(repeats), guided_preds / repeats);
  std::printf("  speedup from the model-owner rule: %.2fx (paper: 'significantly "
              "reduced training times')\n",
              plain_total / guided_total);
  return 0;
}
