// Extension bench (§9 "Ongoing Work"): multi-metric exploration of an
// LSTM language model with group-Lasso structural sparsity.
//
// The paper: "exploring lambda values (plus other hyperparameters) while
// monitoring both perplexity and a sparsity-related metric ... significantly
// reduced training times by enabling user-defined global termination
// criteria through HyperDrive's SAP API."
//
// The user goal here: perplexity <= 100 AND sparsity >= 0.5. We compare
//   (a) POP aware of the primary metric only (it still stops when some job
//       happens to satisfy the combined goal), vs
//   (b) POP plus a model-owner rule that kills configurations whose lambda
//       demonstrably cannot deliver the sparsity goal (visible within a few
//       epochs of the sparsity ramp).
#include "bench_common.hpp"

#include <cmath>

#include "core/policies/pop_policy.hpp"
#include "sim/trace_replay.hpp"
#include "workload/ptb_lstm_model.hpp"

using namespace hyperdrive;

int main() {
  bench::print_header("Extension §9",
                      "LSTM + group-Lasso: perplexity <= 100 AND sparsity >= 0.5");

  workload::PtbLstmWorkloadModel model;
  const double ppl_goal = model.normalize_ppl(100.0);
  constexpr double kSparsityGoal = 0.5;

  // The combined user-defined global termination criterion (§9).
  const core::GlobalStopCriterion combined_goal = [&](const core::JobEvent& event) {
    return event.perf >= ppl_goal && !std::isnan(event.secondary) &&
           event.secondary >= kSparsityGoal;
  };

  double plain_total = 0.0, guided_total = 0.0;
  std::size_t plain_preds = 0, guided_preds = 0;
  constexpr int kRepeats = 5;
  int measured = 0;

  for (std::uint64_t r = 0; r < kRepeats; ++r) {
    // A candidate set where the combined goal is achievable.
    workload::Trace trace;
    for (std::uint64_t seed = 3000 + r * 59;; ++seed) {
      trace = workload::generate_trace(model, 100, seed);
      bool achievable = false;
      for (const auto& job : trace.jobs) {
        for (std::size_t e = 0; e < job.curve.perf.size(); ++e) {
          if (job.curve.perf[e] >= ppl_goal && job.curve.secondary[e] >= kSparsityGoal) {
            achievable = true;
            break;
          }
        }
        if (achievable) break;
      }
      if (achievable) break;
    }

    for (const bool use_owner_rule : {false, true}) {
      core::PopConfig config;
      config.tmax = util::SimTime::hours(96);
      config.predictor = core::make_default_predictor(r);
      // POP steers the primary metric toward the perplexity goal.
      config.target = ppl_goal;
      if (use_owner_rule) {
        // Model-owner rule: after 10 epochs the sparsity ramp is well under
        // way; a job below 40% of the goal will not catch up (the ramp's
        // logistic midpoint is at ~6-14 epochs) — kill it.
        config.owner_rule =
            [&](const core::JobEvent& event) -> std::optional<core::JobDecision> {
          if (event.epoch >= 10 && !std::isnan(event.secondary) &&
              event.secondary < 0.4 * kSparsityGoal) {
            return core::JobDecision::Terminate;
          }
          return std::nullopt;
        };
      }
      core::PopPolicy policy(config);

      sim::ReplayOptions options;
      options.machines = 8;
      options.max_experiment_time = util::SimTime::hours(96);
      options.stop_criterion = combined_goal;
      const auto result = sim::replay_experiment(trace, policy, options);
      const double minutes = result.reached_target ? result.time_to_target.to_minutes()
                                                   : result.total_time.to_minutes();
      if (use_owner_rule) {
        guided_total += minutes;
        guided_preds += policy.predictions_made();
      } else {
        plain_total += minutes;
        plain_preds += policy.predictions_made();
      }
    }
    ++measured;
  }

  std::printf("  POP, perplexity-only view:        %8.1f min avg  (%zu predictions)\n",
              plain_total / measured, plain_preds / kRepeats);
  std::printf("  POP + sparsity owner rule:        %8.1f min avg  (%zu predictions)\n",
              guided_total / measured, guided_preds / kRepeats);
  std::printf("  speedup from the model-owner rule: %.2fx (paper: 'significantly "
              "reduced training times')\n",
              plain_total / guided_total);
  return 0;
}
