// §6.2.3 (in-text table): CIFAR-10 scheduling overhead under POP.
// Paper: suspend latency avg 157.69 ms (sigma 72 ms, p95 219 ms, max 1.12 s);
// snapshot size avg 357.67 KB (sigma 122.46 KB, p95 685.26 KB, max 686.06 KB);
// overheads have negligible impact on end-to-end performance.
#include "bench_common.hpp"

using namespace hyperdrive;

int main(int argc, char** argv) {
  const auto bench_options = bench::parse_bench_args(argc, argv);
  bench::print_header("Table §6.2.3", "CIFAR-10 suspend/resume overhead under POP");

  workload::CifarWorkloadModel model;

  core::SweepSpec spec;
  spec.name = "tab_overhead_cifar";
  // "real" runs the default overhead model; "zero" the same experiments with
  // free suspends, to quantify the end-to-end cost.
  const auto overheads_ax = spec.add_axis("overheads", {"real", "zero"});
  const auto repeat_ax = spec.add_repeat_axis(bench_options.repeats(10));
  spec.trace = [&](const core::SweepCell& cell) {
    return bench::reachable_trace(model, 100, 800 + cell.at(repeat_ax) * 19);
  };
  spec.policy = [&](const core::SweepCell& cell) {
    return bench::make_bench_policy("pop", cell.at(repeat_ax));
  };
  spec.options = [&](const core::SweepCell& cell) {
    core::RunnerOptions options;
    options.machines = 4;
    options.substrate = core::Substrate::Cluster;
    options.seed = cell.at(repeat_ax);
    options.max_experiment_time = util::SimTime::hours(96);
    if (cell.at(overheads_ax) == 1) options.overheads = cluster::zero_overhead_model();
    return options;
  };

  const auto table = bench::run_bench_sweep(spec, bench_options);

  std::vector<double> latencies_ms, sizes_kb;
  double with_overhead_min = 0.0, without_overhead_min = 0.0;
  for (const auto& row : table.rows) {
    if (table.label(row, "overheads") == "real") {
      for (const auto& s : row.result.suspend_samples) {
        latencies_ms.push_back(s.latency.to_milliseconds());
        sizes_kb.push_back(s.snapshot_bytes / 1e3);
      }
      with_overhead_min += row.result.time_to_target.to_minutes();
    } else {
      without_overhead_min += row.result.time_to_target.to_minutes();
    }
  }

  if (latencies_ms.empty()) {
    std::printf("no suspends occurred\n");
    return 1;
  }
  std::printf("suspend latency: avg=%.2f ms sigma=%.2f p95=%.2f max=%.2f "
              "(paper: 157.69 / 72 / 219 / 1120)\n",
              util::mean(latencies_ms), util::stddev(latencies_ms),
              util::percentile(latencies_ms, 95), util::max_of(latencies_ms));
  std::printf("snapshot size:   avg=%.2f KB sigma=%.2f p95=%.2f max=%.2f "
              "(paper: 357.67 / 122.46 / 685.26 / 686.06)\n",
              util::mean(sizes_kb), util::stddev(sizes_kb), util::percentile(sizes_kb, 95),
              util::max_of(sizes_kb));
  std::printf("suspend events observed: %zu\n", latencies_ms.size());
  const double slowdown =
      without_overhead_min > 0 ? (with_overhead_min / without_overhead_min - 1.0) * 100.0
                               : 0.0;
  std::printf("end-to-end cost of overheads: %.2f%% (paper: negligible)\n", slowdown);
  return 0;
}
