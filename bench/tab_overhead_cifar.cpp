// §6.2.3 (in-text table): CIFAR-10 scheduling overhead under POP.
// Paper: suspend latency avg 157.69 ms (sigma 72 ms, p95 219 ms, max 1.12 s);
// snapshot size avg 357.67 KB (sigma 122.46 KB, p95 685.26 KB, max 686.06 KB);
// overheads have negligible impact on end-to-end performance.
#include "bench_common.hpp"

using namespace hyperdrive;

int main() {
  bench::print_header("Table §6.2.3", "CIFAR-10 suspend/resume overhead under POP");

  workload::CifarWorkloadModel model;
  std::vector<double> latencies_ms, sizes_kb;
  double with_overhead_min = 0.0, without_overhead_min = 0.0;

  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto trace = bench::reachable_trace(model, 100, 800 + seed * 19);
    core::RunnerOptions options;
    options.machines = 4;
    options.substrate = core::Substrate::Cluster;
    options.seed = seed;
    options.max_experiment_time = util::SimTime::hours(96);

    const auto result = core::run_experiment(
        trace, bench::policy_spec(core::PolicyKind::Pop, seed), options);
    for (const auto& s : result.suspend_samples) {
      latencies_ms.push_back(s.latency.to_milliseconds());
      sizes_kb.push_back(s.snapshot_bytes / 1e3);
    }
    with_overhead_min += result.time_to_target.to_minutes();

    // Same experiment with free suspends, to quantify the end-to-end cost.
    options.overheads = cluster::zero_overhead_model();
    const auto ideal = core::run_experiment(
        trace, bench::policy_spec(core::PolicyKind::Pop, seed), options);
    without_overhead_min += ideal.time_to_target.to_minutes();
  }

  if (latencies_ms.empty()) {
    std::printf("no suspends occurred\n");
    return 1;
  }
  std::printf("suspend latency: avg=%.2f ms sigma=%.2f p95=%.2f max=%.2f "
              "(paper: 157.69 / 72 / 219 / 1120)\n",
              util::mean(latencies_ms), util::stddev(latencies_ms),
              util::percentile(latencies_ms, 95), util::max_of(latencies_ms));
  std::printf("snapshot size:   avg=%.2f KB sigma=%.2f p95=%.2f max=%.2f "
              "(paper: 357.67 / 122.46 / 685.26 / 686.06)\n",
              util::mean(sizes_kb), util::stddev(sizes_kb), util::percentile(sizes_kb, 95),
              util::max_of(sizes_kb));
  std::printf("suspend events observed: %zu\n", latencies_ms.size());
  const double slowdown =
      without_overhead_min > 0 ? (with_overhead_min / without_overhead_min - 1.0) * 100.0
                               : 0.0;
  std::printf("end-to-end cost of overheads: %.2f%% (paper: negligible)\n", slowdown);
  return 0;
}
