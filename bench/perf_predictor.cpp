// perf_predictor: single-cell predictor throughput, the hot path of every
// sweep cell (ROADMAP item 1). Times the paper-setting MCMC predictor
// (11 families, nwalkers=100, nsamples=700) on fig07 CIFAR prefixes through
// three configurations:
//
//   scalar   the generic CurveEnsemble reference path (batched_kernel off)
//   batched  the fused BatchEvaluator kernels (the default)
//   warm     batched + warm posterior reuse across the growing prefix
//
// and records the trajectory in BENCH_predictor.json (schema: EXPERIMENTS.md).
// The acceptance bar for the fast path is speedup_batched >= 5x with the
// equivalence suite proving bit-identity.
#include "bench_common.hpp"
#include "bench_json.hpp"

#include <chrono>

#include "curve/caching_predictor.hpp"
#include "curve/predictor.hpp"

using namespace hyperdrive;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

curve::PredictorConfig paper_config(bool batched, bool smoke) {
  curve::PredictorConfig config;
  config.mcmc.nwalkers = 100;  // full 11-family ensemble: dim 48, >= 96 walkers
  config.mcmc.nsamples = smoke ? 120 : 700;
  config.mcmc.burn_in = smoke ? 40 : 250;
  config.mcmc.thin = 5;
  config.seed = 42;
  config.batched_kernel = batched;
  return config;
}

/// One "cell" of predictor work: fits on a growing prefix of the same curve
/// (epochs 10, 20, 30), the request pattern POP issues at evaluation
/// boundaries. Returns predictions/s.
double time_predicts(const curve::CurvePredictor& predictor,
                     const std::vector<double>& full_curve, std::size_t repeats,
                     double* out_mean) {
  const std::vector<double> future = {120.0};
  const auto t0 = std::chrono::steady_clock::now();
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t r = 0; r < repeats; ++r) {
    for (const std::size_t prefix : {10u, 20u, 30u}) {
      std::vector<double> history(full_curve.begin(), full_curve.begin() + prefix);
      // Perturb the first epoch per repeat: every repeat is a fresh curve to
      // the prediction cache, while the 10/20/30 prefixes within one repeat
      // still share prefix hashes (what warm-start keys on).
      history.front() += 1e-9 * static_cast<double>(r + 1);
      const auto pred = predictor.predict(history, future, 120.0);
      acc += pred.mean_at(0);
      ++n;
    }
  }
  const double elapsed = seconds_since(t0);
  if (out_mean != nullptr) *out_mean = acc / static_cast<double>(n);
  return static_cast<double>(n) / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_bench_args(argc, argv);
  bench::print_header("perf_predictor",
                      "single-cell MCMC predictor throughput: scalar vs batched vs warm");

  workload::CifarWorkloadModel model;
  const auto trace = workload::generate_trace(model, 8, /*seed=*/4242);
  const auto& curve_data = trace.jobs.front().curve.perf;
  const std::size_t repeats = options.smoke ? 1 : 4;

  const auto wall0 = std::chrono::steady_clock::now();

  double mean_scalar = 0.0, mean_batched = 0.0;
  const auto scalar = curve::make_mcmc_predictor(paper_config(false, options.smoke));
  const double scalar_per_s = time_predicts(*scalar, curve_data, repeats, &mean_scalar);
  std::printf("  scalar:  %8.3f predicts/s\n", scalar_per_s);

  const auto batched = curve::make_mcmc_predictor(paper_config(true, options.smoke));
  const double batched_per_s = time_predicts(*batched, curve_data, repeats, &mean_batched);
  std::printf("  batched: %8.3f predicts/s  (speedup %.2fx)\n", batched_per_s,
              batched_per_s / scalar_per_s);

  curve::CachingOptions copts;
  copts.warm_start = true;
  const auto warm = std::make_shared<curve::CachingPredictor>(
      curve::make_mcmc_predictor(paper_config(true, options.smoke)), copts);
  const double warm_per_s = time_predicts(*warm, curve_data, repeats, nullptr);
  std::printf("  warm:    %8.3f predicts/s  (speedup %.2fx, %zu warm seeds)\n",
              warm_per_s, warm_per_s / scalar_per_s, warm->warm_hits());

  // Bit-identity sanity on the exact workload just timed (the full contract
  // lives in predictor_equivalence_test).
  if (mean_scalar != mean_batched) {
    std::printf("\nFAIL: batched posterior mean diverged from scalar\n");
    return 1;
  }

  bench::BenchJson json("perf_predictor");
  json.set("wall_ms", 1000.0 * seconds_since(wall0));
  json.set("scalar_predicts_per_s", scalar_per_s);
  json.set("batched_predicts_per_s", batched_per_s);
  json.set("warm_predicts_per_s", warm_per_s);
  json.set("speedup_batched", batched_per_s / scalar_per_s);
  json.set("speedup_warm", warm_per_s / scalar_per_s);
  json.set_count("nwalkers", 100);
  json.set_count("nsamples", options.smoke ? 120 : 700);
  json.set_count("repeats", repeats);
  json.set_count("smoke", options.smoke ? 1 : 0);
  json.write_file(options.out.empty() ? "BENCH_predictor.json" : options.out);

  std::printf("\nspeedup (batched vs scalar): %.2fx (bar: >= 5x at the paper setting)\n",
              batched_per_s / scalar_per_s);
  return 0;
}
