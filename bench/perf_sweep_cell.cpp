// perf_sweep_cell: end-to-end sweep-cell throughput on the fig07-class grid
// (cells/s, serial and parallel), recorded in BENCH_sweep_cell.json so the
// sweep-layer perf trajectory is tracked across PRs alongside the predictor
// microbench (ROADMAP item 1; schema: EXPERIMENTS.md). A cell is one full
// cluster experiment: trace realization, POP/Bandit/EarlyTerm scheduling,
// predictor fits at every evaluation boundary.
#include "bench_common.hpp"
#include "bench_json.hpp"

#include <thread>

using namespace hyperdrive;

int main(int argc, char** argv) {
  const auto options = bench::parse_bench_args(argc, argv);
  bench::print_header("perf_sweep_cell", "fig07-class cells/s, serial vs parallel");

  workload::CifarWorkloadModel model;
  const auto base = bench::suitable_trace(model, 100, 2202, /*machines=*/4);
  const std::size_t repeats = options.repeats(6);

  core::SweepSpec spec;
  spec.name = "perf_sweep_cell";
  const auto policy_ax = spec.add_policy_axis(bench::all_policies());
  const auto repeat_ax = spec.add_repeat_axis(repeats);
  spec.trace = [&](const core::SweepCell& cell) {
    return bench::renoise(model, base, 0xF167 ^ cell.at(repeat_ax));
  };
  spec.policy = [&](const core::SweepCell& cell) {
    return bench::make_bench_policy(bench::all_policies()[cell.at(policy_ax)],
                                    cell.at(repeat_ax));
  };
  spec.options = [&](const core::SweepCell& cell) {
    core::RunnerOptions runner;
    runner.machines = 4;
    runner.substrate = core::Substrate::Cluster;
    runner.overheads = cluster::cifar_overhead_model();
    runner.seed = cell.at(repeat_ax);
    runner.max_experiment_time = util::SimTime::hours(96);
    return runner;
  };

  const std::size_t cells = spec.cells();
  const std::size_t threads =
      options.jobs != 0 ? options.jobs
                        : std::max(1u, std::thread::hardware_concurrency());
  std::printf("grid: %zu cells, parallel run on %zu threads\n\n", cells, threads);

  const auto serial = core::run_sweep(spec, 1);
  const double serial_cells_per_s = static_cast<double>(cells) / serial.wall_seconds;
  std::printf("  serial:   %6.2f s  %6.3f cells/s\n", serial.wall_seconds,
              serial_cells_per_s);

  const auto parallel = core::run_sweep(spec, threads);
  const double parallel_cells_per_s = static_cast<double>(cells) / parallel.wall_seconds;
  const bool identical = parallel.to_csv() == serial.to_csv();
  std::printf("  parallel: %6.2f s  %6.3f cells/s  table %s\n", parallel.wall_seconds,
              parallel_cells_per_s, identical ? "byte-identical" : "DIVERGED");

  if (!options.csv.empty()) serial.save_csv_file(options.csv);
  if (!identical) {
    std::printf("\nFAIL: parallel table differs from serial\n");
    return 1;
  }

  bench::BenchJson json("perf_sweep_cell");
  json.set("wall_ms", 1000.0 * (serial.wall_seconds + parallel.wall_seconds));
  json.set("cells_per_s", serial_cells_per_s);
  json.set("parallel_cells_per_s", parallel_cells_per_s);
  json.set("parallel_speedup", parallel_cells_per_s / serial_cells_per_s);
  json.set_count("cells", cells);
  json.set_count("threads", threads);
  json.set_count("smoke", options.smoke ? 1 : 0);
  json.write_file(options.out.empty() ? "BENCH_sweep_cell.json" : options.out);
  return 0;
}
