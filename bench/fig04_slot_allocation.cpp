// Figure 4: POP's resource-allocation internals over an experiment's
// lifetime.
//   4a: desired vs deserved slot curves early in the experiment (low
//       confidence -> crossing at a small S_effective).
//   4b: the same curves late (confidence has grown -> crossing higher).
//   4c: the ratio of promising to active jobs rising over time.
#include "bench_common.hpp"

#include "core/policies/pop_policy.hpp"
#include "sim/trace_replay.hpp"

using namespace hyperdrive;

namespace {

void print_snapshot(const core::PopSnapshot& snap) {
  std::printf("  t=%.1f min, active=%zu (scheduled=%zu), with-confidence=%zu, "
              "p*=%.3f, S_eff=%.2f, promising=%zu\n",
              snap.time.to_minutes(), snap.active_jobs, snap.scheduled_jobs,
              snap.jobs_with_confidence, snap.threshold, snap.effective_slots,
              snap.promising_jobs);
  std::printf("      p      S_desired  S_deserved\n");
  for (const auto& row : snap.curves) {
    std::printf("    %.3f    %6.1f     %6.2f\n", row[0], row[1], row[2]);
  }
}

}  // namespace

int main() {
  bench::print_header("Figure 4", "POP desired/deserved slots and promising ratio");

  workload::CifarWorkloadModel model;
  const auto trace = bench::reachable_trace(model, 100, 446);

  core::PopConfig config;
  config.tmax = util::SimTime::hours(48);
  config.predictor = core::make_default_predictor(4);
  config.record_allocation_curves = true;
  core::PopPolicy policy(config);

  sim::ReplayOptions options;
  options.machines = 4;
  options.stop_on_target = true;
  const auto result = sim::replay_experiment(trace, policy, options);

  const auto& snapshots = policy.snapshots();
  if (snapshots.empty()) {
    std::printf("no classification rounds recorded\n");
    return 1;
  }

  std::printf("\n-- Figure 4a: early-experiment snapshot --\n");
  // First snapshot with at least a few confident jobs.
  const core::PopSnapshot* early = &snapshots.front();
  for (const auto& s : snapshots) {
    if (s.jobs_with_confidence >= 3) {
      early = &s;
      break;
    }
  }
  print_snapshot(*early);

  std::printf("\n-- Figure 4b: late-experiment snapshot --\n");
  print_snapshot(snapshots.back());

  std::printf("\n-- Figure 4c: promising/running ratio over time --\n");
  std::printf("  time_min  promising  running  ratio\n");
  const std::size_t stride = std::max<std::size_t>(1, snapshots.size() / 25);
  for (std::size_t i = 0; i < snapshots.size(); i += stride) {
    const auto& s = snapshots[i];
    const double ratio = s.running_jobs > 0 ? static_cast<double>(s.promising_jobs) /
                                                    static_cast<double>(s.running_jobs)
                                              : 0.0;
    std::printf("  %8.1f  %9zu  %9zu  %.3f\n", s.time.to_minutes(), s.promising_jobs,
                s.running_jobs, ratio);
  }

  // The paper's qualitative claim: exploitation share grows over time.
  const auto& first = *early;
  const auto& last = snapshots.back();
  const double early_ratio = first.running_jobs > 0
                                 ? static_cast<double>(first.promising_jobs) /
                                       static_cast<double>(first.running_jobs)
                                 : 0.0;
  const double late_ratio = last.running_jobs > 0
                                ? static_cast<double>(last.promising_jobs) /
                                      static_cast<double>(last.running_jobs)
                                : 0.0;
  std::printf("\nearly ratio=%.3f -> late ratio=%.3f (paper: rises toward ~0.8)\n",
              early_ratio, late_ratio);
  std::printf("experiment reached target: %d at t=%.1f min\n", result.reached_target,
              result.time_to_target.to_minutes());
  return 0;
}
