// Extension: multi-tenant study scheduling (DESIGN.md §9). Three studies
// share one 12-slot cluster: an *urgent* CIFAR sweep with a hard deadline, a
// *batch* sweep with no deadline, and a *quick* exploratory study that
// finishes early. The bench sweeps the arbitration mode over 20 fresh-noise
// repeats and compares:
//
//   * static   — weighted split at admission, never revisited. Capacity the
//                quick study frees is stranded for the rest of the run.
//   * fair     — weighted fair share over the unfinished studies; drained
//                capacity is handed to whoever still runs.
//   * deadline — fair share + urgency boosting from curve-predictor
//                time-to-target estimates (the same §5.2 predictor POP uses).
//
// Report: deadlines met (urgent study), mean urgent time-to-target, mean
// makespan over all three studies, and arbitration activity. The headline
// property (ROADMAP): deadline-aware arbitration meets strictly more
// deadlines than static partitioning at no worse aggregate time-to-target.
#include "bench_common.hpp"

#include "core/study/study_manager.hpp"

using namespace hyperdrive;

namespace {

struct ArmResult {
  std::size_t runs = 0;
  std::size_t deadlines_met = 0;
  std::size_t all_reached = 0;
  double urgent_minutes = 0.0;   // mean urgent time-to-target
  double makespan_minutes = 0.0; // mean max time-to-target over studies
  double rebalances = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto bench_options = bench::parse_bench_args(argc, argv);
  bench::print_header(
      "Extension: multi-tenant studies",
      "3 studies on one 12-slot cluster, arbitration static vs fair vs deadline");

  constexpr std::size_t kMachines = 12;
  const auto kDeadline = util::SimTime::minutes(150);
  // The quick study hunts a modest accuracy (the model's standard target is
  // 0.77): it finishes long before the sweeps, freeing its slots.
  constexpr double kQuickTarget = 0.35;

  // One hyperparameter set per study, drawn once and re-noised per repeat
  // (§6.1) — the standard trace-suitability rule, so every study's target is
  // reachable in every repeat.
  workload::CifarWorkloadModel model;
  const auto urgent_base = bench::suitable_trace(model, 40, 7100, kMachines);
  const auto batch_base = bench::suitable_trace(model, 48, 7200, kMachines);
  const auto quick_base = bench::suitable_trace(model, 8, 7300, 4);

  core::SweepSpec spec;
  spec.name = "ext_multi_study";
  const auto mode_ax = spec.add_axis("arbitration", {"static", "fair", "deadline"});
  const auto repeat_ax = spec.add_repeat_axis(bench_options.repeats(20));
  // One multi-study run per cell via the SweepEngine's custom-run hook; the
  // per-study outcomes land in a pre-sized slot keyed by the cell's linear
  // index, so the parallel sweep stays deterministic.
  std::vector<core::MultiStudyResult> outcomes(spec.cells());
  spec.run = [&](const core::SweepCell& cell) {
    const std::uint64_t r = cell.at(repeat_ax);
    core::StudyManagerOptions options;
    options.machines = kMachines;
    options.arbitration = core::arbitration_from_string(
        spec.axes[mode_ax].values[cell.at(mode_ax)]);
    options.arbitration_interval = util::SimTime::minutes(5);
    options.seed = 40 + r;
    core::StudyManager manager(options);

    core::StudySpec urgent;
    urgent.name = "urgent";
    urgent.deadline = kDeadline;
    urgent.seed = 100 + r;
    manager.add_study(urgent, bench::renoise(model, urgent_base, 100 + r), [&, r] {
      return bench::make_bench_policy("pop", 100 + r);
    });

    core::StudySpec batch;
    batch.name = "batch";
    batch.seed = 200 + r;
    manager.add_study(batch, bench::renoise(model, batch_base, 200 + r), [&, r] {
      return bench::make_bench_policy("pop", 200 + r);
    });

    core::StudySpec quick;
    quick.name = "quick";
    quick.policy = "default";
    quick.target = kQuickTarget;
    quick.seed = 300 + r;
    auto quick_trace = bench::renoise(model, quick_base, 300 + r);
    quick_trace.target_performance = kQuickTarget;
    manager.add_study(quick, std::move(quick_trace), [&, r] {
      return bench::make_bench_policy("default", 300 + r);
    });

    auto result = manager.run();
    auto aggregate = result.aggregate();
    outcomes[cell.linear] = std::move(result);
    return aggregate;
  };

  const auto table = bench::run_bench_sweep(spec, bench_options);

  std::vector<ArmResult> arms(table.axes[mode_ax].values.size());
  for (const auto& row : table.rows) {
    const auto& multi = outcomes[row.cell.linear];
    ArmResult& arm = arms[row.cell.at(mode_ax)];
    ++arm.runs;
    arm.rebalances += static_cast<double>(multi.rebalances);
    bool all_reached = true;
    util::SimTime makespan = util::SimTime::zero();
    for (const auto& study : multi.studies) {
      if (!study.result.reached_target) all_reached = false;
      if (study.result.reached_target && study.result.time_to_target > makespan) {
        makespan = study.result.time_to_target;
      }
      if (study.spec.name == "urgent") {
        if (study.deadline_met) ++arm.deadlines_met;
        arm.urgent_minutes += study.result.reached_target
                                  ? study.result.time_to_target.to_minutes()
                                  : study.spec.tmax.to_minutes();
      }
    }
    if (all_reached) ++arm.all_reached;
    arm.makespan_minutes += makespan.to_minutes();
  }

  std::printf("  urgent-study deadline: %.0f min; %zu repeats per mode\n\n",
              kDeadline.to_minutes(), arms[0].runs);
  std::printf("  %-10s %14s %13s %14s %12s %11s\n", "mode", "deadlines-met",
              "urgent[min]", "makespan[min]", "all-reached", "rebalances");
  for (std::size_t m = 0; m < arms.size(); ++m) {
    const ArmResult& arm = arms[m];
    const double n = static_cast<double>(arm.runs);
    std::printf("  %-10s %8zu/%-5zu %13.1f %14.1f %9zu/%-2zu %11.1f\n",
                table.axes[mode_ax].values[m].c_str(), arm.deadlines_met, arm.runs,
                arm.urgent_minutes / n, arm.makespan_minutes / n, arm.all_reached,
                arm.runs, arm.rebalances / n);
  }

  const ArmResult& fixed = arms[0];
  const ArmResult& deadline = arms[2];
  const bool more_deadlines = deadline.deadlines_met > fixed.deadlines_met;
  const bool no_worse_makespan = deadline.makespan_minutes <= fixed.makespan_minutes;
  std::printf(
      "\n  Deadline-aware vs static: %zu vs %zu deadlines met (%s), mean makespan\n"
      "  %.1f vs %.1f min (%s). Static strands the quick study's slots and gives\n"
      "  the urgent sweep only its admission share; fair share re-spreads drained\n"
      "  capacity, and the deadline mode additionally fronts slots to the urgent\n"
      "  study while its predicted time-to-target overshoots the deadline.\n",
      deadline.deadlines_met, fixed.deadlines_met,
      more_deadlines ? "strictly more" : "NOT more",
      deadline.makespan_minutes / static_cast<double>(deadline.runs),
      fixed.makespan_minutes / static_cast<double>(fixed.runs),
      no_worse_makespan ? "no worse" : "WORSE");
  // The property is statistical: enforce it on the full 20-repeat run only
  // (the 2-repeat --smoke pass just exercises the machinery end to end).
  if (!bench_options.smoke && (!more_deadlines || !no_worse_makespan)) {
    std::fprintf(stderr, "ext_multi_study: headline property violated\n");
    return 1;
  }
  return 0;
}
