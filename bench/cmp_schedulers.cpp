// Scheduler-zoo comparison (DESIGN.md §13): every registry policy — POP,
// HyperBand, ASHA, PBT and the run-to-completion Default — on the Fig. 7
// CIFAR-10 workload at equal budgets (same traces, same machine count, same
// experiment cap), via the idealized simulator so the difference is purely
// the decision rule. The --csv table is the per-policy time-to-target data
// (EXPERIMENTS.md): one row per (policy, repeat) cell.
#include "bench_common.hpp"

#include "core/generators/hyperparameter_generator.hpp"

#include <memory>

using namespace hyperdrive;

int main(int argc, char** argv) {
  const auto bench_options = bench::parse_bench_args(argc, argv);
  bench::print_header("Scheduler zoo", "time to 77% accuracy, CIFAR-10, 4 machines");

  const auto model = std::make_shared<workload::CifarWorkloadModel>();
  const std::vector<std::string> policies = {"pop", "hyperband", "asha", "pbt", "default"};

  // The Fig. 7 setup: one hyperparameter set, fresh training noise per
  // repeat (§6.1). A winner outside the first wave keeps scanning skill —
  // not first-batch luck — the measured quantity.
  const auto base = bench::suitable_trace(*model, 100, 2202, /*machines=*/4);

  core::SweepSpec spec;
  spec.name = "cmp_schedulers";
  const auto policy_ax = spec.add_policy_axis(policies);
  const auto repeat_ax = spec.add_repeat_axis(bench_options.repeats(10));
  spec.trace = [&](const core::SweepCell& cell) {
    return bench::renoise(*model, base, 0xF167 ^ cell.at(repeat_ax));
  };
  spec.policy = [&](const core::SweepCell& cell) {
    return bench::make_bench_policy(policies[cell.at(policy_ax)], cell.at(repeat_ax));
  };
  spec.options = [&](const core::SweepCell& cell) {
    core::RunnerOptions options;
    options.substrate = core::Substrate::TraceReplay;
    options.machines = 4;
    options.seed = cell.at(repeat_ax);
    options.max_experiment_time = util::SimTime::hours(96);
    // PBT's exploit/explore continuation; inert for the other policies
    // (only clone_job consults it), so the shared hook keeps their event
    // streams byte-identical to a run without it.
    options.explore = core::make_model_explore(model);
    return options;
  };

  const auto table = bench::run_bench_sweep(spec, bench_options);
  const double repeats = static_cast<double>(table.axes[repeat_ax].values.size());

  for (const auto& label : policies) {
    std::size_t reached = 0;
    for (const auto* row : table.where("policy", label)) {
      if (row->result.reached_target) ++reached;
    }
    bench::print_box(label, table.minutes_where("policy", label), "min");
    std::printf("             reached target on %zu/%.0f repeats\n", reached, repeats);
  }

  const auto mean_of = [&](const std::string& label) {
    return util::mean(table.minutes_where("policy", label));
  };
  const double pop = mean_of("pop");
  std::printf("\nmean time-to-target vs POP: hyperband %.2fx, asha %.2fx, "
              "pbt %.2fx, default %.2fx\n",
              mean_of("hyperband") / pop, mean_of("asha") / pop, mean_of("pbt") / pop,
              mean_of("default") / pop);
  std::printf("(rank-at-budget rungs — hyperband/asha — kill slow-starting winners the\n"
              " Fig. 2b overtake regime rewards; POP's predicted-probability rule and\n"
              " PBT's exploit/explore both keep them alive by different means)\n");
  return 0;
}
