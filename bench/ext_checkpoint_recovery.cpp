// Extension: coordinator checkpoint & crash-recovery costs (DESIGN.md §12).
// Two studies share one 8-slot cluster; the bench measures what durable
// checkpointing and crash recovery cost on top of the plain coordinator:
//
//   * checkpoint overhead — wall-time of the run with durable frames at a
//     120 s / 300 s / 600 s cadence vs the uncheckpointed reference, plus
//     frames written and bytes per frame (the CoordinatorRecoveryStats the
//     runtime reports);
//   * recovery cost — an in-simulation CoordinatorCrashEvent at the midpoint
//     of the run, recovered from the in-memory frame: wall-time vs the
//     reference (the price of the deterministic replay), with the headline
//     byte-identity invariant checked on every run.
//
// Report schema: EXPERIMENTS.md "Checkpoint / recovery bench".
#include "bench_common.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "core/study/coordinator.hpp"
#include "core/study/study_manager.hpp"

using namespace hyperdrive;

namespace {

double wall_ms(const std::chrono::steady_clock::time_point& from) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   from)
      .count();
}

bool logs_equal(const core::MultiStudyResult& a, const core::MultiStudyResult& b) {
  return a.event_log == b.event_log && a.total_time == b.total_time &&
         a.rebalances == b.rebalances;
}

}  // namespace

int main(int argc, char** argv) {
  const auto bench_options = bench::parse_bench_args(argc, argv);
  bench::print_header(
      "Extension: coordinator checkpoint / crash recovery",
      "2 studies on one 8-slot cluster; durable-frame overhead and replay cost");

  constexpr std::size_t kMachines = 8;
  const std::size_t repeats = bench_options.repeats(5);

  workload::CifarWorkloadModel model;
  const auto sweep_base = bench::suitable_trace(model, 24, 8100, kMachines);
  const auto quick_base = bench::suitable_trace(model, 8, 8200, 4);

  const std::vector<double> cadences_s = {120.0, 300.0, 600.0};
  struct Arm {
    double wall_ms = 0.0;
    double frames = 0.0;
    double bytes_total = 0.0;
    std::size_t identical = 0;
  };
  std::vector<Arm> arms(cadences_s.size());
  Arm crash_arm;
  double reference_ms = 0.0;

  const auto ckpt_dir =
      std::filesystem::temp_directory_path() / "hd_bench_checkpoint_recovery";

  for (std::size_t r = 0; r < repeats; ++r) {
    core::StudyManagerOptions options;
    options.machines = kMachines;
    options.arbitration = core::ArbitrationMode::FairShare;
    options.arbitration_interval = util::SimTime::minutes(5);
    options.record_event_log = true;
    options.seed = 50 + r;

    core::StudySpec sweep;
    sweep.name = "sweep";
    sweep.seed = 100 + r;
    core::StudySpec quick;
    quick.name = "quick";
    quick.policy = "default";
    quick.target = 0.35;
    quick.seed = 200 + r;
    const std::vector<core::StudySpec> specs = {sweep, quick};

    auto sweep_trace = bench::renoise(model, sweep_base, 100 + r);
    auto quick_trace = bench::renoise(model, quick_base, 200 + r);
    quick_trace.target_performance = 0.35;
    const core::AdmitStudyFn admit = [&](core::StudyManager& manager,
                                         const core::StudySpec& spec) {
      if (spec.name == "sweep") {
        manager.add_study(spec, sweep_trace, [&, r] {
          return bench::make_bench_policy("pop", 100 + r);
        });
      } else {
        manager.add_study(spec, quick_trace, [&, r] {
          return bench::make_bench_policy("default", 200 + r);
        });
      }
    };

    // Reference: plain StudyManager, no checkpoint machinery at all.
    auto t0 = std::chrono::steady_clock::now();
    core::StudyManager reference(options);
    for (const auto& spec : specs) admit(reference, spec);
    const auto ref = reference.run();
    reference_ms += wall_ms(t0);

    // Durable frames at each cadence.
    for (std::size_t c = 0; c < cadences_s.size(); ++c) {
      std::filesystem::remove_all(ckpt_dir);
      core::CheckpointOptions ckpt;
      ckpt.dir = ckpt_dir.string();
      ckpt.every = util::SimTime::seconds(cadences_s[c]);
      t0 = std::chrono::steady_clock::now();
      const auto run = core::run_recoverable_multi_study(specs, options, ckpt, admit);
      arms[c].wall_ms += wall_ms(t0);
      arms[c].frames += static_cast<double>(run.recovery.checkpoints_written);
      arms[c].bytes_total += static_cast<double>(run.recovery.checkpoint_bytes_total);
      arms[c].identical += logs_equal(ref, run.result) ? 1 : 0;
    }

    // Mid-run coordinator crash, in-memory recovery (replay from the frame).
    core::StudyManagerOptions crashed = options;
    cluster::CoordinatorCrashEvent crash;
    crash.at = util::SimTime::seconds(ref.total_time.to_seconds() * 0.5);
    crashed.fault_plan.coordinator_crashes.push_back(crash);
    core::CheckpointOptions mem;
    mem.every = util::SimTime::seconds(300.0);
    t0 = std::chrono::steady_clock::now();
    const auto run = core::run_recoverable_multi_study(specs, crashed, mem, admit);
    crash_arm.wall_ms += wall_ms(t0);
    crash_arm.frames += static_cast<double>(run.recovery.checkpoints_written);
    crash_arm.identical += logs_equal(ref, run.result) ? 1 : 0;
  }
  std::filesystem::remove_all(ckpt_dir);

  const double n = static_cast<double>(repeats);
  std::printf("  reference (no checkpointing): %.1f ms/run, %zu repeats\n\n",
              reference_ms / n, repeats);
  std::printf("  %-14s %8s %12s %12s %12s\n", "mode", "frames", "KiB/frame",
              "overhead[%]", "identical");
  for (std::size_t c = 0; c < cadences_s.size(); ++c) {
    const Arm& arm = arms[c];
    const double frames = arm.frames / n;
    char label[16];
    std::snprintf(label, sizeof label, "every %.0fs", cadences_s[c]);
    std::printf("  %-14s %8.1f %12.1f %12.1f %9zu/%-2zu\n", label, frames,
                frames > 0.0 ? arm.bytes_total / arm.frames / 1024.0 : 0.0,
                100.0 * (arm.wall_ms - reference_ms) / reference_ms, arm.identical,
                repeats);
  }
  std::printf("  %-14s %8.1f %12s %12.1f %9zu/%-2zu\n", "crash+replay",
              crash_arm.frames / n, "-",
              100.0 * (crash_arm.wall_ms - reference_ms) / reference_ms,
              crash_arm.identical, repeats);

  if (crash_arm.identical != repeats) {
    std::printf("\n  ERROR: crash-recovered run diverged from the reference\n");
    return 1;
  }
  for (const Arm& arm : arms) {
    if (arm.identical != repeats) {
      std::printf("\n  ERROR: checkpointed run diverged from the reference\n");
      return 1;
    }
  }
  return 0;
}
