// Related-work comparison (§8): POP vs HyperBand-style asynchronous
// successive halving [21] on the CIFAR-10 workload. The paper positions
// HyperBand as a sequential-execution technique and POP as exploiting the
// spatial (multi-machine) dimension with prediction-based confidence; here
// both run on the same parallel substrate so the difference is purely the
// decision rule (rank-at-budget vs predicted-probability-of-target).
#include "bench_common.hpp"

#include "core/policies/hyperband_policy.hpp"
#include "core/policies/pop_policy.hpp"
#include "sim/trace_replay.hpp"

using namespace hyperdrive;

int main() {
  bench::print_header("Comparison §8", "POP vs HyperBand-style successive halving");

  workload::CifarWorkloadModel model;
  constexpr int kRepeats = 5;

  struct Variant {
    std::string label;
    std::function<std::unique_ptr<core::SchedulingPolicy>(std::uint64_t)> make;
  };
  std::vector<Variant> variants;
  variants.push_back({"pop", [](std::uint64_t r) {
                        core::PopConfig config;
                        config.tmax = util::SimTime::hours(96);
                        config.predictor = core::make_default_predictor(r);
                        return std::make_unique<core::PopPolicy>(config);
                      }});
  variants.push_back({"hyperband eta=3", [](std::uint64_t) {
                        core::HyperbandConfig config;
                        config.eta = 3.0;
                        return std::make_unique<core::HyperbandPolicy>(config);
                      }});
  variants.push_back({"hyperband eta=2", [](std::uint64_t) {
                        core::HyperbandConfig config;
                        config.eta = 2.0;
                        return std::make_unique<core::HyperbandPolicy>(config);
                      }});
  variants.push_back({"hyperband 3 brackets", [](std::uint64_t) {
                        core::HyperbandConfig config;
                        config.eta = 3.0;
                        config.num_brackets = 3;
                        return std::make_unique<core::HyperbandPolicy>(config);
                      }});

  for (const auto& variant : variants) {
    std::vector<double> minutes;
    for (std::uint64_t r = 0; r < kRepeats; ++r) {
      const auto trace = bench::suitable_trace(model, 100, 2600 + r * 43, 25);
      const auto policy = variant.make(r);
      sim::ReplayOptions options;
      options.machines = 4;
      options.max_experiment_time = util::SimTime::hours(200);
      const auto result = sim::replay_experiment(trace, *policy, options);
      minutes.push_back(result.reached_target ? result.time_to_target.to_minutes()
                                              : result.total_time.to_minutes());
    }
    bench::print_box(variant.label, minutes, "min");
  }
  std::printf("\n(POP's prediction-based confidence should beat rank-at-budget when\n"
              " good configurations start slow — the Fig. 2b overtake regime)\n");
  return 0;
}
