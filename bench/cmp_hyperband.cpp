// Related-work comparison (§8): POP vs HyperBand-style asynchronous
// successive halving [21] on the CIFAR-10 workload. The paper positions
// HyperBand as a sequential-execution technique and POP as exploiting the
// spatial (multi-machine) dimension with prediction-based confidence; here
// both run on the same parallel substrate so the difference is purely the
// decision rule (rank-at-budget vs predicted-probability-of-target).
#include "bench_common.hpp"

#include "core/policies/hyperband_policy.hpp"
#include "core/policies/pop_policy.hpp"

using namespace hyperdrive;

int main(int argc, char** argv) {
  const auto bench_options = bench::parse_bench_args(argc, argv);
  bench::print_header("Comparison §8", "POP vs HyperBand-style successive halving");

  workload::CifarWorkloadModel model;

  struct Variant {
    std::string label;
    std::function<std::unique_ptr<core::SchedulingPolicy>(std::uint64_t)> make;
  };
  std::vector<Variant> variants;
  variants.push_back({"pop", [](std::uint64_t r) -> std::unique_ptr<core::SchedulingPolicy> {
                        core::PopConfig config;
                        config.tmax = util::SimTime::hours(96);
                        config.predictor = core::make_default_predictor(r);
                        return std::make_unique<core::PopPolicy>(config);
                      }});
  variants.push_back(
      {"hyperband eta=3", [](std::uint64_t) -> std::unique_ptr<core::SchedulingPolicy> {
         core::HyperbandConfig config;
         config.eta = 3.0;
         return std::make_unique<core::HyperbandPolicy>(config);
       }});
  variants.push_back(
      {"hyperband eta=2", [](std::uint64_t) -> std::unique_ptr<core::SchedulingPolicy> {
         core::HyperbandConfig config;
         config.eta = 2.0;
         return std::make_unique<core::HyperbandPolicy>(config);
       }});
  variants.push_back(
      {"hyperband 3 brackets", [](std::uint64_t) -> std::unique_ptr<core::SchedulingPolicy> {
         core::HyperbandConfig config;
         config.eta = 3.0;
         config.num_brackets = 3;
         return std::make_unique<core::HyperbandPolicy>(config);
       }});

  core::SweepSpec spec;
  spec.name = "cmp_hyperband";
  std::vector<std::string> variant_labels;
  for (const auto& v : variants) variant_labels.push_back(v.label);
  const auto variant_ax = spec.add_axis("variant", variant_labels);
  const auto repeat_ax = spec.add_repeat_axis(bench_options.repeats(5));
  spec.trace = [&](const core::SweepCell& cell) {
    return bench::suitable_trace(model, 100, 2600 + cell.at(repeat_ax) * 43, 25);
  };
  spec.policy = [&](const core::SweepCell& cell) {
    return variants[cell.at(variant_ax)].make(cell.at(repeat_ax));
  };
  spec.options = [&](const core::SweepCell&) {
    core::RunnerOptions options;
    options.substrate = core::Substrate::TraceReplay;
    options.machines = 4;
    options.max_experiment_time = util::SimTime::hours(200);
    return options;
  };

  const auto table = bench::run_bench_sweep(spec, bench_options);

  for (const auto& variant : variants) {
    bench::print_box(variant.label, table.minutes_where("variant", variant.label), "min");
  }
  std::printf("\n(POP's prediction-based confidence should beat rank-at-budget when\n"
              " good configurations start slow — the Fig. 2b overtake regime)\n");
  return 0;
}
