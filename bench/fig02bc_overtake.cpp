// Figure 2b/2c: the overtake phenomenon and why instantaneous accuracy (or
// a point prediction without confidence) misleads.
//
//   2b: two configurations A and B where A leads before ~epoch 50 but B has
//       the better final accuracy.
//   2c: at epoch 10, the probabilistic predictor's view of both: expected
//       final accuracy and its confidence band (posterior stddev = the
//       paper's "prediction accuracy PA").
#include "bench_common.hpp"

#include "curve/predictor.hpp"

using namespace hyperdrive;

int main() {
  bench::print_header("Figure 2b", "overtake: A leads early, B wins finally");

  workload::CifarWorkloadModel model;
  // Search a population for the clearest overtake pair among decent configs.
  const auto trace = workload::generate_trace(model, 400, /*seed=*/1313);
  const workload::TraceJob* a = nullptr;
  const workload::TraceJob* b = nullptr;
  double best_gap = 0.0;
  for (const auto& ja : trace.jobs) {
    if (ja.curve.final_perf() < 0.45) continue;
    for (const auto& jb : trace.jobs) {
      if (jb.curve.final_perf() < 0.45) continue;
      const double early_lead = ja.curve.perf.at(19) - jb.curve.perf.at(19);
      const double final_deficit = jb.curve.final_perf() - ja.curve.final_perf();
      if (early_lead > 0.02 && final_deficit > 0.02) {
        const double gap = early_lead + final_deficit;
        if (gap > best_gap) {
          best_gap = gap;
          a = &ja;
          b = &jb;
        }
      }
    }
  }
  if (a == nullptr) {
    std::printf("no overtake pair found (population too small)\n");
    return 1;
  }

  std::printf("epoch   cfg_A   cfg_B\n");
  for (std::size_t e = 10; e <= 120; e += 10) {
    std::printf("%5zu   %.3f   %.3f\n", e, a->curve.perf.at(e - 1), b->curve.perf.at(e - 1));
  }
  std::printf("final:  A=%.3f  B=%.3f  (A job %llu, B job %llu)\n", a->curve.final_perf(),
              b->curve.final_perf(), static_cast<unsigned long long>(a->job_id),
              static_cast<unsigned long long>(b->job_id));

  bench::print_header("Figure 2c", "predicted final accuracy +- PA at epoch 10");

  curve::PredictorConfig config;
  // Full 11-family ensemble is 48-dim: the Goodman–Weare constraint
  // (even, >= 2 * dim) needs at least 96 walkers.
  config.mcmc.nwalkers = 100;
  config.mcmc.nsamples = 400;
  config.mcmc.burn_in = 150;
  config.mcmc.thin = 5;
  config.seed = 99;
  const auto predictor = curve::make_mcmc_predictor(config);

  const std::vector<double> horizon = {120.0};
  for (const auto* job : {a, b}) {
    std::vector<double> prefix(job->curve.perf.begin(), job->curve.perf.begin() + 10);
    const auto pred = predictor->predict(prefix, horizon, 120.0);
    std::printf("  config %llu: predicted final = %.3f +- %.3f (PA), measured final = %.3f,"
                " P(>= 0.77) = %.2f\n",
                static_cast<unsigned long long>(job->job_id), pred.mean_at(0),
                pred.stddev_at(0), job->curve.final_perf(), pred.prob_at_least(0, 0.77));
  }
  std::printf("\n(the early leader's prediction carries no guarantee: confidence bands\n"
              " at epoch 10 overlap, which is exactly why POP tracks confidence)\n");
  return 0;
}
