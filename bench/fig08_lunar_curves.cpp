// Figure 8: reward of 15 randomly selected LunarLander configurations over
// 20,000 episode trials. Paper: many jobs learn for a while and then
// "learning-crash" to at/below -100 for good; over 50% are non-learning.
#include "bench_common.hpp"

using namespace hyperdrive;

int main() {
  bench::print_header("Figure 8", "15 random LunarLander configurations, reward vs trials");

  workload::LunarWorkloadModel model;
  const auto trace = workload::generate_trace(model, 15, /*seed=*/907);

  std::printf("config |");
  for (std::size_t e = 10; e <= 100; e += 10) std::printf(" %5zuk", e / 5);
  std::printf("| final\n");

  std::size_t non_learning = 0, crashed = 0;
  for (const auto& job : trace.jobs) {
    std::printf("%6llu |", static_cast<unsigned long long>(job.job_id));
    for (std::size_t e = 10; e <= 100; e += 10) {
      std::printf(" %6.0f", job.curve.denormalize(job.curve.perf.at(e - 1)));
    }
    const double final_raw = job.curve.denormalize(job.curve.final_perf());
    std::printf("| %6.0f\n", final_raw);
    if (final_raw <= -100.0 + 8.0) ++non_learning;
    if (job.curve.denormalize(job.curve.best_perf()) > -20.0 && final_raw <= -100.0) {
      ++crashed;
    }
  }
  std::printf("\n(columns = episode trials in thousands; epoch = 200 trials)\n");
  std::printf("non-learning at the end: %zu of 15 (paper: over 50%%)\n", non_learning);
  std::printf("learning-crashes among them: %zu\n", crashed);
  return 0;
}
