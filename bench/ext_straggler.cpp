// Extension: straggler (fail-slow) intensity sweep. Gray failures — nodes
// that keep heartbeating but run slow — corrupt POP's time-based evidence:
// inflated epoch durations shrink the within-budget horizon and push viable
// configurations below the pruning confidence (a "wrong kill"), while
// promising configurations pinned on stragglers crawl to the target.
//
// This bench sweeps (fraction of slow nodes) x (slowdown factor) on the
// CIFAR POP sweep and reports, with the gray-failure layer (DESIGN.md §7)
// OFF vs ON: time-to-target, wrong kills against the ground-truth curve
// oracle, and the mitigation counters (quarantines, migrations).
#include "bench_common.hpp"

using namespace hyperdrive;

namespace {

struct Scenario {
  const char* label;
  std::size_t slow_nodes = 0;
  double factor = 1.0;
};

struct ArmResult {
  double minutes = 0.0;
  std::size_t reached = 0;
  std::size_t wrong_kills = 0;
  std::size_t quarantined = 0;
  std::size_t migrated = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto bench_options = bench::parse_bench_args(argc, argv);
  bench::print_header("Extension: straggler mitigation",
                      "CIFAR POP sweep with fail-slow nodes, gray-failure layer off vs on");

  workload::CifarWorkloadModel model;
  constexpr std::size_t kMachines = 8;

  const std::vector<Scenario> scenarios = {
      {"fault-free"},
      {"1/8 nodes 2x slow", 1, 2.0},
      {"1/8 nodes 4x slow", 1, 4.0},
      {"2/8 nodes 2x slow", 2, 2.0},
      {"2/8 nodes 4x slow", 2, 4.0},
      {"4/8 nodes 2x slow", 4, 2.0},
      {"4/8 nodes 4x slow", 4, 4.0},
  };

  core::SweepSpec spec;
  spec.name = "ext_straggler";
  std::vector<std::string> scenario_labels;
  for (const auto& s : scenarios) scenario_labels.push_back(s.label);
  const auto scenario_ax = spec.add_axis("scenario", scenario_labels);
  const auto mitigate_ax = spec.add_axis("mitigate", {"off", "on"});
  const auto repeat_ax = spec.add_repeat_axis(bench_options.repeats(5));
  spec.trace = [&](const core::SweepCell& cell) {
    return bench::suitable_trace(model, 100, 6200 + cell.at(repeat_ax) * 31, kMachines * 2);
  };
  spec.policy = [&](const core::SweepCell& cell) {
    // A budget with little slack over the fault-free time-to-target: this
    // is where slow-host-inflated epoch estimates turn into budget-driven
    // wrong kills unless the POP horizon is speed-normalized.
    return bench::make_bench_policy("pop", cell.at(repeat_ax), util::SimTime::hours(4));
  };
  spec.options = [&](const core::SweepCell& cell) {
    const Scenario& s = scenarios[cell.at(scenario_ax)];
    const std::uint64_t r = cell.at(repeat_ax);
    core::RunnerOptions options;
    options.substrate = core::Substrate::Cluster;
    options.machines = kMachines;
    options.max_experiment_time = util::SimTime::hours(96);
    options.seed = r + 1;
    options.fault_plan.seed = 2000 + r;
    for (std::size_t m = 0; m < s.slow_nodes; ++m) {
      cluster::NodeSlowdownEvent slow;
      slow.machine = static_cast<cluster::MachineId>(m);
      slow.factor = s.factor;
      options.fault_plan.slowdowns.push_back(slow);
    }
    options.health.enabled = cell.at(mitigate_ax) == 1;
    return options;
  };

  const auto table = bench::run_bench_sweep(spec, bench_options);
  const int repeats = static_cast<int>(table.axes[repeat_ax].values.size());

  const auto arm_of = [&](const std::string& scenario, const std::string& mitigate) {
    ArmResult arm;
    for (const auto* row : table.where("scenario", scenario)) {
      if (table.label(*row, "mitigate") != mitigate) continue;
      arm.minutes += row->minutes_to_target();
      if (row->result.reached_target) ++arm.reached;
      arm.wrong_kills += row->result.recovery.wrong_kills;
      arm.quarantined += row->result.recovery.nodes_quarantined;
      arm.migrated += row->result.recovery.jobs_migrated;
    }
    arm.minutes /= repeats;
    return arm;
  };

  std::printf("  %-20s %12s %12s %11s %11s %7s %7s\n", "scenario", "ttt-off[min]",
              "ttt-on[min]", "wrongkill-off", "wrongkill-on", "quarant", "migrate");
  double free_minutes = 0.0;
  for (const auto& label : scenario_labels) {
    const ArmResult off = arm_of(label, "off");
    const ArmResult on = arm_of(label, "on");
    if (free_minutes == 0.0) free_minutes = off.minutes;
    std::printf("  %-20s %12.1f %12.1f %13zu %12zu %7zu %7zu", label.c_str(), off.minutes,
                on.minutes, off.wrong_kills, on.wrong_kills, on.quarantined,
                on.migrated);
    if (off.reached < static_cast<std::size_t>(repeats) ||
        on.reached < static_cast<std::size_t>(repeats)) {
      std::printf("  (off %zu/%d, on %zu/%d reached)", off.reached, repeats,
                  on.reached, repeats);
    }
    std::printf("\n");
  }

  std::printf(
      "\n  Fail-slow nodes are invisible to crash-style fault tolerance: the\n"
      "  node keeps acking, so only the EWMA speed score + quarantine +\n"
      "  migration layer (ttt-on) recovers the time-to-target gap and turns\n"
      "  budget-driven wrong kills back into zero. The tradeoff is capacity:\n"
      "  once half the cluster is (mildly) slow, quarantining it costs more\n"
      "  than the slowdown itself — detection thresholds assume stragglers\n"
      "  are the minority, as in the fleet studies DESIGN.md §7 cites.\n");
  return 0;
}
