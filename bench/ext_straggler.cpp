// Extension: straggler (fail-slow) intensity sweep. Gray failures — nodes
// that keep heartbeating but run slow — corrupt POP's time-based evidence:
// inflated epoch durations shrink the within-budget horizon and push viable
// configurations below the pruning confidence (a "wrong kill"), while
// promising configurations pinned on stragglers crawl to the target.
//
// This bench sweeps (fraction of slow nodes) x (slowdown factor) on the
// CIFAR POP sweep and reports, with the gray-failure layer (DESIGN.md §7)
// OFF vs ON: time-to-target, wrong kills against the ground-truth curve
// oracle, and the mitigation counters (quarantines, migrations).
#include "bench_common.hpp"

using namespace hyperdrive;

namespace {

struct Scenario {
  const char* label;
  std::size_t slow_nodes = 0;
  double factor = 1.0;
};

struct ArmResult {
  double minutes = 0.0;
  std::size_t reached = 0;
  std::size_t wrong_kills = 0;
  std::size_t quarantined = 0;
  std::size_t migrated = 0;
};

}  // namespace

int main() {
  bench::print_header("Extension: straggler mitigation",
                      "CIFAR POP sweep with fail-slow nodes, gray-failure layer off vs on");

  workload::CifarWorkloadModel model;
  constexpr int kRepeats = 5;
  constexpr std::size_t kMachines = 8;

  const Scenario scenarios[] = {
      {"fault-free"},
      {"1/8 nodes 2x slow", 1, 2.0},
      {"1/8 nodes 4x slow", 1, 4.0},
      {"2/8 nodes 2x slow", 2, 2.0},
      {"2/8 nodes 4x slow", 2, 4.0},
      {"4/8 nodes 2x slow", 4, 2.0},
      {"4/8 nodes 4x slow", 4, 4.0},
  };

  const auto run_arm = [&](const Scenario& s, bool mitigate) {
    ArmResult arm;
    for (std::uint64_t r = 0; r < kRepeats; ++r) {
      const auto trace = bench::suitable_trace(model, 100, 6200 + r * 31, kMachines * 2);
      // A budget with little slack over the fault-free time-to-target: this
      // is where slow-host-inflated epoch estimates turn into budget-driven
      // wrong kills unless the POP horizon is speed-normalized.
      const auto spec =
          bench::policy_spec(core::PolicyKind::Pop, r, util::SimTime::hours(4));
      const auto policy = core::make_policy(spec);

      cluster::ClusterOptions options;
      options.machines = kMachines;
      options.max_experiment_time = util::SimTime::hours(96);
      options.seed = r + 1;
      options.fault_plan.seed = 2000 + r;
      for (std::size_t m = 0; m < s.slow_nodes; ++m) {
        cluster::NodeSlowdownEvent slow;
        slow.machine = static_cast<cluster::MachineId>(m);
        slow.factor = s.factor;
        options.fault_plan.slowdowns.push_back(slow);
      }
      options.health.enabled = mitigate;

      cluster::HyperDriveCluster cluster(trace, options);
      const auto result = cluster.run(*policy);
      arm.minutes += result.reached_target ? result.time_to_target.to_minutes()
                                           : result.total_time.to_minutes();
      if (result.reached_target) ++arm.reached;
      arm.wrong_kills += result.recovery.wrong_kills;
      arm.quarantined += result.recovery.nodes_quarantined;
      arm.migrated += result.recovery.jobs_migrated;
    }
    arm.minutes /= kRepeats;
    return arm;
  };

  std::printf("  %-20s %12s %12s %11s %11s %7s %7s\n", "scenario", "ttt-off[min]",
              "ttt-on[min]", "wrongkill-off", "wrongkill-on", "quarant", "migrate");
  double free_minutes = 0.0;
  for (const Scenario& s : scenarios) {
    const ArmResult off = run_arm(s, false);
    const ArmResult on = run_arm(s, true);
    if (free_minutes == 0.0) free_minutes = off.minutes;
    std::printf("  %-20s %12.1f %12.1f %13zu %12zu %7zu %7zu", s.label, off.minutes,
                on.minutes, off.wrong_kills, on.wrong_kills, on.quarantined,
                on.migrated);
    if (off.reached < kRepeats || on.reached < kRepeats) {
      std::printf("  (off %zu/%d, on %zu/%d reached)", off.reached, kRepeats,
                  on.reached, kRepeats);
    }
    std::printf("\n");
  }

  std::printf(
      "\n  Fail-slow nodes are invisible to crash-style fault tolerance: the\n"
      "  node keeps acking, so only the EWMA speed score + quarantine +\n"
      "  migration layer (ttt-on) recovers the time-to-target gap and turns\n"
      "  budget-driven wrong kills back into zero. The tradeoff is capacity:\n"
      "  once half the cluster is (mildly) slow, quarantining it costs more\n"
      "  than the slowdown itself — detection thresholds assume stragglers\n"
      "  are the minority, as in the fleet studies DESIGN.md §7 cites.\n");
  return 0;
}
