// §5.2 "Overlap training and prediction": the paper's Node Agents start a
// learning-curve prediction in parallel with training rather than blocking
// the job, arguing "the end-to-end performance gains outweigh any slowdown
// ... due to resource contention".
//
// This bench quantifies that choice on the cluster substrate: the same POP
// experiment with a realistic per-boundary prediction cost (tens of seconds
// of MCMC on the node agent), decided either overlapped (training continues,
// late suspend/terminate discards the partial epoch) or blocking (the
// machine holds the job idle until the decision arrives).
#include "bench_common.hpp"

using namespace hyperdrive;

int main() {
  bench::print_header("Extension §5.2", "overlapped vs blocking curve prediction (POP)");

  workload::CifarWorkloadModel model;
  constexpr int kRepeats = 5;

  // Prediction cost model: the reduced 70k-sample MCMC takes O(10s) per
  // curve on a worker core (see tab_mcmc_samples); spread lognormally.
  const auto prediction_cost = [](core::JobId, std::size_t, util::Rng& rng) {
    return util::SimTime::seconds(std::clamp(rng.lognormal(3.4, 0.4), 10.0, 120.0));
  };

  double overlapped_total = 0.0, blocking_total = 0.0, free_total = 0.0;
  for (std::uint64_t r = 0; r < kRepeats; ++r) {
    const auto trace = bench::suitable_trace(model, 100, 2800 + r * 53, 8);

    for (int mode = 0; mode < 3; ++mode) {
      const auto spec = bench::policy_spec(core::PolicyKind::Pop, r);
      const auto policy = core::make_policy(spec);
      cluster::ClusterOptions options;
      options.machines = 4;
      options.max_experiment_time = util::SimTime::hours(96);
      options.seed = r;
      if (mode > 0) options.decision_latency = prediction_cost;
      options.overlap_decisions = mode != 2;
      const auto result = cluster::run_cluster_experiment(trace, *policy, options);
      const double minutes = result.reached_target ? result.time_to_target.to_minutes()
                                                   : result.total_time.to_minutes();
      (mode == 0 ? free_total : mode == 1 ? overlapped_total : blocking_total) += minutes;
    }
  }

  std::printf("  free predictions (idealized):   %8.1f min avg\n", free_total / kRepeats);
  std::printf("  overlapped predictions (§5.2):  %8.1f min avg (+%.1f%% vs free)\n",
              overlapped_total / kRepeats,
              100.0 * (overlapped_total - free_total) / free_total);
  std::printf("  blocking predictions (naive):   %8.1f min avg (+%.1f%% vs free)\n",
              blocking_total / kRepeats, 100.0 * (blocking_total - free_total) / free_total);
  std::printf("\n  overlap saves %.1f%% of end-to-end time vs blocking "
              "(paper: gains outweigh the slowdown)\n",
              100.0 * (blocking_total - overlapped_total) / blocking_total);
  return 0;
}
