// §5.2 "Overlap training and prediction": the paper's Node Agents start a
// learning-curve prediction in parallel with training rather than blocking
// the job, arguing "the end-to-end performance gains outweigh any slowdown
// ... due to resource contention".
//
// This bench quantifies that choice on the cluster substrate: the same POP
// experiment with a realistic per-boundary prediction cost (tens of seconds
// of MCMC on the node agent), decided either overlapped (training continues,
// late suspend/terminate discards the partial epoch) or blocking (the
// machine holds the job idle until the decision arrives).
#include "bench_common.hpp"

using namespace hyperdrive;

int main(int argc, char** argv) {
  const auto bench_options = bench::parse_bench_args(argc, argv);
  bench::print_header("Extension §5.2", "overlapped vs blocking curve prediction (POP)");

  workload::CifarWorkloadModel model;

  // Prediction cost model: the reduced 70k-sample MCMC takes O(10s) per
  // curve on a worker core (see tab_mcmc_samples); spread lognormally.
  const auto prediction_cost = [](core::JobId, std::size_t, util::Rng& rng) {
    return util::SimTime::seconds(std::clamp(rng.lognormal(3.4, 0.4), 10.0, 120.0));
  };

  core::SweepSpec spec;
  spec.name = "ext_overlap_prediction";
  const auto mode_ax = spec.add_axis("mode", {"free", "overlapped", "blocking"});
  const auto repeat_ax = spec.add_repeat_axis(bench_options.repeats(5));
  spec.trace = [&](const core::SweepCell& cell) {
    return bench::suitable_trace(model, 100, 2800 + cell.at(repeat_ax) * 53, 8);
  };
  spec.policy = [&](const core::SweepCell& cell) {
    return bench::make_bench_policy("pop", cell.at(repeat_ax));
  };
  spec.options = [&](const core::SweepCell& cell) {
    const std::size_t mode = cell.at(mode_ax);
    core::RunnerOptions options;
    options.substrate = core::Substrate::Cluster;
    options.machines = 4;
    options.max_experiment_time = util::SimTime::hours(96);
    options.seed = cell.at(repeat_ax);
    if (mode > 0) options.decision_latency = prediction_cost;
    options.overlap_decisions = mode != 2;
    return options;
  };

  const auto table = bench::run_bench_sweep(spec, bench_options);
  const double repeats = static_cast<double>(table.axes[repeat_ax].values.size());

  const auto total_of = [&](const std::string& mode) {
    double minutes = 0.0;
    for (const auto* row : table.where("mode", mode)) minutes += row->minutes_to_target();
    return minutes;
  };
  const double free_total = total_of("free");
  const double overlapped_total = total_of("overlapped");
  const double blocking_total = total_of("blocking");

  std::printf("  free predictions (idealized):   %8.1f min avg\n", free_total / repeats);
  std::printf("  overlapped predictions (§5.2):  %8.1f min avg (+%.1f%% vs free)\n",
              overlapped_total / repeats,
              100.0 * (overlapped_total - free_total) / free_total);
  std::printf("  blocking predictions (naive):   %8.1f min avg (+%.1f%% vs free)\n",
              blocking_total / repeats, 100.0 * (blocking_total - free_total) / free_total);
  std::printf("\n  overlap saves %.1f%% of end-to-end time vs blocking "
              "(paper: gains outweigh the slowdown)\n",
              100.0 * (blocking_total - overlapped_total) / blocking_total);
  return 0;
}
