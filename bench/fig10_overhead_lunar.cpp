// Figure 10: suspend latency (left) and model snapshot size (right)
// distributions for the LunarLander workload, where suspend/resume goes
// through whole-process CRIU snapshots. Paper: latency <= 22.36 s and
// snapshot size <= 43.75 MB — small relative to training time.
#include "bench_common.hpp"

using namespace hyperdrive;

int main() {
  bench::print_header("Figure 10", "CRIU suspend latency & snapshot size CDFs (LunarLander)");

  workload::LunarWorkloadModel model;
  std::vector<double> latencies_s, sizes_mb;
  double training_minutes = 0.0;

  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto trace = bench::reachable_trace(model, 100, 1000 + seed * 29);
    core::RunnerOptions options;
    options.machines = 15;
    options.substrate = core::Substrate::Cluster;
    options.overheads = cluster::lunar_criu_overhead_model();
    options.seed = seed;
    options.max_experiment_time = util::SimTime::hours(96);
    const auto result = core::run_experiment(
        trace, bench::policy_spec(core::PolicyKind::Pop, seed), options);
    for (const auto& s : result.suspend_samples) {
      latencies_s.push_back(s.latency.to_seconds());
      sizes_mb.push_back(s.snapshot_bytes / 1e6);
    }
    training_minutes += result.total_machine_time.to_minutes();
  }

  bench::print_ecdf("latency", latencies_s, "s");
  bench::print_ecdf("snapshot", sizes_mb, "MB");
  std::printf("\nmax latency %.2f s (paper <= 22.36 s), max snapshot %.2f MB "
              "(paper <= 43.75 MB), suspends: %zu\n",
              util::max_of(latencies_s), util::max_of(sizes_mb), latencies_s.size());
  if (!latencies_s.empty()) {
    double total_suspend_min = 0.0;
    for (double l : latencies_s) total_suspend_min += l / 60.0;
    std::printf("suspend time as share of training machine time: %.3f%% "
                "(paper: considerably small)\n",
                100.0 * total_suspend_min / training_minutes);
  }
  return 0;
}
