// Figure 10: suspend latency (left) and model snapshot size (right)
// distributions for the LunarLander workload, where suspend/resume goes
// through whole-process CRIU snapshots. Paper: latency <= 22.36 s and
// snapshot size <= 43.75 MB — small relative to training time.
#include "bench_common.hpp"

using namespace hyperdrive;

int main(int argc, char** argv) {
  const auto bench_options = bench::parse_bench_args(argc, argv);
  bench::print_header("Figure 10", "CRIU suspend latency & snapshot size CDFs (LunarLander)");

  workload::LunarWorkloadModel model;

  core::SweepSpec spec;
  spec.name = "fig10_overhead_lunar";
  const auto repeat_ax = spec.add_repeat_axis(bench_options.repeats(5));
  spec.trace = [&](const core::SweepCell& cell) {
    return bench::reachable_trace(model, 100, 1000 + cell.at(repeat_ax) * 29);
  };
  spec.policy = [&](const core::SweepCell& cell) {
    return bench::make_bench_policy("pop", cell.at(repeat_ax));
  };
  spec.options = [&](const core::SweepCell& cell) {
    core::RunnerOptions options;
    options.machines = 15;
    options.substrate = core::Substrate::Cluster;
    options.overheads = cluster::lunar_criu_overhead_model();
    options.seed = cell.at(repeat_ax);
    options.max_experiment_time = util::SimTime::hours(96);
    return options;
  };

  const auto table = bench::run_bench_sweep(spec, bench_options);

  std::vector<double> latencies_s, sizes_mb;
  double training_minutes = 0.0;
  for (const auto& row : table.rows) {
    for (const auto& s : row.result.suspend_samples) {
      latencies_s.push_back(s.latency.to_seconds());
      sizes_mb.push_back(s.snapshot_bytes / 1e6);
    }
    training_minutes += row.result.total_machine_time.to_minutes();
  }

  bench::print_ecdf("latency", latencies_s, "s");
  bench::print_ecdf("snapshot", sizes_mb, "MB");
  std::printf("\nmax latency %.2f s (paper <= 22.36 s), max snapshot %.2f MB "
              "(paper <= 43.75 MB), suspends: %zu\n",
              util::max_of(latencies_s), util::max_of(sizes_mb), latencies_s.size());
  if (!latencies_s.empty()) {
    double total_suspend_min = 0.0;
    for (double l : latencies_s) total_suspend_min += l / 60.0;
    std::printf("suspend time as share of training machine time: %.3f%% "
                "(paper: considerably small)\n",
                100.0 * total_suspend_min / training_minutes);
  }
  return 0;
}
