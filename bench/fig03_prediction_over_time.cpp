// Figure 3: predicted vs measured validation-accuracy curves at different
// points of training (epoch 10, epoch 30, final). Early predictions carry
// little confidence; by epoch 30 the posterior has tightened around the
// measured trajectory.
#include "bench_common.hpp"

#include <cmath>

#include "curve/predictor.hpp"

using namespace hyperdrive;

int main() {
  bench::print_header("Figure 3",
                      "prediction mean +- stddev at epoch 10 / 30 vs measured final");

  workload::CifarWorkloadModel model;
  const auto trace = workload::generate_trace(model, 40, /*seed=*/333);

  curve::PredictorConfig config;
  // Full 11-family ensemble is 48-dim: the Goodman–Weare constraint
  // (even, >= 2 * dim) needs at least 96 walkers.
  config.mcmc.nwalkers = 100;
  config.mcmc.nsamples = 400;
  config.mcmc.burn_in = 150;
  config.mcmc.thin = 5;
  config.seed = 3;
  const auto predictor = curve::make_mcmc_predictor(config);
  const std::vector<double> horizon = {120.0};

  std::printf("job   measured@120 | pred@10 (+-PA)   | pred@30 (+-PA)\n");
  double pa10_total = 0.0, pa30_total = 0.0;
  double err10_total = 0.0, err30_total = 0.0;
  std::size_t counted = 0;
  for (const auto& job : trace.jobs) {
    if (job.curve.final_perf() < 0.2) continue;  // plot learners, like the paper
    if (counted == 8) break;
    std::vector<double> p10(job.curve.perf.begin(), job.curve.perf.begin() + 10);
    std::vector<double> p30(job.curve.perf.begin(), job.curve.perf.begin() + 30);
    const auto pred10 = predictor->predict(p10, horizon, 120.0);
    const auto pred30 = predictor->predict(p30, horizon, 120.0);
    std::printf("%3llu      %.3f     |  %.3f (+-%.3f) |  %.3f (+-%.3f)\n",
                static_cast<unsigned long long>(job.job_id), job.curve.final_perf(),
                pred10.mean_at(0), pred10.stddev_at(0), pred30.mean_at(0),
                pred30.stddev_at(0));
    pa10_total += pred10.stddev_at(0);
    pa30_total += pred30.stddev_at(0);
    err10_total += std::abs(pred10.mean_at(0) - job.curve.final_perf());
    err30_total += std::abs(pred30.mean_at(0) - job.curve.final_perf());
    ++counted;
  }

  if (counted > 0) {
    const double n = static_cast<double>(counted);
    std::printf("\nmean |error|: epoch 10 = %.3f, epoch 30 = %.3f (should shrink)\n",
                err10_total / n, err30_total / n);
    std::printf("mean PA:      epoch 10 = %.3f, epoch 30 = %.3f (should shrink)\n",
                pa10_total / n, pa30_total / n);
  }
  return 0;
}
