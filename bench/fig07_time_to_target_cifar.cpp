// Figure 7: time to reach the 77% target validation accuracy on CIFAR-10
// with 4 machines, repeated 10 times per policy (box plots). Paper: POP
// averages 2.8 h vs Bandit 4.5 h (1.6x) and EarlyTerm 6.1 h (2.1x), with a
// much smaller min-max spread; POP's worst run beats the others' best.
#include "bench_common.hpp"

using namespace hyperdrive;

int main(int argc, char** argv) {
  const auto bench_options = bench::parse_bench_args(argc, argv);
  bench::print_header("Figure 7", "time to 77% accuracy, CIFAR-10, 4 machines, 10 repeats");

  workload::CifarWorkloadModel model;
  const std::size_t repeats = bench_options.repeats(10);

  // One hyperparameter set (same random-search HG + seed, §6.1), repeated
  // with fresh training noise per repeat.
  const auto base = bench::suitable_trace(model, 100, 2202, /*machines=*/4);

  core::SweepSpec spec;
  spec.name = "fig07_time_to_target_cifar";
  const auto policy_ax = spec.add_policy_axis(bench::all_policies());
  const auto repeat_ax = spec.add_repeat_axis(repeats);
  spec.trace = [&](const core::SweepCell& cell) {
    return bench::renoise(model, base, 0xF167 ^ cell.at(repeat_ax));
  };
  spec.policy = [&](const core::SweepCell& cell) {
    return bench::make_bench_policy(bench::all_policies()[cell.at(policy_ax)],
                                    cell.at(repeat_ax));
  };
  spec.options = [&](const core::SweepCell& cell) {
    core::RunnerOptions options;
    options.machines = 4;
    options.substrate = core::Substrate::Cluster;
    options.overheads = cluster::cifar_overhead_model();
    options.seed = cell.at(repeat_ax);
    options.max_experiment_time = util::SimTime::hours(96);
    return options;
  };

  const auto table = bench::run_bench_sweep(spec, bench_options);

  for (const auto& label : bench::all_policies()) {
    bench::print_box(label, table.minutes_where("policy", label), "min");
  }

  // Speedups keyed by policy label (never by all_policies() position).
  const auto mean_of = [&](const std::string& label) {
    return util::mean(table.minutes_where("policy", label));
  };
  const double pop = mean_of("pop");
  std::printf("\nspeedups (mean): POP vs Bandit %.2fx (paper 1.6x), "
              "POP vs EarlyTerm %.2fx (paper 2.1x), POP vs Default %.2fx (paper up to 6.7x)\n",
              mean_of("bandit") / pop, mean_of("earlyterm") / pop,
              mean_of("default") / pop);
  return 0;
}
