// Figure 7: time to reach the 77% target validation accuracy on CIFAR-10
// with 4 machines, repeated 10 times per policy (box plots). Paper: POP
// averages 2.8 h vs Bandit 4.5 h (1.6x) and EarlyTerm 6.1 h (2.1x), with a
// much smaller min-max spread; POP's worst run beats the others' best.
#include "bench_common.hpp"

using namespace hyperdrive;

int main() {
  bench::print_header("Figure 7", "time to 77% accuracy, CIFAR-10, 4 machines, 10 repeats");

  workload::CifarWorkloadModel model;
  constexpr int kRepeats = 10;

  // One hyperparameter set (same random-search HG + seed, §6.1), repeated
  // ten times with fresh training noise per repeat.
  const auto base = bench::suitable_trace(model, 100, 2202, /*machines=*/4);

  std::vector<double> means;
  for (const auto kind : bench::all_policies()) {
    std::vector<double> minutes;
    for (std::uint64_t r = 0; r < kRepeats; ++r) {
      const auto trace = bench::renoise(model, base, 0xF167 ^ r);
      core::RunnerOptions options;
      options.machines = 4;
      options.substrate = core::Substrate::Cluster;
      options.overheads = cluster::cifar_overhead_model();
      options.seed = r;
      options.max_experiment_time = util::SimTime::hours(96);
      const auto result = core::run_experiment(trace, bench::policy_spec(kind, r), options);
      if (result.reached_target) {
        minutes.push_back(result.time_to_target.to_minutes());
      } else {
        minutes.push_back(result.total_time.to_minutes());  // censored at Tmax
      }
    }
    bench::print_box(std::string(core::to_string(kind)), minutes, "min");
    means.push_back(util::mean(minutes));
  }

  std::printf("\nspeedups (mean): POP vs Bandit %.2fx (paper 1.6x), "
              "POP vs EarlyTerm %.2fx (paper 2.1x), POP vs Default %.2fx (paper up to 6.7x)\n",
              means[1] / means[0], means[2] / means[0], means[3] / means[0]);
  return 0;
}
