// Extension: service front-end throughput (DESIGN.md §14). Measures what the
// always-on front-end costs on top of the coordinator, over real TCP
// loopback with one Client per tenant:
//
//   * submission throughput — round-trip submit rate against a gate server
//     (--max-running 0 equivalent: everything queues, so the measurement is
//     pure protocol + admission + bookkeeping, no study compute);
//   * time-to-first-grant — wall time from the first submit of a batch (one
//     tiny study per tenant, max_running=1) until the server reports the
//     first study running, plus the mean queue wait the svc.queue_wait_ms
//     histogram accumulated while the rest of the batch drained.
//
// Both sweeps run at 1/2/4/8 tenants (1/2 under --smoke) and land in
// BENCH_service.json (schema: EXPERIMENTS.md "Service throughput bench").
#include "bench_common.hpp"
#include "bench_json.hpp"

#include <chrono>
#include <memory>
#include <cstdio>
#include <string>
#include <vector>

#include "svc/client.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"

using namespace hyperdrive;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(const Clock::time_point& from) {
  return std::chrono::duration<double, std::milli>(Clock::now() - from).count();
}

// Tiny spec: admission/protocol dominate, the study itself is trivial.
std::string tiny_spec(const std::string& name) {
  return "study " + name + "\nworkload cifar10\npolicy pop\nconfigs 2\nseed 3\n";
}

std::unique_ptr<svc::Client> make_client(std::uint16_t port) {
  svc::ClientOptions copts;
  copts.port = port;
  copts.retries = 3;
  return std::make_unique<svc::Client>(copts);
}

/// Submit-rate sweep cell: `per_tenant` submissions from each of `tenants`
/// round-robin clients against a queue-everything server.
double submit_rate(std::size_t tenants, std::size_t per_tenant) {
  svc::ServiceOptions sopts;  // memory-only: no journal I/O in this arm
  sopts.admission.max_running = 0;
  sopts.admission.max_queued = tenants * per_tenant + 1;
  sopts.admission.tenant.max_queued = per_tenant + 1;
  svc::StudyService service(sopts);
  svc::Server server(service, {});
  server.start();

  std::vector<std::unique_ptr<svc::Client>> clients;
  clients.reserve(tenants);
  for (std::size_t t = 0; t < tenants; ++t) clients.push_back(make_client(server.port()));

  const auto t0 = Clock::now();
  for (std::size_t k = 0; k < per_tenant; ++k) {
    for (std::size_t t = 0; t < tenants; ++t) {
      const svc::Message reply =
          clients[t]->submit("tenant-" + std::to_string(t), tiny_spec("s"));
      if (reply.type != svc::MsgType::Submitted) {
        std::fprintf(stderr, "FAIL: submit rejected: %s\n", reply.text.c_str());
        std::exit(1);
      }
    }
  }
  const double wall = ms_since(t0);
  server.request_stop();
  server.wait_shutdown();
  service.stop();
  return 1000.0 * static_cast<double>(tenants * per_tenant) / wall;
}

struct GrantTimes {
  double first_grant_ms = 0.0;
  double queue_wait_mean_ms = 0.0;
};

/// Grant-latency sweep cell: one tiny study per tenant through a
/// max_running=1 server; the first submit is granted inline, the rest queue
/// and drain one at a time while the histogram accumulates their waits.
GrantTimes grant_latency(std::size_t tenants) {
  obs::MetricsRegistry registry;
  svc::preregister_service_metrics(registry);
  svc::ServiceOptions sopts;
  sopts.admission.max_running = 1;
  sopts.admission.max_queued = tenants + 1;
  sopts.admission.tenant.max_queued = 2;
  sopts.obs.metrics = &registry;
  svc::StudyService service(sopts);
  svc::Server server(service, {});
  server.start();

  GrantTimes out;
  {
    const auto client = make_client(server.port());
    const auto t0 = Clock::now();
    for (std::size_t t = 0; t < tenants; ++t) {
      const svc::Message reply =
          client->submit("tenant-" + std::to_string(t), tiny_spec("s"));
      if (reply.type != svc::MsgType::Submitted) {
        std::fprintf(stderr, "FAIL: submit rejected: %s\n", reply.text.c_str());
        std::exit(1);
      }
      if (t == 0) {
        if (reply.state != svc::StudyState::Running) {
          std::fprintf(stderr, "FAIL: first submission was not granted inline\n");
          std::exit(1);
        }
        out.first_grant_ms = ms_since(t0);
      }
    }
  }
  service.wait_idle();
  server.request_stop();
  server.wait_shutdown();
  service.stop();

  const auto& wait = registry.histogram("svc.queue_wait_ms",
                                        {1.0, 10.0, 100.0, 1000.0, 10000.0});
  if (wait.count() > 0) out.queue_wait_mean_ms = wait.sum() / wait.count();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_bench_args(argc, argv);
  bench::print_header("Extension: service front-end throughput",
                      "submit rate + grant latency over TCP loopback vs tenant count");

  const std::vector<std::size_t> tenant_counts =
      options.smoke ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4, 8};
  const std::size_t per_tenant = options.smoke ? 10 : 50;

  bench::BenchJson json("ext_service_throughput");
  const auto wall0 = Clock::now();

  std::printf("\n%-8s %16s %18s %20s\n", "tenants", "submits/s", "first-grant (ms)",
              "queue-wait mean (ms)");
  for (const std::size_t tenants : tenant_counts) {
    const double rate = submit_rate(tenants, per_tenant);
    const GrantTimes grant = grant_latency(tenants);
    std::printf("%-8zu %16.1f %18.3f %20.3f\n", tenants, rate, grant.first_grant_ms,
                grant.queue_wait_mean_ms);
    const std::string suffix = "_t" + std::to_string(tenants);
    json.set("submits_per_s" + suffix, rate);
    json.set("first_grant_ms" + suffix, grant.first_grant_ms);
    json.set("queue_wait_mean_ms" + suffix, grant.queue_wait_mean_ms);
  }

  json.set("wall_ms", ms_since(wall0));
  json.set_count("per_tenant", per_tenant);
  json.set_count("smoke", options.smoke ? 1 : 0);
  json.write_file(options.out.empty() ? "BENCH_service.json" : options.out);
  std::printf("\nrecord written to %s\n",
              options.out.empty() ? "BENCH_service.json" : options.out.c_str());
  return 0;
}
