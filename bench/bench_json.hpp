// BENCH_*.json writer: the perf-tracking record every perf_* bench emits so
// the predictor/sweep throughput trajectory is comparable across PRs
// (ROADMAP item 1; schema documented in EXPERIMENTS.md).
//
// Contract (locked by tests/bench/bench_json_test.cpp):
//   - keys appear in insertion order, with "name" first and "git" second —
//     diffs between two BENCH files line up line by line;
//   - doubles are always rendered with %.6f, so a re-run that produces the
//     same numbers produces the same bytes;
//   - one flat JSON object, no nesting — trivially greppable and parseable
//     by the minimal reader below without a JSON library.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace hyperdrive::bench {

/// `git describe --always --dirty` of the working tree, or "unknown" when
/// git (or the .git directory) is unavailable — BENCH files must still be
/// writable from an exported tarball.
inline std::string git_describe() {
  std::string out;
#if defined(_WIN32)
  FILE* pipe = nullptr;
#else
  FILE* pipe = ::popen("git describe --always --dirty 2>/dev/null", "r");
#endif
  if (pipe != nullptr) {
    char buf[256];
    while (std::fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
#if !defined(_WIN32)
    ::pclose(pipe);
#endif
  }
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) out.pop_back();
  return out.empty() ? std::string("unknown") : out;
}

/// Insertion-ordered flat JSON object builder for BENCH_*.json records.
class BenchJson {
 public:
  /// Starts the record with the two required keys: "name" (the bench id)
  /// and "git" (git_describe(), overridable for tests via `git`).
  explicit BenchJson(std::string name, std::string git = git_describe()) {
    set(/*key=*/"name", std::move(name));
    set(/*key=*/"git", std::move(git));
  }

  /// Append (or overwrite, preserving the original position) a double
  /// metric. Always rendered %.6f.
  void set(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", value);
    put(key, buf, /*quoted=*/false);
  }

  void set(const std::string& key, std::string value) {
    put(key, std::move(value), /*quoted=*/true);
  }

  /// Integers (repeat counts, walker counts) are rendered without a decimal
  /// point so they read as what they are.
  void set_count(const std::string& key, unsigned long long value) {
    put(key, std::to_string(value), /*quoted=*/false);
  }

  /// Render the record: one key per line, two-space indent, insertion order.
  [[nodiscard]] std::string to_string() const {
    std::string out = "{\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      out += "  \"" + entries_[i].key + "\": ";
      if (entries_[i].quoted) {
        out += '"' + escaped(entries_[i].value) + '"';
      } else {
        out += entries_[i].value;
      }
      if (i + 1 < entries_.size()) out += ',';
      out += '\n';
    }
    out += "}\n";
    return out;
  }

  /// Write to `path` (e.g. "BENCH_predictor.json") and echo the path.
  void write_file(const std::string& path) const {
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) throw std::runtime_error("bench_json: cannot write " + path);
    const std::string text = to_string();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("[bench_json] wrote %s\n", path.c_str());
  }

 private:
  struct Entry {
    std::string key;
    std::string value;  ///< pre-rendered
    bool quoted = false;
  };

  void put(const std::string& key, std::string value, bool quoted) {
    for (auto& e : entries_) {
      if (e.key == key) {
        e.value = std::move(value);
        e.quoted = quoted;
        return;
      }
    }
    entries_.push_back(Entry{key, std::move(value), quoted});
  }

  static std::string escaped(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  std::vector<Entry> entries_;
};

/// Minimal reader for the flat records BenchJson writes — enough for the
/// schema round-trip test and for tooling that compares BENCH files across
/// PRs. Not a general JSON parser: exactly the writer's output grammar.
struct ParsedBenchJson {
  /// Key/value pairs in file order; string values are unescaped and
  /// unquoted, numbers kept as their literal text (so "%.6f" is checkable).
  std::vector<std::pair<std::string, std::string>> entries;

  [[nodiscard]] const std::string* find(const std::string& key) const {
    for (const auto& [k, v] : entries) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

inline ParsedBenchJson parse_bench_json(const std::string& text) {
  ParsedBenchJson out;
  std::size_t pos = 0;
  auto skip_ws = [&] {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\n' || text[pos] == '\t' || text[pos] == '\r'))
      ++pos;
  };
  auto read_string = [&]() -> std::string {
    if (pos >= text.size() || text[pos] != '"')
      throw std::runtime_error("bench_json: expected '\"'");
    ++pos;
    std::string s;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) ++pos;
      s += text[pos++];
    }
    if (pos >= text.size()) throw std::runtime_error("bench_json: unterminated string");
    ++pos;
    return s;
  };
  skip_ws();
  if (pos >= text.size() || text[pos] != '{') throw std::runtime_error("bench_json: expected '{'");
  ++pos;
  skip_ws();
  while (pos < text.size() && text[pos] != '}') {
    std::string key = read_string();
    skip_ws();
    if (pos >= text.size() || text[pos] != ':') throw std::runtime_error("bench_json: expected ':'");
    ++pos;
    skip_ws();
    std::string value;
    if (pos < text.size() && text[pos] == '"') {
      value = read_string();
    } else {
      while (pos < text.size() && text[pos] != ',' && text[pos] != '\n' && text[pos] != '}')
        value += text[pos++];
      while (!value.empty() && (value.back() == ' ' || value.back() == '\r')) value.pop_back();
    }
    out.entries.emplace_back(std::move(key), std::move(value));
    skip_ws();
    if (pos < text.size() && text[pos] == ',') ++pos;
    skip_ws();
  }
  if (pos >= text.size()) throw std::runtime_error("bench_json: expected '}'");
  return out;
}

}  // namespace hyperdrive::bench
