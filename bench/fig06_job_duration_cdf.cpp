// Figure 6: distribution of per-job execution durations under POP, Bandit
// and EarlyTerm on the CIFAR-10 workload. Paper: Bandit and EarlyTerm spend
// >= 30 minutes on ~15% of jobs, POP on only ~5% — POP wastes far less time
// on less-promising jobs.
#include "bench_common.hpp"

using namespace hyperdrive;

int main(int argc, char** argv) {
  const auto bench_options = bench::parse_bench_args(argc, argv);
  bench::print_header("Figure 6", "job execution duration CDF (CIFAR-10, 4 machines)");

  workload::CifarWorkloadModel model;

  core::SweepSpec spec;
  spec.name = "fig06_job_duration_cdf";
  const auto policy_ax = spec.add_policy_axis(bench::evaluated_policies());
  const auto repeat_ax = spec.add_repeat_axis(bench_options.repeats(5));
  spec.trace = [&](const core::SweepCell& cell) {
    return bench::reachable_trace(model, 100, 600 + cell.at(repeat_ax) * 13);
  };
  spec.policy = [&](const core::SweepCell& cell) {
    return bench::make_bench_policy(bench::evaluated_policies()[cell.at(policy_ax)],
                                    cell.at(repeat_ax));
  };
  spec.options = [&](const core::SweepCell& cell) {
    core::RunnerOptions options;
    options.machines = 4;
    options.substrate = core::Substrate::Cluster;
    options.seed = cell.at(repeat_ax);
    options.max_experiment_time = util::SimTime::hours(48);
    return options;
  };

  const auto table = bench::run_bench_sweep(spec, bench_options);

  for (const auto& label : bench::evaluated_policies()) {
    // Aggregate across the experiment repetitions for a smooth CDF. Jobs
    // never scheduled before the experiment stopped count as zero execution
    // time: Fig. 6 is a distribution over the whole set.
    std::vector<double> durations_min;
    double over30 = 0.0, total = 0.0;
    for (const auto* row : table.where("policy", label)) {
      for (const auto& js : row->result.job_stats) {
        durations_min.push_back(js.execution_time.to_minutes());
        total += 1.0;
        if (js.execution_time >= util::SimTime::minutes(30)) over30 += 1.0;
      }
    }
    bench::print_ecdf(label, durations_min, "min");
    std::printf("             jobs running >= 30 min: %.1f%%\n",
                total > 0 ? 100.0 * over30 / total : 0.0);
  }
  std::printf("\n(paper: POP ~5%% of jobs >= 30 min vs ~15%% for Bandit/EarlyTerm)\n");
  return 0;
}
