// Figure 6: distribution of per-job execution durations under POP, Bandit
// and EarlyTerm on the CIFAR-10 workload. Paper: Bandit and EarlyTerm spend
// >= 30 minutes on ~15% of jobs, POP on only ~5% — POP wastes far less time
// on less-promising jobs.
#include "bench_common.hpp"

using namespace hyperdrive;

int main() {
  bench::print_header("Figure 6", "job execution duration CDF (CIFAR-10, 4 machines)");

  workload::CifarWorkloadModel model;

  for (const auto kind : bench::evaluated_policies()) {
    // Aggregate across several experiment repetitions for a smooth CDF.
    std::vector<double> durations_min;
    double over30 = 0.0, total = 0.0;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      const auto trace = bench::reachable_trace(model, 100, 600 + seed * 13);
      core::RunnerOptions options;
      options.machines = 4;
      options.substrate = core::Substrate::Cluster;
      options.seed = seed;
      options.max_experiment_time = util::SimTime::hours(48);
      const auto result =
          core::run_experiment(trace, bench::policy_spec(kind, seed), options);
      for (const auto& js : result.job_stats) {
        // Jobs never scheduled before the experiment stopped count as zero
        // execution time: Fig. 6 is a distribution over the whole set.
        durations_min.push_back(js.execution_time.to_minutes());
        total += 1.0;
        if (js.execution_time >= util::SimTime::minutes(30)) over30 += 1.0;
      }
    }
    bench::print_ecdf(std::string(core::to_string(kind)), durations_min, "min");
    std::printf("             jobs running >= 30 min: %.1f%%\n",
                total > 0 ? 100.0 * over30 / total : 0.0);
  }
  std::printf("\n(paper: POP ~5%% of jobs >= 30 min vs ~15%% for Bandit/EarlyTerm)\n");
  return 0;
}
