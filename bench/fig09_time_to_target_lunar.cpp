// Figure 9: time to reach the LunarLander solved condition (sustained
// average reward of 200) with 15 machines, repeated 5 times per policy.
// Paper: POP's median is 2.07x faster than Bandit and 1.26x faster than
// EarlyTerm, with variance 9.7x / 3.5x smaller.
#include "bench_common.hpp"

using namespace hyperdrive;

int main(int argc, char** argv) {
  const auto bench_options = bench::parse_bench_args(argc, argv);
  bench::print_header("Figure 9", "time to solved reward, LunarLander, 15 machines, 5 repeats");

  workload::LunarWorkloadModel model;

  // One hyperparameter set, five repeats with fresh training noise (§6.1).
  const auto base = bench::suitable_trace(model, 100, 2000, /*machines=*/15);

  core::SweepSpec spec;
  spec.name = "fig09_time_to_target_lunar";
  const auto policy_ax = spec.add_policy_axis(bench::evaluated_policies());
  const auto repeat_ax = spec.add_repeat_axis(bench_options.repeats(5));
  spec.trace = [&](const core::SweepCell& cell) {
    return bench::renoise(model, base, 0xF169 ^ cell.at(repeat_ax));
  };
  spec.policy = [&](const core::SweepCell& cell) {
    return bench::make_bench_policy(bench::evaluated_policies()[cell.at(policy_ax)],
                                    cell.at(repeat_ax));
  };
  spec.options = [&](const core::SweepCell& cell) {
    core::RunnerOptions options;
    options.machines = 15;
    options.substrate = core::Substrate::Cluster;
    options.overheads = cluster::lunar_criu_overhead_model();
    options.seed = cell.at(repeat_ax);
    options.max_experiment_time = util::SimTime::hours(96);
    return options;
  };

  const auto table = bench::run_bench_sweep(spec, bench_options);

  // Keyed by policy label — never by evaluated_policies() position.
  const auto minutes_of = [&](const std::string& label) {
    return table.minutes_where("policy", label);
  };
  for (const auto& label : bench::evaluated_policies()) {
    bench::print_box(label, minutes_of(label), "min");
  }

  const auto pop = minutes_of("pop");
  const auto bandit = minutes_of("bandit");
  const auto earlyterm = minutes_of("earlyterm");
  std::printf("\nmedian speedups: POP vs Bandit %.2fx (paper 2.07x), "
              "POP vs EarlyTerm %.2fx (paper 1.26x)\n",
              util::median(bandit) / util::median(pop),
              util::median(earlyterm) / util::median(pop));
  if (util::variance(pop) > 0.0) {
    std::printf("variance ratios: Bandit/POP %.1fx (paper 9.7x), EarlyTerm/POP %.1fx "
                "(paper 3.5x)\n",
                util::variance(bandit) / util::variance(pop),
                util::variance(earlyterm) / util::variance(pop));
  }
  return 0;
}
