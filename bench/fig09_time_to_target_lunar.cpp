// Figure 9: time to reach the LunarLander solved condition (sustained
// average reward of 200) with 15 machines, repeated 5 times per policy.
// Paper: POP's median is 2.07x faster than Bandit and 1.26x faster than
// EarlyTerm, with variance 9.7x / 3.5x smaller.
#include "bench_common.hpp"

using namespace hyperdrive;

int main() {
  bench::print_header("Figure 9", "time to solved reward, LunarLander, 15 machines, 5 repeats");

  workload::LunarWorkloadModel model;
  constexpr int kRepeats = 5;

  // One hyperparameter set, five repeats with fresh training noise (§6.1).
  const auto base = bench::suitable_trace(model, 100, 2000, /*machines=*/15);

  std::vector<double> medians, variances;
  for (const auto kind : bench::evaluated_policies()) {
    std::vector<double> minutes;
    for (std::uint64_t r = 0; r < kRepeats; ++r) {
      const auto trace = bench::renoise(model, base, 0xF169 ^ r);
      core::RunnerOptions options;
      options.machines = 15;
      options.substrate = core::Substrate::Cluster;
      options.overheads = cluster::lunar_criu_overhead_model();
      options.seed = r;
      options.max_experiment_time = util::SimTime::hours(96);
      const auto result = core::run_experiment(trace, bench::policy_spec(kind, r), options);
      minutes.push_back(result.reached_target ? result.time_to_target.to_minutes()
                                              : result.total_time.to_minutes());
    }
    bench::print_box(std::string(core::to_string(kind)), minutes, "min");
    medians.push_back(util::median(minutes));
    variances.push_back(util::variance(minutes));
  }

  std::printf("\nmedian speedups: POP vs Bandit %.2fx (paper 2.07x), "
              "POP vs EarlyTerm %.2fx (paper 1.26x)\n",
              medians[1] / medians[0], medians[2] / medians[0]);
  if (variances[0] > 0.0) {
    std::printf("variance ratios: Bandit/POP %.1fx (paper 9.7x), EarlyTerm/POP %.1fx "
                "(paper 3.5x)\n",
                variances[1] / variances[0], variances[2] / variances[0]);
  }
  return 0;
}
