// Figure 12a: simulator validation. The paper compares its trace-driven
// simulator against the live system on LunarLander with 15 machines and
// reports a maximum error of 13%. Here the high-fidelity cluster (jitter,
// suspend/resume and messaging overheads) plays the live system and the
// idealized TraceReplaySimulator plays the simulator.
#include "bench_common.hpp"

#include <cmath>

using namespace hyperdrive;

int main(int argc, char** argv) {
  const auto bench_options = bench::parse_bench_args(argc, argv);
  bench::print_header("Figure 12a", "simulator vs 'live' cluster, LunarLander, 15 machines");

  workload::LunarWorkloadModel model;

  core::SweepSpec spec;
  spec.name = "fig12a_sim_validation";
  const auto policy_ax = spec.add_policy_axis(bench::evaluated_policies());
  const auto substrate_ax = spec.add_axis("substrate", {"live", "sim"});
  const auto repeat_ax = spec.add_repeat_axis(bench_options.repeats(5));
  spec.trace = [&](const core::SweepCell& cell) {
    return bench::reachable_trace(model, 100, 1100 + cell.at(repeat_ax) * 31);
  };
  spec.policy = [&](const core::SweepCell& cell) {
    return bench::make_bench_policy(bench::evaluated_policies()[cell.at(policy_ax)],
                                    cell.at(repeat_ax));
  };
  spec.options = [&](const core::SweepCell& cell) {
    core::RunnerOptions options;
    options.machines = 15;
    options.max_experiment_time = util::SimTime::hours(96);
    options.seed = cell.at(repeat_ax);
    if (cell.at(substrate_ax) == 0) {
      options.substrate = core::Substrate::Cluster;
      options.overheads = cluster::lunar_criu_overhead_model();
    } else {
      options.substrate = core::Substrate::TraceReplay;
    }
    return options;
  };

  const auto table = bench::run_bench_sweep(spec, bench_options);
  const std::size_t repeats = table.axes[repeat_ax].values.size();

  std::printf("policy      live(min)  sim(min)  error%%\n");
  double max_error = 0.0;
  for (const auto& label : bench::evaluated_policies()) {
    double live_total = 0.0, sim_total = 0.0;
    for (const auto* row : table.where("policy", label)) {
      const bool live = table.label(*row, "substrate") == "live";
      (live ? live_total : sim_total) += row->minutes_to_target();
    }
    const double error =
        live_total > 0.0 ? 100.0 * std::fabs(sim_total - live_total) / live_total : 0.0;
    max_error = std::max(max_error, error);
    std::printf("%-10s  %9.1f  %8.1f  %6.2f\n", label.c_str(),
                live_total / static_cast<double>(repeats),
                sim_total / static_cast<double>(repeats), error);
  }
  std::printf("\nmax simulation error: %.2f%% (paper: 13%%)\n", max_error);
  return 0;
}
