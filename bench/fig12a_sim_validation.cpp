// Figure 12a: simulator validation. The paper compares its trace-driven
// simulator against the live system on LunarLander with 15 machines and
// reports a maximum error of 13%. Here the high-fidelity cluster (jitter,
// suspend/resume and messaging overheads) plays the live system and the
// idealized TraceReplaySimulator plays the simulator.
#include "bench_common.hpp"

#include <cmath>

using namespace hyperdrive;

int main() {
  bench::print_header("Figure 12a", "simulator vs 'live' cluster, LunarLander, 15 machines");

  workload::LunarWorkloadModel model;
  std::printf("policy      live(min)  sim(min)  error%%\n");
  double max_error = 0.0;

  for (const auto kind : bench::evaluated_policies()) {
    double live_total = 0.0, sim_total = 0.0;
    for (std::uint64_t r = 0; r < 5; ++r) {
      const auto trace = bench::reachable_trace(model, 100, 1100 + r * 31);
      core::RunnerOptions options;
      options.machines = 15;
      options.max_experiment_time = util::SimTime::hours(96);
      options.seed = r;

      options.substrate = core::Substrate::Cluster;
      options.overheads = cluster::lunar_criu_overhead_model();
      const auto live = core::run_experiment(trace, bench::policy_spec(kind, r), options);

      options.substrate = core::Substrate::TraceReplay;
      const auto sim = core::run_experiment(trace, bench::policy_spec(kind, r), options);

      live_total += live.reached_target ? live.time_to_target.to_minutes()
                                        : live.total_time.to_minutes();
      sim_total += sim.reached_target ? sim.time_to_target.to_minutes()
                                      : sim.total_time.to_minutes();
    }
    const double error =
        live_total > 0.0 ? 100.0 * std::fabs(sim_total - live_total) / live_total : 0.0;
    max_error = std::max(max_error, error);
    std::printf("%-10s  %9.1f  %8.1f  %6.2f\n", std::string(core::to_string(kind)).c_str(),
                live_total / 5.0, sim_total / 5.0, error);
  }
  std::printf("\nmax simulation error: %.2f%% (paper: 13%%)\n", max_error);
  return 0;
}
