// Extension bench (§1 motivation): hyperparameter exploration at
// ImageNet22k scale — "up to ten days to train to convergence using 62
// machines" [8]. With multi-hour epochs, every configuration a scheduler
// does NOT run to completion saves machine-days; the bench reports time and
// machine-days to a 35% top-1 target across the policies.
#include "bench_common.hpp"

#include "workload/imagenet_model.hpp"

using namespace hyperdrive;

int main(int argc, char** argv) {
  const auto bench_options = bench::parse_bench_args(argc, argv);
  bench::print_header("Extension scale",
                      "ImageNet22k-scale exploration, 62 machine-partitions");

  workload::ImagenetWorkloadModel model;

  // Sanity: the intro's framing. A single good configuration to convergence:
  {
    const auto trace = bench::reachable_trace(model, 64, 1);
    double best_days = 0.0;
    for (const auto& job : trace.jobs) {
      if (job.curve.first_epoch_reaching(model.target_performance()) != 0) {
        best_days = job.curve.epoch_duration.to_hours() *
                    static_cast<double>(job.curve.max_epochs()) / 24.0;
        break;
      }
    }
    std::printf("one full training run of a winning config: %.1f days "
                "(paper: up to 10 days)\n\n",
                best_days);
  }

  core::SweepSpec spec;
  spec.name = "ext_scale_imagenet";
  const auto policy_ax = spec.add_policy_axis(bench::all_policies());
  const auto repeat_ax = spec.add_repeat_axis(bench_options.repeats(3));
  spec.trace = [&](const core::SweepCell& cell) {
    return bench::reachable_trace(model, 64, 3100 + cell.at(repeat_ax) * 71);
  };
  spec.policy = [&](const core::SweepCell& cell) {
    return bench::make_bench_policy(bench::all_policies()[cell.at(policy_ax)],
                                    cell.at(repeat_ax));
  };
  spec.options = [&](const core::SweepCell&) {
    core::RunnerOptions options;
    options.substrate = core::Substrate::TraceReplay;
    options.machines = 62;
    options.max_experiment_time = util::SimTime::hours(24 * 365);
    return options;
  };

  const auto table = bench::run_bench_sweep(spec, bench_options);
  const double repeats = static_cast<double>(table.axes[repeat_ax].values.size());

  std::printf("%-10s %16s %18s\n", "policy", "time-to-35%(days)", "machine-days spent");
  for (const auto& label : bench::all_policies()) {
    double days_total = 0.0, machine_days_total = 0.0;
    for (const auto* row : table.where("policy", label)) {
      days_total += row->hours_to_target() / 24.0;
      machine_days_total += row->result.total_machine_time.to_hours() / 24.0;
    }
    std::printf("%-10s %16.2f %18.1f\n", label.c_str(), days_total / repeats,
                machine_days_total / repeats);
  }
  std::printf("\n(at multi-hour epochs the machine-days saved by early termination\n"
              " dwarf all scheduling overheads — the paper's core economic argument)\n");
  return 0;
}
