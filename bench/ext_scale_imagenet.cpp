// Extension bench (§1 motivation): hyperparameter exploration at
// ImageNet22k scale — "up to ten days to train to convergence using 62
// machines" [8]. With multi-hour epochs, every configuration a scheduler
// does NOT run to completion saves machine-days; the bench reports time and
// machine-days to a 35% top-1 target across the policies.
#include "bench_common.hpp"

#include "workload/imagenet_model.hpp"

using namespace hyperdrive;

int main() {
  bench::print_header("Extension scale",
                      "ImageNet22k-scale exploration, 62 machine-partitions");

  workload::ImagenetWorkloadModel model;

  // Sanity: the intro's framing. A single good configuration to convergence:
  {
    const auto trace = bench::reachable_trace(model, 64, 1);
    double best_days = 0.0;
    for (const auto& job : trace.jobs) {
      if (job.curve.first_epoch_reaching(model.target_performance()) != 0) {
        best_days = job.curve.epoch_duration.to_hours() *
                    static_cast<double>(job.curve.max_epochs()) / 24.0;
        break;
      }
    }
    std::printf("one full training run of a winning config: %.1f days "
                "(paper: up to 10 days)\n\n",
                best_days);
  }

  std::printf("%-10s %16s %18s\n", "policy", "time-to-35%(days)", "machine-days spent");
  for (const auto kind : bench::all_policies()) {
    double days_total = 0.0, machine_days_total = 0.0;
    constexpr int kRepeats = 3;
    for (std::uint64_t r = 0; r < kRepeats; ++r) {
      const auto trace = bench::reachable_trace(model, 64, 3100 + r * 71);
      core::RunnerOptions options;
      options.substrate = core::Substrate::TraceReplay;
      options.machines = 62;
      options.max_experiment_time = util::SimTime::hours(24 * 365);
      const auto result =
          core::run_experiment(trace, bench::policy_spec(kind, r), options);
      days_total += (result.reached_target ? result.time_to_target : result.total_time)
                        .to_hours() /
                    24.0;
      machine_days_total += result.total_machine_time.to_hours() / 24.0;
    }
    std::printf("%-10s %16.2f %18.1f\n", std::string(core::to_string(kind)).c_str(),
                days_total / kRepeats, machine_days_total / kRepeats);
  }
  std::printf("\n(at multi-hour epochs the machine-days saved by early termination\n"
              " dwarf all scheduling overheads — the paper's core economic argument)\n");
  return 0;
}
