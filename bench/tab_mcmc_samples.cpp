// §5.2 "Reduce total MCMC samples": the paper cut the predictor's MCMC
// budget from 250,000 samples (nwalkers=100, nsamples=2500) to 70,000
// (nwalkers=100, nsamples=700) for >2x prediction speedup without
// significant policy degradation. This google-benchmark binary measures the
// same trade-off for our predictor, plus the fast LSQ bootstrap used by the
// simulation benches.
#include <benchmark/benchmark.h>

#include <cmath>

#include "curve/predictor.hpp"
#include "util/rng.hpp"

namespace {

using namespace hyperdrive;

std::vector<double> sample_history() {
  // A realistic 30-epoch CIFAR-like prefix.
  util::Rng rng(7);
  std::vector<double> ys(30);
  for (std::size_t i = 0; i < ys.size(); ++i) {
    const double x = static_cast<double>(i + 1);
    ys[i] = 0.72 - 0.62 * std::exp(-std::pow(0.06 * x, 1.1)) + rng.normal(0.0, 0.008);
  }
  return ys;
}

void run_mcmc(benchmark::State& state, std::size_t nwalkers, std::size_t nsamples) {
  curve::PredictorConfig config;
  config.mcmc.nwalkers = nwalkers;
  config.mcmc.nsamples = nsamples;
  config.mcmc.burn_in = nsamples / 4;
  config.mcmc.thin = 10;
  config.seed = 1;
  const auto predictor = curve::make_mcmc_predictor(config);
  const auto history = sample_history();
  const std::vector<double> future = {120.0};

  double last_prob = 0.0;
  for (auto _ : state) {
    // Vary the seed per iteration so caching cannot kick in.
    curve::PredictorConfig c2 = config;
    c2.seed = static_cast<std::uint64_t>(state.iterations());
    const auto p = curve::make_mcmc_predictor(c2);
    const auto pred = p->predict(history, future, 120.0);
    last_prob = pred.prob_at_least(0, 0.7);
    benchmark::DoNotOptimize(last_prob);
  }
  state.counters["P(y120>=0.7)"] = last_prob;
  state.counters["total_samples"] = static_cast<double>(nwalkers * nsamples);
}

// The paper's original setting: nwalkers=100, nsamples=2500 (250k samples).
void BM_McmcPredict_Full250k(benchmark::State& state) { run_mcmc(state, 100, 2500); }
// The paper's optimized setting: nwalkers=100, nsamples=700 (70k samples).
void BM_McmcPredict_Reduced70k(benchmark::State& state) { run_mcmc(state, 100, 700); }
// The fast LSQ bootstrap used inside the trace-driven simulation benches.
void BM_LsqPredict(benchmark::State& state) {
  curve::PredictorConfig config;
  config.seed = 1;
  const auto history = sample_history();
  const std::vector<double> future = {120.0};
  std::uint64_t i = 0;
  for (auto _ : state) {
    curve::PredictorConfig c2 = config;
    c2.seed = ++i;
    const auto p = curve::make_lsq_predictor(c2);
    const auto pred = p->predict(history, future, 120.0);
    benchmark::DoNotOptimize(pred.prob_at_least(0, 0.7));
  }
}

BENCHMARK(BM_McmcPredict_Full250k)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(BM_McmcPredict_Reduced70k)->Unit(benchmark::kMillisecond)->Iterations(10);
BENCHMARK(BM_LsqPredict)->Unit(benchmark::kMillisecond)->Iterations(20);

}  // namespace

BENCHMARK_MAIN();
