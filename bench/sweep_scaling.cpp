// Sweep-layer scaling check: the fig07-class grid (4 policies x N repeats on
// the cluster substrate) executed serially and then on 2/4/8 workers. Cells
// are independent experiments, so the sweep should scale near-linearly until
// the core count runs out — and the table must stay byte-identical at every
// thread count (DESIGN.md §8). CI logs keep the timing table as the recorded
// evidence of the parallel speedup.
#include "bench_common.hpp"

#include <thread>

using namespace hyperdrive;

namespace {

core::SweepSpec make_spec(const workload::WorkloadModel& model, const workload::Trace& base,
                          std::size_t repeats) {
  core::SweepSpec spec;
  spec.name = "sweep_scaling";
  const auto policy_ax = spec.add_policy_axis(bench::all_policies());
  const auto repeat_ax = spec.add_repeat_axis(repeats);
  spec.trace = [&model, &base, repeat_ax](const core::SweepCell& cell) {
    return bench::renoise(model, base, 0xF167 ^ cell.at(repeat_ax));
  };
  spec.policy = [policy_ax, repeat_ax](const core::SweepCell& cell) {
    return bench::make_bench_policy(bench::all_policies()[cell.at(policy_ax)],
                                    cell.at(repeat_ax));
  };
  spec.options = [repeat_ax](const core::SweepCell& cell) {
    core::RunnerOptions options;
    options.machines = 4;
    options.substrate = core::Substrate::Cluster;
    options.overheads = cluster::cifar_overhead_model();
    options.seed = cell.at(repeat_ax);
    options.max_experiment_time = util::SimTime::hours(96);
    return options;
  };
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const auto bench_options = bench::parse_bench_args(argc, argv);
  bench::print_header("Sweep scaling", "fig07-class sweep, serial vs parallel");

  workload::CifarWorkloadModel model;
  const auto base = bench::suitable_trace(model, 100, 2202, /*machines=*/4);
  const std::size_t repeats = bench_options.repeats(10);
  const auto spec = make_spec(model, base, repeats);

  std::printf("grid: %zu cells (%zu policies x %zu repeats), hardware threads: %u\n\n",
              spec.cells(), bench::all_policies().size(), repeats,
              std::thread::hardware_concurrency());

  const auto serial = core::run_sweep(spec, 1);
  std::printf("  threads=1: %7.2f s  (baseline)\n", serial.wall_seconds);

  bool all_identical = true;
  for (const std::size_t threads : {2ull, 4ull, 8ull}) {
    const auto parallel = core::run_sweep(spec, threads);
    const bool identical = parallel.to_csv() == serial.to_csv();
    all_identical = all_identical && identical;
    std::printf("  threads=%zu: %7.2f s  speedup %.2fx  table %s\n", threads,
                parallel.wall_seconds, serial.wall_seconds / parallel.wall_seconds,
                identical ? "byte-identical" : "DIVERGED");
  }

  if (!bench_options.csv.empty()) serial.save_csv_file(bench_options.csv);
  if (!all_identical) {
    std::printf("\nFAIL: parallel table differs from serial\n");
    return 1;
  }
  std::printf("\n(speedup is bounded by physical cores; the determinism check is\n"
              " exact at any thread count)\n");
  return 0;
}
