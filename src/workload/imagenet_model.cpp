#include "workload/imagenet_model.hpp"

#include <algorithm>
#include <cmath>

namespace hyperdrive::workload {

namespace {
double log_kernel(double value, double ideal_log10, double width) {
  const double d = (std::log10(value) - ideal_log10) / width;
  return std::exp(-d * d);
}
double linear_kernel(double value, double ideal, double width) {
  const double d = (value - ideal) / width;
  return std::exp(-d * d);
}
}  // namespace

ImagenetWorkloadModel::ImagenetWorkloadModel(ImagenetModelOptions options)
    : options_(options) {
  // Distributed-training knobs in addition to the optimizer's: per-worker
  // batch, parameter-server shards, async staleness bound.
  space_.add("lr", ContinuousDomain{1e-4, 1.0, /*log_scale=*/true})
      .add("lr_decay", ContinuousDomain{0.5, 0.99})
      .add("momentum", ContinuousDomain{0.0, 0.99})
      .add("weight_decay", ContinuousDomain{1e-7, 1e-2, true})
      .add("worker_batch", IntegerDomain{16, 256, true})
      .add("ps_shards", IntegerDomain{8, 128, true})
      .add("staleness_bound", IntegerDomain{1, 32, true})
      .add("dropout", ContinuousDomain{0.0, 0.7})
      .add("init_scale", ContinuousDomain{1e-4, 1e-1, true});
}

ConfigQuality ImagenetWorkloadModel::quality(const Configuration& config) const {
  ConfigQuality q;
  const double lr = config.get_double("lr");
  const auto staleness = static_cast<double>(config.get_int("staleness_bound"));

  // Async SGD at this scale diverges when a hot learning rate meets a loose
  // staleness bound (the Hogwild effect the paper cites for its
  // non-determinism discussion).
  if (lr * std::sqrt(staleness) > 0.9) {
    q.learns = false;
    q.final_perf = 0.003;  // random-ish among ~21k classes
    q.speed = 1.0;
    return q;
  }

  const double s_lr = log_kernel(lr, -1.5, 0.8);
  const double s_mom = linear_kernel(config.get_double("momentum"), 0.9, 0.3);
  const double s_wd = log_kernel(config.get_double("weight_decay"), -4.0, 1.8);
  const double s_batch =
      log_kernel(static_cast<double>(config.get_int("worker_batch")), 1.7, 0.8);
  const double s_shards =
      log_kernel(static_cast<double>(config.get_int("ps_shards")), 1.6, 0.8);
  const double s_stale = log_kernel(staleness, 0.6, 0.8);
  const double s_drop = linear_kernel(config.get_double("dropout"), 0.4, 0.3);
  const double s_init = log_kernel(config.get_double("init_scale"), -2.0, 1.0);

  const double score = std::pow(s_lr, 0.30) * std::pow(s_mom, 0.14) *
                       std::pow(s_wd, 0.12) * std::pow(s_batch, 0.10) *
                       std::pow(s_shards, 0.10) * std::pow(s_stale, 0.10) *
                       std::pow(s_drop, 0.07) * std::pow(s_init, 0.07);
  q.score = score;
  // Top-1 on 22k classes: from a few percent to ~37% for the best settings.
  q.final_perf = 0.02 + 0.36 * std::pow(score, 0.9);
  q.speed = 0.5 + 1.7 * score;
  q.learns = true;
  return q;
}

GroundTruthCurve ImagenetWorkloadModel::realize(const Configuration& config,
                                                std::uint64_t experiment_seed) const {
  const ConfigQuality q = quality(config);
  const std::uint64_t config_hash = config.stable_hash();
  util::Rng shape_rng(util::derive_seed(config_hash, 0x1226));
  util::Rng noise_rng(util::derive_seed(config_hash ^ experiment_seed, 0x22ae));

  GroundTruthCurve curve;
  curve.raw_min = 0.0;
  curve.raw_max = 1.0;
  curve.perf.resize(options_.max_epochs);

  // ~4-hour epochs (one pass over 15M images on a 62-machine partition),
  // mildly dependent on the parameter-server sharding.
  const double shards = static_cast<double>(config.get_int("ps_shards"));
  const double base_hours =
      (3.2 + 45.0 / shards) * options_.epoch_duration_scale;
  curve.epoch_duration = util::SimTime::hours(base_hours * shape_rng.lognormal(0.0, 0.10));

  const double noise_sigma = (0.002 + 0.004 * shape_rng.uniform()) * options_.noise_scale;
  if (!q.learns) {
    for (auto& y : curve.perf) {
      y = std::clamp(0.003 + noise_rng.normal(0.0, noise_sigma), 0.0, 0.02);
    }
    return curve;
  }

  const double k = 0.05 * q.speed * shape_rng.lognormal(0.0, 0.2);
  const double d = 0.9 + 0.5 * shape_rng.uniform();
  for (std::size_t e = 0; e < curve.perf.size(); ++e) {
    const double x = static_cast<double>(e + 1);
    const double growth =
        0.10 * (1.0 - std::exp(-x / 2.0)) + 0.90 * (1.0 - std::exp(-std::pow(k * x, d)));
    double y = 0.003 + (q.final_perf - 0.003) * growth;
    y += noise_rng.normal(0.0, noise_sigma);
    curve.perf[e] = std::clamp(y, 0.0, 0.45);
  }
  return curve;
}

}  // namespace hyperdrive::workload
