#include "workload/trace.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <stdexcept>

#include "util/csv.hpp"

namespace hyperdrive::workload {

Trace Trace::shuffled(util::Rng& rng) const {
  Trace out = *this;
  rng.shuffle(out.jobs);
  return out;
}

bool Trace::target_reachable() const noexcept {
  for (const auto& job : jobs) {
    if (job.curve.first_epoch_reaching(target_performance) != 0) return true;
  }
  return false;
}

void Trace::save_csv(std::ostream& out) const {
  util::CsvWriter writer(out, {"job_id", "epoch", "duration_s", "perf"});
  for (const auto& job : jobs) {
    for (std::size_t e = 0; e < job.curve.perf.size(); ++e) {
      writer.write_row({std::to_string(job.job_id), std::to_string(e + 1),
                        std::to_string(job.curve.epoch_duration.to_seconds()),
                        std::to_string(job.curve.perf[e])});
    }
  }
}

Trace Trace::load_csv(std::istream& in, std::string workload_name, double target,
                      double kill_threshold, std::size_t evaluation_boundary) {
  const auto table = util::parse_csv(in);
  const auto job_col = table.column("job_id");
  const auto epoch_col = table.column("epoch");
  const auto dur_col = table.column("duration_s");
  const auto perf_col = table.column("perf");

  // job_id -> (duration, ordered perf values); std::map keeps first-seen
  // order irrelevant, so we track insertion order separately.
  std::map<std::uint64_t, TraceJob> jobs;
  std::vector<std::uint64_t> order;
  for (const auto& row : table.rows) {
    const std::uint64_t job_id = std::stoull(row[job_col]);
    const std::size_t epoch = std::stoull(row[epoch_col]);
    const double duration = std::stod(row[dur_col]);
    const double perf = std::stod(row[perf_col]);
    auto [it, inserted] = jobs.try_emplace(job_id);
    if (inserted) {
      it->second.job_id = job_id;
      it->second.curve.epoch_duration = util::SimTime::seconds(duration);
      order.push_back(job_id);
    }
    auto& perf_vec = it->second.curve.perf;
    if (epoch != perf_vec.size() + 1) {
      throw std::runtime_error("trace rows for job " + std::to_string(job_id) +
                               " are not consecutive epochs");
    }
    perf_vec.push_back(perf);
  }

  Trace trace;
  trace.workload_name = std::move(workload_name);
  trace.target_performance = target;
  trace.kill_threshold = kill_threshold;
  trace.evaluation_boundary = evaluation_boundary;
  trace.jobs.reserve(order.size());
  for (const auto id : order) trace.jobs.push_back(std::move(jobs.at(id)));
  for (const auto& job : trace.jobs) {
    trace.max_epochs = std::max(trace.max_epochs, job.curve.perf.size());
  }
  return trace;
}

Trace generate_trace(const WorkloadModel& model, std::size_t num_configs,
                     std::uint64_t seed) {
  Trace trace;
  trace.workload_name = std::string(model.name());
  trace.target_performance = model.target_performance();
  trace.kill_threshold = model.kill_threshold();
  trace.evaluation_boundary = model.evaluation_boundary();
  trace.max_epochs = model.max_epochs();

  util::Rng rng(util::derive_seed(seed, 0x7ace));
  trace.jobs.reserve(num_configs);
  for (std::size_t i = 0; i < num_configs; ++i) {
    TraceJob job;
    job.job_id = i + 1;
    job.config = model.space().sample(rng);
    job.curve = model.realize(job.config, seed);
    trace.jobs.push_back(std::move(job));
  }
  return trace;
}

}  // namespace hyperdrive::workload
