// Trace-selection and re-realization helpers shared by the evaluation
// harness (benches, CLI, tools). The paper's experiments draw one
// hyperparameter set and reuse it across repeats with fresh training noise
// (§6.1 Non-Determinism); these helpers encode the trace-suitability rules
// the figures rely on. Library code — previously duplicated header-only in
// bench/bench_common.hpp and tools/.
#pragma once

#include <cstdint>

#include "workload/trace.hpp"
#include "workload/workload_model.hpp"

namespace hyperdrive::workload {

/// Generate a trace and re-seed until the target is reachable (the paper's
/// experiments always contain at least one satisfying configuration).
[[nodiscard]] Trace reachable_trace(const WorkloadModel& model, std::size_t configs,
                                    std::uint64_t seed);

/// Position (0-based) of the first job whose curve reaches the target, or
/// the job count if none does.
[[nodiscard]] std::size_t first_winner_index(const Trace& trace);

/// A trace suitable for time-to-target studies: the target is reachable with
/// some margin (so per-repeat noise cannot erase it) and no winner sits in
/// the very first scheduling wave (which would make every policy trivially
/// tie). Mirrors §6.1: one hyperparameter set is drawn once and reused.
[[nodiscard]] Trace suitable_trace(const WorkloadModel& model, std::size_t configs,
                                   std::uint64_t seed, std::size_t machines);

/// The paper repeats each experiment with the same hyperparameter set and
/// fresh training noise (§6.1 Non-Determinism). This re-realizes every job's
/// curve under a new experiment seed while keeping the configurations (and
/// hence their intrinsic quality and epoch durations) fixed.
[[nodiscard]] Trace renoise(const WorkloadModel& model, const Trace& base,
                            std::uint64_t experiment_seed);

}  // namespace hyperdrive::workload
