#include "workload/cifar_model.hpp"

#include <algorithm>
#include <cmath>

namespace hyperdrive::workload {

namespace {

/// Gaussian kernel in log10 space: 1 at the ideal value, decaying with
/// distance measured in `width` decades.
double log_kernel(double value, double ideal_log10, double width) {
  const double d = (std::log10(value) - ideal_log10) / width;
  return std::exp(-d * d);
}

double linear_kernel(double value, double ideal, double width) {
  const double d = (value - ideal) / width;
  return std::exp(-d * d);
}

}  // namespace

CifarWorkloadModel::CifarWorkloadModel(CifarModelOptions options) : options_(options) {
  // The 14-hyperparameter space mirrors the cuda-convnet layers-18pct knobs
  // explored in Domhan et al. Table 3: learning-rate schedule, momentum,
  // per-layer weight decay and init scales, and batching.
  space_.add("lr", ContinuousDomain{1e-5, 0.5, /*log_scale=*/true})
      .add("lr_decay", ContinuousDomain{0.5, 1.0})
      .add("lr_step", IntegerDomain{10, 100})
      .add("momentum", ContinuousDomain{0.0, 0.99})
      .add("wd_conv1", ContinuousDomain{1e-7, 1e-1, true})
      .add("wd_conv2", ContinuousDomain{1e-7, 1e-1, true})
      .add("wd_conv3", ContinuousDomain{1e-7, 1e-1, true})
      .add("wd_fc", ContinuousDomain{1e-7, 1e-1, true})
      .add("init_std_conv1", ContinuousDomain{1e-5, 1e-1, true})
      .add("init_std_conv2", ContinuousDomain{1e-5, 1e-1, true})
      .add("init_std_conv3", ContinuousDomain{1e-5, 1e-1, true})
      .add("init_std_fc", ContinuousDomain{1e-5, 1e-1, true})
      .add("bias_lr_mult", ContinuousDomain{0.1, 10.0, true})
      .add("batch_size", IntegerDomain{32, 512, true});
}

ConfigQuality CifarWorkloadModel::quality(const Configuration& config) const {
  ConfigQuality q;
  const double lr = config.get_double("lr");
  const double momentum = config.get_double("momentum");

  // Divergence: too-aggressive step sizes blow the loss up — the network
  // never leaves random accuracy. An overly large conv init also kills
  // training (saturated activations from the start).
  const double effective_lr = lr * (1.0 + 4.0 * std::max(0.0, momentum - 0.90) * 10.0);
  if (effective_lr > 0.09) {
    q.learns = false;
    q.final_perf = options_.random_accuracy;
    q.speed = 1.0;
    return q;
  }
  for (const char* layer : {"init_std_conv1", "init_std_conv2", "init_std_conv3"}) {
    if (config.get_double(layer) > 0.05) {
      q.learns = false;
      q.final_perf = options_.random_accuracy;
      q.speed = 1.0;
      return q;
    }
  }

  // Smooth quality kernels. A geometric combination makes simultaneous
  // near-ideal settings rare, which reproduces the paper's sparsity of good
  // configurations (§1, §2).
  const double s_lr = log_kernel(lr, -2.1, 1.1);
  const double s_mom = linear_kernel(momentum, 0.90, 0.30);
  double s_init = 1.0;
  for (const char* layer :
       {"init_std_conv1", "init_std_conv2", "init_std_conv3", "init_std_fc"}) {
    s_init *= std::pow(log_kernel(config.get_double(layer), -2.0, 1.4), 0.25);
  }
  double s_wd = 1.0;
  for (const char* layer : {"wd_conv1", "wd_conv2", "wd_conv3", "wd_fc"}) {
    s_wd *= std::pow(log_kernel(config.get_double(layer), -4.0, 2.2), 0.25);
  }
  const double s_bias = log_kernel(config.get_double("bias_lr_mult"), 0.3, 1.5);
  const double s_batch =
      log_kernel(static_cast<double>(config.get_int("batch_size")), 2.0, 1.0);
  const double s_sched = linear_kernel(config.get_double("lr_decay"), 0.85, 0.35);

  const double score = std::pow(s_lr, 0.34) * std::pow(s_mom, 0.16) *
                       std::pow(s_init, 0.20) * std::pow(s_wd, 0.12) *
                       std::pow(s_bias, 0.06) * std::pow(s_batch, 0.06) *
                       std::pow(s_sched, 0.06);
  q.score = score;

  // Speed/quality trade-off: hotter learning rates move early but plateau
  // lower; cool ones crawl but generalize — the source of Fig. 2b overtakes.
  const double heat = std::clamp((std::log10(lr) + 3.5) / 2.5, 0.0, 1.0);
  // Logistic score→accuracy map, calibrated so that under random sampling a
  // few percent of configurations clear 0.75 and the best land near 0.80
  // (Fig. 1 / Fig. 2a population shape).
  const double g = 1.0 / (1.0 + std::exp(-(score - 0.45) / 0.115));
  const double final_from_score =
      options_.random_accuracy + (0.87 - options_.random_accuracy) * g;
  q.final_perf = final_from_score * (1.0 - 0.06 * heat);
  // Good configurations also learn quickly (real layers-18pct winners pass
  // 60% within ~30 epochs); heat adds a secondary kick that, combined with
  // its small final-accuracy penalty, produces occasional A/B overtakes.
  q.speed = 0.55 + 1.8 * score + 0.5 * heat;

  // Extremely cold learning rates never escape the floor within the budget.
  if (lr < 5e-5) {
    q.final_perf = std::min(q.final_perf, options_.random_accuracy + 0.04);
    q.speed = 0.15;
  }
  q.learns = q.final_perf > options_.random_accuracy + 0.02;
  return q;
}

GroundTruthCurve CifarWorkloadModel::realize(const Configuration& config,
                                             std::uint64_t experiment_seed) const {
  const ConfigQuality q = quality(config);
  const std::uint64_t config_hash = config.stable_hash();
  // Intrinsic shape parameters depend only on the configuration; the noise
  // realization additionally depends on the experiment seed.
  util::Rng shape_rng(util::derive_seed(config_hash, 0xC1FA9));
  util::Rng noise_rng(util::derive_seed(config_hash ^ experiment_seed, 0x401E));

  GroundTruthCurve curve;
  curve.raw_min = 0.0;
  curve.raw_max = 1.0;
  curve.perf.resize(options_.max_epochs);

  // Epoch duration: ~1 minute, mildly batch-size dependent, constant per
  // configuration (§9) with a per-config lognormal factor.
  const double batch = static_cast<double>(config.get_int("batch_size"));
  const double base_seconds = (46.0 + 2200.0 / batch) * options_.epoch_duration_scale;
  curve.epoch_duration =
      util::SimTime::seconds(base_seconds * shape_rng.lognormal(0.0, 0.07));

  const double floor = options_.random_accuracy;
  const double noise_sigma =
      (0.004 + 0.008 * shape_rng.uniform()) * options_.noise_scale;

  if (!q.learns) {
    // Non-learner: noisy wandering around random accuracy.
    for (std::size_t e = 0; e < curve.perf.size(); ++e) {
      const double wobble = noise_rng.normal(0.0, noise_sigma + 0.004);
      curve.perf[e] = std::clamp(floor + wobble, 0.05, floor + 0.045);
    }
    return curve;
  }

  // Janoschek-style growth: floor + (final - floor) * (1 - exp(-(k e)^d)),
  // with a small fast component so learners escape random accuracy within
  // the first few epochs (as the Fig. 1 curves do).
  const double k = 0.028 * q.speed * shape_rng.lognormal(0.0, 0.22);
  const double d = 0.85 + 0.6 * shape_rng.uniform();
  // Learning-rate step schedule gives a small late boost (classic CIFAR
  // staircase), at the configured step epoch.
  const auto lr_step = static_cast<double>(config.get_int("lr_step"));
  const double step_boost = 0.025 * (1.0 - config.get_double("lr_decay"));

  for (std::size_t e = 0; e < curve.perf.size(); ++e) {
    const double x = static_cast<double>(e + 1);
    const double growth =
        0.12 * (1.0 - std::exp(-x / 2.5)) + 0.88 * (1.0 - std::exp(-std::pow(k * x, d)));
    double y = floor + (q.final_perf - floor) * growth;
    if (x >= lr_step) {
      y += step_boost * (1.0 - std::exp(-(x - lr_step) / 8.0)) * (q.final_perf - floor);
    }
    y += noise_rng.normal(0.0, noise_sigma);
    curve.perf[e] = std::clamp(y, 0.02, 0.95);
  }
  return curve;
}

}  // namespace hyperdrive::workload
