// ImageNet22k-like large-scale workload — the paper's introductory
// motivation: "a high-quality ImageNet22k image classification model can
// take up to ten days to train to convergence using 62 machines" [8]
// (Project Adam). At this scale exhaustive exploration is hopeless and
// early termination pays for itself many times over.
//
// One "machine" here is a 62-node-class training partition and one epoch a
// multi-hour pass, so experiments are measured in days. The model reuses the
// CIFAR quality structure with a 21k-class output (random accuracy ~0.005%,
// in practice indistinguishable from 0), top-1 accuracies topping out around
// 37% (the Project Adam era), and strongly heavy-tailed epoch durations.
#pragma once

#include "workload/workload_model.hpp"

namespace hyperdrive::workload {

struct ImagenetModelOptions {
  std::size_t max_epochs = 60;  ///< ~4 h each => ~10 days to convergence
  double target = 0.35;         ///< strong top-1 for the era's models
  double kill_threshold = 0.02; ///< still near-random after the boundary
  double noise_scale = 1.0;
  double epoch_duration_scale = 1.0;
};

class ImagenetWorkloadModel final : public WorkloadModel {
 public:
  explicit ImagenetWorkloadModel(ImagenetModelOptions options = {});

  [[nodiscard]] std::string_view name() const noexcept override { return "imagenet22k"; }
  [[nodiscard]] const HyperparameterSpace& space() const noexcept override { return space_; }
  [[nodiscard]] std::size_t max_epochs() const noexcept override { return options_.max_epochs; }
  [[nodiscard]] double target_performance() const noexcept override { return options_.target; }
  [[nodiscard]] double kill_threshold() const noexcept override {
    return options_.kill_threshold;
  }
  [[nodiscard]] std::size_t evaluation_boundary() const noexcept override { return 3; }

  [[nodiscard]] GroundTruthCurve realize(const Configuration& config,
                                         std::uint64_t experiment_seed) const override;

  [[nodiscard]] ConfigQuality quality(const Configuration& config) const;

 private:
  ImagenetModelOptions options_;
  HyperparameterSpace space_;
};

}  // namespace hyperdrive::workload
