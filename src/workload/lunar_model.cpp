#include "workload/lunar_model.hpp"

#include <algorithm>
#include <cmath>

namespace hyperdrive::workload {

namespace {
double log_kernel(double value, double ideal_log10, double width) {
  const double d = (std::log10(value) - ideal_log10) / width;
  return std::exp(-d * d);
}
}  // namespace

LunarWorkloadModel::LunarWorkloadModel(LunarModelOptions options) : options_(options) {
  // 11 hyperparameters, mirroring the DQN knobs of the model the paper uses.
  space_.add("lr", ContinuousDomain{1e-5, 1e-2, /*log_scale=*/true})
      .add("gamma", ContinuousDomain{0.90, 0.9999})
      .add("epsilon_decay", ContinuousDomain{0.99, 0.99999})
      .add("epsilon_min", ContinuousDomain{0.001, 0.1, true})
      .add("batch_size", IntegerDomain{16, 256, true})
      .add("hidden1", IntegerDomain{16, 512, true})
      .add("hidden2", IntegerDomain{16, 512, true})
      .add("target_update", IntegerDomain{100, 10000, true})
      .add("memory_size", IntegerDomain{10000, 1000000, true})
      .add("l2_reg", ContinuousDomain{1e-8, 1e-2, true})
      .add("update_freq", IntegerDomain{1, 8});
}

double LunarWorkloadModel::normalize_reward(double r) const noexcept {
  return (r - options_.reward_min) / (options_.reward_max - options_.reward_min);
}

double LunarWorkloadModel::target_performance() const noexcept {
  return normalize_reward(options_.solved_reward);
}

double LunarWorkloadModel::kill_threshold() const noexcept {
  return normalize_reward(options_.crash_reward);
}

ConfigQuality LunarWorkloadModel::quality(const Configuration& config) const {
  ConfigQuality q;
  const double lr = config.get_double("lr");
  const double gamma = config.get_double("gamma");
  const auto hidden1 = static_cast<double>(config.get_int("hidden1"));
  const auto hidden2 = static_cast<double>(config.get_int("hidden2"));
  const auto target_update = static_cast<double>(config.get_int("target_update"));

  // Hard failure modes: DQNs on LunarLander are notoriously fragile. A
  // too-hot learning rate, a myopic discount, or an undersized network never
  // learn to land — these give Fig. 8 its >50% non-learning population.
  const bool diverges = lr > 3.5e-3;
  const bool myopic = gamma < 0.924;
  const bool tiny_net = hidden1 < 26.0 || hidden2 < 26.0;
  if (diverges || myopic || tiny_net) {
    q.learns = false;
    q.final_perf = normalize_reward(-130.0);
    q.speed = 1.0;
    return q;
  }

  const double s_lr = log_kernel(lr, -3.3, 0.8);
  const double s_gamma = std::exp(-std::pow((gamma - 0.99) / 0.02, 2.0));
  const double s_net = std::pow(log_kernel(hidden1, 2.2, 1.0), 0.5) *
                       std::pow(log_kernel(hidden2, 2.0, 1.0), 0.5);
  const double s_batch =
      log_kernel(static_cast<double>(config.get_int("batch_size")), 1.7, 0.9);
  const double s_mem =
      log_kernel(static_cast<double>(config.get_int("memory_size")), 5.0, 1.2);
  const double s_tgt = log_kernel(target_update, 3.0, 1.0);
  const double s_eps = log_kernel(config.get_double("epsilon_min"), -1.7, 1.2);
  const double s_l2 = log_kernel(config.get_double("l2_reg"), -5.5, 2.0);

  const double score = std::pow(s_lr, 0.30) * std::pow(s_gamma, 0.20) *
                       std::pow(s_net, 0.15) * std::pow(s_batch, 0.08) *
                       std::pow(s_mem, 0.07) * std::pow(s_tgt, 0.10) *
                       std::pow(s_eps, 0.05) * std::pow(s_l2, 0.05);
  q.score = score;

  // Final sustained reward: from barely-flying (-80) up to ~245 for the very
  // best settings; the solved bar of 200 is only cleared by a thin tail
  // (~1-2% of random configurations), so most experiments must cycle through
  // a good share of the candidate set before finding a solver.
  const double final_reward = -80.0 + 325.0 * std::pow(score, 1.3);
  q.final_perf = normalize_reward(final_reward);
  q.speed = 0.5 + 1.8 * std::clamp((std::log10(lr) + 4.5) / 1.8, 0.0, 1.0);
  q.learns = true;

  // Learning-crash: instability grows with learning rate and stale targets
  // (large update gaps are safe; very small ones chase a moving target).
  const double crash_risk = std::clamp(0.55 * std::pow(1.0 - score, 1.5) +
                                           0.25 * std::clamp((std::log10(lr) + 3.0) / 1.0,
                                                             0.0, 1.0) +
                                           0.15 * (target_update < 400.0 ? 1.0 : 0.0),
                                       0.0, 0.95);
  // Deterministic per configuration: the crash is a property of the run.
  q.crashes = crash_risk > 0.40;
  return q;
}

GroundTruthCurve LunarWorkloadModel::realize(const Configuration& config,
                                             std::uint64_t experiment_seed) const {
  const ConfigQuality q = quality(config);
  const std::uint64_t config_hash = config.stable_hash();
  util::Rng shape_rng(util::derive_seed(config_hash, 0x10a4));
  util::Rng noise_rng(util::derive_seed(config_hash ^ experiment_seed, 0x5EED));

  GroundTruthCurve curve;
  curve.raw_min = options_.reward_min;
  curve.raw_max = options_.reward_max;
  curve.perf.resize(options_.max_epochs);

  // CPU training on c4.xlarge: tens of seconds per 200-trial epoch,
  // network-size and batch dependent.
  const double nn_cost = static_cast<double>(config.get_int("hidden1")) *
                         static_cast<double>(config.get_int("hidden2")) / 8192.0;
  const double base_seconds =
      (26.0 + 9.0 * nn_cost + 110.0 / static_cast<double>(config.get_int("batch_size"))) *
      options_.epoch_duration_scale;
  curve.epoch_duration =
      util::SimTime::seconds(base_seconds * shape_rng.lognormal(0.0, 0.10));

  const double floor_n = normalize_reward(-150.0);
  // Learners start inside the crash range but climb out of it within the
  // first evaluation boundary (the kill rule at -100 must not cull them).
  const double start_n = normalize_reward(-160.0 + 50.0 * shape_rng.uniform());
  const double noise_sigma = (0.006 + 0.010 * shape_rng.uniform()) * options_.noise_scale;

  if (!q.learns) {
    // Non-learner: noisy random policy hovering in the crash range. The
    // rolling average keeps it near -100..-180 reward.
    for (std::size_t e = 0; e < curve.perf.size(); ++e) {
      const double wobble = noise_rng.normal(0.0, noise_sigma * 1.6);
      curve.perf[e] = std::clamp(floor_n + wobble, 0.0, kill_threshold() + 0.01);
    }
    return curve;
  }

  const double k = 0.05 * q.speed * shape_rng.lognormal(0.0, 0.2);
  const double d = 1.0 + 0.8 * shape_rng.uniform();
  const std::size_t crash_epoch =
      q.crashes ? 15 + static_cast<std::size_t>(shape_rng.uniform_int(0, 55)) : 0;

  for (std::size_t e = 0; e < curve.perf.size(); ++e) {
    const double x = static_cast<double>(e + 1);
    double y;
    if (q.crashes && e + 1 >= crash_epoch) {
      // Collapse over ~3 epochs to the crash floor and stay there (Fig. 8).
      const double since = static_cast<double>(e + 1 - crash_epoch);
      const double collapse = std::exp(-since / 1.5);
      const double peak = start_n + (q.final_perf - start_n) *
                                        (1.0 - std::exp(-std::pow(
                                             k * static_cast<double>(crash_epoch), d)));
      y = floor_n + (peak - floor_n) * collapse;
      y += noise_rng.normal(0.0, noise_sigma);
      curve.perf[e] = std::clamp(y, 0.0, kill_threshold() + 0.02 * collapse + 0.01);
      continue;
    }
    y = start_n + (q.final_perf - start_n) * (1.0 - std::exp(-std::pow(k * x, d)));
    y += noise_rng.normal(0.0, noise_sigma);
    curve.perf[e] = std::clamp(y, 0.0, 1.0);
  }
  return curve;
}

}  // namespace hyperdrive::workload
