// PTB-LSTM-like multi-metric workload: the §9 "Ongoing Work" case study.
//
// The paper describes exploring LSTM language models regularized with group
// Lasso (Wen et al. [29], Yuan & Lin [32]): a new hyperparameter lambda
// trades structural sparsity (storage/compute savings) against perplexity
// (the primary metric), and HyperDrive schedules on *both* metrics with
// user-defined global termination criteria.
//
// This model stands in for a word-level PTB LSTM (Zaremba et al. [33]):
//   * primary metric: validation perplexity, reported normalized as
//         score = (ppl_worst - ppl) / (ppl_worst - ppl_best)
//     so that "higher is better" like the other workloads;
//   * secondary metric: fraction of LSTM groups zeroed by group Lasso,
//     in [0, 1], growing over training and increasing with lambda;
//   * the lambda trade-off: more sparsity costs perplexity, gently below a
//     knee and steeply beyond it.
#pragma once

#include "workload/workload_model.hpp"

namespace hyperdrive::workload {

struct PtbLstmModelOptions {
  std::size_t max_epochs = 40;
  double ppl_best = 65.0;    ///< strong medium-LSTM perplexity
  double ppl_worst = 800.0;  ///< diverged / random-ish model
  /// Primary target: perplexity at or below this value.
  double target_ppl = 90.0;
  /// Kill threshold: still at or above this perplexity at a boundary.
  double kill_ppl = 500.0;
  double noise_scale = 1.0;
  double epoch_duration_scale = 1.0;
};

class PtbLstmWorkloadModel final : public WorkloadModel {
 public:
  explicit PtbLstmWorkloadModel(PtbLstmModelOptions options = {});

  [[nodiscard]] std::string_view name() const noexcept override { return "ptb_lstm"; }
  [[nodiscard]] const HyperparameterSpace& space() const noexcept override { return space_; }
  [[nodiscard]] std::size_t max_epochs() const noexcept override { return options_.max_epochs; }
  [[nodiscard]] double target_performance() const noexcept override;
  [[nodiscard]] double kill_threshold() const noexcept override;
  [[nodiscard]] std::size_t evaluation_boundary() const noexcept override { return 5; }

  [[nodiscard]] GroundTruthCurve realize(const Configuration& config,
                                         std::uint64_t experiment_seed) const override;

  [[nodiscard]] ConfigQuality quality(const Configuration& config) const;

  /// Normalized score for a raw perplexity (clamped to [0, 1]).
  [[nodiscard]] double normalize_ppl(double ppl) const noexcept;
  /// Raw perplexity for a normalized score.
  [[nodiscard]] double denormalize_ppl(double score) const noexcept;
  /// Asymptotic sparsity fraction implied by a configuration's lambda.
  [[nodiscard]] double target_sparsity(const Configuration& config) const;

 private:
  PtbLstmModelOptions options_;
  HyperparameterSpace space_;
};

}  // namespace hyperdrive::workload
