// CIFAR-10-like supervised-learning workload (paper §6.1/§6.2).
//
// Stands in for the live Caffe layers-18pct CNN: 14 hyperparameters (the
// same kinds as Table 3 of Domhan et al. [11]), ~120 one-minute epochs,
// validation-accuracy metric with random accuracy 10% (10 classes),
// kill-threshold 15%, target 77%.
//
// Population calibration (asserted by tests/workload_calibration_test):
//   * ~32% of random configurations are non-learners near 10% accuracy
//     (Fig. 2a red circle),
//   * the majority stay below ~40% accuracy,
//   * only a few percent exceed 75% (Fig. 1: 3 of 50),
//   * best configurations peak around 78-80%,
//   * learning speed and final quality trade off, producing the overtake
//     phenomenon of Fig. 2b.
#pragma once

#include "workload/workload_model.hpp"

namespace hyperdrive::workload {

struct CifarModelOptions {
  std::size_t max_epochs = 120;
  double target = 0.77;
  double kill_threshold = 0.15;  ///< slightly above random accuracy (§5.3)
  double random_accuracy = 0.10;
  /// Scales per-epoch observation noise (the paper observed up to 2%
  /// run-to-run variation at a given epoch, §6.1 Non-Determinism).
  double noise_scale = 1.0;
  /// Mean epoch duration scale; 1.0 gives ~1 minute epochs (Fig. 1).
  double epoch_duration_scale = 1.0;
};

class CifarWorkloadModel final : public WorkloadModel {
 public:
  explicit CifarWorkloadModel(CifarModelOptions options = {});

  [[nodiscard]] std::string_view name() const noexcept override { return "cifar10"; }
  [[nodiscard]] const HyperparameterSpace& space() const noexcept override { return space_; }
  [[nodiscard]] std::size_t max_epochs() const noexcept override { return options_.max_epochs; }
  [[nodiscard]] double target_performance() const noexcept override { return options_.target; }
  [[nodiscard]] double kill_threshold() const noexcept override {
    return options_.kill_threshold;
  }
  [[nodiscard]] std::size_t evaluation_boundary() const noexcept override { return 10; }

  [[nodiscard]] GroundTruthCurve realize(const Configuration& config,
                                         std::uint64_t experiment_seed) const override;

  /// Noise-free intrinsic quality of a configuration (tests/calibration).
  [[nodiscard]] ConfigQuality quality(const Configuration& config) const;

 private:
  CifarModelOptions options_;
  HyperparameterSpace space_;
};

}  // namespace hyperdrive::workload
