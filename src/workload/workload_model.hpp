// Workload models: the stand-ins for live model training.
//
// The paper trains real models (Caffe CIFAR-10 CNN; Keras/Theano LunarLander
// DQN). Neither is available here, so — exactly as the paper's own §7 does
// with its trace-driven simulator — we replace live training with
// ground-truth learning curves. A WorkloadModel maps a hyperparameter
// Configuration *deterministically* (via Configuration::stable_hash, mixed
// with an experiment seed) to a full performance curve plus a constant epoch
// duration (§9: epoch durations are roughly constant per configuration).
//
// The two concrete models are calibrated against the population statistics
// the paper reports:
//   CIFAR-10 (§6.2, Fig. 1/2): ~32% of configurations stuck at ~10% random
//     accuracy, majority below 20%, only a few % exceeding 75%; overtaking
//     curves; ~120 epochs of ~1 minute.
//   LunarLander (§6.3, Fig. 8): rewards in [-500, 300] min-max normalized
//     (Eq. 4), >50% non-learners, "learning-crash" dynamics, solved at
//     sustained reward 200.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/sim_time.hpp"
#include "workload/hyperparameters.hpp"

namespace hyperdrive::workload {

/// The full ground truth for one configuration: what a training job would
/// report, epoch by epoch, if run to the maximum epoch.
struct GroundTruthCurve {
  /// Normalized performance in [0, 1] after epoch i+1 (validation accuracy,
  /// or min-max scaled reward).
  std::vector<double> perf;
  /// Optional secondary metric per epoch (same length as perf when present;
  /// empty otherwise). Used by multi-metric workloads such as the §9
  /// LSTM-sparsity case study (primary = perplexity score, secondary =
  /// structural sparsity).
  std::vector<double> secondary;
  /// Average epoch duration for this configuration (constant per §9).
  util::SimTime epoch_duration;
  /// Raw-metric bounds for denormalization (accuracy: 0..1; reward: -500..300).
  double raw_min = 0.0;
  double raw_max = 1.0;

  [[nodiscard]] std::size_t max_epochs() const noexcept { return perf.size(); }
  [[nodiscard]] double final_perf() const noexcept { return perf.empty() ? 0.0 : perf.back(); }
  [[nodiscard]] double best_perf() const noexcept;
  /// First epoch (1-based) at which perf >= target, or 0 if never.
  [[nodiscard]] std::size_t first_epoch_reaching(double target) const noexcept;
  [[nodiscard]] double denormalize(double y) const noexcept {
    return raw_min + y * (raw_max - raw_min);
  }
};

/// Interface implemented by the CIFAR-like and LunarLander-like models.
class WorkloadModel {
 public:
  virtual ~WorkloadModel() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual const HyperparameterSpace& space() const noexcept = 0;
  /// Number of epochs a Default-policy run would execute.
  [[nodiscard]] virtual std::size_t max_epochs() const noexcept = 0;
  /// Normalized target performance (y_target): 0.77 for CIFAR, the solved
  /// condition for LunarLander.
  [[nodiscard]] virtual double target_performance() const noexcept = 0;
  /// Normalized kill threshold from domain knowledge (§5.3): 0.15 accuracy
  /// for CIFAR, reward -100 for LunarLander.
  [[nodiscard]] virtual double kill_threshold() const noexcept = 0;
  /// Evaluation boundary b in iterations (10 supervised, 2000-RL-iterations
  /// expressed in our epoch units).
  [[nodiscard]] virtual std::size_t evaluation_boundary() const noexcept = 0;

  /// Deterministically realize the ground truth for a configuration.
  /// `experiment_seed` varies the noise realization between repeat runs
  /// (the paper repeats experiments 10x/5x for exactly this reason) while
  /// keeping the configuration's intrinsic quality fixed.
  [[nodiscard]] virtual GroundTruthCurve realize(const Configuration& config,
                                                 std::uint64_t experiment_seed) const = 0;
};

/// Intrinsic (noise-free) quality summary, exposed for tests and calibration.
struct ConfigQuality {
  double final_perf = 0.0;   ///< asymptotic normalized performance
  double speed = 1.0;        ///< learning-rate-of-curve scale (higher = faster)
  double score = 0.0;        ///< raw quality score in [0, 1] before mapping
  bool learns = false;       ///< false => stuck at the non-learning floor
  bool crashes = false;      ///< RL only: learning-crash midway
};

}  // namespace hyperdrive::workload
