// Replayable workload traces — the Trace Generator of the paper's simulator
// (§7.1, Fig. 11: rows of Job ID / Epoch / Time / Accuracy / Node ID).
//
// A Trace freezes the ground truth of a set of configurations so that
// different scheduling policies (and different resource capacities /
// configuration orders) can be compared on *identical* training behaviour.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/sim_time.hpp"
#include "workload/workload_model.hpp"

namespace hyperdrive::workload {

/// Ground truth for one job in a trace.
struct TraceJob {
  std::uint64_t job_id = 0;
  Configuration config;
  GroundTruthCurve curve;
};

/// A full experiment workload: jobs in exploration order plus the domain
/// metadata every policy needs.
struct Trace {
  std::string workload_name;
  double target_performance = 0.0;
  double kill_threshold = 0.0;
  std::size_t evaluation_boundary = 10;
  std::size_t max_epochs = 0;
  std::vector<TraceJob> jobs;

  /// A copy with the job order permuted by `rng` (§7.2.2 configuration-order
  /// sensitivity). Job ids are preserved; only the order changes.
  [[nodiscard]] Trace shuffled(util::Rng& rng) const;

  /// Does any job ever reach the target? (Sanity check for experiments that
  /// measure time-to-target.)
  [[nodiscard]] bool target_reachable() const noexcept;

  /// Serialize per-epoch rows (job_id, epoch, duration_s, perf) as CSV.
  void save_csv(std::ostream& out) const;
  /// Reload rows saved by save_csv. Configurations are not round-tripped
  /// (the scheduler never needs them once the curve is frozen); metadata
  /// must be supplied by the caller.
  [[nodiscard]] static Trace load_csv(std::istream& in, std::string workload_name,
                                      double target, double kill_threshold,
                                      std::size_t evaluation_boundary);
};

/// Exploit/explore continuation hook (PBT; DESIGN.md §13). An execution
/// substrate invokes it when a policy clones `donor`'s trained state into
/// `target` at the donor's completed epoch `epoch`: the hook returns the
/// ground truth the cloned job trains against from that epoch on —
/// typically the donor's hyperparameters perturbed with the seed-derived
/// RNG `stream` and re-realized against the workload model, with the
/// pre-clone epochs adopted from the donor so the curve is continuous at
/// the splice point. The returned job must keep `target`'s id.
using ExploreFn =
    std::function<TraceJob(const TraceJob& target, const TraceJob& donor,
                           std::size_t epoch, std::uint64_t stream)>;

/// Sample `num_configs` configurations from the model's space and realize
/// their ground truth. The same (model, seed, num_configs) triple always
/// produces the same trace — the paper's "same random search HG with the
/// same initial random seed" setup (§6.1).
[[nodiscard]] Trace generate_trace(const WorkloadModel& model, std::size_t num_configs,
                                   std::uint64_t seed);

}  // namespace hyperdrive::workload
