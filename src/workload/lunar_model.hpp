// LunarLander-like reinforcement-learning workload (paper §6.3).
//
// Stands in for the Keras/Theano DQN of Asadi & Williams [4]: 11
// hyperparameters, reward in [-500, 300] min-max normalized per Eq. 4,
// "solved" at a sustained average reward of 200 over 100 consecutive trials,
// non-learning value -100 (the crash penalty), and the characteristic
// "learning-crash" failure mode of Fig. 8 where a configuration improves for
// a while and then collapses to the non-learning range for good.
//
// One epoch in this model = 200 episode trials, so the paper's RL evaluation
// boundary of 2,000 iterations equals b = 10 epochs, and 100 epochs span the
// 20,000 trials plotted in Fig. 8. The per-epoch performance value is the
// 100-trial trailing average the environment's solved condition is defined
// over.
#pragma once

#include "workload/workload_model.hpp"

namespace hyperdrive::workload {

struct LunarModelOptions {
  std::size_t max_epochs = 100;   ///< x 200 trials = 20k episode trials
  double reward_min = -500.0;     ///< Eq. 4 r_min (empirical, §6.3)
  double reward_max = 300.0;      ///< Eq. 4 r_max (environment bound)
  double solved_reward = 200.0;   ///< environment's solved condition
  double crash_reward = -100.0;   ///< non-learning value (lander crash)
  double noise_scale = 1.0;
  double epoch_duration_scale = 1.0;
};

class LunarWorkloadModel final : public WorkloadModel {
 public:
  explicit LunarWorkloadModel(LunarModelOptions options = {});

  [[nodiscard]] std::string_view name() const noexcept override { return "lunarlander"; }
  [[nodiscard]] const HyperparameterSpace& space() const noexcept override { return space_; }
  [[nodiscard]] std::size_t max_epochs() const noexcept override { return options_.max_epochs; }
  /// Normalized solved threshold: (200 - (-500)) / 800 = 0.875.
  [[nodiscard]] double target_performance() const noexcept override;
  /// Normalized crash reward: (-100 - (-500)) / 800 = 0.5 (§5.3).
  [[nodiscard]] double kill_threshold() const noexcept override;
  /// b = 2,000 RL iterations = 10 of our 200-trial epochs.
  [[nodiscard]] std::size_t evaluation_boundary() const noexcept override { return 10; }

  [[nodiscard]] GroundTruthCurve realize(const Configuration& config,
                                         std::uint64_t experiment_seed) const override;

  [[nodiscard]] ConfigQuality quality(const Configuration& config) const;

  [[nodiscard]] double normalize_reward(double r) const noexcept;

 private:
  LunarModelOptions options_;
  HyperparameterSpace space_;
};

}  // namespace hyperdrive::workload
