// Hyperparameter spaces and configurations. The Hyperparameter Generator
// (§4.2 ➁) draws configurations from a HyperparameterSpace; the workload
// models map a Configuration deterministically to a ground-truth learning
// curve, so the same configuration always trains the same way regardless of
// the order in which a policy explores it (needed for §7.2.2's
// configuration-order sensitivity study).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "util/rng.hpp"

namespace hyperdrive::workload {

/// A continuous range, optionally sampled log-uniformly (learning rates,
/// weight decays and friends span orders of magnitude).
struct ContinuousDomain {
  double lo = 0.0;
  double hi = 1.0;
  bool log_scale = false;
};

struct IntegerDomain {
  std::int64_t lo = 0;
  std::int64_t hi = 1;
  bool log_scale = false;
};

struct CategoricalDomain {
  std::vector<std::string> options;
};

using ParamDomain = std::variant<ContinuousDomain, IntegerDomain, CategoricalDomain>;
using ParamValue = std::variant<double, std::int64_t, std::string>;

/// Render a value for traces and logs ("0.0032", "128", "adam").
[[nodiscard]] std::string to_string(const ParamValue& v);

/// One named hyperparameter assignment set, e.g. {lr: 0.003, momentum: 0.9}.
class Configuration {
 public:
  Configuration() = default;

  void set(std::string name, ParamValue value);
  [[nodiscard]] bool has(const std::string& name) const noexcept;
  /// Throws std::out_of_range if absent.
  [[nodiscard]] const ParamValue& get(const std::string& name) const;
  /// Numeric view: doubles pass through, integers convert; throws
  /// std::invalid_argument for categorical values.
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] const std::string& get_categorical(const std::string& name) const;

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] const std::map<std::string, ParamValue>& values() const noexcept {
    return values_;
  }

  /// Stable FNV-1a hash of all (name, value) pairs; the workload models seed
  /// their ground-truth curve generation from this.
  [[nodiscard]] std::uint64_t stable_hash() const noexcept;

  [[nodiscard]] std::string to_string() const;

 private:
  std::map<std::string, ParamValue> values_;  // ordered => deterministic hash
};

/// A named collection of parameter domains.
class HyperparameterSpace {
 public:
  HyperparameterSpace& add(std::string name, ParamDomain domain);

  [[nodiscard]] std::size_t size() const noexcept { return dims_.size(); }
  [[nodiscard]] const std::vector<std::pair<std::string, ParamDomain>>& dims() const noexcept {
    return dims_;
  }

  /// Sample one configuration uniformly (log-uniformly where flagged).
  [[nodiscard]] Configuration sample(util::Rng& rng) const;

  /// Enumerate an axis-aligned grid with `points_per_dim` points per
  /// continuous/integer dimension (categoricals enumerate all options).
  /// Order is row-major over dims(). Grid size grows multiplicatively, so
  /// callers should cap `max_configs` (0 = unlimited).
  [[nodiscard]] std::vector<Configuration> grid(std::size_t points_per_dim,
                                                std::size_t max_configs = 0) const;

 private:
  std::vector<std::pair<std::string, ParamDomain>> dims_;
};

}  // namespace hyperdrive::workload
