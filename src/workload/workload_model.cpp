#include "workload/workload_model.hpp"

#include <algorithm>

namespace hyperdrive::workload {

double GroundTruthCurve::best_perf() const noexcept {
  if (perf.empty()) return 0.0;
  return *std::max_element(perf.begin(), perf.end());
}

std::size_t GroundTruthCurve::first_epoch_reaching(double target) const noexcept {
  for (std::size_t i = 0; i < perf.size(); ++i) {
    if (perf[i] >= target) return i + 1;
  }
  return 0;
}

}  // namespace hyperdrive::workload
