#include "workload/trace_tools.hpp"

#include <algorithm>

namespace hyperdrive::workload {

Trace reachable_trace(const WorkloadModel& model, std::size_t configs,
                      std::uint64_t seed) {
  auto trace = generate_trace(model, configs, seed);
  while (!trace.target_reachable()) {
    trace = generate_trace(model, configs, ++seed);
  }
  return trace;
}

std::size_t first_winner_index(const Trace& trace) {
  for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
    if (trace.jobs[i].curve.first_epoch_reaching(trace.target_performance) != 0) return i;
  }
  return trace.jobs.size();
}

Trace suitable_trace(const WorkloadModel& model, std::size_t configs, std::uint64_t seed,
                     std::size_t machines) {
  for (;; ++seed) {
    auto trace = generate_trace(model, configs, seed);
    if (!trace.target_reachable()) continue;
    if (first_winner_index(trace) < machines) continue;
    double best = 0.0;
    for (const auto& job : trace.jobs) best = std::max(best, job.curve.best_perf());
    if (best < trace.target_performance + 0.01) continue;
    return trace;
  }
}

Trace renoise(const WorkloadModel& model, const Trace& base,
              std::uint64_t experiment_seed) {
  Trace out = base;
  for (auto& job : out.jobs) {
    job.curve = model.realize(job.config, experiment_seed);
  }
  return out;
}

}  // namespace hyperdrive::workload
