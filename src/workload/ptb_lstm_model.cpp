#include "workload/ptb_lstm_model.hpp"

#include <algorithm>
#include <cmath>

namespace hyperdrive::workload {

namespace {
double log_kernel(double value, double ideal_log10, double width) {
  const double d = (std::log10(value) - ideal_log10) / width;
  return std::exp(-d * d);
}
double linear_kernel(double value, double ideal, double width) {
  const double d = (value - ideal) / width;
  return std::exp(-d * d);
}
}  // namespace

PtbLstmWorkloadModel::PtbLstmWorkloadModel(PtbLstmModelOptions options)
    : options_(options) {
  // The Zaremba et al. medium-LSTM knobs plus the group-Lasso lambda of the
  // §9 case study.
  space_.add("lambda", ContinuousDomain{1e-7, 1e-2, /*log_scale=*/true})
      .add("lr", ContinuousDomain{0.1, 10.0, true})
      .add("lr_decay", ContinuousDomain{0.3, 0.95})
      .add("dropout", ContinuousDomain{0.0, 0.8})
      .add("hidden_size", IntegerDomain{128, 1500, true})
      .add("num_layers", IntegerDomain{1, 3})
      .add("seq_len", IntegerDomain{10, 70})
      .add("batch_size", IntegerDomain{10, 64, true})
      .add("grad_clip", ContinuousDomain{1.0, 15.0})
      .add("embed_init", ContinuousDomain{0.01, 0.3, true});
}

double PtbLstmWorkloadModel::normalize_ppl(double ppl) const noexcept {
  return std::clamp((options_.ppl_worst - ppl) / (options_.ppl_worst - options_.ppl_best),
                    0.0, 1.0);
}

double PtbLstmWorkloadModel::denormalize_ppl(double score) const noexcept {
  return options_.ppl_worst - score * (options_.ppl_worst - options_.ppl_best);
}

double PtbLstmWorkloadModel::target_performance() const noexcept {
  return normalize_ppl(options_.target_ppl);
}

double PtbLstmWorkloadModel::kill_threshold() const noexcept {
  return normalize_ppl(options_.kill_ppl);
}

double PtbLstmWorkloadModel::target_sparsity(const Configuration& config) const {
  // Group Lasso zeroes more groups the larger lambda: a logistic in
  // log10(lambda), negligible below 1e-6 and saturating near 0.9 at 1e-2.
  const double l = std::log10(config.get_double("lambda"));
  return 0.9 / (1.0 + std::exp(-(l + 3.6) / 0.55));
}

ConfigQuality PtbLstmWorkloadModel::quality(const Configuration& config) const {
  ConfigQuality q;
  const double lr = config.get_double("lr");
  const double grad_clip = config.get_double("grad_clip");
  const double dropout = config.get_double("dropout");
  const auto hidden = static_cast<double>(config.get_int("hidden_size"));

  // Divergence: LSTM language models explode with a hot learning rate and a
  // loose gradient clip.
  if (lr > 6.0 && grad_clip > 10.0) {
    q.learns = false;
    q.final_perf = normalize_ppl(options_.ppl_worst * 0.9);
    q.speed = 1.0;
    return q;
  }

  const double s_lr = log_kernel(lr, 0.0, 0.55);  // ideal ~1.0
  const double s_decay = linear_kernel(config.get_double("lr_decay"), 0.8, 0.25);
  const double s_drop = linear_kernel(dropout, 0.5, 0.3);
  const double s_hidden = log_kernel(hidden, 2.8, 0.5);  // ideal ~650
  const double s_layers =
      config.get_int("num_layers") == 2 ? 1.0 : (config.get_int("num_layers") == 3 ? 0.8 : 0.6);
  const double s_seq =
      linear_kernel(static_cast<double>(config.get_int("seq_len")), 35.0, 25.0);
  const double s_batch =
      log_kernel(static_cast<double>(config.get_int("batch_size")), 1.3, 0.6);
  const double s_clip = linear_kernel(grad_clip, 5.0, 5.0);
  const double s_embed = log_kernel(config.get_double("embed_init"), -1.0, 0.7);

  const double score = std::pow(s_lr, 0.28) * std::pow(s_decay, 0.10) *
                       std::pow(s_drop, 0.14) * std::pow(s_hidden, 0.16) *
                       std::pow(s_layers, 0.08) * std::pow(s_seq, 0.06) *
                       std::pow(s_batch, 0.06) * std::pow(s_clip, 0.06) *
                       std::pow(s_embed, 0.06);
  q.score = score;

  // Base perplexity from hyperparameter quality: 65 for perfect settings,
  // drifting toward ~400 for poor-but-converging ones.
  const double base_ppl = options_.ppl_best + (400.0 - options_.ppl_best) *
                                                  std::pow(1.0 - score, 1.6);

  // Group-Lasso trade-off (the §9 knee): gentle perplexity cost up to ~55%
  // sparsity, steep beyond it.
  const double sparsity = target_sparsity(config);
  const double knee = std::max(0.0, sparsity - 0.55);
  const double ppl_penalty = 1.0 + 0.06 * (sparsity / 0.55) + 3.0 * knee * knee;

  q.final_perf = normalize_ppl(base_ppl * ppl_penalty);
  q.speed = 0.5 + 1.6 * score;
  q.learns = true;
  return q;
}

GroundTruthCurve PtbLstmWorkloadModel::realize(const Configuration& config,
                                               std::uint64_t experiment_seed) const {
  const ConfigQuality q = quality(config);
  const std::uint64_t config_hash = config.stable_hash();
  util::Rng shape_rng(util::derive_seed(config_hash, 0x15b7));
  util::Rng noise_rng(util::derive_seed(config_hash ^ experiment_seed, 0x2e0c));

  GroundTruthCurve curve;
  curve.raw_min = 0.0;
  curve.raw_max = 1.0;
  curve.perf.resize(options_.max_epochs);
  curve.secondary.resize(options_.max_epochs);

  // PTB epochs are slow: minutes each, scaling with network size.
  const double hidden = static_cast<double>(config.get_int("hidden_size"));
  const double layers = static_cast<double>(config.get_int("num_layers"));
  const double base_seconds =
      (90.0 + 0.35 * hidden * layers / 2.0) * options_.epoch_duration_scale;
  curve.epoch_duration =
      util::SimTime::seconds(base_seconds * shape_rng.lognormal(0.0, 0.08));

  const double noise_sigma = (0.004 + 0.006 * shape_rng.uniform()) * options_.noise_scale;
  const double sparsity_final = target_sparsity(config);
  // Sparsity ramps in once the optimizer has shrunk whole groups: a delayed
  // logistic over epochs.
  const double sparsity_mid = 6.0 + 8.0 * shape_rng.uniform();
  const double sparsity_rate = 0.25 + 0.2 * shape_rng.uniform();

  if (!q.learns) {
    for (std::size_t e = 0; e < curve.perf.size(); ++e) {
      curve.perf[e] = std::clamp(
          normalize_ppl(options_.ppl_worst * 0.9) + noise_rng.normal(0.0, noise_sigma),
          0.0, 1.0);
      curve.secondary[e] = 0.0;  // diverged models shrink nothing
    }
    return curve;
  }

  const double start = normalize_ppl(650.0 - 150.0 * shape_rng.uniform());
  const double k = 0.14 * q.speed * shape_rng.lognormal(0.0, 0.15);
  const double d = 0.9 + 0.5 * shape_rng.uniform();
  for (std::size_t e = 0; e < curve.perf.size(); ++e) {
    const double x = static_cast<double>(e + 1);
    double y = start + (q.final_perf - start) * (1.0 - std::exp(-std::pow(k * x, d)));
    y += noise_rng.normal(0.0, noise_sigma);
    curve.perf[e] = std::clamp(y, 0.0, 1.0);

    double s = sparsity_final / (1.0 + std::exp(-(x - sparsity_mid) * sparsity_rate));
    s += noise_rng.normal(0.0, 0.01);
    curve.secondary[e] = std::clamp(s, 0.0, 1.0);
  }
  return curve;
}

}  // namespace hyperdrive::workload
