#include "workload/hyperparameters.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace hyperdrive::workload {

std::string to_string(const ParamValue& v) {
  return std::visit(
      [](const auto& x) -> std::string {
        using T = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<T, std::string>) {
          return x;
        } else if constexpr (std::is_same_v<T, std::int64_t>) {
          return std::to_string(x);
        } else {
          std::ostringstream os;
          os.precision(8);
          os << x;
          return os.str();
        }
      },
      v);
}

void Configuration::set(std::string name, ParamValue value) {
  values_[std::move(name)] = std::move(value);
}

bool Configuration::has(const std::string& name) const noexcept {
  return values_.find(name) != values_.end();
}

const ParamValue& Configuration::get(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) throw std::out_of_range("hyperparameter not set: " + name);
  return it->second;
}

double Configuration::get_double(const std::string& name) const {
  const auto& v = get(name);
  if (const auto* d = std::get_if<double>(&v)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&v)) return static_cast<double>(*i);
  throw std::invalid_argument("hyperparameter is categorical: " + name);
}

std::int64_t Configuration::get_int(const std::string& name) const {
  const auto& v = get(name);
  if (const auto* i = std::get_if<std::int64_t>(&v)) return *i;
  if (const auto* d = std::get_if<double>(&v)) return static_cast<std::int64_t>(*d);
  throw std::invalid_argument("hyperparameter is categorical: " + name);
}

const std::string& Configuration::get_categorical(const std::string& name) const {
  const auto& v = get(name);
  if (const auto* s = std::get_if<std::string>(&v)) return *s;
  throw std::invalid_argument("hyperparameter is not categorical: " + name);
}

std::uint64_t Configuration::stable_hash() const noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix_byte = [&h](unsigned char b) {
    h ^= b;
    h *= 1099511628211ULL;
  };
  auto mix_bytes = [&](const void* p, std::size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) mix_byte(bytes[i]);
  };
  for (const auto& [name, value] : values_) {
    mix_bytes(name.data(), name.size());
    mix_byte(0);
    std::visit(
        [&](const auto& x) {
          using T = std::decay_t<decltype(x)>;
          if constexpr (std::is_same_v<T, std::string>) {
            mix_byte(2);
            mix_bytes(x.data(), x.size());
          } else if constexpr (std::is_same_v<T, std::int64_t>) {
            mix_byte(1);
            mix_bytes(&x, sizeof(x));
          } else {
            mix_byte(0);
            std::uint64_t bits;
            std::memcpy(&bits, &x, sizeof(bits));
            mix_bytes(&bits, sizeof(bits));
          }
        },
        value);
    mix_byte(0);
  }
  return h;
}

std::string Configuration::to_string() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const auto& [name, value] : values_) {
    if (!first) os << ", ";
    first = false;
    os << name << '=' << workload::to_string(value);
  }
  os << '}';
  return os.str();
}

HyperparameterSpace& HyperparameterSpace::add(std::string name, ParamDomain domain) {
  if (const auto* c = std::get_if<ContinuousDomain>(&domain)) {
    if (!(c->hi > c->lo)) throw std::invalid_argument("bad continuous domain: " + name);
    if (c->log_scale && c->lo <= 0.0) {
      throw std::invalid_argument("log-scale domain needs positive bounds: " + name);
    }
  } else if (const auto* i = std::get_if<IntegerDomain>(&domain)) {
    if (i->hi < i->lo) throw std::invalid_argument("bad integer domain: " + name);
    if (i->log_scale && i->lo <= 0) {
      throw std::invalid_argument("log-scale domain needs positive bounds: " + name);
    }
  } else if (const auto* cat = std::get_if<CategoricalDomain>(&domain)) {
    if (cat->options.empty()) throw std::invalid_argument("empty categorical: " + name);
  }
  dims_.emplace_back(std::move(name), std::move(domain));
  return *this;
}

Configuration HyperparameterSpace::sample(util::Rng& rng) const {
  Configuration config;
  for (const auto& [name, domain] : dims_) {
    if (const auto* c = std::get_if<ContinuousDomain>(&domain)) {
      double v;
      if (c->log_scale) {
        v = std::exp(rng.uniform(std::log(c->lo), std::log(c->hi)));
      } else {
        v = rng.uniform(c->lo, c->hi);
      }
      config.set(name, v);
    } else if (const auto* i = std::get_if<IntegerDomain>(&domain)) {
      std::int64_t v;
      if (i->log_scale) {
        const double lv = rng.uniform(std::log(static_cast<double>(i->lo)),
                                      std::log(static_cast<double>(i->hi) + 1.0));
        v = std::clamp<std::int64_t>(static_cast<std::int64_t>(std::exp(lv)), i->lo, i->hi);
      } else {
        v = rng.uniform_int(i->lo, i->hi);
      }
      config.set(name, v);
    } else {
      const auto& cat = std::get<CategoricalDomain>(domain);
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(cat.options.size()) - 1));
      config.set(name, cat.options[idx]);
    }
  }
  return config;
}

std::vector<Configuration> HyperparameterSpace::grid(std::size_t points_per_dim,
                                                     std::size_t max_configs) const {
  if (points_per_dim == 0) throw std::invalid_argument("points_per_dim must be >= 1");
  std::vector<Configuration> out;
  out.emplace_back();

  for (const auto& [name, domain] : dims_) {
    std::vector<ParamValue> axis;
    if (const auto* c = std::get_if<ContinuousDomain>(&domain)) {
      const std::size_t n = points_per_dim;
      for (std::size_t i = 0; i < n; ++i) {
        const double t = n == 1 ? 0.5 : static_cast<double>(i) / static_cast<double>(n - 1);
        double v;
        if (c->log_scale) {
          v = std::exp(std::log(c->lo) + t * (std::log(c->hi) - std::log(c->lo)));
        } else {
          v = c->lo + t * (c->hi - c->lo);
        }
        axis.emplace_back(v);
      }
    } else if (const auto* idom = std::get_if<IntegerDomain>(&domain)) {
      const auto span = static_cast<std::size_t>(idom->hi - idom->lo) + 1;
      const std::size_t n = std::min(points_per_dim, span);
      for (std::size_t i = 0; i < n; ++i) {
        const double t = n == 1 ? 0.5 : static_cast<double>(i) / static_cast<double>(n - 1);
        axis.emplace_back(static_cast<std::int64_t>(
            std::llround(static_cast<double>(idom->lo) +
                         t * static_cast<double>(idom->hi - idom->lo))));
      }
    } else {
      for (const auto& opt : std::get<CategoricalDomain>(domain).options) {
        axis.emplace_back(opt);
      }
    }

    std::vector<Configuration> next;
    next.reserve(out.size() * axis.size());
    for (const auto& base : out) {
      for (const auto& v : axis) {
        Configuration c = base;
        c.set(name, v);
        next.push_back(std::move(c));
      }
    }
    out = std::move(next);
    // Cap growth eagerly so a many-dimensional grid cannot explode; kept
    // configs still receive every remaining dimension.
    if (max_configs > 0 && out.size() > max_configs) out.resize(max_configs);
  }
  return out;
}

}  // namespace hyperdrive::workload
