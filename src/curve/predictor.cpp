#include "curve/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "curve/batch_evaluator.hpp"
#include "curve/nelder_mead.hpp"

namespace hyperdrive::curve {

namespace {

/// FNV-1a over the bit patterns of the history so that a predictor call is
/// deterministic per (seed, history) regardless of call order.
std::uint64_t hash_history(std::span<const double> ys) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  mix(ys.size());
  for (double y : ys) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(y));
    std::memcpy(&bits, &y, sizeof(bits));
    mix(bits);
  }
  return h;
}

std::vector<std::unique_ptr<ParametricModel>> models_from_config(
    const PredictorConfig& config) {
  return config.model_names.empty() ? make_all_models() : make_models(config.model_names);
}

void validate_request(std::span<const double> history, std::span<const double> future_epochs,
                      double horizon) {
  if (history.empty()) throw std::invalid_argument("predict: empty history");
  if (future_epochs.empty()) throw std::invalid_argument("predict: no future epochs");
  if (!(horizon >= 1.0)) throw std::invalid_argument("predict: bad horizon");
  for (double e : future_epochs) {
    if (e <= static_cast<double>(history.size())) {
      throw std::invalid_argument("predict: future epoch not after history");
    }
  }
}

/// Scalar reference evaluator: the generic two-pass CurveEnsemble path,
/// kept as the ground truth the fused kernels are tested against.
class EnsembleLogProb final : public LogProbFn {
 public:
  EnsembleLogProb(const CurveEnsemble& ensemble, std::span<const double> ys)
      : ensemble_(ensemble), ys_(ys) {}

  [[nodiscard]] double log_prob(std::span<const double> theta) override {
    return ensemble_.log_posterior(theta, ys_);
  }

 private:
  const CurveEnsemble& ensemble_;
  std::span<const double> ys_;
};

class McmcPredictor final : public CurvePredictor, public WarmStartPredictor {
 public:
  explicit McmcPredictor(PredictorConfig config) : config_(std::move(config)) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "mcmc"; }

  [[nodiscard]] CurvePrediction predict(std::span<const double> history,
                                        std::span<const double> future_epochs,
                                        double horizon) const override {
    return predict_warm(history, future_epochs, horizon, nullptr, nullptr);
  }

  [[nodiscard]] CurvePrediction predict_warm(std::span<const double> history,
                                             std::span<const double> future_epochs,
                                             double horizon, const WarmPosterior* warm,
                                             WarmPosterior* out) const override {
    validate_request(history, future_epochs, horizon);
    CurveEnsemble ensemble(models_from_config(config_), horizon, config_.prior);
    util::Rng rng(util::derive_seed(config_.seed, hash_history(history)));
    const std::size_t dim = ensemble.dim();

    BatchEvaluator* eval = nullptr;
    McmcResult mcmc;
    bool sampled = false;
    if (warm != nullptr && !warm->empty() && warm->dim == dim &&
        warm->walkers.size() == config_.mcmc.nwalkers * dim) {
      try {
        mcmc = run_sampler(ensemble, history, warm->walkers, rng, eval);
        sampled = true;
      } catch (const std::runtime_error&) {
        // Every warm walker fell outside the grown prefix's support. The
        // sampler throws before consuming any randomness, so falling through
        // to the cold start below is byte-identical to a cold-only call.
      }
    }
    if (!sampled) {
      const auto center = ensemble.initial_theta(history);
      std::vector<double> walkers;
      walkers.reserve(config_.mcmc.nwalkers * dim);
      // First walker exactly at the least-squares center, the rest jittered.
      walkers.insert(walkers.end(), center.begin(), center.end());
      for (std::size_t i = 1; i < config_.mcmc.nwalkers; ++i) {
        const auto w = ensemble.jitter(center, rng);
        walkers.insert(walkers.end(), w.begin(), w.end());
      }
      mcmc = run_sampler(ensemble, history, std::move(walkers), rng, eval);
    }
    if (out != nullptr) {
      out->dim = dim;
      out->walkers = mcmc.final_walkers;
    }

    // Posterior predictive over *observed* performance: latent curve plus
    // each sample's own observation noise. Reported validation accuracy is
    // noisy, and targets are detected on the noisy values, so reached-by
    // probabilities must integrate the noise (a config plateauing just below
    // the target still has real probability of an observed crossing).
    const std::size_t width = future_epochs.size();
    std::vector<double> flat;
    flat.reserve(mcmc.num_samples() * width);
    std::vector<double> row(width);
    std::size_t kept = 0;
    for (std::size_t s = 0; s < mcmc.num_samples(); ++s) {
      const auto theta = mcmc.sample(s);
      const double sigma = std::exp(theta[ensemble.sigma_offset()]);
      bool ok = true;
      for (std::size_t e = 0; e < width; ++e) {
        const double latent = eval != nullptr
                                  ? eval->eval_curve(future_epochs[e], theta)
                                  : ensemble.eval(future_epochs[e], theta);
        row[e] = latent + rng.normal(0.0, sigma);
        if (!std::isfinite(row[e])) {
          ok = false;
          break;
        }
      }
      if (ok) {
        flat.insert(flat.end(), row.begin(), row.end());
        ++kept;
      }
    }
    return CurvePrediction(std::vector<double>(future_epochs.begin(), future_epochs.end()),
                           std::move(flat), kept);
  }

 private:
  /// Run the ensemble sampler over flat walkers, routing log-posterior
  /// evaluation through the fused kernels (config_.batched_kernel) or the
  /// scalar reference path. `eval_out` receives the bound evaluator (fused
  /// path only) so the posterior-predictive stage can reuse its tables.
  McmcResult run_sampler(const CurveEnsemble& ensemble, std::span<const double> history,
                         std::vector<double> walkers, util::Rng& rng,
                         BatchEvaluator*& eval_out) const {
    if (config_.batched_kernel) {
      // One evaluator per thread: its scratch arenas persist across predict
      // calls, so a steady-state sweep cell allocates nothing here.
      thread_local BatchEvaluator evaluator;
      evaluator.reset(ensemble);
      evaluator.bind(history);
      eval_out = &evaluator;
      return run_ensemble_mcmc(evaluator, std::move(walkers), ensemble.dim(),
                               config_.mcmc, rng);
    }
    EnsembleLogProb fn(ensemble, history);
    eval_out = nullptr;
    return run_ensemble_mcmc(fn, std::move(walkers), ensemble.dim(), config_.mcmc, rng);
  }

  PredictorConfig config_;
};

class LsqPredictor final : public CurvePredictor {
 public:
  explicit LsqPredictor(PredictorConfig config) : config_(std::move(config)) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "lsq_bootstrap"; }

  [[nodiscard]] CurvePrediction predict(std::span<const double> history,
                                        std::span<const double> future_epochs,
                                        double horizon) const override {
    validate_request(history, future_epochs, horizon);
    const auto models = models_from_config(config_);
    util::Rng rng(util::derive_seed(config_.seed ^ 0xf457, hash_history(history)));

    // Per-family least-squares fit.
    struct Fit {
      std::vector<double> params;
      double mse = std::numeric_limits<double>::infinity();
    };
    std::vector<Fit> fits(models.size());
    double best_mse = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < models.size(); ++k) {
      const auto& model = *models[k];
      const auto& box = model.bounds();
      auto objective = [&](const std::vector<double>& raw) {
        std::vector<double> p = raw;
        for (std::size_t d = 0; d < p.size(); ++d) {
          p[d] = std::clamp(p[d], box[d].lo, box[d].hi);
        }
        double mse = 0.0;
        for (std::size_t i = 0; i < history.size(); ++i) {
          const double f = model.eval(static_cast<double>(i + 1), p);
          if (!std::isfinite(f)) return std::numeric_limits<double>::infinity();
          const double r = history[i] - f;
          mse += r * r;
        }
        return mse / static_cast<double>(history.size());
      };
      auto fit = nelder_mead(objective, model.initial_guess(history));
      for (std::size_t d = 0; d < fit.x.size(); ++d) {
        fit.x[d] = std::clamp(fit.x[d], box[d].lo, box[d].hi);
      }
      fits[k].params = std::move(fit.x);
      fits[k].mse = fit.fx;
      best_mse = std::min(best_mse, fits[k].mse);
    }

    // Mixture weights via a softmax over fit quality: families that explain
    // the prefix much worse than the best get negligible weight.
    std::vector<double> weights(models.size(), 0.0);
    const double scale = std::max(best_mse, 1e-6);
    for (std::size_t k = 0; k < models.size(); ++k) {
      if (!std::isfinite(fits[k].mse)) continue;
      weights[k] = std::exp(-0.5 * (fits[k].mse - best_mse) / scale);
    }

    const double sigma = std::clamp(std::sqrt(std::max(best_mse, 1e-8)), 2e-3, 0.3);
    const double last = history.back();

    // Recent slope for the continuation samples: mean of the last few
    // first differences.
    double slope = 0.0;
    {
      const std::size_t window = std::min<std::size_t>(5, history.size() - 1);
      if (window > 0) {
        for (std::size_t i = history.size() - window; i < history.size(); ++i) {
          slope += history[i] - history[i - 1];
        }
        slope /= static_cast<double>(window);
      }
    }

    // Bootstrap: sample a family, jitter its fitted curve by a random offset
    // and slope perturbation scaled to the residual noise. A configurable
    // fraction of samples instead follow geometrically-damped continuations
    // of the recent slope (see lsq_optimistic_fraction).
    const std::size_t width = future_epochs.size();
    std::vector<double> flat;
    flat.reserve(config_.lsq_samples * width);
    std::vector<double> curve(width);
    const double n = static_cast<double>(history.size());
    for (std::size_t s = 0; s < config_.lsq_samples; ++s) {
      if (rng.bernoulli(config_.lsq_optimistic_fraction)) {
        // Continuation sample: y(x) = last + slope * sum_{j<=x-n} gamma^j,
        // gamma ~ U(0.80, 1.0). gamma -> 1 extrapolates the trend linearly;
        // small gamma saturates quickly. Flat histories stay flat, so this
        // adds no false hope to non-learners.
        const double gamma = rng.uniform(0.80, 1.0);
        const double offset = rng.normal(0.0, sigma);
        for (std::size_t e = 0; e < width; ++e) {
          const double steps = future_epochs[e] - n;
          const double geo = gamma >= 0.9999
                                 ? steps
                                 : gamma * (1.0 - std::pow(gamma, steps)) / (1.0 - gamma);
          curve[e] = std::clamp(last + slope * geo + offset + rng.normal(0.0, sigma),
                                config_.prior.y_lo, config_.prior.y_hi);
        }
        flat.insert(flat.end(), curve.begin(), curve.end());
        continue;
      }
      const std::size_t k = rng.categorical(weights);
      const auto& model = *models[k];
      const double offset = rng.normal(0.0, sigma);
      // Uncertainty about the asymptote grows with extrapolation distance.
      const double drift = rng.normal(0.0, sigma);
      bool ok = true;
      for (std::size_t e = 0; e < width; ++e) {
        const double x = future_epochs[e];
        double y = model.eval(x, fits[k].params);
        if (!std::isfinite(y)) {
          ok = false;
          break;
        }
        const double dist = std::max(0.0, (x - n) / std::max(1.0, n));
        // Offset/drift model parameter uncertainty; the extra per-epoch term
        // is the observation noise of the posterior predictive.
        y += offset + drift * std::min(2.0, dist) + rng.normal(0.0, sigma);
        curve[e] = std::clamp(y, config_.prior.y_lo, config_.prior.y_hi);
      }
      if (!ok) {
        // Fall back to a flat continuation of the last observation.
        std::fill(curve.begin(), curve.end(), last);
        for (auto& y : curve) y += rng.normal(0.0, sigma);
      }
      flat.insert(flat.end(), curve.begin(), curve.end());
    }
    return CurvePrediction(std::vector<double>(future_epochs.begin(), future_epochs.end()),
                           std::move(flat), config_.lsq_samples);
  }

 private:
  PredictorConfig config_;
};

class LastValuePredictor final : public CurvePredictor {
 public:
  explicit LastValuePredictor(PredictorConfig config) : config_(std::move(config)) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "last_value"; }

  [[nodiscard]] CurvePrediction predict(std::span<const double> history,
                                        std::span<const double> future_epochs,
                                        double horizon) const override {
    validate_request(history, future_epochs, horizon);
    util::Rng rng(util::derive_seed(config_.seed ^ 0x1a57, hash_history(history)));
    const double last = history.back();
    // Noise floor from recent history variability.
    double sigma = 0.01;
    if (history.size() >= 4) {
      double acc = 0.0;
      for (std::size_t i = history.size() - 3; i < history.size(); ++i) {
        acc += std::fabs(history[i] - history[i - 1]);
      }
      sigma = std::max(0.005, acc / 3.0);
    }
    const std::size_t nsamples = std::max<std::size_t>(32, config_.lsq_samples);
    const std::size_t width = future_epochs.size();
    std::vector<double> flat(nsamples * width);
    for (std::size_t s = 0; s < nsamples; ++s) {
      const double offset = rng.normal(0.0, sigma);
      std::fill(flat.begin() + static_cast<std::ptrdiff_t>(s * width),
                flat.begin() + static_cast<std::ptrdiff_t>((s + 1) * width), last + offset);
    }
    return CurvePrediction(std::vector<double>(future_epochs.begin(), future_epochs.end()),
                           std::move(flat), nsamples);
  }

 private:
  PredictorConfig config_;
};

}  // namespace

CurvePrediction::CurvePrediction(std::vector<double> epochs,
                                 std::vector<std::vector<double>> sample_curves)
    : epochs_(std::move(epochs)), nsamples_(sample_curves.size()) {
  samples_.reserve(nsamples_ * epochs_.size());
  for (const auto& s : sample_curves) {
    if (s.size() != epochs_.size()) {
      throw std::invalid_argument("CurvePrediction: sample width mismatch");
    }
    samples_.insert(samples_.end(), s.begin(), s.end());
  }
  finalize();
}

CurvePrediction::CurvePrediction(std::vector<double> epochs, std::vector<double> flat_samples,
                                 std::size_t num_samples)
    : epochs_(std::move(epochs)), samples_(std::move(flat_samples)), nsamples_(num_samples) {
  if (samples_.size() != nsamples_ * epochs_.size()) {
    throw std::invalid_argument("CurvePrediction: sample width mismatch");
  }
  finalize();
}

void CurvePrediction::finalize() {
  const std::size_t width = epochs_.size();
  running_max_.resize(samples_.size());
  for (std::size_t s = 0; s < nsamples_; ++s) {
    double acc = -std::numeric_limits<double>::infinity();
    for (std::size_t e = 0; e < width; ++e) {
      acc = std::max(acc, samples_[s * width + e]);
      running_max_[s * width + e] = acc;
    }
  }
}

double CurvePrediction::mean_at(std::size_t epoch_idx) const {
  if (nsamples_ == 0) return 0.0;
  if (epoch_idx >= epochs_.size()) throw std::out_of_range("CurvePrediction: epoch index");
  const std::size_t width = epochs_.size();
  double s = 0.0;
  for (std::size_t r = 0; r < nsamples_; ++r) s += samples_[r * width + epoch_idx];
  return s / static_cast<double>(nsamples_);
}

double CurvePrediction::stddev_at(std::size_t epoch_idx) const {
  if (nsamples_ < 2) return 0.0;
  const double m = mean_at(epoch_idx);
  const std::size_t width = epochs_.size();
  double acc = 0.0;
  for (std::size_t r = 0; r < nsamples_; ++r) {
    const double d = samples_[r * width + epoch_idx] - m;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(nsamples_ - 1));
}

double CurvePrediction::prob_at_least(std::size_t epoch_idx, double y) const {
  if (nsamples_ == 0) return 0.0;
  if (epoch_idx >= epochs_.size()) throw std::out_of_range("CurvePrediction: epoch index");
  const std::size_t width = epochs_.size();
  std::size_t hits = 0;
  for (std::size_t r = 0; r < nsamples_; ++r) {
    if (samples_[r * width + epoch_idx] >= y) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(nsamples_);
}

double CurvePrediction::prob_reached_by(std::size_t epoch_idx, double y) const {
  if (nsamples_ == 0) return 0.0;
  if (epoch_idx >= epochs_.size()) throw std::out_of_range("CurvePrediction: epoch index");
  const std::size_t width = epochs_.size();
  std::size_t hits = 0;
  for (std::size_t r = 0; r < nsamples_; ++r) {
    if (running_max_[r * width + epoch_idx] >= y) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(nsamples_);
}

std::unique_ptr<CurvePredictor> make_mcmc_predictor(PredictorConfig config) {
  return std::make_unique<McmcPredictor>(std::move(config));
}

std::unique_ptr<CurvePredictor> make_lsq_predictor(PredictorConfig config) {
  return std::make_unique<LsqPredictor>(std::move(config));
}

std::unique_ptr<CurvePredictor> make_last_value_predictor(PredictorConfig config) {
  return std::make_unique<LastValuePredictor>(std::move(config));
}

}  // namespace hyperdrive::curve
