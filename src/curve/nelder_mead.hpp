// Derivative-free simplex minimizer (Nelder & Mead 1965), used to fit each
// parametric curve family to an observed learning-curve prefix by least
// squares before MCMC refinement.
#pragma once

#include <functional>
#include <vector>

namespace hyperdrive::curve {

struct NelderMeadOptions {
  std::size_t max_iterations = 400;
  double initial_step = 0.1;       ///< relative simplex spread around the start
  double tolerance = 1e-8;         ///< stop when simplex f-spread falls below this
};

struct NelderMeadResult {
  std::vector<double> x;
  double fx = 0.0;
  std::size_t iterations = 0;
};

/// Minimize fn over R^n starting at x0. fn may return non-finite values;
/// those are treated as +infinity (rejected).
[[nodiscard]] NelderMeadResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& fn,
    std::vector<double> x0, const NelderMeadOptions& opts = {});

}  // namespace hyperdrive::curve
