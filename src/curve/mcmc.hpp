// Affine-invariant ensemble MCMC sampler (Goodman & Weare 2010), the
// algorithm behind the `emcee` package used by the reference learning-curve
// predictor. HyperDrive runs it with nwalkers=100 and a reduced nsamples=700
// (§5.2 "Reduce total MCMC samples").
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace hyperdrive::curve {

struct McmcOptions {
  /// Walker count. Must be even and >= max(4, 2 * dim) for the stretch move
  /// to mix (the Goodman–Weare requirement); enforced by run_ensemble_mcmc.
  std::size_t nwalkers = 100;
  std::size_t nsamples = 700;   ///< steps per walker (the paper's reduced setting)
  std::size_t burn_in = 200;    ///< steps discarded from the front
  std::size_t thin = 10;        ///< keep every `thin`-th post-burn-in step
  double stretch_a = 2.0;       ///< Goodman–Weare stretch parameter
};

struct McmcResult {
  /// Flattened posterior draws, row-major: num_samples() rows of dim each.
  std::vector<double> samples;
  std::size_t dim = 0;
  double acceptance_rate = 0.0;
  /// Final walker positions (flat nwalkers rows of dim): the posterior state
  /// a warm-started follow-up fit can seed its walkers from.
  std::vector<double> final_walkers;

  [[nodiscard]] std::size_t num_samples() const noexcept {
    return dim == 0 ? 0 : samples.size() / dim;
  }
  [[nodiscard]] std::span<const double> sample(std::size_t i) const noexcept {
    return std::span<const double>(samples).subspan(i * dim, dim);
  }
};

/// The sampler's Metropolis–Hastings acceptance state for one proposal,
/// published to the evaluator *before* the log-probability is computed. The
/// proposal is accepted iff
///   log_u < (a_term + cand_lp) - logp_cur        (evaluated left-to-right)
/// which is monotone non-decreasing in cand_lp under IEEE rounding — so an
/// evaluator that can bound its result from above may prove the test false
/// mid-evaluation and return early (see LogProbFn::log_prob_cutoff).
struct AcceptanceCutoff {
  double a_term = 0.0;    ///< (dim - 1) * log(z), the stretch-move Jacobian
  double logp_cur = 0.0;  ///< current walker's log-probability (finite)
  double log_u = 0.0;     ///< log(u + 1e-300), the acceptance draw
};

/// Log-probability evaluator for the batched sampler overload. `log_prob`
/// must be a pure function of theta returning -inf outside the support; the
/// batch call must produce exactly the per-row scalar results (the default
/// implementation just loops — override it to amortize work across rows).
class LogProbFn {
 public:
  virtual ~LogProbFn() = default;

  [[nodiscard]] virtual double log_prob(std::span<const double> theta) = 0;

  /// Evaluate `rows` packed parameter vectors (row-major, equal width) and
  /// write one log-probability per row into `out`.
  virtual void log_prob_batch(std::span<const double> thetas, std::size_t rows,
                              std::span<double> out) {
    const std::size_t dim = rows == 0 ? 0 : thetas.size() / rows;
    for (std::size_t i = 0; i < rows; ++i) {
      out[i] = log_prob(thetas.subspan(i * dim, dim));
    }
  }

  /// As log_prob, but the evaluator MAY return -inf early once it can prove
  /// the acceptance test fails for every value its remaining computation
  /// could produce. The proof obligation is exact (IEEE-monotone bounds, no
  /// tolerances): the sampler's accept/reject decision must be identical to
  /// a full evaluation, which is what keeps the fast path bit-identical to
  /// the reference. The returned value is only ever compared against the
  /// cutoff — the sampler discards it on rejection. Default: full evaluation.
  [[nodiscard]] virtual double log_prob_cutoff(std::span<const double> theta,
                                               const AcceptanceCutoff& cutoff) {
    (void)cutoff;
    return log_prob(theta);
  }
};

/// Run the sampler. `log_prob` must return -inf outside the support.
/// `initial_walkers` supplies nwalkers starting positions (each of equal
/// dimension, with finite log_prob for at least one walker — non-finite
/// starts are nudged onto the best finite start).
[[nodiscard]] McmcResult run_ensemble_mcmc(
    const std::function<double(const std::vector<double>&)>& log_prob,
    std::vector<std::vector<double>> initial_walkers, const McmcOptions& opts,
    util::Rng& rng);

/// Batched overload: walkers are packed row-major (nwalkers x dim). The
/// initial walker sweep goes through log_prob_batch; proposals inside a step
/// go through log_prob_cutoff (the acceptance draw is taken before the
/// evaluation, so bound-based early rejection can skip hopeless candidates)
/// but stay scalar because the stretch move is sequential in the walker
/// index. Draw-for-draw identical to the std::function overload for an
/// evaluator whose kernels match the scalar log_prob
/// (predictor_equivalence_test).
[[nodiscard]] McmcResult run_ensemble_mcmc(LogProbFn& log_prob,
                                           std::vector<double> initial_walkers,
                                           std::size_t dim, const McmcOptions& opts,
                                           util::Rng& rng);

}  // namespace hyperdrive::curve
