// Affine-invariant ensemble MCMC sampler (Goodman & Weare 2010), the
// algorithm behind the `emcee` package used by the reference learning-curve
// predictor. HyperDrive runs it with nwalkers=100 and a reduced nsamples=700
// (§5.2 "Reduce total MCMC samples").
#pragma once

#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace hyperdrive::curve {

struct McmcOptions {
  std::size_t nwalkers = 100;   ///< must be >= 2 * dim and even for good mixing
  std::size_t nsamples = 700;   ///< steps per walker (the paper's reduced setting)
  std::size_t burn_in = 200;    ///< steps discarded from the front
  std::size_t thin = 10;        ///< keep every `thin`-th post-burn-in step
  double stretch_a = 2.0;       ///< Goodman–Weare stretch parameter
};

struct McmcResult {
  /// Flattened posterior draws: samples[i] is one parameter vector.
  std::vector<std::vector<double>> samples;
  double acceptance_rate = 0.0;
};

/// Run the sampler. `log_prob` must return -inf outside the support.
/// `initial_walkers` supplies nwalkers starting positions (each of equal
/// dimension, with finite log_prob for at least one walker — non-finite
/// starts are nudged onto the best finite start).
[[nodiscard]] McmcResult run_ensemble_mcmc(
    const std::function<double(const std::vector<double>&)>& log_prob,
    std::vector<std::vector<double>> initial_walkers, const McmcOptions& opts,
    util::Rng& rng);

}  // namespace hyperdrive::curve
