#include "curve/caching_predictor.hpp"

#include <cstring>
#include <stdexcept>

namespace hyperdrive::curve {

namespace {
constexpr std::uint64_t kFnvBasis = 1469598103934665603ULL;

/// FNV-1a over doubles' bit patterns.
std::uint64_t hash_doubles(std::uint64_t h, std::span<const double> xs) {
  auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  mix(xs.size());
  for (const double x : xs) {
    std::uint64_t bits;
    std::memcpy(&bits, &x, sizeof(bits));
    mix(bits);
  }
  return h;
}
}  // namespace

CachingPredictor::CachingPredictor(std::shared_ptr<const CurvePredictor> inner,
                                   std::size_t capacity)
    : CachingPredictor(std::move(inner), CachingOptions{capacity}, obs::Scope{}) {}

CachingPredictor::CachingPredictor(std::shared_ptr<const CurvePredictor> inner,
                                   std::size_t capacity, obs::Scope scope)
    : CachingPredictor(std::move(inner), CachingOptions{capacity}, std::move(scope)) {}

CachingPredictor::CachingPredictor(std::shared_ptr<const CurvePredictor> inner,
                                   CachingOptions options, obs::Scope scope)
    : inner_(std::move(inner)), options_(options), obs_(std::move(scope)) {
  if (!inner_) throw std::invalid_argument("CachingPredictor needs an inner predictor");
  if (options_.capacity == 0) throw std::invalid_argument("cache capacity must be >= 1");
  if (options_.warm_start && options_.warm_capacity == 0) {
    throw std::invalid_argument("warm cache capacity must be >= 1");
  }
  if (options_.warm_start) {
    warm_inner_ = dynamic_cast<const WarmStartPredictor*>(inner_.get());
  }
}

CurvePrediction CachingPredictor::predict(std::span<const double> history,
                                          std::span<const double> future_epochs,
                                          double horizon) const {
  std::uint64_t key = kFnvBasis;
  key = hash_doubles(key, history);
  key = hash_doubles(key, future_epochs);
  key = hash_doubles(key, std::span<const double>(&horizon, 1));

  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);  // promote to front
      if (obs_.metrics != nullptr) obs_.metrics->counter("predictor.cache_hits").add();
      // Untimed event: the predictor runs outside the simulation clock.
      obs_.emit(obs::TraceEvent(obs::EventKind::PredictorCacheHit));
      return it->second->prediction;
    }
    ++misses_;
  }
  if (obs_.metrics != nullptr) obs_.metrics->counter("predictor.fits").add();
  obs_.emit(obs::TraceEvent(obs::EventKind::PredictorFit));

  // Compute outside the lock: concurrent misses on different keys must not
  // serialize on the inner LSQ/MCMC work (inner predictors are stateless).
  CurvePrediction prediction;
  if (warm_inner_ != nullptr) {
    // A job's history grows by appended epochs, so the posterior of this
    // curve's most recent fit is stored under a hash of a strict prefix.
    // Evaluation boundaries may skip epochs, so scan prefixes longest-first.
    WarmPosterior seed;
    bool have_seed = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (std::size_t m = history.size(); m-- > 1 && !have_seed;) {
        const std::uint64_t wkey = hash_doubles(kFnvBasis, history.subspan(0, m));
        const auto it = warm_cache_.find(wkey);
        if (it != warm_cache_.end()) {
          seed = it->second->state;  // copy out; the fit runs outside the lock
          warm_lru_.splice(warm_lru_.begin(), warm_lru_, it->second);
          ++warm_hits_;
          have_seed = true;
        }
      }
    }
    if (have_seed && obs_.metrics != nullptr) {
      obs_.metrics->counter("predictor.warm_seeds").add();
    }
    WarmPosterior out;
    prediction = warm_inner_->predict_warm(history, future_epochs, horizon,
                                           have_seed ? &seed : nullptr, &out);
    if (!out.empty()) {
      const std::uint64_t wkey = hash_doubles(kFnvBasis, history);
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = warm_cache_.find(wkey);
      if (it != warm_cache_.end()) {
        it->second->state = std::move(out);
        warm_lru_.splice(warm_lru_.begin(), warm_lru_, it->second);
      } else {
        warm_lru_.push_front(WarmEntry{wkey, std::move(out)});
        warm_cache_[wkey] = warm_lru_.begin();
        if (warm_cache_.size() > options_.warm_capacity) {
          warm_cache_.erase(warm_lru_.back().key);
          warm_lru_.pop_back();
        }
      }
    }
  } else {
    prediction = inner_->predict(history, future_epochs, horizon);
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (cache_.find(key) == cache_.end()) {  // another thread may have raced us
    lru_.push_front(Entry{key, prediction});
    cache_[key] = lru_.begin();
    if (cache_.size() > options_.capacity) {
      cache_.erase(lru_.back().key);
      lru_.pop_back();
    }
  }
  return prediction;
}

std::size_t CachingPredictor::hits() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t CachingPredictor::misses() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t CachingPredictor::size() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

std::size_t CachingPredictor::warm_hits() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return warm_hits_;
}

std::size_t CachingPredictor::warm_size() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return warm_cache_.size();
}

std::shared_ptr<const CurvePredictor> with_cache(
    std::shared_ptr<const CurvePredictor> inner, std::size_t capacity, obs::Scope scope) {
  return std::make_shared<CachingPredictor>(std::move(inner), capacity, std::move(scope));
}

std::shared_ptr<const CurvePredictor> with_cache_options(
    std::shared_ptr<const CurvePredictor> inner, CachingOptions options, obs::Scope scope) {
  return std::make_shared<CachingPredictor>(std::move(inner), options, std::move(scope));
}

}  // namespace hyperdrive::curve
