#include "curve/caching_predictor.hpp"

#include <cstring>
#include <stdexcept>

namespace hyperdrive::curve {

namespace {
/// FNV-1a over doubles' bit patterns.
std::uint64_t hash_doubles(std::uint64_t h, std::span<const double> xs) {
  auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  mix(xs.size());
  for (const double x : xs) {
    std::uint64_t bits;
    std::memcpy(&bits, &x, sizeof(bits));
    mix(bits);
  }
  return h;
}
}  // namespace

CachingPredictor::CachingPredictor(std::shared_ptr<const CurvePredictor> inner,
                                   std::size_t capacity)
    : CachingPredictor(std::move(inner), capacity, obs::Scope{}) {}

CachingPredictor::CachingPredictor(std::shared_ptr<const CurvePredictor> inner,
                                   std::size_t capacity, obs::Scope scope)
    : inner_(std::move(inner)), capacity_(capacity), obs_(std::move(scope)) {
  if (!inner_) throw std::invalid_argument("CachingPredictor needs an inner predictor");
  if (capacity_ == 0) throw std::invalid_argument("cache capacity must be >= 1");
}

CurvePrediction CachingPredictor::predict(std::span<const double> history,
                                          std::span<const double> future_epochs,
                                          double horizon) const {
  std::uint64_t key = 1469598103934665603ULL;
  key = hash_doubles(key, history);
  key = hash_doubles(key, future_epochs);
  key = hash_doubles(key, std::span<const double>(&horizon, 1));

  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);  // promote to front
      if (obs_.metrics != nullptr) obs_.metrics->counter("predictor.cache_hits").add();
      // Untimed event: the predictor runs outside the simulation clock.
      obs_.emit(obs::TraceEvent(obs::EventKind::PredictorCacheHit));
      return it->second->prediction;
    }
    ++misses_;
  }
  if (obs_.metrics != nullptr) obs_.metrics->counter("predictor.fits").add();
  obs_.emit(obs::TraceEvent(obs::EventKind::PredictorFit));

  // Compute outside the lock: concurrent misses on different keys must not
  // serialize on the inner LSQ/MCMC work (inner predictors are stateless).
  auto prediction = inner_->predict(history, future_epochs, horizon);

  std::lock_guard<std::mutex> lock(mutex_);
  if (cache_.find(key) == cache_.end()) {  // another thread may have raced us
    lru_.push_front(Entry{key, prediction});
    cache_[key] = lru_.begin();
    if (cache_.size() > capacity_) {
      cache_.erase(lru_.back().key);
      lru_.pop_back();
    }
  }
  return prediction;
}

std::size_t CachingPredictor::hits() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t CachingPredictor::misses() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t CachingPredictor::size() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

std::shared_ptr<const CurvePredictor> with_cache(
    std::shared_ptr<const CurvePredictor> inner, std::size_t capacity, obs::Scope scope) {
  return std::make_shared<CachingPredictor>(std::move(inner), capacity, std::move(scope));
}

}  // namespace hyperdrive::curve
