#include "curve/mcmc.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace hyperdrive::curve {

namespace {

/// Adapter so the legacy std::function entry point shares the sampler core.
/// A reusable member vector keeps the per-proposal copy allocation-free
/// after the first call.
class FunctionLogProb final : public LogProbFn {
 public:
  explicit FunctionLogProb(const std::function<double(const std::vector<double>&)>& fn)
      : fn_(fn) {}

  [[nodiscard]] double log_prob(std::span<const double> theta) override {
    scratch_.assign(theta.begin(), theta.end());
    return fn_(scratch_);
  }

 private:
  const std::function<double(const std::vector<double>&)>& fn_;
  std::vector<double> scratch_;
};

void validate_walker_count(std::size_t nwalkers, std::size_t dim) {
  // The documented Goodman–Weare constraint: even and >= max(4, 2 * dim).
  // Fewer walkers than twice the dimension cannot span the parameter space
  // with stretch moves (the ensemble collapses onto a hyperplane).
  if (nwalkers < 4 || nwalkers < 2 * dim) {
    throw std::invalid_argument("ensemble MCMC: nwalkers must be >= max(4, 2 * dim)");
  }
  if (nwalkers % 2 != 0) {
    throw std::invalid_argument("ensemble MCMC: nwalkers must be even");
  }
}

/// Sampler core over flat row-major walker storage. The acceptance draw is
/// taken before the candidate's log-probability is evaluated (the evaluation
/// consumes no randomness, so the RNG call sequence per proposal is fixed:
/// complement index, stretch z, acceptance u). Publishing the draw first
/// lets log_prob_cutoff reject hopeless candidates mid-evaluation without
/// changing any accept/reject decision. The step loop does no allocation:
/// candidate and sample arenas are sized up front and reused.
McmcResult run_impl(LogProbFn& fn, std::vector<double> walkers, std::size_t dim,
                    const McmcOptions& opts, util::Rng& rng) {
  if (dim == 0) throw std::invalid_argument("ensemble MCMC: zero-dimensional walkers");
  if (walkers.size() % dim != 0) {
    throw std::invalid_argument("walker dimension mismatch");
  }
  const std::size_t nwalkers = walkers.size() / dim;
  validate_walker_count(nwalkers, dim);

  std::vector<double> logp(nwalkers);
  fn.log_prob_batch(walkers, nwalkers, logp);
  std::size_t best = 0;
  double best_lp = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < nwalkers; ++i) {
    if (logp[i] > best_lp) {
      best_lp = logp[i];
      best = i;
    }
  }
  if (!std::isfinite(best_lp)) {
    throw std::runtime_error("ensemble MCMC: no walker starts inside the support");
  }
  // Nudge invalid starts onto the best valid one (they will diffuse apart).
  for (std::size_t i = 0; i < nwalkers; ++i) {
    if (!std::isfinite(logp[i])) {
      std::memcpy(walkers.data() + i * dim, walkers.data() + best * dim,
                  dim * sizeof(double));
      logp[i] = best_lp;
    }
  }

  McmcResult result;
  result.dim = dim;
  const std::size_t kept_steps =
      opts.nsamples > opts.burn_in ? (opts.nsamples - opts.burn_in) / std::max<std::size_t>(1, opts.thin)
                                   : 0;
  result.samples.reserve(kept_steps * nwalkers * dim);

  std::size_t accepted = 0, proposed = 0;
  std::vector<double> candidate(dim);
  const double a = opts.stretch_a;

  for (std::size_t step = 0; step < opts.nsamples; ++step) {
    for (std::size_t i = 0; i < nwalkers; ++i) {
      // Pick a random complementary walker j != i.
      std::size_t j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(nwalkers) - 2));
      if (j >= i) ++j;

      // Stretch move: z ~ g(z) with g(z) ∝ 1/sqrt(z) on [1/a, a].
      const double u = rng.uniform();
      const double sqrt_a = std::sqrt(a);
      const double z_sqrt = (1.0 / sqrt_a) + u * (sqrt_a - 1.0 / sqrt_a);
      const double z = z_sqrt * z_sqrt;

      const double* wi = walkers.data() + i * dim;
      const double* wj = walkers.data() + j * dim;
      for (std::size_t d = 0; d < dim; ++d) {
        candidate[d] = wj[d] + z * (wi[d] - wj[d]);
      }
      // Acceptance: min(1, z^(dim-1) * pi(cand)/pi(cur)). The draw happens
      // before the evaluation so the cutoff can prune candidates that cannot
      // pass it; the decision below is unchanged for any pruned candidate
      // (log_prob_cutoff's contract).
      AcceptanceCutoff cutoff;
      cutoff.a_term = (static_cast<double>(dim) - 1.0) * std::log(z);
      cutoff.logp_cur = logp[i];
      cutoff.log_u = std::log(rng.uniform() + 1e-300);
      const double cand_lp = fn.log_prob_cutoff(candidate, cutoff);
      ++proposed;
      const double log_ratio = cutoff.a_term + cand_lp - logp[i];
      if (std::isfinite(cand_lp) && cutoff.log_u < log_ratio) {
        std::memcpy(walkers.data() + i * dim, candidate.data(), dim * sizeof(double));
        logp[i] = cand_lp;
        ++accepted;
      }
    }
    if (step >= opts.burn_in && (step - opts.burn_in) % std::max<std::size_t>(1, opts.thin) == 0) {
      result.samples.insert(result.samples.end(), walkers.begin(), walkers.end());
    }
  }

  result.acceptance_rate =
      proposed > 0 ? static_cast<double>(accepted) / static_cast<double>(proposed) : 0.0;
  result.final_walkers = std::move(walkers);
  return result;
}

}  // namespace

McmcResult run_ensemble_mcmc(
    const std::function<double(const std::vector<double>&)>& log_prob,
    std::vector<std::vector<double>> walkers, const McmcOptions& opts, util::Rng& rng) {
  if (walkers.empty()) throw std::invalid_argument("ensemble MCMC: no walkers");
  const std::size_t dim = walkers.front().size();
  std::vector<double> flat;
  flat.reserve(walkers.size() * dim);
  for (const auto& w : walkers) {
    if (w.size() != dim) throw std::invalid_argument("walker dimension mismatch");
    flat.insert(flat.end(), w.begin(), w.end());
  }
  FunctionLogProb fn(log_prob);
  return run_impl(fn, std::move(flat), dim, opts, rng);
}

McmcResult run_ensemble_mcmc(LogProbFn& log_prob, std::vector<double> initial_walkers,
                             std::size_t dim, const McmcOptions& opts, util::Rng& rng) {
  return run_impl(log_prob, std::move(initial_walkers), dim, opts, rng);
}

}  // namespace hyperdrive::curve
