#include "curve/mcmc.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace hyperdrive::curve {

McmcResult run_ensemble_mcmc(
    const std::function<double(const std::vector<double>&)>& log_prob,
    std::vector<std::vector<double>> walkers, const McmcOptions& opts, util::Rng& rng) {
  const std::size_t nwalkers = walkers.size();
  if (nwalkers < 4) throw std::invalid_argument("need at least 4 walkers");
  const std::size_t dim = walkers.front().size();
  for (const auto& w : walkers) {
    if (w.size() != dim) throw std::invalid_argument("walker dimension mismatch");
  }

  std::vector<double> logp(nwalkers);
  std::size_t best = 0;
  double best_lp = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < nwalkers; ++i) {
    logp[i] = log_prob(walkers[i]);
    if (logp[i] > best_lp) {
      best_lp = logp[i];
      best = i;
    }
  }
  if (!std::isfinite(best_lp)) {
    throw std::runtime_error("ensemble MCMC: no walker starts inside the support");
  }
  // Nudge invalid starts onto the best valid one (they will diffuse apart).
  for (std::size_t i = 0; i < nwalkers; ++i) {
    if (!std::isfinite(logp[i])) {
      walkers[i] = walkers[best];
      logp[i] = best_lp;
    }
  }

  McmcResult result;
  const std::size_t kept_steps =
      opts.nsamples > opts.burn_in ? (opts.nsamples - opts.burn_in) / std::max<std::size_t>(1, opts.thin)
                                   : 0;
  result.samples.reserve(kept_steps * nwalkers);

  std::size_t accepted = 0, proposed = 0;
  std::vector<double> candidate(dim);
  const double a = opts.stretch_a;

  for (std::size_t step = 0; step < opts.nsamples; ++step) {
    for (std::size_t i = 0; i < nwalkers; ++i) {
      // Pick a random complementary walker j != i.
      std::size_t j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(nwalkers) - 2));
      if (j >= i) ++j;

      // Stretch move: z ~ g(z) with g(z) ∝ 1/sqrt(z) on [1/a, a].
      const double u = rng.uniform();
      const double sqrt_a = std::sqrt(a);
      const double z_sqrt = (1.0 / sqrt_a) + u * (sqrt_a - 1.0 / sqrt_a);
      const double z = z_sqrt * z_sqrt;

      for (std::size_t d = 0; d < dim; ++d) {
        candidate[d] = walkers[j][d] + z * (walkers[i][d] - walkers[j][d]);
      }
      const double cand_lp = log_prob(candidate);
      ++proposed;
      // Acceptance: min(1, z^(dim-1) * pi(cand)/pi(cur)).
      const double log_ratio =
          (static_cast<double>(dim) - 1.0) * std::log(z) + cand_lp - logp[i];
      if (std::isfinite(cand_lp) && std::log(rng.uniform() + 1e-300) < log_ratio) {
        walkers[i] = candidate;
        logp[i] = cand_lp;
        ++accepted;
      }
    }
    if (step >= opts.burn_in && (step - opts.burn_in) % std::max<std::size_t>(1, opts.thin) == 0) {
      for (const auto& w : walkers) result.samples.push_back(w);
    }
  }

  result.acceptance_rate =
      proposed > 0 ? static_cast<double>(accepted) / static_cast<double>(proposed) : 0.0;
  return result;
}

}  // namespace hyperdrive::curve
