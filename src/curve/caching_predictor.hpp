// CachingPredictor — a memoizing decorator around any CurvePredictor.
//
// The Node Agents (§5.2) keep per-job curve histories locally and only
// recompute a prediction when the job's history has grown past a new
// evaluation boundary. Since policies may consult the predictor repeatedly
// for the same (history, horizon) — e.g. POP's classification runs on every
// active job's boundary — memoizing the posterior avoids redundant MCMC/LSQ
// work. Predictors are deterministic per (config, history), so caching is
// semantics-preserving.
//
// Warm-start mode (CachingOptions::warm_start, off by default): when the
// inner predictor implements WarmStartPredictor, the decorator also keeps an
// LRU of final posterior walker states keyed by history. A miss for a grown
// prefix of a previously fitted curve seeds the new fit's walkers from the
// stored posterior instead of the cold LSQ+jitter start, skipping the
// per-family Nelder–Mead fits (DESIGN.md §11 documents the determinism
// contract: same kill/keep decisions, not byte-identical posteriors).
//
// Thread safety: a single instance may be shared across threads (e.g. sweep
// cells hammering one predictor). The LRU state and hit/miss counters are
// guarded by an internal mutex; the inner predictor runs outside the lock,
// so concurrent misses do not serialize on the expensive LSQ/MCMC work.
#pragma once

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "curve/predictor.hpp"
#include "obs/scope.hpp"

namespace hyperdrive::curve {

struct CachingOptions {
  /// LRU capacity for memoized predictions.
  std::size_t capacity = 256;
  /// Seed MCMC fits from the previous posterior of the same curve. Only
  /// takes effect when the inner predictor implements WarmStartPredictor;
  /// otherwise silently behaves like a plain cache. On by default since the
  /// 30-seed decision-invariance gate (WarmStartPropertyTest) pinned that
  /// warm seeding changes no scheduling decision and no golden trace; see
  /// DESIGN.md §11 for the knife-edge rotation caveat before relying on it
  /// in new knife-edge-sensitive comparisons.
  bool warm_start = true;
  /// LRU capacity for stored warm posterior states.
  std::size_t warm_capacity = 512;
};

class CachingPredictor final : public CurvePredictor {
 public:
  /// Wraps `inner` with an LRU cache of `capacity` predictions.
  CachingPredictor(std::shared_ptr<const CurvePredictor> inner, std::size_t capacity = 256);
  /// As above with an instrumentation scope: every predict() emits an untimed
  /// PredictorFit (cache miss) or PredictorCacheHit event and bumps the
  /// predictor.fits / predictor.cache_hits counters (DESIGN.md §10).
  CachingPredictor(std::shared_ptr<const CurvePredictor> inner, std::size_t capacity,
                   obs::Scope scope);
  /// Full options (warm-start mode lives here).
  CachingPredictor(std::shared_ptr<const CurvePredictor> inner, CachingOptions options,
                   obs::Scope scope = {});

  [[nodiscard]] std::string_view name() const noexcept override { return "caching"; }

  [[nodiscard]] CurvePrediction predict(std::span<const double> history,
                                        std::span<const double> future_epochs,
                                        double horizon) const override;

  [[nodiscard]] std::size_t hits() const noexcept;
  [[nodiscard]] std::size_t misses() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept;
  /// Number of fits that were seeded from a stored warm posterior.
  [[nodiscard]] std::size_t warm_hits() const noexcept;
  /// Number of warm posterior states currently stored.
  [[nodiscard]] std::size_t warm_size() const noexcept;

 private:
  struct Entry {
    std::uint64_t key;
    CurvePrediction prediction;
  };
  struct WarmEntry {
    std::uint64_t key;
    WarmPosterior state;
  };

  std::shared_ptr<const CurvePredictor> inner_;
  const WarmStartPredictor* warm_inner_ = nullptr;  ///< inner_, if warm-startable
  CachingOptions options_;
  obs::Scope obs_;
  // LRU: most-recent at the front; map points into the list. All members
  // below are guarded by mutex_ (predict() is const but mutates).
  mutable std::mutex mutex_;
  mutable std::list<Entry> lru_;
  mutable std::unordered_map<std::uint64_t, std::list<Entry>::iterator> cache_;
  mutable std::list<WarmEntry> warm_lru_;
  mutable std::unordered_map<std::uint64_t, std::list<WarmEntry>::iterator> warm_cache_;
  mutable std::size_t hits_ = 0;
  mutable std::size_t misses_ = 0;
  mutable std::size_t warm_hits_ = 0;
};

/// Convenience: wrap a predictor. Pass a scope to observe fit/cache-hit
/// activity; the default detached scope adds nothing.
[[nodiscard]] std::shared_ptr<const CurvePredictor> with_cache(
    std::shared_ptr<const CurvePredictor> inner, std::size_t capacity = 256,
    obs::Scope scope = {});

/// As with_cache, with full options (warm-start mode).
[[nodiscard]] std::shared_ptr<const CurvePredictor> with_cache_options(
    std::shared_ptr<const CurvePredictor> inner, CachingOptions options,
    obs::Scope scope = {});

}  // namespace hyperdrive::curve
