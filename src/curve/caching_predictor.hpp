// CachingPredictor — a memoizing decorator around any CurvePredictor.
//
// The Node Agents (§5.2) keep per-job curve histories locally and only
// recompute a prediction when the job's history has grown past a new
// evaluation boundary. Since policies may consult the predictor repeatedly
// for the same (history, horizon) — e.g. POP's classification runs on every
// active job's boundary — memoizing the posterior avoids redundant MCMC/LSQ
// work. Predictors are deterministic per (config, history), so caching is
// semantics-preserving.
//
// Thread safety: a single instance may be shared across threads (e.g. sweep
// cells hammering one predictor). The LRU state and hit/miss counters are
// guarded by an internal mutex; the inner predictor runs outside the lock,
// so concurrent misses do not serialize on the expensive LSQ/MCMC work.
#pragma once

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "curve/predictor.hpp"
#include "obs/scope.hpp"

namespace hyperdrive::curve {

class CachingPredictor final : public CurvePredictor {
 public:
  /// Wraps `inner` with an LRU cache of `capacity` predictions.
  CachingPredictor(std::shared_ptr<const CurvePredictor> inner, std::size_t capacity = 256);
  /// As above with an instrumentation scope: every predict() emits an untimed
  /// PredictorFit (cache miss) or PredictorCacheHit event and bumps the
  /// predictor.fits / predictor.cache_hits counters (DESIGN.md §10).
  CachingPredictor(std::shared_ptr<const CurvePredictor> inner, std::size_t capacity,
                   obs::Scope scope);

  [[nodiscard]] std::string_view name() const noexcept override { return "caching"; }

  [[nodiscard]] CurvePrediction predict(std::span<const double> history,
                                        std::span<const double> future_epochs,
                                        double horizon) const override;

  [[nodiscard]] std::size_t hits() const noexcept;
  [[nodiscard]] std::size_t misses() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept;

 private:
  struct Entry {
    std::uint64_t key;
    CurvePrediction prediction;
  };

  std::shared_ptr<const CurvePredictor> inner_;
  std::size_t capacity_;
  obs::Scope obs_;
  // LRU: most-recent at the front; map points into the list. All four
  // members below are guarded by mutex_ (predict() is const but mutates).
  mutable std::mutex mutex_;
  mutable std::list<Entry> lru_;
  mutable std::unordered_map<std::uint64_t, std::list<Entry>::iterator> cache_;
  mutable std::size_t hits_ = 0;
  mutable std::size_t misses_ = 0;
};

/// Convenience: wrap a predictor. Pass a scope to observe fit/cache-hit
/// activity; the default detached scope adds nothing.
[[nodiscard]] std::shared_ptr<const CurvePredictor> with_cache(
    std::shared_ptr<const CurvePredictor> inner, std::size_t capacity = 256,
    obs::Scope scope = {});

}  // namespace hyperdrive::curve
