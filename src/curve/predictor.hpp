// CurvePredictor — the pluggable learning-curve prediction component (§9
// "Learning curve prediction ... designed as a pluggable component of
// HyperDrive, so users can easily switch to other prediction methods").
//
// A predictor consumes the observed performance prefix of one job
// (ys[i] = normalized performance after epoch i+1) and produces a posterior
// over future performance, represented as sampled curves. POP derives from it
// P(y(m) >= y_target), the expected-remaining-time pmf (Eq. 2–3) and the
// prediction confidence p.
#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "curve/ensemble.hpp"
#include "curve/mcmc.hpp"

namespace hyperdrive::curve {

/// Posterior over future performance at a set of absolute future epochs.
/// Samples are stored as one flat row-major matrix (num_samples() rows of
/// epochs().size() values) so a predict call makes O(1) bulk allocations
/// instead of one vector per sampled curve.
class CurvePrediction {
 public:
  CurvePrediction() = default;
  CurvePrediction(std::vector<double> epochs, std::vector<std::vector<double>> sample_curves);
  /// Flat constructor: `flat_samples` holds `num_samples` rows of
  /// `epochs.size()` values each, row-major.
  CurvePrediction(std::vector<double> epochs, std::vector<double> flat_samples,
                  std::size_t num_samples);

  [[nodiscard]] const std::vector<double>& epochs() const noexcept { return epochs_; }
  [[nodiscard]] std::size_t num_samples() const noexcept { return nsamples_; }
  [[nodiscard]] bool empty() const noexcept { return nsamples_ == 0; }

  /// Posterior mean of y(epoch_idx).
  [[nodiscard]] double mean_at(std::size_t epoch_idx) const;
  /// Posterior standard deviation — the paper's "prediction accuracy PA".
  [[nodiscard]] double stddev_at(std::size_t epoch_idx) const;
  /// P(y(epoch_idx) >= y): fraction of posterior curves at or above y.
  [[nodiscard]] double prob_at_least(std::size_t epoch_idx, double y) const;
  /// P(max over epochs [0..epoch_idx] of y >= target): probability the target
  /// has been *reached by* that epoch. Monotone non-decreasing in epoch_idx,
  /// which makes the ERT pmf (Eq. 2) non-negative by construction.
  [[nodiscard]] double prob_reached_by(std::size_t epoch_idx, double y) const;

  /// Raw sample access for plotting confidence bands (Fig. 2c / Fig. 3):
  /// the flat row-major matrix, and one row as a span.
  [[nodiscard]] const std::vector<double>& samples() const noexcept { return samples_; }
  [[nodiscard]] std::span<const double> sample(std::size_t s) const {
    return std::span<const double>(samples_).subspan(s * epochs_.size(), epochs_.size());
  }

 private:
  void finalize();

  std::vector<double> epochs_;
  /// samples_[s * epochs_.size() + e] = sampled performance of curve s at
  /// epochs_[e].
  std::vector<double> samples_;
  /// Row-major running max over each row of samples_; cached for
  /// prob_reached_by.
  std::vector<double> running_max_;
  std::size_t nsamples_ = 0;
};

struct PredictorConfig {
  /// Which parametric families to use; empty means all 11.
  std::vector<std::string> model_names;
  /// MCMC settings (nwalkers=100 / nsamples=700 is the paper's optimized
  /// setting; tests and the simulator use smaller values for speed).
  McmcOptions mcmc;
  /// Number of bootstrap curves drawn by the fast LSQ predictor.
  std::size_t lsq_samples = 200;
  /// Fraction of LSQ bootstrap samples drawn from slope-based continuations
  /// instead of family fits. Least-squares point fits of short prefixes are
  /// systematically overconfident (they collapse to the nearest asymptote);
  /// these samples restore the "might keep climbing" posterior mass that
  /// the full MCMC ensemble represents through its asymptote spread.
  double lsq_optimistic_fraction = 0.35;
  EnsemblePrior prior;
  std::uint64_t seed = 0x5eed;
  /// Route MCMC log-posterior evaluation through the fused BatchEvaluator
  /// kernels instead of the generic CurveEnsemble path. Bit-identical results
  /// (enforced by predictor_equivalence_test), ~5x faster; off = the scalar
  /// reference path, kept for equivalence testing and custom model families.
  bool batched_kernel = true;
};

/// Posterior walker state exported by a warm-startable predictor: the final
/// MCMC walker positions of a fit, usable to seed the next fit on a grown
/// prefix of the same curve (DESIGN.md §11).
struct WarmPosterior {
  std::size_t dim = 0;
  /// Flat nwalkers x dim walker matrix; empty means "no state".
  std::vector<double> walkers;

  [[nodiscard]] bool empty() const noexcept { return walkers.empty(); }
};

class CurvePredictor {
 public:
  virtual ~CurvePredictor() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Predict performance at the given absolute future epochs (each >
  /// history.size()). `horizon` is the largest epoch the caller will ever ask
  /// about (prior support). Deterministic for a fixed config and history.
  [[nodiscard]] virtual CurvePrediction predict(std::span<const double> history,
                                                std::span<const double> future_epochs,
                                                double horizon) const = 0;
};

/// Mixin for predictors whose fit can be seeded from a previous posterior
/// (detected via dynamic_cast by CachingPredictor's warm-start mode).
class WarmStartPredictor {
 public:
  virtual ~WarmStartPredictor() = default;

  /// As predict(), but: if `warm` is non-null, non-empty and dimensionally
  /// compatible, seed the sampler's walkers from it instead of the cold
  /// LSQ+jitter start (falling back to cold if every warm walker lies
  /// outside the new prefix's support — the fallback consumes no extra
  /// randomness, so it is byte-identical to a cold-only call). If `out` is
  /// non-null, export this fit's final walker state into it.
  [[nodiscard]] virtual CurvePrediction predict_warm(std::span<const double> history,
                                                     std::span<const double> future_epochs,
                                                     double horizon,
                                                     const WarmPosterior* warm,
                                                     WarmPosterior* out) const = 0;
};

/// Full probabilistic predictor: 11-family ensemble + affine-invariant MCMC.
/// Implements WarmStartPredictor.
[[nodiscard]] std::unique_ptr<CurvePredictor> make_mcmc_predictor(PredictorConfig config);

/// Fast approximation: per-family least-squares fits + residual bootstrap.
/// Orders of magnitude cheaper; used by the trace-driven simulator benches.
[[nodiscard]] std::unique_ptr<CurvePredictor> make_lsq_predictor(PredictorConfig config);

/// Degenerate predictor that extrapolates the last observation flat, with a
/// small noise envelope. Models prior work's "instantaneous accuracy only"
/// view (§2.2a) — used for the ablation bench.
[[nodiscard]] std::unique_ptr<CurvePredictor> make_last_value_predictor(
    PredictorConfig config);

}  // namespace hyperdrive::curve
