// CurvePredictor — the pluggable learning-curve prediction component (§9
// "Learning curve prediction ... designed as a pluggable component of
// HyperDrive, so users can easily switch to other prediction methods").
//
// A predictor consumes the observed performance prefix of one job
// (ys[i] = normalized performance after epoch i+1) and produces a posterior
// over future performance, represented as sampled curves. POP derives from it
// P(y(m) >= y_target), the expected-remaining-time pmf (Eq. 2–3) and the
// prediction confidence p.
#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "curve/ensemble.hpp"
#include "curve/mcmc.hpp"

namespace hyperdrive::curve {

/// Posterior over future performance at a set of absolute future epochs.
class CurvePrediction {
 public:
  CurvePrediction() = default;
  CurvePrediction(std::vector<double> epochs, std::vector<std::vector<double>> sample_curves);

  [[nodiscard]] const std::vector<double>& epochs() const noexcept { return epochs_; }
  [[nodiscard]] std::size_t num_samples() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// Posterior mean of y(epoch_idx).
  [[nodiscard]] double mean_at(std::size_t epoch_idx) const;
  /// Posterior standard deviation — the paper's "prediction accuracy PA".
  [[nodiscard]] double stddev_at(std::size_t epoch_idx) const;
  /// P(y(epoch_idx) >= y): fraction of posterior curves at or above y.
  [[nodiscard]] double prob_at_least(std::size_t epoch_idx, double y) const;
  /// P(max over epochs [0..epoch_idx] of y >= target): probability the target
  /// has been *reached by* that epoch. Monotone non-decreasing in epoch_idx,
  /// which makes the ERT pmf (Eq. 2) non-negative by construction.
  [[nodiscard]] double prob_reached_by(std::size_t epoch_idx, double y) const;

  /// Raw sample access for plotting confidence bands (Fig. 2c / Fig. 3).
  [[nodiscard]] const std::vector<std::vector<double>>& samples() const noexcept {
    return samples_;
  }

 private:
  std::vector<double> epochs_;
  /// samples_[s][e] = sampled performance of curve s at epochs_[e].
  std::vector<std::vector<double>> samples_;
  /// running_max_[s][e] = max over samples_[s][0..e]; cached for prob_reached_by.
  std::vector<std::vector<double>> running_max_;
};

struct PredictorConfig {
  /// Which parametric families to use; empty means all 11.
  std::vector<std::string> model_names;
  /// MCMC settings (nwalkers=100 / nsamples=700 is the paper's optimized
  /// setting; tests and the simulator use smaller values for speed).
  McmcOptions mcmc;
  /// Number of bootstrap curves drawn by the fast LSQ predictor.
  std::size_t lsq_samples = 200;
  /// Fraction of LSQ bootstrap samples drawn from slope-based continuations
  /// instead of family fits. Least-squares point fits of short prefixes are
  /// systematically overconfident (they collapse to the nearest asymptote);
  /// these samples restore the "might keep climbing" posterior mass that
  /// the full MCMC ensemble represents through its asymptote spread.
  double lsq_optimistic_fraction = 0.35;
  EnsemblePrior prior;
  std::uint64_t seed = 0x5eed;
};

class CurvePredictor {
 public:
  virtual ~CurvePredictor() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Predict performance at the given absolute future epochs (each >
  /// history.size()). `horizon` is the largest epoch the caller will ever ask
  /// about (prior support). Deterministic for a fixed config and history.
  [[nodiscard]] virtual CurvePrediction predict(std::span<const double> history,
                                                std::span<const double> future_epochs,
                                                double horizon) const = 0;
};

/// Full probabilistic predictor: 11-family ensemble + affine-invariant MCMC.
[[nodiscard]] std::unique_ptr<CurvePredictor> make_mcmc_predictor(PredictorConfig config);

/// Fast approximation: per-family least-squares fits + residual bootstrap.
/// Orders of magnitude cheaper; used by the trace-driven simulator benches.
[[nodiscard]] std::unique_ptr<CurvePredictor> make_lsq_predictor(PredictorConfig config);

/// Degenerate predictor that extrapolates the last observation flat, with a
/// small noise envelope. Models prior work's "instantaneous accuracy only"
/// view (§2.2a) — used for the ablation bench.
[[nodiscard]] std::unique_ptr<CurvePredictor> make_last_value_predictor(
    PredictorConfig config);

}  // namespace hyperdrive::curve
