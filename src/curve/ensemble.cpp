#include "curve/ensemble.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "curve/nelder_mead.hpp"

namespace hyperdrive::curve {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr double kLog2Pi = 1.8378770664093453;
}  // namespace

CurveEnsemble::CurveEnsemble(std::vector<std::unique_ptr<ParametricModel>> models,
                             double horizon, EnsemblePrior prior)
    : models_(std::move(models)), horizon_(horizon), prior_(prior) {
  if (models_.empty()) throw std::invalid_argument("CurveEnsemble needs at least one model");
  if (!(horizon_ >= 1.0)) throw std::invalid_argument("horizon must be >= 1");
  offsets_.reserve(models_.size());
  std::size_t off = 0;
  for (const auto& m : models_) {
    offsets_.push_back(off);
    off += m->num_params();
  }
  weight_offset_ = off;
  dim_ = off + models_.size() + 1;  // + weights + log_sigma
}

double CurveEnsemble::eval(double x, std::span<const double> theta) const noexcept {
  double weight_sum = 0.0;
  for (std::size_t k = 0; k < models_.size(); ++k) {
    const double w = theta[weight_offset_ + k];
    if (w > 0.0) weight_sum += w;
  }
  if (weight_sum <= 0.0) return std::nan("");
  double y = 0.0;
  for (std::size_t k = 0; k < models_.size(); ++k) {
    const double w = theta[weight_offset_ + k];
    if (w <= 0.0) continue;
    const double fk = models_[k]->eval(
        x, theta.subspan(offsets_[k], models_[k]->num_params()));
    if (!std::isfinite(fk)) return std::nan("");
    y += (w / weight_sum) * fk;
  }
  return y;
}

double CurveEnsemble::log_prior(std::span<const double> theta,
                                std::span<const double> ys) const noexcept {
  if (theta.size() != dim_) return kNegInf;
  for (std::size_t k = 0; k < models_.size(); ++k) {
    if (!models_[k]->in_bounds(theta.subspan(offsets_[k], models_[k]->num_params()))) {
      return kNegInf;
    }
  }
  double weight_sum = 0.0;
  for (std::size_t k = 0; k < models_.size(); ++k) {
    const double w = theta[weight_offset_ + k];
    if (w < 0.0 || w > 1.0) return kNegInf;
    weight_sum += w;
  }
  if (weight_sum <= 1e-12) return kNegInf;
  const double log_sigma = theta[sigma_offset()];
  if (log_sigma < prior_.log_sigma_lo || log_sigma > prior_.log_sigma_hi) return kNegInf;

  // Curve sanity at observed epochs and at the horizon.
  for (std::size_t i = 0; i < ys.size(); ++i) {
    const double f = eval(static_cast<double>(i + 1), theta);
    if (!std::isfinite(f) || f < prior_.y_lo || f > prior_.y_hi) return kNegInf;
  }
  const double f_end = eval(horizon_, theta);
  if (!std::isfinite(f_end) || f_end < prior_.y_lo || f_end > prior_.y_hi) return kNegInf;
  if (prior_.require_non_collapsing && !ys.empty()) {
    if (f_end < ys.back() - prior_.max_decrease) return kNegInf;
  }
  return 0.0;
}

double CurveEnsemble::log_likelihood(std::span<const double> theta,
                                     std::span<const double> ys) const noexcept {
  const double log_sigma = theta[sigma_offset()];
  const double sigma = std::exp(log_sigma);
  const double inv_var = 1.0 / (sigma * sigma);
  double ll = 0.0;
  for (std::size_t i = 0; i < ys.size(); ++i) {
    const double f = eval(static_cast<double>(i + 1), theta);
    if (!std::isfinite(f)) return kNegInf;
    const double r = ys[i] - f;
    ll += -0.5 * (r * r * inv_var + kLog2Pi) - log_sigma;
  }
  return ll;
}

double CurveEnsemble::log_posterior(std::span<const double> theta,
                                    std::span<const double> ys) const noexcept {
  const double lp = log_prior(theta, ys);
  if (lp == kNegInf) return kNegInf;
  return lp + log_likelihood(theta, ys);
}

std::vector<double> CurveEnsemble::initial_theta(std::span<const double> ys) const {
  std::vector<double> theta(dim_, 0.0);
  std::vector<double> mses(models_.size(), 1.0);
  double best_mse = std::numeric_limits<double>::infinity();

  for (std::size_t k = 0; k < models_.size(); ++k) {
    const auto& model = *models_[k];
    const auto& box = model.bounds();
    auto objective = [&](const std::vector<double>& raw) {
      // Clamp into the bounds box so the optimizer cannot wander outside
      // the prior support.
      std::vector<double> p = raw;
      for (std::size_t d = 0; d < p.size(); ++d) {
        if (p[d] < box[d].lo) p[d] = box[d].lo;
        if (p[d] > box[d].hi) p[d] = box[d].hi;
      }
      double mse = 0.0;
      for (std::size_t i = 0; i < ys.size(); ++i) {
        const double f = model.eval(static_cast<double>(i + 1), p);
        if (!std::isfinite(f)) return std::numeric_limits<double>::infinity();
        const double r = ys[i] - f;
        mse += r * r;
      }
      return mse / static_cast<double>(std::max<std::size_t>(1, ys.size()));
    };

    auto fit = nelder_mead(objective, model.initial_guess(ys));
    // Clamp the fitted parameters the same way the objective did.
    for (std::size_t d = 0; d < fit.x.size(); ++d) {
      if (fit.x[d] < box[d].lo) fit.x[d] = box[d].lo;
      if (fit.x[d] > box[d].hi) fit.x[d] = box[d].hi;
    }
    for (std::size_t d = 0; d < fit.x.size(); ++d) theta[offsets_[k] + d] = fit.x[d];
    mses[k] = std::isfinite(fit.fx) ? fit.fx : 1.0;
    best_mse = std::min(best_mse, mses[k]);
  }

  // Weights proportional to inverse MSE (regularized), normalized to max 1.
  double max_w = 0.0;
  std::vector<double> ws(models_.size());
  for (std::size_t k = 0; k < models_.size(); ++k) {
    ws[k] = 1.0 / (mses[k] + 1e-6);
    max_w = std::max(max_w, ws[k]);
  }
  for (std::size_t k = 0; k < models_.size(); ++k) {
    theta[weight_offset_ + k] = max_w > 0.0 ? ws[k] / max_w : 1.0;
  }

  double sigma = std::sqrt(std::max(best_mse, 1e-6));
  sigma = std::clamp(sigma, 2e-4, 0.4);
  theta[sigma_offset()] = std::log(sigma);
  return theta;
}

std::vector<double> CurveEnsemble::jitter(std::span<const double> center, util::Rng& rng,
                                          double scale) const {
  std::vector<double> theta(center.begin(), center.end());
  for (std::size_t k = 0; k < models_.size(); ++k) {
    const auto& box = models_[k]->bounds();
    for (std::size_t d = 0; d < box.size(); ++d) {
      auto& v = theta[offsets_[k] + d];
      const double span = box[d].hi - box[d].lo;
      v += rng.normal(0.0, scale * span);
      if (v < box[d].lo || v > box[d].hi) v = rng.uniform(box[d].lo, box[d].hi);
    }
  }
  for (std::size_t k = 0; k < models_.size(); ++k) {
    auto& w = theta[weight_offset_ + k];
    w += rng.normal(0.0, scale);
    if (w < 0.0 || w > 1.0) w = rng.uniform(0.0, 1.0);
  }
  auto& ls = theta[sigma_offset()];
  ls += rng.normal(0.0, scale);
  if (ls < prior_.log_sigma_lo || ls > prior_.log_sigma_hi) {
    ls = rng.uniform(prior_.log_sigma_lo, prior_.log_sigma_hi);
  }
  return theta;
}

}  // namespace hyperdrive::curve
