#include "curve/nelder_mead.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hyperdrive::curve {

namespace {
double safe_eval(const std::function<double(const std::vector<double>&)>& fn,
                 const std::vector<double>& x) {
  const double v = fn(x);
  return std::isfinite(v) ? v : std::numeric_limits<double>::infinity();
}
}  // namespace

NelderMeadResult nelder_mead(const std::function<double(const std::vector<double>&)>& fn,
                             std::vector<double> x0, const NelderMeadOptions& opts) {
  const std::size_t n = x0.size();
  NelderMeadResult result;
  if (n == 0) {
    result.x = std::move(x0);
    result.fx = safe_eval(fn, result.x);
    return result;
  }

  // Standard reflection/expansion/contraction/shrink coefficients.
  constexpr double kAlpha = 1.0, kGamma = 2.0, kRho = 0.5, kSigma = 0.5;

  std::vector<std::vector<double>> simplex(n + 1, x0);
  for (std::size_t i = 0; i < n; ++i) {
    double step = opts.initial_step * std::fabs(x0[i]);
    if (step < 1e-4) step = opts.initial_step;
    simplex[i + 1][i] += step;
  }
  std::vector<double> fvals(n + 1);
  for (std::size_t i = 0; i <= n; ++i) fvals[i] = safe_eval(fn, simplex[i]);

  std::vector<std::size_t> order(n + 1);
  std::vector<double> centroid(n), candidate(n);

  std::size_t iter = 0;
  for (; iter < opts.max_iterations; ++iter) {
    for (std::size_t i = 0; i <= n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return fvals[a] < fvals[b]; });

    const double best = fvals[order[0]];
    const double worst = fvals[order[n]];
    if (std::isfinite(worst) && worst - best < opts.tolerance) break;

    // Centroid of all but the worst vertex.
    std::fill(centroid.begin(), centroid.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t d = 0; d < n; ++d) centroid[d] += simplex[order[i]][d];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    auto& worst_vertex = simplex[order[n]];
    auto point_along = [&](double coef, std::vector<double>& out) {
      for (std::size_t d = 0; d < n; ++d) {
        out[d] = centroid[d] + coef * (centroid[d] - worst_vertex[d]);
      }
    };

    point_along(kAlpha, candidate);
    const double f_reflect = safe_eval(fn, candidate);

    if (f_reflect < fvals[order[0]]) {
      std::vector<double> expanded(n);
      point_along(kGamma, expanded);
      const double f_expand = safe_eval(fn, expanded);
      if (f_expand < f_reflect) {
        worst_vertex = std::move(expanded);
        fvals[order[n]] = f_expand;
      } else {
        worst_vertex = candidate;
        fvals[order[n]] = f_reflect;
      }
      continue;
    }
    if (f_reflect < fvals[order[n - 1]]) {
      worst_vertex = candidate;
      fvals[order[n]] = f_reflect;
      continue;
    }

    point_along(-kRho, candidate);  // inside contraction
    const double f_contract = safe_eval(fn, candidate);
    if (f_contract < fvals[order[n]]) {
      worst_vertex = candidate;
      fvals[order[n]] = f_contract;
      continue;
    }

    // Shrink toward the best vertex.
    const auto& best_vertex = simplex[order[0]];
    for (std::size_t i = 1; i <= n; ++i) {
      auto& v = simplex[order[i]];
      for (std::size_t d = 0; d < n; ++d) {
        v[d] = best_vertex[d] + kSigma * (v[d] - best_vertex[d]);
      }
      fvals[order[i]] = safe_eval(fn, v);
    }
  }

  std::size_t best_idx = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    if (fvals[i] < fvals[best_idx]) best_idx = i;
  }
  result.x = simplex[best_idx];
  result.fx = fvals[best_idx];
  result.iterations = iter;
  return result;
}

}  // namespace hyperdrive::curve
