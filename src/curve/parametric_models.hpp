// The 11 parametric learning-curve families used by the probabilistic
// learning-curve model of Domhan, Springenberg & Hutter (IJCAI'15) — the
// model HyperDrive's POP policy builds on (§3.1.1, §5.2 of the paper).
//
// Each family maps a (1-based) epoch index x > 0 to a predicted performance
// value y(x) given a small parameter vector theta. The families are:
//
//   pow3            c - a * x^(-alpha)
//   pow4            c - (a*x + b)^(-alpha)
//   log_log_linear  log(a * log(x) + b)
//   log_power       a / (1 + (x / exp(b))^c)
//   vapor_pressure  exp(a + b/x + c * log(x))
//   hill3           ymax * x^eta / (kappa^eta + x^eta)
//   mmf             alpha - (alpha - beta) / (1 + (kappa * x)^delta)
//   exp4            c - exp(-a * x^alpha + b)
//   janoschek       alpha - (alpha - beta) * exp(-kappa * x^delta)
//   weibull         alpha - (alpha - beta) * exp(-(kappa * x)^delta)
//   ilog2           c - a / log(x + 1)
//
// All performance values are assumed normalized to [0, 1] (accuracy, or
// min-max scaled reward per Eq. 4 of the paper).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace hyperdrive::curve {

/// Inclusive parameter box used both as a uniform prior support and to
/// clamp optimizer proposals.
struct ParamBounds {
  double lo = 0.0;
  double hi = 1.0;
};

/// Interface for one parametric curve family.
class ParametricModel {
 public:
  virtual ~ParametricModel() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual std::size_t num_params() const noexcept = 0;
  [[nodiscard]] virtual const std::vector<ParamBounds>& bounds() const noexcept = 0;

  /// Evaluate the curve at epoch x (x >= 1) with parameters theta
  /// (theta.size() == num_params()). May return non-finite values for
  /// pathological theta; callers must reject those.
  [[nodiscard]] virtual double eval(double x, std::span<const double> theta) const noexcept = 0;

  /// A reasonable starting point for the optimizer given the observed prefix
  /// ys (ys[i] is performance at epoch i+1). Deterministic.
  [[nodiscard]] virtual std::vector<double> initial_guess(
      std::span<const double> ys) const = 0;

  /// Draw a random parameter vector uniformly from the bounds box.
  [[nodiscard]] std::vector<double> random_params(util::Rng& rng) const;

  /// True iff theta lies inside the bounds box.
  [[nodiscard]] bool in_bounds(std::span<const double> theta) const noexcept;
};

/// Construct all 11 families (the full Domhan set).
[[nodiscard]] std::vector<std::unique_ptr<ParametricModel>> make_all_models();

/// Construct a named subset (by family name); throws std::invalid_argument
/// for an unknown name. Useful for fast predictor configurations.
[[nodiscard]] std::vector<std::unique_ptr<ParametricModel>> make_models(
    const std::vector<std::string>& names);

/// Names of all 11 families in canonical order.
[[nodiscard]] const std::vector<std::string>& all_model_names();

}  // namespace hyperdrive::curve
