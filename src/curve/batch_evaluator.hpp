// BatchEvaluator — fused, allocation-free log-posterior kernels for the
// ensemble MCMC hot path (ROADMAP item 1: ≥10x sweep-cell throughput).
//
// CurveEnsemble::log_posterior is evaluated ~nwalkers * nsamples times per
// fit. The generic path walks virtual ParametricModel::eval through two
// passes (prior sanity + likelihood), recomputing per-theta constants at
// every epoch. BatchEvaluator flattens the ensemble into dispatch-free
// tables at reset() time and evaluates with a single fused pass:
//
//   * one curve evaluation per epoch (the prior's sanity check and the
//     likelihood residual share it — eval is pure, so this is bit-identical
//     to the two-pass reference),
//   * per-theta constants hoisted out of the epoch loop (normalized weights
//     w_k / sum_j w_j, exp(b) for log_power, kappa^eta for hill3),
//   * per-epoch constants precomputed once per bind() (x, log x, log(x+1)),
//   * struct-of-arrays log_prob_batch for the initial walker sweep: thetas
//     are transposed so the per-family inner loops run contiguously across
//     walkers.
//
// Every hoist reuses the exact arithmetic expression of the reference path
// (same operands, same operation order), so results are bit-identical — the
// contract predictor_equivalence_test enforces across all 11 families.
// Scratch buffers are members and reuse their capacity across reset()/bind(),
// so a steady-state predict loop does no allocation here.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "curve/ensemble.hpp"
#include "curve/mcmc.hpp"

namespace hyperdrive::curve {

class BatchEvaluator final : public LogProbFn {
 public:
  BatchEvaluator() = default;
  explicit BatchEvaluator(const CurveEnsemble& ensemble) { reset(ensemble); }

  /// Capture the ensemble's layout (family kinds, parameter offsets, flat
  /// bounds, prior). The ensemble must outlive this evaluator. Reusable:
  /// scratch capacity carries over from the previous reset.
  void reset(const CurveEnsemble& ensemble);

  /// Bind the observed prefix (ys[i] at epoch i+1) and precompute the
  /// per-epoch tables for epochs 1..ys.size() and the horizon. Must be
  /// called after reset() and before any evaluation.
  void bind(std::span<const double> ys);

  /// Fused scalar kernel: bit-identical to
  /// ensemble.log_posterior(theta, ys) on the bound prefix.
  [[nodiscard]] double log_prob(std::span<const double> theta) override;

  /// Struct-of-arrays kernel: bit-identical to calling log_prob per row.
  void log_prob_batch(std::span<const double> thetas, std::size_t rows,
                      std::span<double> out) override;

  /// Cutoff-aware kernel for the sampler's proposal loop: identical to
  /// log_prob except it may return -inf early once an exact float upper
  /// bound on the final value (likelihood terms replaced by their per-theta
  /// maximum, folded through the same accumulation) proves the published
  /// acceptance test cannot pass. Never changes an accept/reject decision.
  [[nodiscard]] double log_prob_cutoff(std::span<const double> theta,
                                       const AcceptanceCutoff& cutoff) override;

  /// Latent curve value at an arbitrary epoch x — bit-identical to
  /// ensemble.eval(x, theta). Used by the posterior-predictive stage.
  [[nodiscard]] double eval_curve(double x, std::span<const double> theta) const noexcept;

 private:
  enum class Family : unsigned char {
    kPow3,
    kPow4,
    kLogLogLinear,
    kLogPower,
    kVaporPressure,
    kHill3,
    kMmf,
    kExp4,
    kJanoschek,
    kWeibull,
    kIlog2,
  };

  struct Slot {
    Family kind;
    std::size_t offset;   ///< first parameter index in packed theta
    std::size_t nparams;
  };

  /// Fused ensemble curve at table slot `idx` (epochs 1..n, horizon at n).
  /// wn_ must hold the normalized weights for `theta`.
  [[nodiscard]] double eval_slot(std::size_t idx, std::span<const double> theta)
      const noexcept;

  /// Shared body of log_prob / log_prob_cutoff; `cutoff` null = never prune.
  [[nodiscard]] double log_prob_impl(std::span<const double> theta,
                                     const AcceptanceCutoff* cutoff);

  std::vector<Slot> families_;
  std::vector<double> bounds_lo_;  ///< per packed-theta parameter index
  std::vector<double> bounds_hi_;
  std::size_t dim_ = 0;
  std::size_t weight_offset_ = 0;
  double horizon_ = 0.0;
  EnsemblePrior prior_;

  // bind() state: the observed prefix and per-epoch tables. Slot i holds
  // epoch i+1 for i < ys_.size(); the last slot holds the horizon.
  std::vector<double> ys_;
  std::vector<double> xs_;
  std::vector<double> log_x_;
  std::vector<double> log_xp1_;

  // Scalar-kernel scratch (per theta): normalized weights and hoisted
  // per-family constants.
  std::vector<double> wn_;
  std::vector<double> hoist_;

  // Batch-kernel scratch (per walker sweep), struct-of-arrays.
  std::vector<double> soa_;        ///< dim x rows transpose of the walkers
  std::vector<double> wn_b_;       ///< nfam x rows normalized weights
  std::vector<double> hoist_b_;    ///< nfam x rows hoisted constants
  std::vector<unsigned char> wact_b_;  ///< nfam x rows: weight > 0
  std::vector<unsigned char> live_;    ///< per row: still inside the support
  std::vector<double> ll_b_;
  std::vector<double> inv_var_b_;
  std::vector<double> log_sigma_b_;
  std::vector<double> acc_;
};

}  // namespace hyperdrive::curve
