#include "curve/parametric_models.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hyperdrive::curve {

namespace {

double first_of(std::span<const double> ys) { return ys.empty() ? 0.1 : ys.front(); }
double last_of(std::span<const double> ys) { return ys.empty() ? 0.5 : ys.back(); }
double clampd(double x, double lo, double hi) { return std::clamp(x, lo, hi); }

using EvalFn = double (*)(double, std::span<const double>) noexcept;
using InitFn = std::vector<double> (*)(std::span<const double>);

/// Concrete family described by a name, a bounds box, an eval function and a
/// data-driven initial guess. All 11 families share this shape.
class FamilyModel final : public ParametricModel {
 public:
  FamilyModel(std::string name, std::vector<ParamBounds> bounds, EvalFn eval, InitFn init)
      : name_(std::move(name)), bounds_(std::move(bounds)), eval_(eval), init_(init) {}

  [[nodiscard]] std::string_view name() const noexcept override { return name_; }
  [[nodiscard]] std::size_t num_params() const noexcept override { return bounds_.size(); }
  [[nodiscard]] const std::vector<ParamBounds>& bounds() const noexcept override {
    return bounds_;
  }
  [[nodiscard]] double eval(double x, std::span<const double> theta) const noexcept override {
    return eval_(x, theta);
  }
  [[nodiscard]] std::vector<double> initial_guess(std::span<const double> ys) const override {
    auto guess = init_(ys);
    for (std::size_t i = 0; i < guess.size(); ++i) {
      guess[i] = clampd(guess[i], bounds_[i].lo, bounds_[i].hi);
    }
    return guess;
  }

 private:
  std::string name_;
  std::vector<ParamBounds> bounds_;
  EvalFn eval_;
  InitFn init_;
};

// --- pow3: c - a * x^(-alpha) ------------------------------------------------
double eval_pow3(double x, std::span<const double> t) noexcept {
  return t[0] - t[1] * std::pow(x, -t[2]);
}
std::vector<double> init_pow3(std::span<const double> ys) {
  const double c = last_of(ys) + 0.05;
  return {c, std::max(0.05, c - first_of(ys)), 0.5};
}

// --- pow4: c - (a*x + b)^(-alpha) --------------------------------------------
double eval_pow4(double x, std::span<const double> t) noexcept {
  const double base = t[1] * x + t[2];
  if (base <= 0.0) return std::nan("");
  return t[0] - std::pow(base, -t[3]);
}
std::vector<double> init_pow4(std::span<const double> ys) {
  return {last_of(ys) + 0.05, 1.0, 1.0, 0.5};
}

// --- log_log_linear: log(a * log(x) + b) -------------------------------------
double eval_loglog(double x, std::span<const double> t) noexcept {
  const double inner = t[0] * std::log(x) + t[1];
  if (inner <= 0.0) return std::nan("");
  return std::log(inner);
}
std::vector<double> init_loglog(std::span<const double> ys) {
  const double b = clampd(std::exp(first_of(ys)), 1.0, 2.7);
  const double n = std::max<double>(2.0, static_cast<double>(ys.size()));
  const double a = (std::exp(last_of(ys)) - b) / std::log(n + 1.0);
  return {std::max(0.0, a), b};
}

// --- log_power: a / (1 + (x / exp(b))^c), c < 0 for learning curves ----------
double eval_logpower(double x, std::span<const double> t) noexcept {
  return t[0] / (1.0 + std::pow(x / std::exp(t[1]), t[2]));
}
std::vector<double> init_logpower(std::span<const double> ys) {
  const double n = std::max<double>(2.0, static_cast<double>(ys.size()));
  return {last_of(ys) + 0.05, std::log(n / 2.0 + 1.0), -0.7};
}

// --- vapor_pressure: exp(a + b/x + c*log(x)) ----------------------------------
double eval_vapor(double x, std::span<const double> t) noexcept {
  return std::exp(t[0] + t[1] / x + t[2] * std::log(x));
}
std::vector<double> init_vapor(std::span<const double> ys) {
  const double a = std::log(std::max(last_of(ys), 1e-3));
  const double b = std::log(std::max(first_of(ys), 1e-3)) - a;
  return {a, b, 0.0};
}

// --- hill3: ymax * x^eta / (kappa^eta + x^eta) --------------------------------
double eval_hill3(double x, std::span<const double> t) noexcept {
  const double xe = std::pow(x, t[1]);
  return t[0] * xe / (std::pow(t[2], t[1]) + xe);
}
std::vector<double> init_hill3(std::span<const double> ys) {
  const double n = std::max<double>(2.0, static_cast<double>(ys.size()));
  return {last_of(ys) + 0.05, 1.0, n / 2.0};
}

// --- mmf: alpha - (alpha - beta) / (1 + (kappa*x)^delta) ----------------------
double eval_mmf(double x, std::span<const double> t) noexcept {
  return t[0] - (t[0] - t[1]) / (1.0 + std::pow(t[2] * x, t[3]));
}
std::vector<double> init_mmf(std::span<const double> ys) {
  return {last_of(ys) + 0.05, first_of(ys), 0.05, 1.0};
}

// --- exp4: c - exp(-a * x^alpha + b) ------------------------------------------
double eval_exp4(double x, std::span<const double> t) noexcept {
  return t[0] - std::exp(-t[1] * std::pow(x, t[3]) + t[2]);
}
std::vector<double> init_exp4(std::span<const double> ys) {
  const double c = last_of(ys) + 0.05;
  const double b = std::log(std::max(c - first_of(ys), 1e-3));
  return {c, 0.1, b, 1.0};
}

// --- janoschek: alpha - (alpha - beta) * exp(-kappa * x^delta) ----------------
double eval_janoschek(double x, std::span<const double> t) noexcept {
  return t[0] - (t[0] - t[1]) * std::exp(-t[2] * std::pow(x, t[3]));
}
std::vector<double> init_janoschek(std::span<const double> ys) {
  return {last_of(ys) + 0.05, first_of(ys), 0.05, 1.0};
}

// --- weibull: alpha - (alpha - beta) * exp(-(kappa*x)^delta) ------------------
double eval_weibull(double x, std::span<const double> t) noexcept {
  return t[0] - (t[0] - t[1]) * std::exp(-std::pow(t[2] * x, t[3]));
}
std::vector<double> init_weibull(std::span<const double> ys) {
  return {last_of(ys) + 0.05, first_of(ys), 0.05, 1.0};
}

// --- ilog2: c - a / log(x + 1) ------------------------------------------------
double eval_ilog2(double x, std::span<const double> t) noexcept {
  return t[0] - t[1] / std::log(x + 1.0);
}
std::vector<double> init_ilog2(std::span<const double> ys) {
  const double c = last_of(ys) + 0.05;
  return {c, std::max(0.01, (c - first_of(ys)) * std::log(2.0))};
}

std::unique_ptr<ParametricModel> make_model_by_name(const std::string& name) {
  // Bounds are deliberately loose uniform boxes: they act as the prior
  // support in the MCMC and as clamps in the least-squares fit.
  if (name == "pow3")
    return std::make_unique<FamilyModel>(
        name, std::vector<ParamBounds>{{0.0, 1.5}, {0.0, 2.0}, {0.01, 5.0}}, eval_pow3,
        init_pow3);
  if (name == "pow4")
    return std::make_unique<FamilyModel>(
        name, std::vector<ParamBounds>{{0.0, 1.5}, {0.01, 10.0}, {0.01, 10.0}, {0.01, 5.0}},
        eval_pow4, init_pow4);
  if (name == "log_log_linear")
    return std::make_unique<FamilyModel>(
        name, std::vector<ParamBounds>{{0.0, 5.0}, {1.0, 2.7}}, eval_loglog, init_loglog);
  if (name == "log_power")
    return std::make_unique<FamilyModel>(
        name, std::vector<ParamBounds>{{0.0, 1.5}, {-2.0, 10.0}, {-5.0, -0.01}},
        eval_logpower, init_logpower);
  if (name == "vapor_pressure")
    return std::make_unique<FamilyModel>(
        name, std::vector<ParamBounds>{{-5.0, 0.5}, {-5.0, 5.0}, {-0.5, 0.5}}, eval_vapor,
        init_vapor);
  if (name == "hill3")
    return std::make_unique<FamilyModel>(
        name, std::vector<ParamBounds>{{0.0, 1.5}, {0.01, 5.0}, {0.01, 200.0}}, eval_hill3,
        init_hill3);
  if (name == "mmf")
    return std::make_unique<FamilyModel>(
        name, std::vector<ParamBounds>{{0.0, 1.5}, {0.0, 1.0}, {0.001, 10.0}, {0.01, 5.0}},
        eval_mmf, init_mmf);
  if (name == "exp4")
    return std::make_unique<FamilyModel>(
        name, std::vector<ParamBounds>{{0.0, 1.5}, {0.01, 5.0}, {-5.0, 5.0}, {0.01, 2.0}},
        eval_exp4, init_exp4);
  if (name == "janoschek")
    return std::make_unique<FamilyModel>(
        name, std::vector<ParamBounds>{{0.0, 1.5}, {0.0, 1.0}, {0.001, 5.0}, {0.01, 3.0}},
        eval_janoschek, init_janoschek);
  if (name == "weibull")
    return std::make_unique<FamilyModel>(
        name, std::vector<ParamBounds>{{0.0, 1.5}, {0.0, 1.0}, {0.001, 2.0}, {0.01, 3.0}},
        eval_weibull, init_weibull);
  if (name == "ilog2")
    return std::make_unique<FamilyModel>(
        name, std::vector<ParamBounds>{{0.0, 1.5}, {0.0, 2.0}}, eval_ilog2, init_ilog2);
  throw std::invalid_argument("unknown parametric model: " + name);
}

}  // namespace

std::vector<double> ParametricModel::random_params(util::Rng& rng) const {
  std::vector<double> theta(num_params());
  const auto& box = bounds();
  for (std::size_t i = 0; i < theta.size(); ++i) {
    theta[i] = rng.uniform(box[i].lo, box[i].hi);
  }
  return theta;
}

bool ParametricModel::in_bounds(std::span<const double> theta) const noexcept {
  const auto& box = bounds();
  if (theta.size() != box.size()) return false;
  for (std::size_t i = 0; i < theta.size(); ++i) {
    if (theta[i] < box[i].lo || theta[i] > box[i].hi) return false;
  }
  return true;
}

const std::vector<std::string>& all_model_names() {
  static const std::vector<std::string> names = {
      "pow3",  "pow4",      "log_log_linear", "log_power", "vapor_pressure", "hill3",
      "mmf",   "exp4",      "janoschek",      "weibull",   "ilog2"};
  return names;
}

std::vector<std::unique_ptr<ParametricModel>> make_all_models() {
  return make_models(all_model_names());
}

std::vector<std::unique_ptr<ParametricModel>> make_models(
    const std::vector<std::string>& names) {
  std::vector<std::unique_ptr<ParametricModel>> models;
  models.reserve(names.size());
  for (const auto& n : names) models.push_back(make_model_by_name(n));
  return models;
}

}  // namespace hyperdrive::curve
