// Weighted ensemble of parametric learning-curve families plus Gaussian
// observation noise — the probabilistic model of Domhan et al. [11] that POP
// uses to compute P(y(m) >= y_target | y(1:n)) (paper Eq. 1).
//
// The combined latent curve is
//     f(x; theta) = sum_k w~_k * f_k(x; theta_k),   w~_k = w_k / sum_j w_j
// and observations are y_i ~ Normal(f(x_i), sigma^2). The joint parameter
// vector packs [theta_1 .. theta_K, w_1 .. w_K, log_sigma].
//
// Priors (uniform boxes, matching the reference implementation in spirit):
//   * each theta_k within its family's bounds box,
//   * w_k in [0, 1] with sum > 0 (weights are normalized inside eval),
//   * log_sigma in [log 1e-4, log 0.5],
//   * the latent curve must be finite and inside [-0.05, 1.10] at every
//     observed epoch and at the prediction horizon,
//   * optionally (on by default) non-collapsing: f(horizon) must not fall
//     more than `max_decrease` below the last observation — the Domhan prior
//     that curves do not regress, relaxed enough for noisy RL rewards.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "curve/parametric_models.hpp"

namespace hyperdrive::curve {

struct EnsemblePrior {
  double log_sigma_lo = -9.2103403719761836;  // log(1e-4)
  double log_sigma_hi = -0.6931471805599453;  // log(0.5)
  double y_lo = -0.05;                        ///< latent curve lower sanity bound
  double y_hi = 1.10;                         ///< latent curve upper sanity bound
  bool require_non_collapsing = true;
  double max_decrease = 0.10;  ///< allowed drop from last observation to horizon
};

class CurveEnsemble {
 public:
  /// Takes ownership of the families. horizon is the largest epoch index the
  /// model will ever be asked to predict (used by the prior checks).
  CurveEnsemble(std::vector<std::unique_ptr<ParametricModel>> models, double horizon,
                EnsemblePrior prior = {});

  [[nodiscard]] std::size_t num_models() const noexcept { return models_.size(); }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] double horizon() const noexcept { return horizon_; }
  [[nodiscard]] const EnsemblePrior& prior() const noexcept { return prior_; }
  [[nodiscard]] const ParametricModel& model(std::size_t k) const { return *models_.at(k); }

  /// Offset of family k's parameter block inside the packed vector.
  [[nodiscard]] std::size_t param_offset(std::size_t k) const { return offsets_.at(k); }
  /// Offset of the weights block.
  [[nodiscard]] std::size_t weight_offset() const noexcept { return weight_offset_; }
  /// Offset of log_sigma (== dim() - 1).
  [[nodiscard]] std::size_t sigma_offset() const noexcept { return dim_ - 1; }

  /// Latent ensemble curve value at epoch x (x >= 1) for packed theta.
  /// Returns NaN if any active component evaluates non-finite.
  [[nodiscard]] double eval(double x, std::span<const double> theta) const noexcept;

  /// Log prior density (0 inside the support, -inf outside). ys is the
  /// observed prefix used by the shape constraints.
  [[nodiscard]] double log_prior(std::span<const double> theta,
                                 std::span<const double> ys) const noexcept;

  /// Gaussian log likelihood of the observed prefix (ys[i] at epoch i+1).
  [[nodiscard]] double log_likelihood(std::span<const double> theta,
                                      std::span<const double> ys) const noexcept;

  /// log_prior + log_likelihood (−inf outside the support).
  [[nodiscard]] double log_posterior(std::span<const double> theta,
                                     std::span<const double> ys) const noexcept;

  /// Packed starting point: per-family least-squares fits via Nelder–Mead,
  /// weights proportional to each family's inverse MSE, sigma from the best
  /// fit's residuals. Deterministic given ys.
  [[nodiscard]] std::vector<double> initial_theta(std::span<const double> ys) const;

  /// Jitter a packed theta into a valid random walker start near `center`.
  /// Falls back to re-sampling out-of-bounds coordinates uniformly.
  [[nodiscard]] std::vector<double> jitter(std::span<const double> center, util::Rng& rng,
                                           double scale = 0.05) const;

 private:
  std::vector<std::unique_ptr<ParametricModel>> models_;
  std::vector<std::size_t> offsets_;
  std::size_t weight_offset_ = 0;
  std::size_t dim_ = 0;
  double horizon_ = 0.0;
  EnsemblePrior prior_;
};

}  // namespace hyperdrive::curve
