#include "curve/batch_evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace hyperdrive::curve {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr double kLog2Pi = 1.8378770664093453;

/// True when the sampler's acceptance test is provably false for every final
/// log-probability <= `bound`. Exact under IEEE rounding: the acceptance
/// expression is evaluated with the sampler's own operand order, and fl-add/
/// fl-sub are monotone in each operand, so ratio(cand_lp) <= ratio(bound)
/// whenever cand_lp <= bound. NaN ratios never prune (bound unknown).
bool rejected_at_or_below(const AcceptanceCutoff& cut, double bound) {
  const double ratio = cut.a_term + bound - cut.logp_cur;
  return !std::isnan(ratio) && !(cut.log_u < ratio);
}
}  // namespace

void BatchEvaluator::reset(const CurveEnsemble& ensemble) {
  dim_ = ensemble.dim();
  weight_offset_ = ensemble.weight_offset();
  horizon_ = ensemble.horizon();
  prior_ = ensemble.prior();
  const std::size_t nfam = ensemble.num_models();
  families_.clear();
  families_.reserve(nfam);
  bounds_lo_.resize(weight_offset_);
  bounds_hi_.resize(weight_offset_);
  for (std::size_t k = 0; k < nfam; ++k) {
    const auto& model = ensemble.model(k);
    const auto name = model.name();
    Slot slot;
    if (name == "pow3") slot.kind = Family::kPow3;
    else if (name == "pow4") slot.kind = Family::kPow4;
    else if (name == "log_log_linear") slot.kind = Family::kLogLogLinear;
    else if (name == "log_power") slot.kind = Family::kLogPower;
    else if (name == "vapor_pressure") slot.kind = Family::kVaporPressure;
    else if (name == "hill3") slot.kind = Family::kHill3;
    else if (name == "mmf") slot.kind = Family::kMmf;
    else if (name == "exp4") slot.kind = Family::kExp4;
    else if (name == "janoschek") slot.kind = Family::kJanoschek;
    else if (name == "weibull") slot.kind = Family::kWeibull;
    else if (name == "ilog2") slot.kind = Family::kIlog2;
    else
      throw std::invalid_argument("BatchEvaluator: unfusable model family: " +
                                  std::string(name));
    slot.offset = ensemble.param_offset(k);
    slot.nparams = model.num_params();
    families_.push_back(slot);
    const auto& box = model.bounds();
    for (std::size_t d = 0; d < box.size(); ++d) {
      bounds_lo_[slot.offset + d] = box[d].lo;
      bounds_hi_[slot.offset + d] = box[d].hi;
    }
  }
  wn_.resize(nfam);
  hoist_.resize(nfam);
}

void BatchEvaluator::bind(std::span<const double> ys) {
  if (dim_ == 0) throw std::logic_error("BatchEvaluator: bind() before reset()");
  ys_.assign(ys.begin(), ys.end());
  const std::size_t n = ys_.size();
  xs_.resize(n + 1);
  log_x_.resize(n + 1);
  log_xp1_.resize(n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i + 1);
    xs_[i] = x;
    log_x_[i] = std::log(x);
    log_xp1_[i] = std::log(x + 1.0);
  }
  xs_[n] = horizon_;
  log_x_[n] = std::log(horizon_);
  log_xp1_[n] = std::log(horizon_ + 1.0);
}

double BatchEvaluator::eval_slot(std::size_t idx, std::span<const double> theta)
    const noexcept {
  const double x = xs_[idx];
  const double lx = log_x_[idx];
  const double lxp1 = log_xp1_[idx];
  double y = 0.0;
  for (std::size_t k = 0; k < families_.size(); ++k) {
    if (theta[weight_offset_ + k] <= 0.0) continue;
    const double* t = theta.data() + families_[k].offset;
    double fk;
    switch (families_[k].kind) {
      case Family::kPow3:
        fk = t[0] - t[1] * std::pow(x, -t[2]);
        break;
      case Family::kPow4: {
        const double base = t[1] * x + t[2];
        fk = base <= 0.0 ? std::nan("") : t[0] - std::pow(base, -t[3]);
        break;
      }
      case Family::kLogLogLinear: {
        const double inner = t[0] * lx + t[1];
        fk = inner <= 0.0 ? std::nan("") : std::log(inner);
        break;
      }
      case Family::kLogPower:
        fk = t[0] / (1.0 + std::pow(x / hoist_[k], t[2]));
        break;
      case Family::kVaporPressure:
        fk = std::exp(t[0] + t[1] / x + t[2] * lx);
        break;
      case Family::kHill3: {
        const double xe = std::pow(x, t[1]);
        fk = t[0] * xe / (hoist_[k] + xe);
        break;
      }
      case Family::kMmf:
        fk = t[0] - (t[0] - t[1]) / (1.0 + std::pow(t[2] * x, t[3]));
        break;
      case Family::kExp4:
        fk = t[0] - std::exp(-t[1] * std::pow(x, t[3]) + t[2]);
        break;
      case Family::kJanoschek:
        fk = t[0] - (t[0] - t[1]) * std::exp(-t[2] * std::pow(x, t[3]));
        break;
      case Family::kWeibull:
        fk = t[0] - (t[0] - t[1]) * std::exp(-std::pow(t[2] * x, t[3]));
        break;
      case Family::kIlog2:
        fk = t[0] - t[1] / lxp1;
        break;
      default:
        fk = std::nan("");
        break;
    }
    if (!std::isfinite(fk)) return std::nan("");
    y += wn_[k] * fk;
  }
  return y;
}

double BatchEvaluator::log_prob(std::span<const double> theta) {
  return log_prob_impl(theta, nullptr);
}

double BatchEvaluator::log_prob_cutoff(std::span<const double> theta,
                                       const AcceptanceCutoff& cutoff) {
  return log_prob_impl(theta, &cutoff);
}

double BatchEvaluator::log_prob_impl(std::span<const double> theta,
                                     const AcceptanceCutoff* cutoff) {
  if (theta.size() != dim_) return kNegInf;
  for (std::size_t j = 0; j < weight_offset_; ++j) {
    const double v = theta[j];
    if (v < bounds_lo_[j] || v > bounds_hi_[j]) return kNegInf;
  }
  const std::size_t nfam = families_.size();
  double weight_total = 0.0;
  for (std::size_t k = 0; k < nfam; ++k) {
    const double w = theta[weight_offset_ + k];
    if (w < 0.0 || w > 1.0) return kNegInf;
    weight_total += w;
  }
  if (weight_total <= 1e-12) return kNegInf;
  const double log_sigma = theta[dim_ - 1];
  if (log_sigma < prior_.log_sigma_lo || log_sigma > prior_.log_sigma_hi) return kNegInf;

  // Early-rejection bound: every likelihood term is
  //   -0.5 * (r^2 * inv_var + kLog2Pi) - log_sigma  <=  t_max
  // with t_max below, because r^2 * inv_var >= 0 and each fl-op is monotone.
  // Folding t_max through the same accumulation the loop performs gives an
  // exact float upper bound on the final log-prob; if even that bound cannot
  // pass the published acceptance draw, the candidate is rejected without
  // evaluating a single curve point. The same fold prunes mid-loop below.
  const std::size_t n_epochs = ys_.size();
  const double t_max =
      cutoff != nullptr ? -0.5 * kLog2Pi - log_sigma
                        : std::numeric_limits<double>::quiet_NaN();
  if (cutoff != nullptr) {
    double bound = 0.0;
    for (std::size_t j = 0; j < n_epochs; ++j) bound += t_max;
    if (rejected_at_or_below(*cutoff, bound)) return kNegInf;
  }

  // Normalized mixture weights over the active (w > 0) components — the
  // same division eval() performs per epoch, hoisted out of the loop.
  double wsum = 0.0;
  for (std::size_t k = 0; k < nfam; ++k) {
    const double w = theta[weight_offset_ + k];
    if (w > 0.0) wsum += w;
  }
  if (wsum <= 0.0) return kNegInf;  // eval() would be NaN at every epoch
  for (std::size_t k = 0; k < nfam; ++k) {
    const double w = theta[weight_offset_ + k];
    // NaN weights stay NaN here: the reference eval() does not skip them
    // (NaN fails w <= 0), so they must poison the accumulated curve value.
    wn_[k] = w <= 0.0 ? 0.0 : w / wsum;
    hoist_[k] = 0.0;
    if (w > 0.0) {
      const double* t = theta.data() + families_[k].offset;
      if (families_[k].kind == Family::kLogPower) hoist_[k] = std::exp(t[1]);
      else if (families_[k].kind == Family::kHill3) hoist_[k] = std::pow(t[2], t[1]);
    }
  }

  const double sigma = std::exp(log_sigma);
  const double inv_var = 1.0 / (sigma * sigma);
  const std::size_t n = ys_.size();
  double ll = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double f = eval_slot(i, theta);
    if (!std::isfinite(f) || f < prior_.y_lo || f > prior_.y_hi) return kNegInf;
    const double r = ys_[i] - f;
    ll += -0.5 * (r * r * inv_var + kLog2Pi) - log_sigma;
    if (cutoff != nullptr) {
      double bound = ll;
      for (std::size_t j = i + 1; j < n; ++j) bound += t_max;
      if (rejected_at_or_below(*cutoff, bound)) return kNegInf;
    }
  }
  const double f_end = eval_slot(n, theta);
  if (!std::isfinite(f_end) || f_end < prior_.y_lo || f_end > prior_.y_hi) return kNegInf;
  if (prior_.require_non_collapsing && n > 0 &&
      f_end < ys_.back() - prior_.max_decrease) {
    return kNegInf;
  }
  return ll;  // log_prior contributes exactly 0.0 inside the support
}

void BatchEvaluator::log_prob_batch(std::span<const double> thetas, std::size_t rows,
                                    std::span<double> out) {
  if (rows == 0) return;
  const std::size_t row_dim = thetas.size() / rows;
  if (row_dim != dim_) {
    for (std::size_t r = 0; r < rows; ++r) {
      out[r] = log_prob(thetas.subspan(r * row_dim, row_dim));
    }
    return;
  }
  const std::size_t nfam = families_.size();

  // Transpose into struct-of-arrays: parameter j of row r at soa_[j*rows+r],
  // so the per-family loops below stream contiguously across walkers.
  soa_.resize(dim_ * rows);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t j = 0; j < dim_; ++j) {
      soa_[j * rows + r] = thetas[r * dim_ + j];
    }
  }

  live_.assign(rows, 1);
  ll_b_.assign(rows, 0.0);
  wn_b_.resize(nfam * rows);
  wact_b_.resize(nfam * rows);
  hoist_b_.resize(nfam * rows);
  inv_var_b_.resize(rows);
  log_sigma_b_.resize(rows);

  // Per-row support checks and hoists (bounds, weight box, sigma box,
  // normalized weights, per-family constants) — same order as log_prob.
  for (std::size_t r = 0; r < rows; ++r) {
    const double* th = thetas.data() + r * dim_;
    bool ok = true;
    for (std::size_t j = 0; j < weight_offset_; ++j) {
      const double v = th[j];
      if (v < bounds_lo_[j] || v > bounds_hi_[j]) {
        ok = false;
        break;
      }
    }
    double weight_total = 0.0;
    if (ok) {
      for (std::size_t k = 0; k < nfam; ++k) {
        const double w = th[weight_offset_ + k];
        if (w < 0.0 || w > 1.0) {
          ok = false;
          break;
        }
        weight_total += w;
      }
    }
    if (ok && weight_total <= 1e-12) ok = false;
    const double log_sigma = th[dim_ - 1];
    if (ok && (log_sigma < prior_.log_sigma_lo || log_sigma > prior_.log_sigma_hi)) {
      ok = false;
    }
    double wsum = 0.0;
    if (ok) {
      for (std::size_t k = 0; k < nfam; ++k) {
        const double w = th[weight_offset_ + k];
        if (w > 0.0) wsum += w;
      }
      if (wsum <= 0.0) ok = false;
    }
    if (!ok) {
      out[r] = kNegInf;
      live_[r] = 0;
      continue;
    }
    for (std::size_t k = 0; k < nfam; ++k) {
      const double w = th[weight_offset_ + k];
      const bool active = !(w <= 0.0);  // NaN weights stay active, see eval()
      wact_b_[k * rows + r] = active ? 1 : 0;
      wn_b_[k * rows + r] = active ? w / wsum : 0.0;
      double h = 0.0;
      if (w > 0.0) {
        const double* t = th + families_[k].offset;
        if (families_[k].kind == Family::kLogPower) h = std::exp(t[1]);
        else if (families_[k].kind == Family::kHill3) h = std::pow(t[2], t[1]);
      }
      hoist_b_[k * rows + r] = h;
    }
    log_sigma_b_[r] = log_sigma;
    const double sigma = std::exp(log_sigma);
    inv_var_b_[r] = 1.0 / (sigma * sigma);
  }

  // Fused epoch sweep: slot n is the horizon. Accumulating wn*fk in family
  // order per row reproduces eval()'s sum bit-for-bit; a non-finite component
  // poisons the row's accumulator, which the sanity check then rejects —
  // the same outcome as eval()'s early NaN return.
  const std::size_t n = ys_.size();
  acc_.resize(rows);
  for (std::size_t i = 0; i <= n; ++i) {
    const double x = xs_[i];
    const double lx = log_x_[i];
    const double lxp1 = log_xp1_[i];
    std::fill(acc_.begin(), acc_.end(), 0.0);
    for (std::size_t k = 0; k < nfam; ++k) {
      const Slot& slot = families_[k];
      const double* p = soa_.data() + slot.offset * rows;
      const double* t0 = p;
      const double* t1 = p + rows;
      const double* t2 = p + 2 * rows;
      const double* t3 = p + 3 * rows;
      const double* wn = wn_b_.data() + k * rows;
      const unsigned char* wact = wact_b_.data() + k * rows;
      const double* hp = hoist_b_.data() + k * rows;
      switch (slot.kind) {
        case Family::kPow3:
          for (std::size_t r = 0; r < rows; ++r) {
            if (!live_[r] || !wact[r]) continue;
            acc_[r] += wn[r] * (t0[r] - t1[r] * std::pow(x, -t2[r]));
          }
          break;
        case Family::kPow4:
          for (std::size_t r = 0; r < rows; ++r) {
            if (!live_[r] || !wact[r]) continue;
            const double base = t1[r] * x + t2[r];
            const double fk =
                base <= 0.0 ? std::nan("") : t0[r] - std::pow(base, -t3[r]);
            acc_[r] += wn[r] * fk;
          }
          break;
        case Family::kLogLogLinear:
          for (std::size_t r = 0; r < rows; ++r) {
            if (!live_[r] || !wact[r]) continue;
            const double inner = t0[r] * lx + t1[r];
            const double fk = inner <= 0.0 ? std::nan("") : std::log(inner);
            acc_[r] += wn[r] * fk;
          }
          break;
        case Family::kLogPower:
          for (std::size_t r = 0; r < rows; ++r) {
            if (!live_[r] || !wact[r]) continue;
            acc_[r] += wn[r] * (t0[r] / (1.0 + std::pow(x / hp[r], t2[r])));
          }
          break;
        case Family::kVaporPressure:
          for (std::size_t r = 0; r < rows; ++r) {
            if (!live_[r] || !wact[r]) continue;
            acc_[r] += wn[r] * std::exp(t0[r] + t1[r] / x + t2[r] * lx);
          }
          break;
        case Family::kHill3:
          for (std::size_t r = 0; r < rows; ++r) {
            if (!live_[r] || !wact[r]) continue;
            const double xe = std::pow(x, t1[r]);
            acc_[r] += wn[r] * (t0[r] * xe / (hp[r] + xe));
          }
          break;
        case Family::kMmf:
          for (std::size_t r = 0; r < rows; ++r) {
            if (!live_[r] || !wact[r]) continue;
            acc_[r] +=
                wn[r] * (t0[r] - (t0[r] - t1[r]) / (1.0 + std::pow(t2[r] * x, t3[r])));
          }
          break;
        case Family::kExp4:
          for (std::size_t r = 0; r < rows; ++r) {
            if (!live_[r] || !wact[r]) continue;
            acc_[r] += wn[r] * (t0[r] - std::exp(-t1[r] * std::pow(x, t3[r]) + t2[r]));
          }
          break;
        case Family::kJanoschek:
          for (std::size_t r = 0; r < rows; ++r) {
            if (!live_[r] || !wact[r]) continue;
            acc_[r] +=
                wn[r] * (t0[r] - (t0[r] - t1[r]) * std::exp(-t2[r] * std::pow(x, t3[r])));
          }
          break;
        case Family::kWeibull:
          for (std::size_t r = 0; r < rows; ++r) {
            if (!live_[r] || !wact[r]) continue;
            acc_[r] +=
                wn[r] * (t0[r] - (t0[r] - t1[r]) * std::exp(-std::pow(t2[r] * x, t3[r])));
          }
          break;
        case Family::kIlog2:
          for (std::size_t r = 0; r < rows; ++r) {
            if (!live_[r] || !wact[r]) continue;
            acc_[r] += wn[r] * (t0[r] - t1[r] / lxp1);
          }
          break;
      }
    }
    if (i < n) {
      for (std::size_t r = 0; r < rows; ++r) {
        if (!live_[r]) continue;
        const double f = acc_[r];
        if (!std::isfinite(f) || f < prior_.y_lo || f > prior_.y_hi) {
          out[r] = kNegInf;
          live_[r] = 0;
          continue;
        }
        const double res = ys_[i] - f;
        ll_b_[r] += -0.5 * (res * res * inv_var_b_[r] + kLog2Pi) - log_sigma_b_[r];
      }
    } else {
      for (std::size_t r = 0; r < rows; ++r) {
        if (!live_[r]) continue;
        const double f_end = acc_[r];
        if (!std::isfinite(f_end) || f_end < prior_.y_lo || f_end > prior_.y_hi ||
            (prior_.require_non_collapsing && n > 0 &&
             f_end < ys_.back() - prior_.max_decrease)) {
          out[r] = kNegInf;
          live_[r] = 0;
          continue;
        }
        out[r] = ll_b_[r];
      }
    }
  }
}

double BatchEvaluator::eval_curve(double x, std::span<const double> theta) const noexcept {
  double wsum = 0.0;
  for (std::size_t k = 0; k < families_.size(); ++k) {
    const double w = theta[weight_offset_ + k];
    if (w > 0.0) wsum += w;
  }
  if (wsum <= 0.0) return std::nan("");
  const double lx = std::log(x);
  const double lxp1 = std::log(x + 1.0);
  double y = 0.0;
  for (std::size_t k = 0; k < families_.size(); ++k) {
    const double w = theta[weight_offset_ + k];
    if (w <= 0.0) continue;
    const double* t = theta.data() + families_[k].offset;
    double fk;
    switch (families_[k].kind) {
      case Family::kPow3:
        fk = t[0] - t[1] * std::pow(x, -t[2]);
        break;
      case Family::kPow4: {
        const double base = t[1] * x + t[2];
        fk = base <= 0.0 ? std::nan("") : t[0] - std::pow(base, -t[3]);
        break;
      }
      case Family::kLogLogLinear: {
        const double inner = t[0] * lx + t[1];
        fk = inner <= 0.0 ? std::nan("") : std::log(inner);
        break;
      }
      case Family::kLogPower:
        fk = t[0] / (1.0 + std::pow(x / std::exp(t[1]), t[2]));
        break;
      case Family::kVaporPressure:
        fk = std::exp(t[0] + t[1] / x + t[2] * lx);
        break;
      case Family::kHill3: {
        const double xe = std::pow(x, t[1]);
        fk = t[0] * xe / (std::pow(t[2], t[1]) + xe);
        break;
      }
      case Family::kMmf:
        fk = t[0] - (t[0] - t[1]) / (1.0 + std::pow(t[2] * x, t[3]));
        break;
      case Family::kExp4:
        fk = t[0] - std::exp(-t[1] * std::pow(x, t[3]) + t[2]);
        break;
      case Family::kJanoschek:
        fk = t[0] - (t[0] - t[1]) * std::exp(-t[2] * std::pow(x, t[3]));
        break;
      case Family::kWeibull:
        fk = t[0] - (t[0] - t[1]) * std::exp(-std::pow(t[2] * x, t[3]));
        break;
      case Family::kIlog2:
        fk = t[0] - t[1] / lxp1;
        break;
      default:
        fk = std::nan("");
        break;
    }
    if (!std::isfinite(fk)) return std::nan("");
    y += (w / wsum) * fk;
  }
  return y;
}

}  // namespace hyperdrive::curve
