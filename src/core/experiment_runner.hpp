// Experiment Runner (§4.2 ➀): the client-side entry point. Specifies the
// SAP (with its parameters), the hyperparameter-generation technique, the
// workload, and the number of machines, then runs the experiment on one of
// the two substrates and returns the collected result.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "cluster/cluster.hpp"
#include "core/experiment_result.hpp"
#include "core/generators/hyperparameter_generator.hpp"
#include "core/policies/bandit_policy.hpp"
#include "core/policies/default_policy.hpp"
#include "core/policies/earlyterm_policy.hpp"
#include "core/policies/pop_policy.hpp"
#include "curve/caching_predictor.hpp"
#include "curve/predictor.hpp"
#include "sim/trace_replay.hpp"
#include "workload/trace.hpp"

namespace hyperdrive::core {

enum class PolicyKind { Default, Bandit, EarlyTerm, Pop };

[[nodiscard]] std::string_view to_string(PolicyKind kind) noexcept;

/// Everything needed to instantiate one of the four evaluated policies.
struct PolicySpec {
  PolicyKind kind = PolicyKind::Default;
  BanditConfig bandit;
  EarlyTermConfig earlyterm;
  PopConfig pop;
};

/// Build a fresh policy instance. For EarlyTerm/POP a predictor must be set
/// in the spec; `make_default_predictor` below provides the standard one.
[[nodiscard]] std::unique_ptr<SchedulingPolicy> make_policy(const PolicySpec& spec);

/// Predictor wiring in one place: which inner predictor to build, its
/// configuration, and the caching/warm-start decorator options. The seed is
/// passed separately (per experiment) and overrides `config.seed`.
struct PredictorOptions {
  enum class Kind { Lsq, Mcmc, LastValue };
  Kind kind = Kind::Lsq;
  curve::PredictorConfig config;
  /// Decorator options. warm_start (now on by default, gated by the 30-seed
  /// decision-invariance property test) only takes effect for Kind::Mcmc —
  /// the only warm-startable predictor; for Lsq/LastValue it silently
  /// degrades to a plain cache. See DESIGN.md §11 for the determinism
  /// contract and the knife-edge rotation caveat.
  curve::CachingOptions cache{/*capacity=*/512};
};

/// Build a cached predictor per `options`.
[[nodiscard]] std::shared_ptr<const curve::CurvePredictor> make_predictor(
    const PredictorOptions& options, std::uint64_t seed, obs::Scope scope = {});

/// The fast LSQ-bootstrap predictor configuration used by the simulation
/// benches (the full-MCMC predictor is available via curve::make_mcmc_predictor
/// and is exercised by the predictor micro-bench, §5.2). Pass a scope to
/// observe fit/cache-hit activity (untimed events + predictor.* counters).
/// Equivalent to make_predictor with default PredictorOptions.
[[nodiscard]] std::shared_ptr<const curve::CurvePredictor> make_default_predictor(
    std::uint64_t seed, obs::Scope scope = {});

/// Which substrate executes the experiment.
enum class Substrate {
  TraceReplay,  ///< idealized simulator of §7.1 (no overheads)
  Cluster,      ///< high-fidelity cluster with overhead models (§5/§6)
};

struct RunnerOptions {
  Substrate substrate = Substrate::TraceReplay;
  std::size_t machines = 4;
  util::SimTime max_experiment_time = util::SimTime::hours(48);
  bool stop_on_target = true;
  /// Model-owner-defined global termination criterion (§9); when set it
  /// replaces the perf >= target check (stop_on_target still gates it).
  GlobalStopCriterion stop_criterion;
  /// Cluster-only fidelity knobs (ignored for TraceReplay).
  cluster::OverheadModel overheads = cluster::cifar_overhead_model();
  double epoch_jitter_sigma = 0.04;
  std::uint64_t seed = 1;
  /// Faults to inject (cluster only; default none — a perfect cluster).
  cluster::FaultPlan fault_plan;
  /// Gray-failure detection & mitigation (cluster only; DESIGN.md §7).
  cluster::HealthOptions health;
  /// Optional cost of computing a scheduling decision at evaluation
  /// boundaries (cluster only; §5.2).
  std::function<util::SimTime(JobId, std::size_t epoch, util::Rng&)> decision_latency;
  /// §5.2 overlap of training and prediction (cluster only; the blocking
  /// ablation sets this false).
  bool overlap_decisions = true;
  /// Instrumentation handle, forwarded to the cluster substrate (DESIGN.md
  /// §10). TraceReplay ignores it (the idealized simulator has no event
  /// vocabulary). Detached by default: zero overhead.
  obs::Scope obs;
  /// Exploit/explore continuation hook (PBT; DESIGN.md §13), forwarded to
  /// both substrates. When set the substrate supports
  /// SchedulerOps::clone_job; unset = cloning unsupported (the default).
  workload::ExploreFn explore;
};

/// Run one experiment of `spec` over `trace`.
[[nodiscard]] ExperimentResult run_experiment(const workload::Trace& trace,
                                              const PolicySpec& spec,
                                              const RunnerOptions& options);

/// Same, driving an already-built policy instance (what the SweepEngine and
/// the custom-policy benches use — policies are stateful, so the instance
/// must be fresh per experiment).
[[nodiscard]] ExperimentResult run_experiment(const workload::Trace& trace,
                                              SchedulingPolicy& policy,
                                              const RunnerOptions& options);

/// Build a trace by drawing `num_configs` jobs from a Hyperparameter
/// Generator and realizing them against the workload model — the ➀→➁→➄ path
/// of Fig. 5. Final performances are reported back to the generator after
/// realization so adaptive generators learn across rounds.
[[nodiscard]] workload::Trace trace_from_generator(const workload::WorkloadModel& model,
                                                   HyperparameterGenerator& generator,
                                                   std::size_t num_configs,
                                                   std::uint64_t experiment_seed,
                                                   bool report_feedback = false);

/// Multi-round adaptive search: the full Fig. 5 feedback loop. Each round
/// draws a batch from the generator, runs it under the policy, and reports
/// every explored job's observed best performance back through
/// reportFinalPerformance so adaptive generators (TPE, perturbation) focus
/// the next round. Rounds stop early once the target is reached.
struct AdaptiveSearchResult {
  std::vector<ExperimentResult> rounds;
  double best_perf = 0.0;
  bool reached_target = false;
  /// Wall-clock summed across rounds (rounds run back-to-back).
  util::SimTime total_time = util::SimTime::zero();
};

[[nodiscard]] AdaptiveSearchResult run_adaptive_search(
    const workload::WorkloadModel& model, HyperparameterGenerator& generator,
    const PolicySpec& spec, const RunnerOptions& options, std::size_t rounds,
    std::size_t configs_per_round, std::uint64_t experiment_seed);

}  // namespace hyperdrive::core
