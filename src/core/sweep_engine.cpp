#include "core/sweep_engine.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>

#include "obs/sink.hpp"
#include "util/thread_pool.hpp"

namespace hyperdrive::core {

namespace {

std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  const auto hw = static_cast<std::size_t>(std::thread::hardware_concurrency());
  return hw > 0 ? hw : 1;
}

}  // namespace

SweepEngine::SweepEngine(SweepEngineOptions options)
    : threads_(resolve_threads(options.threads)) {}

SweepTable SweepEngine::run(const SweepSpec& spec) const {
  if (spec.axes.empty()) throw std::invalid_argument("SweepSpec has no axes");
  if (spec.run) {
    if (spec.collect) {
      throw std::invalid_argument("SweepSpec.collect is not supported with SweepSpec.run");
    }
    if (spec.capture_events) {
      throw std::invalid_argument(
          "SweepSpec.capture_events is not supported with SweepSpec.run");
    }
  } else {
    if (!spec.trace) throw std::invalid_argument("SweepSpec.trace is not set");
    if (!spec.policy) throw std::invalid_argument("SweepSpec.policy is not set");
  }

  SweepTable table;
  table.name = spec.name;
  table.axes = spec.axes;
  table.extra_columns = spec.extra_columns;
  table.threads = threads_;
  table.rows.resize(spec.cells());

  // Each worker computes one cell from scratch — trace, policy, predictor
  // are all cell-local, and the result lands in the cell's pre-allocated
  // slot. No cross-cell state means completion order cannot leak into the
  // table.
  const auto run_cell = [&](std::size_t i) {
    SweepRow row;
    row.cell = spec.cell(i);
    if (spec.run) {
      row.result = spec.run(row.cell);
      table.rows[i] = std::move(row);
      return;
    }
    const auto trace = spec.trace(row.cell);
    const auto policy = spec.policy(row.cell);
    if (!policy) throw std::runtime_error("SweepSpec.policy returned null");
    RunnerOptions options = spec.options ? spec.options(row.cell) : RunnerOptions{};
    // Cell-local sink: each worker records into its own buffer, and the
    // events land in the row's pre-allocated slot, so the merged timeline is
    // byte-identical across thread counts.
    obs::RecordingSink sink;
    if (spec.capture_events) options.obs.sink = &sink;
    row.result = run_experiment(trace, *policy, options);
    if (spec.capture_events) row.events = std::move(sink.events);
    if (spec.collect) {
      row.extra = spec.collect(row.cell, *policy, row.result);
      if (row.extra.size() != spec.extra_columns.size()) {
        throw std::runtime_error("SweepSpec.collect returned " +
                                 std::to_string(row.extra.size()) + " values for " +
                                 std::to_string(spec.extra_columns.size()) +
                                 " extra_columns");
      }
    }
    table.rows[i] = std::move(row);
  };

  const auto start = std::chrono::steady_clock::now();
  if (threads_ <= 1 || table.rows.size() <= 1) {
    for (std::size_t i = 0; i < table.rows.size(); ++i) run_cell(i);
  } else {
    util::parallel_for(table.rows.size(), threads_, run_cell);
  }
  table.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return table;
}

SweepTable run_sweep(const SweepSpec& spec, std::size_t threads) {
  return SweepEngine(SweepEngineOptions{threads}).run(spec);
}

}  // namespace hyperdrive::core
