#include "core/sweep_spec.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace hyperdrive::core {

std::uint64_t derive_cell_seed(std::uint64_t base_seed,
                               const std::vector<std::size_t>& index) {
  std::uint64_t seed = base_seed;
  for (std::size_t axis = 0; axis < index.size(); ++axis) {
    // Mix the axis ordinal into the stream id so permuted indices diverge.
    seed = util::derive_seed(seed, (static_cast<std::uint64_t>(axis) << 32) |
                                       static_cast<std::uint64_t>(index[axis]));
  }
  return seed;
}

std::size_t SweepSpec::add_axis(std::string axis_name, std::vector<std::string> values) {
  if (values.empty()) throw std::invalid_argument("sweep axis needs at least one value");
  axes.push_back(SweepAxis{std::move(axis_name), std::move(values)});
  return axes.size() - 1;
}

std::size_t SweepSpec::add_repeat_axis(std::size_t repeats) {
  std::vector<std::string> values;
  values.reserve(repeats);
  for (std::size_t r = 0; r < repeats; ++r) values.push_back(std::to_string(r));
  return add_axis("repeat", std::move(values));
}

std::size_t SweepSpec::add_policy_axis(std::vector<std::string> names) {
  return add_axis("policy", std::move(names));
}

std::size_t SweepSpec::axis(const std::string& axis_name) const {
  for (std::size_t i = 0; i < axes.size(); ++i) {
    if (axes[i].name == axis_name) return i;
  }
  throw std::out_of_range("no sweep axis named '" + axis_name + "'");
}

std::size_t SweepSpec::cells() const noexcept {
  if (axes.empty()) return 0;
  std::size_t n = 1;
  for (const auto& axis : axes) n *= axis.size();
  return n;
}

SweepCell SweepSpec::cell(std::size_t linear) const {
  if (linear >= cells()) throw std::out_of_range("sweep cell index out of range");
  SweepCell cell;
  cell.linear = linear;
  cell.index.resize(axes.size());
  // Row-major: the first axis varies slowest, the last fastest.
  for (std::size_t i = axes.size(); i-- > 0;) {
    cell.index[i] = linear % axes[i].size();
    linear /= axes[i].size();
  }
  cell.seed = derive_cell_seed(base_seed, cell.index);
  return cell;
}

const std::string& SweepSpec::label(const SweepCell& cell, std::size_t axis) const {
  return axes.at(axis).values.at(cell.at(axis));
}

}  // namespace hyperdrive::core
