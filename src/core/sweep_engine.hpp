// SweepEngine — executes a SweepSpec: every cell of the grid is an
// independent experiment (own trace, own policy, own predictor), so cells
// fan out on util::ThreadPool and the table is assembled slot-by-slot in
// cell-enumeration order. Aggregation is therefore order-independent: the
// table (and its CSV) is byte-identical whether the sweep ran on 1 thread
// or 8 (the determinism contract of DESIGN.md §8, enforced by
// tests/core/sweep_engine_test.cpp under TSan in CI).
#pragma once

#include <cstddef>

#include "core/sweep_spec.hpp"
#include "core/sweep_table.hpp"

namespace hyperdrive::core {

struct SweepEngineOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency() (>= 1).
  std::size_t threads = 0;
};

class SweepEngine {
 public:
  explicit SweepEngine(SweepEngineOptions options = {});

  /// Run every cell of `spec` and collect the table. Throws
  /// std::invalid_argument on an incomplete spec (no axes, missing trace or
  /// policy callback); exceptions thrown by a cell propagate (first wins).
  [[nodiscard]] SweepTable run(const SweepSpec& spec) const;

  [[nodiscard]] std::size_t threads() const noexcept { return threads_; }

 private:
  std::size_t threads_;
};

/// Convenience: run `spec` on `threads` workers (0 = hardware concurrency).
[[nodiscard]] SweepTable run_sweep(const SweepSpec& spec, std::size_t threads = 0);

}  // namespace hyperdrive::core
