#include "core/study/study_manager.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "cluster/overhead_model.hpp"
#include "core/experiment_runner.hpp"
#include "core/policy_registry.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "workload/cifar_model.hpp"
#include "workload/lunar_model.hpp"
#include "workload/ptb_lstm_model.hpp"

namespace hyperdrive::core {

namespace {

/// Fixed-format double for the byte-deterministic multi-study CSV.
std::string fmt(double x) {
  if (std::isinf(x)) return x > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", x);
  return buf;
}

std::string fmt(std::uint64_t x) { return std::to_string(x); }

std::shared_ptr<workload::WorkloadModel> make_study_workload(const std::string& name) {
  if (name == "cifar10") return std::make_shared<workload::CifarWorkloadModel>();
  if (name == "lunarlander") return std::make_shared<workload::LunarWorkloadModel>();
  if (name == "ptb_lstm") return std::make_shared<workload::PtbLstmWorkloadModel>();
  throw std::invalid_argument("unknown study workload '" + name + "'");
}

std::unique_ptr<HyperparameterGenerator> make_study_generator(
    const std::string& name, const workload::HyperparameterSpace& space,
    std::uint64_t seed) {
  if (name == "random") return make_random_generator(space, seed);
  if (name == "grid") return make_grid_generator(space, 3);
  if (name == "adaptive") return make_adaptive_generator(space, seed);
  if (name == "tpe") return make_tpe_generator(space, seed);
  throw std::invalid_argument("unknown study generator '" + name + "'");
}

std::function<std::unique_ptr<SchedulingPolicy>()> make_study_policy_factory(
    const StudySpec& spec) {
  if (!PolicyRegistry::instance().has(spec.policy)) {
    throw std::invalid_argument("unknown study policy '" + spec.policy + "'");
  }
  // Malformed or unaccepted key=value options also fail at admission, not at
  // start(): parse and construct one throwaway instance now.
  const auto build = [spec]() -> std::unique_ptr<SchedulingPolicy> {
    PolicyContext ctx;
    ctx.seed = spec.seed;
    ctx.tmax = spec.tmax;
    return make_registry_policy(spec.policy, PolicyParams::parse(spec.policy_params),
                                ctx);
  };
  (void)build();
  return build;
}

void add_recovery(RecoveryStats& a, const RecoveryStats& b) {
  a.node_crashes += b.node_crashes;
  a.node_restarts += b.node_restarts;
  a.jobs_requeued += b.jobs_requeued;
  a.epochs_lost += b.epochs_lost;
  a.snapshots_lost += b.snapshots_lost;
  a.snapshot_restore_failures += b.snapshot_restore_failures;
  a.stat_reports_lost += b.stat_reports_lost;
  a.duplicate_stats_ignored += b.duplicate_stats_ignored;
  a.jobs_migrated += b.jobs_migrated;
  a.nodes_quarantined += b.nodes_quarantined;
  a.nodes_reinstated += b.nodes_reinstated;
  a.hung_jobs_detected += b.hung_jobs_detected;
  a.wrong_kills += b.wrong_kills;
}

}  // namespace

std::string_view to_string(ArbitrationMode mode) noexcept {
  switch (mode) {
    case ArbitrationMode::StaticPartition: return "static";
    case ArbitrationMode::FairShare: return "fair";
    case ArbitrationMode::DeadlineAware: return "deadline";
    case ArbitrationMode::Cost: return "cost";
  }
  return "?";
}

ArbitrationMode arbitration_from_string(const std::string& name) {
  if (name == "static") return ArbitrationMode::StaticPartition;
  if (name == "fair") return ArbitrationMode::FairShare;
  if (name == "deadline") return ArbitrationMode::DeadlineAware;
  if (name == "cost") return ArbitrationMode::Cost;
  throw std::invalid_argument("unknown arbitration mode '" + name +
                              "' (want static|fair|deadline|cost)");
}

struct StudyManager::Tenant {
  StudySpec spec;
  workload::Trace trace;
  /// Workload model kept alive for the PBT explore hook (null when the study
  /// was admitted with an explicit trace — cloning is then unsupported).
  std::shared_ptr<const workload::WorkloadModel> model;
  std::function<std::unique_ptr<SchedulingPolicy>()> policy_factory;
  std::unique_ptr<SchedulingPolicy> policy;
  std::unique_ptr<cluster::HyperDriveCluster> cluster;
  bool cancelled = false;
  /// DeadlineAware: urgency latches on (and stays on until the study
  /// finishes or its deadline passes) — releasing the boost as soon as the
  /// estimate dips under the deadline makes the lease thrash, and every
  /// oscillation costs suspend/migrate overhead.
  bool urgent_latched = false;

  [[nodiscard]] bool finished() const {
    return cluster != nullptr && cluster->finished();
  }
};

StudyManager::StudyManager(StudyManagerOptions options)
    : options_(options),
      catalog_(options_.catalog.empty()
                   ? cluster::NodeCatalog::uniform(options_.machines)
                   : options_.catalog),
      predictor_(make_default_predictor(util::derive_seed(options.seed, 0x57D1))) {
  // A non-empty catalog is authoritative for the pool size (mirrors
  // ClusterOptions::catalog).
  options_.machines = catalog_.total_nodes();
}

StudyManager::~StudyManager() = default;

void StudyManager::add_study(const StudySpec& spec) {
  const auto model = make_study_workload(spec.workload);
  auto generator = make_study_generator(spec.generator, model->space(), spec.seed);
  auto trace = trace_from_generator(*model, *generator, spec.configs, spec.seed,
                                    /*report_feedback=*/true);
  if (spec.has_target_override()) trace.target_performance = spec.target;
  add_study(spec, std::move(trace), make_study_policy_factory(spec));
  tenants_.back()->model = model;
}

void StudyManager::add_study(
    StudySpec spec, workload::Trace trace,
    std::function<std::unique_ptr<SchedulingPolicy>()> policy_factory) {
  if (ran_) throw std::logic_error("StudyManager::add_study after run()");
  if (spec.name.empty()) throw std::invalid_argument("study has no name");
  if (!policy_factory) throw std::invalid_argument("study policy factory is empty");
  for (const auto& t : tenants_) {
    if (t->spec.name == spec.name) {
      throw std::invalid_argument("duplicate study name '" + spec.name + "'");
    }
  }
  auto tenant = std::make_unique<Tenant>();
  tenant->spec = std::move(spec);
  tenant->trace = std::move(trace);
  tenant->policy_factory = std::move(policy_factory);
  tenants_.push_back(std::move(tenant));
}

std::size_t StudyManager::study_count() const noexcept { return tenants_.size(); }

std::vector<std::size_t> StudyManager::fair_targets() const {
  std::vector<std::size_t> targets(tenants_.size(), 0);
  std::vector<std::size_t> active;
  double total_weight = 0.0;
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    if (tenants_[i]->finished()) continue;
    active.push_back(i);
    total_weight += tenants_[i]->spec.weight;
  }
  if (active.empty()) return targets;

  // Every unfinished study keeps at least one slot (no tenant is starved
  // into silence); the rest splits by weight with largest-remainder rounding
  // (deterministic: stable sort keeps index order on remainder ties).
  std::size_t pool = options_.machines - active.size();
  for (const std::size_t i : active) targets[i] = 1;
  std::vector<std::pair<double, std::size_t>> remainders;
  std::size_t assigned = 0;
  for (const std::size_t i : active) {
    const double ideal =
        static_cast<double>(pool) * (tenants_[i]->spec.weight / total_weight);
    const auto base = static_cast<std::size_t>(ideal);
    targets[i] += base;
    assigned += base;
    remainders.emplace_back(ideal - static_cast<double>(base), i);
  }
  std::stable_sort(remainders.begin(), remainders.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t k = 0; k < pool - assigned; ++k) {
    ++targets[remainders[k].second];
  }
  return targets;
}

util::SimTime StudyManager::estimate_time_to_target(const Tenant& tenant) const {
  const auto& c = *tenant.cluster;
  const double target = c.target_performance();
  const std::size_t max_epochs = c.max_epochs();
  const std::size_t boundary = std::max<std::size_t>(1, c.evaluation_boundary());

  // Rank this study's jobs by their latest observed performance and predict
  // only the few front-runners — the study finishes when its best job does.
  struct Candidate {
    JobId id = 0;
    double last = 0.0;
  };
  std::vector<Candidate> candidates;
  for (const JobId id : c.active_jobs()) {
    const auto& history = c.perf_history(id);
    if (history.size() < 4 || history.size() >= max_epochs) continue;
    candidates.push_back({id, history.back()});
  }
  std::sort(candidates.begin(), candidates.end(), [](const auto& a, const auto& b) {
    if (a.last != b.last) return a.last > b.last;
    return a.id < b.id;
  });
  if (candidates.size() > 5) candidates.resize(5);

  auto best = util::SimTime::infinity();
  for (const Candidate& cand : candidates) {
    const auto& history = c.perf_history(cand.id);
    const util::SimTime epoch_duration = c.normalized_epoch_duration(cand.id);
    if (epoch_duration <= util::SimTime::zero()) continue;
    const std::size_t done = history.size();
    std::vector<double> future;
    for (std::size_t e = (done / boundary + 1) * boundary; e < max_epochs; e += boundary) {
      future.push_back(static_cast<double>(e));
    }
    future.push_back(static_cast<double>(max_epochs));
    const auto prediction =
        predictor_->predict(history, future, static_cast<double>(max_epochs));
    if (prediction.empty()) continue;
    for (std::size_t idx = 0; idx < prediction.epochs().size(); ++idx) {
      if (prediction.prob_reached_by(idx, target) < options_.deadline_confidence) continue;
      const double remaining_epochs = prediction.epochs()[idx] - static_cast<double>(done);
      const auto t = util::SimTime::seconds(remaining_epochs * epoch_duration.to_seconds());
      if (t < best) best = t;
      break;
    }
  }
  return best;
}

void StudyManager::apply_deadline_boost(std::vector<std::size_t>& targets) {
  struct Info {
    std::size_t index = 0;
    bool urgent = false;
    double slack_s = 0.0;
    /// best-so-far performance over the study's own target — how close the
    /// study is to finishing. Donor ordering uses this rather than the
    /// predictor estimate because progress ratios are comparable across
    /// studies while curve-time estimates are not (a job-time estimate says
    /// nothing about how often the study's policy actually runs that job).
    double progress = 0.0;
  };
  const auto now = sim_->now();
  std::vector<Info> infos;
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    Tenant& t = *tenants_[i];
    if (t.finished()) continue;
    Info info{i, false, std::numeric_limits<double>::infinity(), 0.0};
    const double target = t.cluster->target_performance();
    if (target > 0.0) info.progress = t.cluster->best_performance() / target;
    if (t.spec.has_deadline() && now < t.spec.deadline) {
      const double deadline_s = (t.spec.deadline - now).to_seconds();
      const auto estimate = estimate_time_to_target(t);
      // No predictable job yet: assume the deadline is still feasible (the
      // fair share keeps the study warm until its curves say otherwise).
      info.slack_s = estimate == util::SimTime::infinity()
                         ? deadline_s
                         : deadline_s - estimate.to_seconds();
      if (info.slack_s < 0.0) t.urgent_latched = true;
      info.urgent = t.urgent_latched;
    } else {
      // No deadline, or the deadline has already passed: plain fair share
      // (boosting cannot rescue a missed deadline).
      t.urgent_latched = false;
    }
    infos.push_back(info);
  }

  // Serve the most-behind study first (ties: admission order).
  std::vector<Info*> urgent;
  for (Info& info : infos) {
    if (info.urgent) urgent.push_back(&info);
  }
  std::stable_sort(urgent.begin(), urgent.end(),
                   [](const Info* a, const Info* b) { return a->slack_s < b->slack_s; });
  for (Info* u : urgent) {
    for (std::size_t k = 0; k < options_.deadline_boost_slots; ++k) {
      // Donate from the study closest to its own target — its slots flow
      // back to the pool soonest anyway, so slowing it barely moves the
      // run's makespan. Ties go to the most slack, then to the biggest
      // current target so the donation spreads over equivalent donors
      // instead of draining one of them.
      Info* donor = nullptr;
      for (Info& d : infos) {
        if (d.urgent || targets[d.index] <= 1) continue;
        const bool better =
            donor == nullptr || d.progress > donor->progress ||
            (d.progress == donor->progress &&
             (d.slack_s > donor->slack_s ||
              (d.slack_s == donor->slack_s &&
               targets[d.index] > targets[donor->index])));
        if (better) donor = &d;
      }
      if (donor == nullptr) break;
      --targets[donor->index];
      ++targets[u->index];
    }
  }
}

void StudyManager::apply_cost_caps(std::vector<std::size_t>& targets) {
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    Tenant& t = *tenants_[i];
    if (t.cluster == nullptr || t.finished()) continue;
    // Leasing more slots than the study has runnable jobs only pads the
    // bill; the fair floor of one slot keeps even a broke tenant alive.
    std::size_t cap = std::max<std::size_t>(1, t.cluster->active_jobs().size());
    if (t.cluster->current_spend_usd() >= t.spec.budget_usd) cap = 1;
    targets[i] = std::min(targets[i], cap);
  }
}

std::vector<cluster::CapacityView> StudyManager::split_by_class(
    const std::vector<std::size_t>& totals) const {
  std::vector<cluster::CapacityView> views(tenants_.size());
  std::vector<std::size_t> remaining(catalog_.classes(), 0);
  for (cluster::NodeClassId c = 0; c < catalog_.classes(); ++c) {
    remaining[c] = catalog_.at(c).count;
  }
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    cluster::CapacityView& view = views[i];
    // Full catalog width up front so views compare class-for-class against
    // tenant lease targets.
    view.set(catalog_.classes() - 1, 0);
    std::size_t need = totals[i];
    const auto take = [&](cluster::NodeClassId c) {
      const std::size_t got = std::min(need, remaining[c]);
      view.set(c, view.of(c) + got);
      remaining[c] -= got;
      need -= got;
    };
    if (!tenants_[i]->spec.node_class.empty()) {
      if (const auto preferred = catalog_.find(tenants_[i]->spec.node_class)) {
        take(*preferred);
      }
    }
    for (cluster::NodeClassId c = 0; need > 0 && c < catalog_.classes(); ++c) take(c);
  }
  return views;
}

void StudyManager::reconcile_autoscaler(const std::vector<cluster::CapacityView>& views) {
  if (autoscaler_ == nullptr) return;
  cluster::CapacityView demand;
  for (cluster::NodeClassId c = 0; c < catalog_.classes(); ++c) {
    std::size_t want = 0;
    for (const cluster::CapacityView& v : views) want += v.of(c);
    demand.set(c, want);
  }
  for (const cluster::ScaleAction& action : autoscaler_->reconcile(demand, sim_->now())) {
    const bool acquire = action.kind == cluster::ScaleAction::Kind::Acquire;
    obs::TraceEvent event(acquire ? obs::EventKind::NodeAcquired
                                  : obs::EventKind::NodeReleased);
    event.time = sim_->now();
    event.detail = "class=" + catalog_.at(action.node_class).name +
                   " count=" + std::to_string(action.count);
    options_.obs.emit(std::move(event));
    if (options_.obs.metrics != nullptr) {
      options_.obs.metrics
          ->counter(acquire ? "elastic.nodes_acquired" : "elastic.nodes_released")
          .add(action.count);
    }
  }
  if (options_.obs.metrics != nullptr) {
    options_.obs.metrics->gauge("elastic.spend_usd").set(autoscaler_->spend_usd());
  }
}

void StudyManager::rebalance(bool count_tick) {
  auto targets = fair_targets();
  if (options_.arbitration == ArbitrationMode::DeadlineAware) {
    apply_deadline_boost(targets);
    // Freeze the split between topology changes: while the same studies are
    // finished/urgent as at the last recompute, reuse that split verbatim.
    // The progress signal that orders donors creeps every tick, and letting
    // it re-pick the donor churns the leases (each flip costs a
    // suspend/migrate round trip).
    std::vector<char> key(tenants_.size(), 0);
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
      const Tenant& t = *tenants_[i];
      key[i] = t.finished() ? 1 : (t.urgent_latched ? 2 : 0);
    }
    if (key == boost_key_ && !boost_targets_.empty()) {
      targets = boost_targets_;
    } else {
      boost_key_ = std::move(key);
      boost_targets_ = targets;
    }
  } else if (options_.arbitration == ArbitrationMode::Cost) {
    // Deadline urgency still wins slots; the caps then shave everything the
    // studies cannot actually run, and the autoscaler releases the surplus.
    // No freeze cache: the runnable-job counts the caps read move every tick.
    apply_deadline_boost(targets);
    apply_cost_caps(targets);
  }
  const auto views = split_by_class(targets);
  bool changed = false;
  // Shrink first so reclaimed slots are already draining toward the pool
  // when the growing tenants' targets rise; pump() hands them over as they
  // actually park.
  for (std::size_t pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
      Tenant& t = *tenants_[i];
      if (t.cluster == nullptr) continue;
      const bool shrink = views[i].total() < t.cluster->lease_target().total();
      if ((pass == 0) != shrink) continue;
      if (views[i] != t.cluster->lease_target()) changed = true;
      t.cluster->set_lease_target(views[i]);
    }
  }
  if (changed && count_tick) ++rebalances_;
  reconcile_autoscaler(views);
  pump();
}

void StudyManager::pump() {
  for (cluster::NodeClassId c = 0; c < catalog_.classes(); ++c) {
    std::size_t held = 0;
    for (const auto& t : tenants_) {
      if (t->cluster != nullptr) held += t->cluster->held_capacity().of(c);
    }
    const std::size_t acquired =
        autoscaler_ != nullptr ? autoscaler_->acquired().of(c) : catalog_.at(c).count;
    std::size_t free = acquired > held ? acquired - held : 0;
    bool progress = true;
    while (free > 0 && progress) {
      progress = false;
      for (auto& t : tenants_) {
        if (free == 0) break;
        if (t->cluster == nullptr || t->finished()) continue;
        if (t->cluster->grant_one(c)) {
          --free;
          progress = true;
        }
      }
    }
  }
}

void StudyManager::on_study_finished(std::size_t index) {
  (void)index;
  if (options_.arbitration != ArbitrationMode::StaticPartition) {
    // Redistribute the drained capacity among the survivors right away —
    // exactly the handoff StaticPartition forgoes.
    rebalance(false);
  }
  if (all_finished()) {
    if (arbitration_armed_) {
      sim_->cancel(arbitration_event_);
      arbitration_armed_ = false;
    }
    if (checkpoint_armed_) {
      sim_->cancel(checkpoint_event_);
      checkpoint_armed_ = false;
    }
    sim_->stop();
  }
}

bool StudyManager::all_finished() const {
  return std::all_of(tenants_.begin(), tenants_.end(),
                     [](const auto& t) { return t->finished(); });
}

MultiStudyResult StudyManager::run() {
  if (ran_) throw std::logic_error("StudyManager::run is single-use");
  if (tenants_.empty()) throw std::invalid_argument("no studies admitted");
  if (options_.machines < tenants_.size()) {
    throw std::invalid_argument("machine pool smaller than the number of studies");
  }
  ran_ = true;

  sim_ = std::make_unique<sim::Simulation>();
  // The whole fleet is acquired up front (the admission split hands it out);
  // cost mode's arbitration ticks release what the studies cannot use.
  cluster::Autoscaler::Options scaler_options;
  scaler_options.catalog = catalog_;
  scaler_options.budget_usd = options_.budget_usd;
  autoscaler_ =
      std::make_unique<cluster::Autoscaler>(scaler_options, catalog_.full());
  const auto views = split_by_class(fair_targets());
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    Tenant& t = *tenants_[i];
    cluster::ClusterOptions co;
    co.machines = options_.machines;
    co.catalog = catalog_;
    co.initial_lease = views[i];
    co.max_experiment_time = t.spec.tmax;
    co.stop_on_target = true;
    co.seed = t.spec.seed;
    co.epoch_jitter_sigma = options_.epoch_jitter_sigma;
    co.overheads = t.spec.workload == "lunarlander"
                       ? cluster::lunar_criu_overhead_model()
                       : cluster::cifar_overhead_model();
    co.health = options_.health;
    // Tenants share the node-level fault plan; coordinator crashes in it are
    // the manager's business (scheduled below) and are ignored by clusters.
    co.fault_plan = options_.fault_plan;
    // A lone study writes unprefixed lines — byte-identical to the
    // single-tenant cluster's own event log.
    co.study_label = tenants_.size() > 1 ? t.spec.name : "";
    // One shared sink/registry; the cluster constructor stamps the per-study
    // label onto its scope so every event stays attributable.
    co.obs = options_.obs;
    // Weight-migration hook (inert unless the study's policy calls
    // clone_job; only PBT does).
    if (t.model) co.explore = make_model_explore(t.model);
    t.cluster = std::make_unique<cluster::HyperDriveCluster>(t.trace, co, *sim_);
    if (options_.record_event_log) {
      t.cluster->log_sink = [this](std::string line) {
        event_log_.push_back(std::move(line));
      };
    }
    t.cluster->on_slot_released = [this] { pump(); };
    t.cluster->on_finished = [this, i] { on_study_finished(i); };
  }
  for (auto& t : tenants_) {
    t->policy = t->policy_factory();
    if (!t->policy) throw std::runtime_error("study policy factory returned null");
    t->cluster->start(*t->policy);
  }
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    const Tenant& t = *tenants_[i];
    if (t.spec.cancel_at == util::SimTime::infinity()) continue;
    sim_->schedule_at(
        t.spec.cancel_at,
        [this, i] {
          Tenant& tt = *tenants_[i];
          if (tt.finished()) return;
          tt.cancelled = true;
          tt.cluster->cancel();
        },
        /*priority=*/10);
  }
  // Cost mode ticks even for a lone study: the caps that release idle
  // capacity are worth running with nobody to arbitrate against.
  if ((tenants_.size() > 1 || options_.arbitration == ArbitrationMode::Cost) &&
      options_.arbitration != ArbitrationMode::StaticPartition) {
    const std::function<void()> tick = [this, &tick] {
      arbitration_armed_ = false;
      if (all_finished()) return;
      rebalance(/*count_tick=*/true);
      arbitration_event_ = sim_->schedule_after(options_.arbitration_interval, tick,
                                                /*priority=*/20);
      arbitration_armed_ = true;
    };
    arbitration_event_ = sim_->schedule_after(options_.arbitration_interval, tick,
                                              /*priority=*/20);
    arbitration_armed_ = true;
  }

  // Periodic checkpoint capture (priority 30: after cancel-at and the
  // arbitration tick of the same instant, so a checkpoint always sees the
  // tick's final state). The CheckpointWritten event rides the deterministic
  // timeline: it fires at the same tick in every run with the same cadence,
  // interrupted or not, so resumed traces stay byte-identical.
  const std::function<void()> checkpoint_tick = [this, &checkpoint_tick] {
    checkpoint_armed_ = false;
    if (all_finished()) return;
    ManagerCheckpoint cp;
    cp.sequence = ++checkpoint_seq_;
    cp.tick = sim_->now();
    cp.rebalances = rebalances_;
    cp.state = capture();
    obs::TraceEvent event(obs::EventKind::CheckpointWritten);
    event.time = sim_->now();
    event.detail = "seq=" + std::to_string(cp.sequence) +
                   " bytes=" + std::to_string(cp.state.size());
    options_.obs.emit(std::move(event));
    if (options_.on_checkpoint && !options_.on_checkpoint(std::move(cp))) {
      exit_ = ManagerExit::Halted;
      sim_->stop();
      return;
    }
    checkpoint_event_ = sim_->schedule_after(options_.checkpoint_every, checkpoint_tick,
                                             /*priority=*/30);
    checkpoint_armed_ = true;
  };
  if (options_.checkpoint_every > util::SimTime::zero()) {
    checkpoint_event_ = sim_->schedule_after(options_.checkpoint_every, checkpoint_tick,
                                             /*priority=*/30);
    checkpoint_armed_ = true;
  }

  // Coordinator crashes (priority 40: a same-tick checkpoint lands first, so
  // "crash right at the checkpoint" still has that checkpoint to resume
  // from). Crashes already taken by earlier incarnations are a sorted prefix;
  // the crash_floor guard additionally drops anything a tampered checkpoint
  // would place in the replayed past.
  if (options_.fault_plan.any_coordinator()) {
    auto crashes = options_.fault_plan.coordinator_crashes;
    std::stable_sort(crashes.begin(), crashes.end(),
                     [](const auto& a, const auto& b) { return a.at < b.at; });
    for (std::size_t i = options_.coordinator_crashes_to_skip; i < crashes.size(); ++i) {
      if (crashes[i].at < options_.crash_floor) continue;
      sim_->schedule_at(
          crashes[i].at,
          [this] {
            if (all_finished()) return;
            exit_ = ManagerExit::Crashed;
            sim_->stop();
          },
          /*priority=*/40);
    }
  }

  sim_->run_until(options_.max_time);

  if (exit_ != ManagerExit::Completed) {
    // Crashed (CoordinatorCrashEvent) or halted (checkpoint sink veto): this
    // incarnation is dead. Do not collect the tenants — collect() finalizes
    // results and publishes cluster metrics into the (shared) registry, and a
    // doomed incarnation must leave no trace there. The recovery runtime
    // discards this result and replays in a fresh manager.
    MultiStudyResult dead;
    dead.rebalances = rebalances_;
    return dead;
  }

  MultiStudyResult result;
  result.rebalances = rebalances_;
  result.event_log = std::move(event_log_);
  for (auto& t : tenants_) {
    StudyOutcome outcome;
    outcome.spec = t->spec;
    outcome.result = t->cluster->collect();
    outcome.cancelled = t->cancelled;
    outcome.deadline_met = t->spec.has_deadline() && outcome.result.reached_target &&
                           outcome.result.time_to_target <= t->spec.deadline;
    if (outcome.result.total_time > result.total_time) {
      result.total_time = outcome.result.total_time;
    }
    result.studies.push_back(std::move(outcome));
  }
  // Close the bill at the makespan: capacity still acquired when the last
  // study finishes is billed to that instant.
  autoscaler_->advance(result.total_time);
  result.spend_usd = autoscaler_->spend_usd();
  if (options_.obs.metrics != nullptr) {
    options_.obs.metrics->gauge("elastic.spend_usd").set(result.spend_usd);
  }
  return result;
}

std::vector<std::uint8_t> StudyManager::capture() const {
  util::ByteWriter w;
  w.f64(sim_->now().to_seconds());
  w.u64(rebalances_);
  w.u64(checkpoint_seq_);
  w.u8(arbitration_armed_ ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(boost_key_.size()));
  for (const char k : boost_key_) w.u8(static_cast<std::uint8_t>(k));
  w.u32(static_cast<std::uint32_t>(boost_targets_.size()));
  for (const std::size_t t : boost_targets_) w.u64(t);
  // Merged event-log digest (order-sensitive): any divergence in the golden
  // trace up to this tick fails the resume verification.
  w.u64(event_log_.size());
  std::uint64_t digest = 0;
  for (const std::string& line : event_log_) {
    digest = digest * 1099511628211ULL +
             cluster::crc32(reinterpret_cast<const std::uint8_t*>(line.data()), line.size());
  }
  w.u64(digest);
  w.u32(static_cast<std::uint32_t>(tenants_.size()));
  for (const auto& t : tenants_) {
    w.str(t->spec.name);
    w.u8(static_cast<std::uint8_t>((t->cancelled ? 1 : 0) | (t->urgent_latched ? 2 : 0)));
    t->cluster->encode_state(w);
  }
  // Elastic capacity state (DESIGN.md §15): a resumed replay must re-acquire
  // and re-bill identically.
  if (autoscaler_ != nullptr) {
    const cluster::CapacityView& acquired = autoscaler_->acquired();
    w.u32(static_cast<std::uint32_t>(acquired.classes()));
    for (cluster::NodeClassId c = 0; c < acquired.classes(); ++c) {
      w.u64(acquired.of(c));
    }
    w.f64(autoscaler_->spend_usd());
  }
  return std::move(w.bytes());
}

ManagerCheckpoint StudyManager::capture_checkpoint() {
  if (sim_ == nullptr) throw std::logic_error("capture_checkpoint before run()");
  ManagerCheckpoint cp;
  cp.sequence = ++checkpoint_seq_;
  cp.tick = sim_->now();
  cp.rebalances = rebalances_;
  cp.state = capture();
  return cp;
}

ExperimentResult MultiStudyResult::aggregate() const {
  ExperimentResult agg;
  agg.policy_name = "multi-study";
  agg.total_time = total_time;
  bool all_reached = !studies.empty();
  auto makespan = util::SimTime::zero();
  for (const StudyOutcome& s : studies) {
    const ExperimentResult& r = s.result;
    if (r.reached_target) {
      // Makespan over studies: the last study to hit its target.
      makespan = std::max(makespan, r.time_to_target);
    } else {
      all_reached = false;
    }
    agg.best_perf = std::max(agg.best_perf, r.best_perf);
    agg.total_machine_time += r.total_machine_time;
    agg.suspends += r.suspends;
    agg.terminations += r.terminations;
    agg.jobs_started += r.jobs_started;
    agg.retransmissions += r.retransmissions;
    agg.slot_seconds += r.slot_seconds;
    agg.lease_grants += r.lease_grants;
    agg.lease_reclaims += r.lease_reclaims;
    agg.spend_usd += r.spend_usd;
    agg.job_stats.insert(agg.job_stats.end(), r.job_stats.begin(), r.job_stats.end());
    agg.suspend_samples.insert(agg.suspend_samples.end(), r.suspend_samples.begin(),
                               r.suspend_samples.end());
    add_recovery(agg.recovery, r.recovery);

    StudyRow row;
    row.study = s.spec.name;
    row.reached_target = r.reached_target;
    row.time_to_target = r.time_to_target;
    row.slot_seconds = r.slot_seconds;
    row.had_deadline = s.spec.has_deadline();
    row.deadline = s.spec.deadline;
    row.deadline_met = s.deadline_met;
    row.cancelled = s.cancelled;
    row.lease_grants = r.lease_grants;
    row.lease_reclaims = r.lease_reclaims;
    row.spend_usd = r.spend_usd;
    agg.study_rows.push_back(std::move(row));
  }
  agg.reached_target = all_reached;
  agg.time_to_target = all_reached ? makespan : util::SimTime::infinity();
  return agg;
}

void MultiStudyResult::save_csv(std::ostream& out) const {
  const std::vector<std::string> header = {
      "study",         "workload",       "policy",        "generator",
      "weight",        "seed",           "reached_target", "time_to_target_min",
      "total_time_min", "best_perf",     "deadline_min",  "deadline_met",
      "cancelled",     "slot_hours",     "lease_grants",  "lease_reclaims",
      "jobs_started",  "suspends",       "terminations",  "jobs_migrated",
      "spend_usd"};
  util::CsvWriter writer(out, header);
  for (const StudyOutcome& s : studies) {
    const ExperimentResult& r = s.result;
    std::vector<std::string> fields;
    fields.reserve(header.size());
    fields.push_back(s.spec.name);
    fields.push_back(s.spec.workload);
    fields.push_back(s.spec.policy);
    fields.push_back(s.spec.generator);
    fields.push_back(fmt(s.spec.weight));
    fields.push_back(fmt(static_cast<std::uint64_t>(s.spec.seed)));
    fields.push_back(r.reached_target ? "1" : "0");
    fields.push_back(fmt(r.time_to_target.to_minutes()));
    fields.push_back(fmt(r.total_time.to_minutes()));
    fields.push_back(fmt(r.best_perf));
    fields.push_back(fmt(s.spec.deadline.to_minutes()));
    fields.push_back(s.deadline_met ? "1" : "0");
    fields.push_back(s.cancelled ? "1" : "0");
    fields.push_back(fmt(r.slot_seconds.to_hours()));
    fields.push_back(fmt(static_cast<std::uint64_t>(r.lease_grants)));
    fields.push_back(fmt(static_cast<std::uint64_t>(r.lease_reclaims)));
    fields.push_back(fmt(static_cast<std::uint64_t>(r.jobs_started)));
    fields.push_back(fmt(static_cast<std::uint64_t>(r.suspends)));
    fields.push_back(fmt(static_cast<std::uint64_t>(r.terminations)));
    fields.push_back(fmt(static_cast<std::uint64_t>(r.recovery.jobs_migrated)));
    fields.push_back(fmt(r.spend_usd));
    writer.write_row(fields);
  }
}

MultiStudyResult run_multi_study(const std::vector<StudySpec>& specs,
                                 const StudyManagerOptions& options) {
  StudyManager manager(options);
  for (const StudySpec& spec : specs) manager.add_study(spec);
  return manager.run();
}

}  // namespace hyperdrive::core
