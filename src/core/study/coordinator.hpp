// Crash-recoverable coordinator runtime (DESIGN.md §12).
//
// run_recoverable_multi_study wraps StudyManager in a recovery loop that
// survives coordinator death — both the simulated kind (CoordinatorCrashEvent
// in the fault plan kills the manager mid-run) and the real kind (the process
// is SIGKILLed and a fresh process resumes with `--resume-from DIR`).
//
// The simulation's event queue holds closures and cannot be serialized, so
// resume is *deterministic replay*: a fresh StudyManager is rebuilt from the
// checkpoint's recorded inputs (spec texts, fault-plan text, options image)
// and re-run from t=0. When the replay's periodic checkpoint reaches the
// resumed sequence number, its re-captured state is compared byte-for-byte
// against the durable frame: a match proves the replay reconverged (the run
// then simply continues live past the crash point); a mismatch poisons that
// frame and the recovery ladder falls back to the next older checkpoint, and
// ultimately to a cold restart from the recorded study specs.
//
// Because the final surviving incarnation replays the whole timeline, its
// event log, MultiStudyResult, CSV and trace artifacts are byte-identical to
// an uninterrupted run — the headline invariant the Recovery test suites and
// the CI crash-resume smoke job hold this file to.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/study/checkpoint.hpp"
#include "core/study/study_manager.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"

namespace hyperdrive::core {

struct CheckpointOptions {
  /// Durable checkpoint directory; empty = in-memory only (in-sim crashes
  /// still recover, but nothing survives the process).
  std::string dir;
  /// Periodic capture cadence; zero disables periodic checkpoints (a final
  /// on-demand frame is still written when `dir` is set).
  util::SimTime every = util::SimTime::zero();
  /// Resume from the newest valid frame in `dir` instead of starting fresh.
  bool resume = false;
  /// Testing hook (CI crash-resume smoke): raise(SIGKILL) immediately after
  /// the Nth durable checkpoint write in this process. 0 = never.
  std::size_t kill_after_checkpoints = 0;
  /// Receives the recovery journey of THIS process (CheckpointLoaded,
  /// CheckpointFallback, CoordinatorCrash, CoordinatorResume, ColdRestart).
  /// Deliberately separate from the run's obs sink: recovery events describe
  /// one concrete incarnation history and must never touch the golden trace.
  obs::EventSink* recovery_sink = nullptr;
};

/// What recovery did, process-scoped (unlike cluster::RecoveryStats, which
/// counts simulated node faults inside the run).
struct CoordinatorRecoveryStats {
  std::uint64_t coordinator_crashes = 0;    ///< in-sim CoordinatorCrashEvents taken
  std::uint64_t checkpoints_written = 0;    ///< frames captured (incl. rewrites)
  std::uint64_t checkpoint_bytes_total = 0;
  std::uint64_t checkpoint_bytes_last = 0;
  std::uint64_t checkpoint_loads = 0;       ///< frames adopted as resume targets
  std::uint64_t checkpoint_fallbacks = 0;   ///< frames rejected (decode / divergence)
  std::uint64_t cold_restarts = 0;          ///< recoveries with no usable frame
  std::uint64_t replay_verifications = 0;   ///< replays proven byte-identical
};

struct RecoverableRunResult {
  MultiStudyResult result;
  CoordinatorRecoveryStats recovery;
};

/// Admission hook: called once per spec per incarnation, in spec order, on a
/// fresh StudyManager. The default admits by name resolution
/// (StudyManager::add_study(spec)); tests that run custom traces / policy
/// factories substitute their own admission here, keyed on spec.name.
using AdmitStudyFn = std::function<void(StudyManager&, const StudySpec&)>;

/// Run `specs` under `options` with coordinator crash-recovery. When
/// `checkpoint.resume` is set, `specs` may be empty — the spec texts recorded
/// in the newest valid checkpoint (its `--study` inputs) are replayed
/// instead. Throws std::runtime_error when resume finds no usable frame and
/// no specs were given, or when recovery fails to make progress.
[[nodiscard]] RecoverableRunResult run_recoverable_multi_study(
    const std::vector<StudySpec>& specs, const StudyManagerOptions& options,
    const CheckpointOptions& checkpoint, const AdmitStudyFn& admit = {});

/// Pin the registration (= CSV export) order of every metric the recovery
/// runtime publishes, so --metrics-out stays byte-deterministic regardless of
/// when checkpoints land. Call after cluster::preregister_cluster_metrics.
void preregister_checkpoint_metrics(obs::MetricsRegistry& registry);

}  // namespace hyperdrive::core
