#include "core/study/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "cluster/fault_injector.hpp"
#include "util/bytes.hpp"

namespace hyperdrive::core {

namespace {

// 'HDCK' — distinct from the job-snapshot magic 'HDSS' so a checkpoint file
// fed to the snapshot decoder (or vice versa) reads as BadMagic, not garbage.
constexpr std::uint32_t kMagic = 0x4844434BU;
// v2: elastic-capacity fields (node catalog text + budget, DESIGN.md §15).
constexpr std::uint32_t kVersion = 2;

void write_options(util::ByteWriter& w, const StudyManagerOptions& o) {
  w.u64(o.machines);
  std::ostringstream catalog;
  cluster::save_node_catalog(o.catalog, catalog);
  w.str(catalog.str());
  w.f64(o.budget_usd);
  w.u8(static_cast<std::uint8_t>(o.arbitration));
  w.f64(o.arbitration_interval.to_seconds());
  w.f64(o.max_time.to_seconds());
  w.u8(o.record_event_log ? 1 : 0);
  w.u64(o.seed);
  w.u64(o.deadline_boost_slots);
  w.f64(o.deadline_confidence);
  w.f64(o.epoch_jitter_sigma);
  w.f64(o.checkpoint_every.to_seconds());
  const cluster::HealthOptions& h = o.health;
  w.u8(h.enabled ? 1 : 0);
  w.f64(h.heartbeat_interval.to_seconds());
  w.u64(h.watchdog_intervals);
  w.f64(h.ewma_alpha);
  w.f64(h.slow_speed);
  w.u64(h.quarantine_strikes);
  w.f64(h.probation_after.to_seconds());
  w.u64(h.reinstate_epochs);
  w.f64(h.hang_deadline_factor);
}

bool read_options(util::ByteReader& r, StudyManagerOptions& o) {
  std::uint64_t u = 0;
  std::uint8_t b = 0;
  double d = 0.0;
  if (!r.u64(u)) return false;
  o.machines = static_cast<std::size_t>(u);
  std::string catalog_text;
  if (!r.str(catalog_text)) return false;
  try {
    std::istringstream catalog(catalog_text);
    o.catalog = cluster::load_node_catalog(catalog);
  } catch (const std::invalid_argument&) {
    return false;
  }
  if (!r.f64(o.budget_usd)) return false;
  if (!r.u8(b)) return false;
  o.arbitration = static_cast<ArbitrationMode>(b);
  if (!r.f64(d)) return false;
  o.arbitration_interval = util::SimTime::seconds(d);
  if (!r.f64(d)) return false;
  o.max_time = util::SimTime::seconds(d);
  if (!r.u8(b)) return false;
  o.record_event_log = b != 0;
  if (!r.u64(o.seed)) return false;
  if (!r.u64(u)) return false;
  o.deadline_boost_slots = static_cast<std::size_t>(u);
  if (!r.f64(o.deadline_confidence)) return false;
  if (!r.f64(o.epoch_jitter_sigma)) return false;
  if (!r.f64(d)) return false;
  o.checkpoint_every = util::SimTime::seconds(d);
  cluster::HealthOptions& h = o.health;
  if (!r.u8(b)) return false;
  h.enabled = b != 0;
  if (!r.f64(d)) return false;
  h.heartbeat_interval = util::SimTime::seconds(d);
  if (!r.u64(u)) return false;
  h.watchdog_intervals = static_cast<std::size_t>(u);
  if (!r.f64(h.ewma_alpha)) return false;
  if (!r.f64(h.slow_speed)) return false;
  if (!r.u64(u)) return false;
  h.quarantine_strikes = static_cast<std::size_t>(u);
  if (!r.f64(d)) return false;
  h.probation_after = util::SimTime::seconds(d);
  if (!r.u64(u)) return false;
  h.reinstate_epochs = static_cast<std::size_t>(u);
  if (!r.f64(h.hang_deadline_factor)) return false;
  return true;
}

}  // namespace

std::vector<StudySpec> CoordinatorCheckpoint::specs() const {
  std::vector<StudySpec> out;
  out.reserve(spec_texts.size());
  for (const std::string& text : spec_texts) {
    std::istringstream in(text);
    out.push_back(load_study_spec(in));
  }
  return out;
}

cluster::FaultPlan CoordinatorCheckpoint::fault_plan() const {
  std::istringstream in(fault_plan_text);
  return cluster::load_fault_plan(in);
}

std::vector<std::uint8_t> encode_checkpoint(const CoordinatorCheckpoint& cp) {
  util::ByteWriter w;
  w.u32(kMagic);
  w.u32(kVersion);
  write_options(w, cp.options);
  w.u32(static_cast<std::uint32_t>(cp.spec_texts.size()));
  for (const std::string& text : cp.spec_texts) w.str(text);
  w.str(cp.fault_plan_text);
  w.u64(cp.sequence);
  w.f64(cp.tick.to_seconds());
  w.u64(cp.rebalances);
  w.u64(cp.crashes_taken);
  w.blob(cp.state);
  const std::uint32_t crc = cluster::crc32(w.bytes().data(), w.size());
  w.u32(crc);
  return std::move(w.bytes());
}

CheckpointDecodeResult decode_checkpoint(const std::vector<std::uint8_t>& image) {
  using cluster::SnapshotDecodeError;
  const auto fail = [](SnapshotDecodeError e) {
    CheckpointDecodeResult r;
    r.error = e;
    return r;
  };
  if (image.size() < 4) return fail(SnapshotDecodeError::Truncated);
  // Parse the structure bounded to the body (the trailing 4 bytes are the
  // CRC); check the checksum last so structural verdicts stay specific.
  const std::size_t body = image.size() - 4;
  util::ByteReader r(image.data(), body);
  std::uint32_t magic = 0;
  if (!r.u32(magic)) return fail(SnapshotDecodeError::Truncated);
  if (magic != kMagic) return fail(SnapshotDecodeError::BadMagic);
  std::uint32_t version = 0;
  if (!r.u32(version)) return fail(SnapshotDecodeError::Truncated);
  if (version != kVersion) return fail(SnapshotDecodeError::UnknownVersion);

  CoordinatorCheckpoint cp;
  if (!read_options(r, cp.options)) return fail(SnapshotDecodeError::Truncated);
  if (cp.options.arbitration != ArbitrationMode::StaticPartition &&
      cp.options.arbitration != ArbitrationMode::FairShare &&
      cp.options.arbitration != ArbitrationMode::DeadlineAware &&
      cp.options.arbitration != ArbitrationMode::Cost) {
    return fail(SnapshotDecodeError::Malformed);
  }
  std::uint32_t n_specs = 0;
  if (!r.u32(n_specs)) return fail(SnapshotDecodeError::Truncated);
  // Every spec text costs at least its 4-byte length prefix: a count beyond
  // remaining/4 is provably truncated — reject before reserve() allocates.
  if (n_specs > r.remaining() / 4) return fail(SnapshotDecodeError::Truncated);
  cp.spec_texts.reserve(n_specs);
  for (std::uint32_t i = 0; i < n_specs; ++i) {
    std::string text;
    if (!r.str(text)) return fail(SnapshotDecodeError::Truncated);
    cp.spec_texts.push_back(std::move(text));
  }
  if (!r.str(cp.fault_plan_text)) return fail(SnapshotDecodeError::Truncated);
  if (!r.u64(cp.sequence)) return fail(SnapshotDecodeError::Truncated);
  double tick = 0.0;
  if (!r.f64(tick)) return fail(SnapshotDecodeError::Truncated);
  cp.tick = util::SimTime::seconds(tick);
  if (!r.u64(cp.rebalances)) return fail(SnapshotDecodeError::Truncated);
  if (!r.u64(cp.crashes_taken)) return fail(SnapshotDecodeError::Truncated);
  if (!r.blob(cp.state)) return fail(SnapshotDecodeError::Truncated);
  if (r.pos() != body) return fail(SnapshotDecodeError::TrailingGarbage);

  std::uint32_t stored_crc = 0;
  util::ByteReader tail(image.data() + body, 4);
  tail.u32(stored_crc);
  if (cluster::crc32(image.data(), body) != stored_crc) {
    return fail(SnapshotDecodeError::BadChecksum);
  }
  CheckpointDecodeResult result;
  result.checkpoint = std::move(cp);
  return result;
}

CoordinatorCheckpoint make_checkpoint_inputs(const std::vector<StudySpec>& specs,
                                             const StudyManagerOptions& options) {
  CoordinatorCheckpoint cp;
  cp.options = options;
  // The callbacks / obs handles / resume bookkeeping in `options` are
  // process-local; the text codec below never writes them, so nulling is not
  // needed — but keep the rebalance floor fields out of the durable image by
  // resetting them (a frame describes the *run*, not one incarnation).
  cp.options.on_checkpoint = nullptr;
  cp.options.obs = obs::Scope{};
  cp.options.coordinator_crashes_to_skip = 0;
  cp.options.crash_floor = util::SimTime::zero();
  cp.spec_texts.reserve(specs.size());
  for (const StudySpec& spec : specs) {
    std::ostringstream os;
    save_study_spec(spec, os);
    cp.spec_texts.push_back(os.str());
  }
  std::ostringstream plan;
  cluster::save_fault_plan(options.fault_plan, plan);
  cp.fault_plan_text = plan.str();
  cp.options.fault_plan = cluster::FaultPlan{};  // travels as text instead
  return cp;
}

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
}

std::string CheckpointStore::path_for(std::uint64_t sequence) const {
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt-%06llu.hdck",
                static_cast<unsigned long long>(sequence));
  return (std::filesystem::path(dir_) / name).string();
}

std::size_t CheckpointStore::write(const CoordinatorCheckpoint& cp) {
  const std::vector<std::uint8_t> image = encode_checkpoint(cp);
  const std::string final_path = path_for(cp.sequence);
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("checkpoint: cannot open " + tmp_path);
    out.write(reinterpret_cast<const char*>(image.data()),
              static_cast<std::streamsize>(image.size()));
    out.flush();
    if (!out) throw std::runtime_error("checkpoint: short write to " + tmp_path);
  }
  // rename(2) is atomic within a filesystem: readers see either the old frame
  // or the new one, never a torn prefix — the property the SIGKILL smoke test
  // leans on.
  std::filesystem::rename(tmp_path, final_path);
  return image.size();
}

std::vector<std::uint64_t> CheckpointStore::list() const {
  std::vector<std::uint64_t> seqs;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    // ckpt-NNNNNN.hdck (sequence may exceed six digits; parse whatever is
    // between the dash and the dot).
    if (name.rfind("ckpt-", 0) != 0) continue;
    const std::size_t dot = name.rfind(".hdck");
    if (dot == std::string::npos || dot <= 5) continue;
    const std::string digits = name.substr(5, dot - 5);
    if (digits.empty() ||
        !std::all_of(digits.begin(), digits.end(), [](char c) { return c >= '0' && c <= '9'; })) {
      continue;
    }
    seqs.push_back(std::stoull(digits));
  }
  std::sort(seqs.rbegin(), seqs.rend());
  return seqs;
}

CheckpointDecodeResult CheckpointStore::load(std::uint64_t sequence) const {
  std::ifstream in(path_for(sequence), std::ios::binary);
  if (!in) {
    CheckpointDecodeResult r;
    r.error = cluster::SnapshotDecodeError::Truncated;
    return r;
  }
  std::vector<std::uint8_t> image((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return decode_checkpoint(image);
}

}  // namespace hyperdrive::core
