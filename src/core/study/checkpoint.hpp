// Durable coordinator checkpoints (DESIGN.md §12).
//
// A CoordinatorCheckpoint is everything a fresh process needs to reproduce a
// StudyManager run up to a given tick and prove it got there:
//
//   * the *inputs* — study specs and the fault plan as their canonical text
//     forms (the same fixed-point formats the CLI files use), plus the scalar
//     StudyManagerOptions image — so `--resume-from` needs no other flags;
//   * the *progress* — checkpoint sequence, sim tick, rebalance count, and
//     how many coordinator crashes earlier incarnations already took;
//   * the *state fingerprint* — StudyManager::capture()'s opaque bytes,
//     compared (never decoded) against a replay's re-capture to verify the
//     resumed run reconverged byte-for-byte before it continues live.
//
// The frame borrows the SnapshotCodec discipline: magic, version, body,
// trailing CRC-32, with the same explicit error taxonomy
// (cluster::SnapshotDecodeError) so the recovery ladder can tell a truncated
// file from a bit flip from a frame written by a newer coordinator.
//
// CheckpointStore maps frames onto a directory of `ckpt-<seq>.hdck` files
// with atomic tmp-file + rename writes, so a SIGKILL mid-write can never
// leave a torn frame that masquerades as the newest checkpoint.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/snapshot_codec.hpp"
#include "core/study/study_manager.hpp"
#include "core/study/study_spec.hpp"

namespace hyperdrive::core {

struct CoordinatorCheckpoint {
  /// Scalar options image: everything in StudyManagerOptions that shapes the
  /// run (callbacks and obs handles are process-local and deliberately
  /// absent; fault plan and specs travel as text below).
  StudyManagerOptions options;
  /// Admitted studies in admission order (save_study_spec text).
  std::vector<std::string> spec_texts;
  /// save_fault_plan text (includes coordinator-crash directives).
  std::string fault_plan_text;
  // --- progress -------------------------------------------------------------
  std::uint64_t sequence = 0;
  util::SimTime tick = util::SimTime::zero();
  std::uint64_t rebalances = 0;
  /// Coordinator crashes already taken when this frame was written. Not a
  /// pure function of `tick`: a replay that re-writes an old sequence number
  /// carries its own (higher) count, which is why checkpoint files may
  /// legitimately differ byte-wise from the frames they replace. Always
  /// >= the number of plan crashes at or before `tick`, so remaining crash
  /// events always lie strictly after the resume point.
  std::uint64_t crashes_taken = 0;
  // --- state ----------------------------------------------------------------
  /// Opaque replay-verification fingerprint (StudyManager::capture()).
  std::vector<std::uint8_t> state;

  [[nodiscard]] std::vector<StudySpec> specs() const;
  [[nodiscard]] cluster::FaultPlan fault_plan() const;
};

/// Decode verdict: exactly one of {checkpoint, error} is set. Reuses the
/// snapshot codec's taxonomy — the recovery ladder logs and counts by it.
struct CheckpointDecodeResult {
  std::optional<CoordinatorCheckpoint> checkpoint;
  std::optional<cluster::SnapshotDecodeError> error;
};

[[nodiscard]] std::vector<std::uint8_t> encode_checkpoint(const CoordinatorCheckpoint& cp);
[[nodiscard]] CheckpointDecodeResult decode_checkpoint(const std::vector<std::uint8_t>& image);

/// Build the input sections of a checkpoint from live run parameters (the
/// progress/state sections are filled per capture).
[[nodiscard]] CoordinatorCheckpoint make_checkpoint_inputs(
    const std::vector<StudySpec>& specs, const StudyManagerOptions& options);

/// A directory of checkpoint frames, newest preferred.
class CheckpointStore {
 public:
  explicit CheckpointStore(std::string dir);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// Atomically write `cp` as ckpt-<seq>.hdck (tmp + rename). Returns the
  /// frame size in bytes. Throws std::runtime_error on I/O failure.
  std::size_t write(const CoordinatorCheckpoint& cp);

  /// Sequence numbers present on disk, newest (highest) first.
  [[nodiscard]] std::vector<std::uint64_t> list() const;

  /// Decode the frame for `sequence`; nullopt checkpoint + error on failure
  /// (missing file reads as Truncated).
  [[nodiscard]] CheckpointDecodeResult load(std::uint64_t sequence) const;

  [[nodiscard]] std::string path_for(std::uint64_t sequence) const;

 private:
  std::string dir_;
};

}  // namespace hyperdrive::core
