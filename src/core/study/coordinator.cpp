#include "core/study/coordinator.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <optional>
#include <set>
#include <stdexcept>
#include <utility>

#include "cluster/fault_injector.hpp"

namespace hyperdrive::core {

namespace {

void emit_recovery(obs::EventSink* sink, obs::EventKind kind, util::SimTime time,
                   std::string detail) {
  if (sink == nullptr) return;
  obs::TraceEvent event(kind);
  event.time = time;
  event.detail = std::move(detail);
  sink->on_event(event);
}

/// Plan crashes in firing order — the same ordering StudyManager::run uses to
/// schedule them, so `crashes_taken` indexes consistently on both sides.
std::vector<cluster::CoordinatorCrashEvent> sorted_crashes(const cluster::FaultPlan& plan) {
  std::vector<cluster::CoordinatorCrashEvent> crashes = plan.coordinator_crashes;
  std::stable_sort(crashes.begin(), crashes.end(),
                   [](const auto& a, const auto& b) { return a.at < b.at; });
  return crashes;
}

}  // namespace

void preregister_checkpoint_metrics(obs::MetricsRegistry& registry) {
  // Must list, in order, exactly the metrics the recovery runtime touches —
  // registration order is write_csv emission order, which keeps --metrics-out
  // byte-deterministic under --jobs N (the same contract as
  // cluster::preregister_cluster_metrics).
  for (const char* name : {
           "checkpoint.bytes",
           "checkpoint.writes",
           "recovery.checkpoint_loads",
           "recovery.checkpoint_fallbacks",
           "recovery.cold_restarts",
           "recovery.coordinator_crashes",
           "recovery.replay_verifications",
       }) {
    (void)registry.counter(name);
  }
  // Wall-clock write latency; observed only on durable disk writes, so runs
  // without --checkpoint-out export it with zero observations (trend-only
  // metric, excluded from byte-identity comparisons across machines).
  (void)registry.histogram("checkpoint.write_ms", {0.5, 1.0, 2.0, 5.0, 10.0, 50.0, 100.0});
}

RecoverableRunResult run_recoverable_multi_study(const std::vector<StudySpec>& specs,
                                                 const StudyManagerOptions& options,
                                                 const CheckpointOptions& checkpoint,
                                                 const AdmitStudyFn& admit) {
  CoordinatorRecoveryStats stats;
  obs::EventSink* const recovery_sink = checkpoint.recovery_sink;
  obs::MetricsRegistry* const metrics = options.obs.metrics;

  std::optional<CheckpointStore> store;
  if (!checkpoint.dir.empty()) store.emplace(checkpoint.dir);

  // The run's effective inputs. A fresh start takes them from the caller; a
  // resume takes them from the adopted frame (so `--resume-from` needs no
  // other flags and tampering with the command line cannot skew the replay).
  StudyManagerOptions base = options;
  base.checkpoint_every = checkpoint.every;
  std::vector<StudySpec> run_specs = specs;

  std::optional<CoordinatorCheckpoint> target;  // frame the next replay must reconverge to
  bool verified = false;          // replay proved byte-identical to `target`
  std::size_t taken = 0;          // plan crashes consumed by earlier incarnations
  std::set<std::uint64_t> poisoned;  // sequences rejected by the ladder
  std::optional<CoordinatorCheckpoint> latest;  // newest frame, in memory
  std::size_t disk_writes_this_process = 0;

  // Adopt a frame as the resume target and swap the run inputs to its record.
  const auto adopt = [&](CoordinatorCheckpoint&& frame) {
    base = frame.options;
    base.obs = options.obs;  // process-local handles stay the caller's
    base.fault_plan = frame.fault_plan();
    run_specs = frame.specs();
    target = std::move(frame);
    verified = false;
    ++stats.checkpoint_loads;
    emit_recovery(recovery_sink, obs::EventKind::CheckpointLoaded, target->tick,
                  "seq=" + std::to_string(target->sequence) +
                      " bytes=" + std::to_string(target->state.size()));
  };

  // Walk the durable frames newest-first past poisoned / undecodable ones.
  // Returns false when the ladder is exhausted (caller cold-restarts).
  const auto adopt_newest_valid = [&]() -> bool {
    if (!store) {
      if (latest && poisoned.count(latest->sequence) == 0) {
        adopt(CoordinatorCheckpoint(*latest));
        return true;
      }
      return false;
    }
    for (const std::uint64_t seq : store->list()) {
      if (poisoned.count(seq) != 0) continue;
      CheckpointDecodeResult decoded = store->load(seq);
      if (decoded.checkpoint) {
        adopt(std::move(*decoded.checkpoint));
        return true;
      }
      ++stats.checkpoint_fallbacks;
      poisoned.insert(seq);
      emit_recovery(recovery_sink, obs::EventKind::CheckpointFallback, util::SimTime::zero(),
                    std::string(cluster::to_string(*decoded.error)) + " seq=" + std::to_string(seq));
    }
    return false;
  };

  const auto cold_restart = [&](const char* reason) {
    target.reset();
    verified = false;
    ++stats.cold_restarts;
    emit_recovery(recovery_sink, obs::EventKind::ColdRestart, util::SimTime::zero(), reason);
  };

  if (checkpoint.resume) {
    if (!store) throw std::runtime_error("resume requested without a checkpoint directory");
    if (adopt_newest_valid()) {
      taken = target->crashes_taken;
    } else {
      cold_restart("no-usable-checkpoint");
      if (run_specs.empty()) {
        throw std::runtime_error(
            "resume found no usable checkpoint in " + checkpoint.dir +
            " and no study specs were given for a cold restart");
      }
    }
  }

  // Every incarnation consumes at least one plan crash or one ladder rung, so
  // this bound is unreachable unless recovery stops making progress.
  const std::size_t max_attempts = base.fault_plan.coordinator_crashes.size() +
                                   (store ? store->list().size() : 0) + 10;

  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    // The inputs record written into every frame this incarnation produces.
    const CoordinatorCheckpoint inputs = make_checkpoint_inputs(run_specs, base);

    obs::RecordingSink attempt_sink;
    StudyManagerOptions opt = base;
    opt.obs.sink = &attempt_sink;  // forwarded to the caller's sink on success
    opt.coordinator_crashes_to_skip = taken;
    opt.crash_floor = target ? target->tick : util::SimTime::zero();
    bool diverged = false;
    opt.on_checkpoint = [&](ManagerCheckpoint&& cp) -> bool {
      if (target && !verified && cp.sequence == target->sequence) {
        if (cp.tick == target->tick && cp.rebalances == target->rebalances &&
            cp.state == target->state) {
          verified = true;
          ++stats.replay_verifications;
          emit_recovery(recovery_sink, obs::EventKind::CoordinatorResume, cp.tick,
                        "seq=" + std::to_string(cp.sequence));
        } else {
          diverged = true;
          return false;  // halt the replay; the ladder picks an older frame
        }
      }
      CoordinatorCheckpoint frame = inputs;
      frame.sequence = cp.sequence;
      frame.tick = cp.tick;
      frame.rebalances = cp.rebalances;
      frame.crashes_taken = taken;
      frame.state = std::move(cp.state);
      ++stats.checkpoints_written;
      stats.checkpoint_bytes_last = frame.state.size();
      if (store) {
        const auto t0 = std::chrono::steady_clock::now();
        const std::size_t bytes = store->write(frame);
        const auto t1 = std::chrono::steady_clock::now();
        stats.checkpoint_bytes_total += bytes;
        stats.checkpoint_bytes_last = bytes;
        if (metrics != nullptr) {
          metrics->counter("checkpoint.bytes").add(bytes);
          metrics->counter("checkpoint.writes").add(1);
          metrics
              ->histogram("checkpoint.write_ms", {0.5, 1.0, 2.0, 5.0, 10.0, 50.0, 100.0})
              .observe(std::chrono::duration<double, std::milli>(t1 - t0).count());
        }
        ++disk_writes_this_process;
        if (checkpoint.kill_after_checkpoints != 0 &&
            disk_writes_this_process == checkpoint.kill_after_checkpoints) {
          // CI crash-resume smoke: die exactly like a real coordinator crash,
          // with the frame just written as the newest durable state.
          std::raise(SIGKILL);
        }
      }
      latest = std::move(frame);
      return true;
    };

    StudyManager manager(opt);
    for (const StudySpec& spec : run_specs) {
      if (admit) {
        admit(manager, spec);
      } else {
        manager.add_study(spec);
      }
    }
    MultiStudyResult result = manager.run();

    switch (manager.exit_status()) {
      case ManagerExit::Completed: {
        // Captured at most ONCE per completed incarnation: capture() embeds
        // the checkpoint sequence counter, so a second capture would yield
        // different bytes and could never re-verify on a later resume.
        std::optional<ManagerCheckpoint> fin;
        if ((target && !verified) || store) fin = manager.capture_checkpoint();
        if (target && !verified) {
          // The replay finished without reaching the target's sequence — the
          // target is the final on-demand frame of a completed run (resume
          // after the last study finished) or a frame past this run's actual
          // end. The final state must still reconverge byte-for-byte.
          if (fin->tick == target->tick && fin->rebalances == target->rebalances &&
              fin->state == target->state) {
            verified = true;
            ++stats.replay_verifications;
            emit_recovery(recovery_sink, obs::EventKind::CoordinatorResume, fin->tick,
                          "seq=" + std::to_string(target->sequence) + " final");
          } else {
            ++stats.checkpoint_fallbacks;
            poisoned.insert(target->sequence);
            emit_recovery(recovery_sink, obs::EventKind::CheckpointFallback, target->tick,
                          "divergence seq=" + std::to_string(target->sequence));
            if (!adopt_newest_valid()) cold_restart("replay-divergence");
            break;  // next attempt
          }
        }
        if (store) {
          // Final on-demand frame: lets a later process resume a finished run
          // (replays to the end, verifies, and returns the same artifacts).
          CoordinatorCheckpoint frame = inputs;
          frame.sequence = fin->sequence;
          frame.tick = fin->tick;
          frame.rebalances = fin->rebalances;
          frame.crashes_taken = taken;
          frame.state = std::move(fin->state);
          stats.checkpoint_bytes_last = store->write(frame);
          stats.checkpoint_bytes_total += stats.checkpoint_bytes_last;
          ++stats.checkpoints_written;
          if (metrics != nullptr) {
            metrics->counter("checkpoint.bytes").add(stats.checkpoint_bytes_last);
            metrics->counter("checkpoint.writes").add(1);
          }
        }
        // Only the surviving incarnation's events reach the caller's sink —
        // its replay regenerates the complete deterministic stream, so trace
        // artifacts come out whole even after crashes and resumes.
        if (options.obs.sink != nullptr) {
          for (const obs::TraceEvent& event : attempt_sink.events) {
            options.obs.sink->on_event(event);
          }
        }
        if (metrics != nullptr) {
          metrics->counter("recovery.checkpoint_loads").add(stats.checkpoint_loads);
          metrics->counter("recovery.checkpoint_fallbacks").add(stats.checkpoint_fallbacks);
          metrics->counter("recovery.cold_restarts").add(stats.cold_restarts);
          metrics->counter("recovery.coordinator_crashes").add(stats.coordinator_crashes);
          metrics->counter("recovery.replay_verifications").add(stats.replay_verifications);
        }
        return RecoverableRunResult{std::move(result), stats};
      }
      case ManagerExit::Crashed: {
        const auto crashes = sorted_crashes(base.fault_plan);
        const util::SimTime when = taken < crashes.size() ? crashes[taken].at
                                                          : util::SimTime::zero();
        ++taken;
        ++stats.coordinator_crashes;
        emit_recovery(recovery_sink, obs::EventKind::CoordinatorCrash, when,
                      "index=" + std::to_string(taken - 1));
        // Recover from the newest usable frame; with none, replay from zero.
        if (!adopt_newest_valid()) cold_restart("no-usable-checkpoint");
        break;
      }
      case ManagerExit::Halted: {
        // The checkpoint sink vetoed at the target sequence: the replay's
        // re-captured state diverged from the durable frame. Poison it and
        // step down the ladder.
        ++stats.checkpoint_fallbacks;
        if (target) {
          poisoned.insert(target->sequence);
          emit_recovery(recovery_sink, obs::EventKind::CheckpointFallback, target->tick,
                        "divergence seq=" + std::to_string(target->sequence));
        }
        (void)diverged;
        if (!adopt_newest_valid()) cold_restart("replay-divergence");
        break;
      }
    }
  }
  throw std::runtime_error("coordinator recovery failed to make progress");
}

}  // namespace hyperdrive::core
