#include "core/study/study_spec.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hyperdrive::core {

namespace {

[[noreturn]] void spec_error(int line, const std::string& what) {
  throw std::invalid_argument("study spec line " + std::to_string(line) + ": " + what);
}

double number_from_token(const std::string& token, const char* what, int line) {
  if (token == "inf") return std::numeric_limits<double>::infinity();
  try {
    std::size_t used = 0;
    const double value = std::stod(token, &used);
    if (used != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    spec_error(line, std::string("bad ") + what + " '" + token + "'");
  }
}

double parse_number(std::istringstream& in, const char* what, int line) {
  std::string token;
  if (!(in >> token)) spec_error(line, std::string("missing ") + what);
  return number_from_token(token, what, line);
}

std::string parse_word(std::istringstream& in, const char* what, int line) {
  std::string token;
  if (!(in >> token)) spec_error(line, std::string("missing ") + what);
  return token;
}

/// Writes `inf` for unbounded durations, otherwise plain seconds with enough
/// digits that load(save(s)) == s.
void write_time(std::ostream& out, util::SimTime t) {
  if (t == util::SimTime::infinity()) {
    out << "inf";
  } else {
    out << t.to_seconds();
  }
}

}  // namespace

StudySpec load_study_spec(std::istream& in) {
  StudySpec spec;
  bool named = false;
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    if (const auto hash = raw.find('#'); hash != std::string::npos) raw.erase(hash);
    std::istringstream line(raw);
    std::string directive;
    if (!(line >> directive)) continue;  // blank / comment-only line

    if (directive == "study") {
      spec.name = parse_word(line, "study name", line_no);
      named = true;
    } else if (directive == "workload") {
      spec.workload = parse_word(line, "workload name", line_no);
    } else if (directive == "policy") {
      spec.policy = parse_word(line, "policy name", line_no);
    } else if (directive == "generator") {
      spec.generator = parse_word(line, "generator name", line_no);
    } else if (directive == "configs") {
      const double n = parse_number(line, "config count", line_no);
      if (n < 1.0 || n != static_cast<double>(static_cast<std::size_t>(n))) {
        spec_error(line_no, "config count must be a positive integer");
      }
      spec.configs = static_cast<std::size_t>(n);
    } else if (directive == "target") {
      spec.target = parse_number(line, "target", line_no);
    } else if (directive == "deadline") {
      spec.deadline = util::SimTime::seconds(parse_number(line, "deadline", line_no));
    } else if (directive == "weight") {
      spec.weight = parse_number(line, "weight", line_no);
      if (!(spec.weight > 0.0) || spec.weight == std::numeric_limits<double>::infinity()) {
        spec_error(line_no, "weight must be positive and finite");
      }
    } else if (directive == "seed") {
      spec.seed = static_cast<std::uint64_t>(parse_number(line, "seed", line_no));
    } else if (directive == "tmax") {
      spec.tmax = util::SimTime::seconds(parse_number(line, "tmax", line_no));
    } else if (directive == "cancel-at") {
      spec.cancel_at = util::SimTime::seconds(parse_number(line, "cancel time", line_no));
    } else {
      spec_error(line_no, "unknown directive '" + directive + "'");
    }
    std::string trailing;
    if (line >> trailing) spec_error(line_no, "trailing token '" + trailing + "'");
  }
  if (!named) spec_error(line_no, "missing 'study <name>' directive");
  return spec;
}

void save_study_spec(const StudySpec& spec, std::ostream& out) {
  const auto precision = out.precision(17);
  out << "# HyperDrive study spec\n";
  out << "study " << spec.name << '\n';
  out << "workload " << spec.workload << '\n';
  out << "policy " << spec.policy << '\n';
  out << "generator " << spec.generator << '\n';
  out << "configs " << spec.configs << '\n';
  if (spec.has_target_override()) out << "target " << spec.target << '\n';
  if (spec.has_deadline()) {
    out << "deadline ";
    write_time(out, spec.deadline);
    out << '\n';
  }
  if (spec.weight != 1.0) out << "weight " << spec.weight << '\n';
  out << "seed " << spec.seed << '\n';
  out << "tmax ";
  write_time(out, spec.tmax);
  out << '\n';
  if (spec.cancel_at != util::SimTime::infinity()) {
    out << "cancel-at ";
    write_time(out, spec.cancel_at);
    out << '\n';
  }
  out.precision(precision);
}

}  // namespace hyperdrive::core
