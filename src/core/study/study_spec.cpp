#include "core/study/study_spec.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <string>

#include "util/spec_parser.hpp"

namespace hyperdrive::core {

StudySpec load_study_spec(std::istream& in) {
  StudySpec spec;
  bool named = false;
  util::SpecParser parser(in, "study spec");
  while (parser.next_line()) {
    const std::string& directive = parser.directive();
    if (directive == "study") {
      spec.name = parser.word("study name");
      named = true;
    } else if (directive == "workload") {
      spec.workload = parser.word("workload name");
    } else if (directive == "policy") {
      spec.policy = parser.word("policy name");
      spec.policy_params.clear();
      while (auto param = parser.optional_word()) {
        if (param->find('=') == std::string::npos) {
          parser.fail("bad policy option '" + *param + "' (want key=value)");
        }
        spec.policy_params.push_back(std::move(*param));
      }
    } else if (directive == "generator") {
      spec.generator = parser.word("generator name");
    } else if (directive == "configs") {
      const double n = parser.number("config count");
      if (n < 1.0 || n != static_cast<double>(static_cast<std::size_t>(n))) {
        parser.fail("config count must be a positive integer");
      }
      spec.configs = static_cast<std::size_t>(n);
    } else if (directive == "target") {
      spec.target = parser.number("target");
    } else if (directive == "deadline") {
      spec.deadline = util::SimTime::seconds(parser.number("deadline"));
    } else if (directive == "weight") {
      spec.weight = parser.number("weight");
      if (!(spec.weight > 0.0) || spec.weight == std::numeric_limits<double>::infinity()) {
        parser.fail("weight must be positive and finite");
      }
    } else if (directive == "seed") {
      spec.seed = static_cast<std::uint64_t>(parser.number("seed"));
    } else if (directive == "tmax") {
      spec.tmax = util::SimTime::seconds(parser.number("tmax"));
    } else if (directive == "cancel-at") {
      spec.cancel_at = util::SimTime::seconds(parser.number("cancel time"));
    } else if (directive == "budget") {
      spec.budget_usd = parser.number("budget");
      if (!(spec.budget_usd > 0.0)) parser.fail("budget must be positive");
    } else if (directive == "node-class") {
      spec.node_class = parser.word("node class name");
    } else {
      parser.fail("unknown directive '" + directive + "'");
    }
    parser.finish_line();
  }
  if (!named) parser.fail("missing 'study <name>' directive");
  return spec;
}

void save_study_spec(const StudySpec& spec, std::ostream& out) {
  const auto precision = out.precision(17);
  out << "# HyperDrive study spec\n";
  out << "study " << spec.name << '\n';
  out << "workload " << spec.workload << '\n';
  out << "policy " << spec.policy;
  for (const auto& param : spec.policy_params) out << ' ' << param;
  out << '\n';
  out << "generator " << spec.generator << '\n';
  out << "configs " << spec.configs << '\n';
  if (spec.has_target_override()) out << "target " << spec.target << '\n';
  if (spec.has_deadline()) {
    out << "deadline ";
    util::write_spec_time(out, spec.deadline);
    out << '\n';
  }
  if (spec.weight != 1.0) out << "weight " << spec.weight << '\n';
  out << "seed " << spec.seed << '\n';
  out << "tmax ";
  util::write_spec_time(out, spec.tmax);
  out << '\n';
  if (spec.cancel_at != util::SimTime::infinity()) {
    out << "cancel-at ";
    util::write_spec_time(out, spec.cancel_at);
    out << '\n';
  }
  // New elastic fields (DESIGN.md §15) are omitted at their defaults, so a
  // pre-elastic spec round-trips byte-identically.
  if (spec.budget_usd != std::numeric_limits<double>::infinity()) {
    out << "budget " << spec.budget_usd << '\n';
  }
  if (!spec.node_class.empty()) out << "node-class " << spec.node_class << '\n';
  out.precision(precision);
}

}  // namespace hyperdrive::core
