// StudySpec — the declarative description of one tenant study in a
// multi-study run (DESIGN.md §9): which workload to explore, with which
// generator and scheduling policy, under what target/deadline/weight. A
// StudyManager arbitrates cluster capacity between several of these.
//
// Specs have a plain-text on-disk format (one study per file) mirroring the
// fault-plan format: `#` starts a comment, one directive per line, durations
// in seconds with `inf` for unbounded, and load(save(s)) is a fixed point.
//
//   study prod-cifar
//   workload cifar10          # cifar10 | lunarlander | ptb_lstm
//   policy pop                # any core::PolicyRegistry name, optionally
//                             # followed by key=value options ("policy asha
//                             # eta=4"); DESIGN.md "Scheduler zoo"
//   generator random          # random | grid | adaptive | tpe
//   configs 100
//   target 0.92               # omit for the workload's default target
//   deadline 14400            # seconds; omit or `inf` for none
//   weight 2                  # fair-share weight (default 1)
//   seed 7
//   tmax 172800               # per-study Tmax in seconds (default 48 h)
//   cancel-at inf             # tenant cancelled at this time (default never)
//   budget 120                # cost-mode spend cap in $ (default unbounded)
//   node-class gpu-spot       # preferred catalog class (default none)
#pragma once

#include <cmath>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "util/sim_time.hpp"

namespace hyperdrive::core {

struct StudySpec {
  std::string name;
  std::string workload = "cifar10";
  std::string policy = "pop";
  /// Policy options as key=value tokens (`policy asha eta=4 min-rung=2`),
  /// fed to the PolicyRegistry factory (DESIGN.md §13). Empty for defaults —
  /// the spec then saves byte-identically to the pre-registry format.
  std::vector<std::string> policy_params;
  std::string generator = "random";
  std::size_t configs = 100;
  /// Target performance; NaN (default) keeps the workload model's target.
  double target = std::numeric_limits<double>::quiet_NaN();
  /// Wall-clock deadline the owner wants the target met by; infinity = none.
  util::SimTime deadline = util::SimTime::infinity();
  /// Fair-share weight (capacity is split proportionally to weights).
  double weight = 1.0;
  std::uint64_t seed = 1;
  /// Per-study Tmax: the study gives up at this time even if unfinished.
  util::SimTime tmax = util::SimTime::hours(48);
  /// When finite, the StudyManager cancels this study at this time (models a
  /// tenant walking away; its capacity drains back to the pool).
  util::SimTime cancel_at = util::SimTime::infinity();
  /// Cost-arbitration spend cap ($, DESIGN.md §15): once the tenant's
  /// chargeback reaches it, its lease is pinned to one slot. Infinity = none.
  double budget_usd = std::numeric_limits<double>::infinity();
  /// Preferred NodeCatalog class; the arbiter's water-fill serves this class
  /// to the tenant first. Empty = no preference (class-id order).
  std::string node_class;

  [[nodiscard]] bool has_target_override() const noexcept { return !std::isnan(target); }
  [[nodiscard]] bool has_deadline() const noexcept {
    return deadline < util::SimTime::infinity();
  }
};

/// Parse one study spec. Throws std::invalid_argument with a line-numbered
/// message ("study spec line N: ...") on malformed input; a spec without a
/// `study <name>` directive is rejected.
[[nodiscard]] StudySpec load_study_spec(std::istream& in);

/// Serialize so that load(save(spec)) == spec (17 significant digits).
void save_study_spec(const StudySpec& spec, std::ostream& out);

}  // namespace hyperdrive::core
