// StudyManager — multi-tenant study scheduling with deadline-aware capacity
// arbitration (DESIGN.md §9). Several concurrent studies (each with its own
// hyperparameter generator, scheduling policy, target and optional deadline)
// share one simulated cluster. The manager owns the discrete-event clock and
// a pool of fungible machine slots; every study runs as a tenant
// HyperDriveCluster against the shared clock, and an arbitration layer moves
// slots between tenants:
//
//   * StaticPartition — weighted split at admission, never revisited. The
//     baseline: capacity freed by a finished study is stranded.
//   * FairShare — weighted fair share recomputed over the *unfinished*
//     studies at every arbitration tick and on study completion, so drained
//     capacity is handed to whoever is still running.
//   * DeadlineAware — FairShare plus urgency boosting: the manager estimates
//     each deadline study's remaining time-to-target from its best jobs'
//     learning curves (the same §5.2 predictor POP uses) and, when the
//     estimate overshoots the deadline, transfers slots from the study with
//     the most slack.
//
// Capacity changes flow to tenant policies through the ordinary
// on_capacity_change upcall, so POP's S_deserved = S * p math tracks the
// lease exactly like it tracks crash-induced membership churn. Reclaiming a
// busy slot never kills the job: it is cleanly snapshot-suspended (the §6.2.3
// machinery) and requeued inside its study.
//
// Determinism: a multi-study run is a pure function of (specs, options) —
// the merged event log is byte-identical across runs and thread counts.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/autoscaler.hpp"
#include "cluster/cluster.hpp"
#include "core/experiment_result.hpp"
#include "core/sap.hpp"
#include "core/study/study_spec.hpp"
#include "curve/predictor.hpp"
#include "obs/scope.hpp"
#include "sim/simulation.hpp"
#include "util/sim_time.hpp"
#include "workload/trace.hpp"

namespace hyperdrive::core {

enum class ArbitrationMode {
  StaticPartition,  ///< weighted split at admission, never rebalanced
  FairShare,        ///< weighted fair share over unfinished studies
  DeadlineAware,    ///< fair share + time-to-target urgency boosting
  /// DeadlineAware caps plus elastic release (DESIGN.md §15): each tenant's
  /// target is clamped to its runnable-job count (and to one slot once it
  /// exhausts its spec budget), and the surplus capacity is handed back to
  /// the budget autoscaler instead of idling on the bill.
  Cost,
};

[[nodiscard]] std::string_view to_string(ArbitrationMode mode) noexcept;
/// Parses "static" | "fair" | "deadline" | "cost"; throws
/// std::invalid_argument.
[[nodiscard]] ArbitrationMode arbitration_from_string(const std::string& name);

/// One captured coordinator state (DESIGN.md §12): everything the recovery
/// runtime needs to decide whether a resumed replay reconverged. `state` is
/// the opaque fingerprint written by StudyManager::capture — compared
/// byte-for-byte against the replay's re-capture, never decoded.
struct ManagerCheckpoint {
  std::uint64_t sequence = 0;
  util::SimTime tick = util::SimTime::zero();
  std::size_t rebalances = 0;
  std::vector<std::uint8_t> state;
};

/// How a StudyManager::run ended.
enum class ManagerExit {
  Completed,  ///< every study finished (or max_time truncated the run)
  Crashed,    ///< a CoordinatorCrashEvent killed the coordinator mid-run
  Halted,     ///< the on_checkpoint sink returned false (replay divergence)
};

struct StudyManagerOptions {
  /// Total machine slots shared by all studies.
  std::size_t machines = 8;
  /// Typed fleet layout (DESIGN.md §15). Empty (default) means one implicit
  /// "standard" class of `machines` nodes at price 1.0 / speed 1.0 — the
  /// pre-elastic behavior, byte-identical. Non-empty overrides `machines`
  /// with the catalog's total node count.
  cluster::NodeCatalog catalog;
  /// Hard autoscaler spend ceiling for the whole run ($); once the projected
  /// bill reaches it no further capacity is acquired (infinite = uncapped).
  double budget_usd = std::numeric_limits<double>::infinity();
  ArbitrationMode arbitration = ArbitrationMode::FairShare;
  /// Cadence of the rebalancing tick (FairShare / DeadlineAware only).
  util::SimTime arbitration_interval = util::SimTime::minutes(10);
  /// Hard stop for the whole multi-study run (per-study Tmax still applies).
  util::SimTime max_time = util::SimTime::infinity();
  /// Record the merged per-study event log (golden-trace determinism tests).
  bool record_event_log = false;
  std::uint64_t seed = 1;
  /// DeadlineAware: slots transferred to an urgent study per tick.
  std::size_t deadline_boost_slots = 2;
  /// Curve-prediction urgency threshold: a study is urgent when the first
  /// epoch with P(target reached) >= this confidence lands past the deadline.
  double deadline_confidence = 0.5;
  double epoch_jitter_sigma = 0.04;
  /// Gray-failure detection & mitigation, applied to every tenant.
  cluster::HealthOptions health;
  /// Faults injected into every tenant cluster. Coordinator crashes in the
  /// plan are scheduled by the manager itself (the tenants ignore them).
  cluster::FaultPlan fault_plan;
  /// Instrumentation handle shared by every tenant cluster (DESIGN.md §10);
  /// each tenant stamps its study name onto the events it emits.
  obs::Scope obs;
  // --- coordinator crash-recovery (DESIGN.md §12) ---------------------------
  /// Checkpoint-capture cadence; zero (default) disables checkpointing and
  /// keeps the run byte-identical to the pre-recovery manager.
  util::SimTime checkpoint_every = util::SimTime::zero();
  /// Receives every periodic checkpoint. Returning false halts the run with
  /// ManagerExit::Halted — the recovery runtime aborts a resumed replay this
  /// way when its re-captured state diverges from the durable checkpoint.
  std::function<bool(ManagerCheckpoint&&)> on_checkpoint;
  /// Leading entries of fault_plan.coordinator_crashes (sorted by time)
  /// already taken by earlier incarnations of this process; not rescheduled.
  std::size_t coordinator_crashes_to_skip = 0;
  /// Defensive resume guard: crash events strictly before this time are
  /// skipped even beyond the prefix above, so a hand-edited checkpoint can
  /// never re-fire a crash from its own past and loop the coordinator.
  util::SimTime crash_floor = util::SimTime::zero();
};

/// What one study got out of the shared cluster.
struct StudyOutcome {
  StudySpec spec;
  ExperimentResult result;
  bool cancelled = false;
  /// spec.has_deadline() && target reached by the deadline.
  bool deadline_met = false;
};

struct MultiStudyResult {
  std::vector<StudyOutcome> studies;
  /// When the last study finished (or the manager's max_time).
  util::SimTime total_time = util::SimTime::zero();
  /// Arbitration ticks that actually changed at least one lease target.
  std::size_t rebalances = 0;
  /// The cloud bill ($): the autoscaler's integral of acquired nodes × class
  /// price over the run — includes acquired-but-idle capacity, unlike the
  /// per-study chargeback in StudyRow::spend_usd (DESIGN.md §15).
  double spend_usd = 0.0;
  /// Merged deterministic event log (empty unless record_event_log).
  std::vector<std::string> event_log;

  /// Roll the outcomes up into one ExperimentResult: counters summed,
  /// job_stats concatenated (tagged with their study), reached_target only
  /// when every study reached its target, time_to_target = the makespan over
  /// studies, and one StudyRow per study.
  [[nodiscard]] ExperimentResult aggregate() const;
  /// One CSV row per study (EXPERIMENTS.md "Multi-study CSV schema").
  /// Byte-deterministic: every number goes through one fixed format.
  void save_csv(std::ostream& out) const;
};

class StudyManager {
 public:
  explicit StudyManager(StudyManagerOptions options);
  ~StudyManager();
  StudyManager(const StudyManager&) = delete;
  StudyManager& operator=(const StudyManager&) = delete;

  /// Admit a study, resolving its workload / generator / policy names
  /// (trace realized here, so admission cost is paid up front). Throws
  /// std::invalid_argument on unknown names or a duplicate study name.
  void add_study(const StudySpec& spec);
  /// Admit a study with an explicit trace and policy factory (tests, custom
  /// policies). The factory runs once, inside run().
  void add_study(StudySpec spec, workload::Trace trace,
                 std::function<std::unique_ptr<SchedulingPolicy>()> policy_factory);

  [[nodiscard]] std::size_t study_count() const noexcept;

  /// Run every admitted study to completion (target / quiescence / Tmax /
  /// cancel-at) under the configured arbitration. Single-use.
  [[nodiscard]] MultiStudyResult run();

  /// How run() ended. Completed unless a scheduled coordinator crash fired
  /// (Crashed) or the on_checkpoint sink vetoed continuation (Halted).
  [[nodiscard]] ManagerExit exit_status() const noexcept { return exit_; }

  /// Capture a checkpoint outside the periodic cadence — the "on demand"
  /// path. Callable after run() returns (the simulation and tenants stay
  /// alive), which is how the recovery runtime persists the final state so a
  /// resume after the last study finished replays nothing.
  [[nodiscard]] ManagerCheckpoint capture_checkpoint();

 private:
  struct Tenant;

  /// Weighted-fair slot split over unfinished tenants (largest remainder,
  /// every unfinished tenant gets at least one slot).
  [[nodiscard]] std::vector<std::size_t> fair_targets() const;
  /// Predictor-based remaining time-to-target estimate for a tenant;
  /// infinity when no job has enough history to predict.
  [[nodiscard]] util::SimTime estimate_time_to_target(const Tenant& tenant) const;
  /// DeadlineAware adjustment on top of fair targets. Urgency latches per
  /// tenant (cleared when the study finishes or its deadline passes), so the
  /// boost cannot oscillate with a noisy estimate.
  void apply_deadline_boost(std::vector<std::size_t>& targets);
  /// Cost-mode clamp: no tenant is leased more slots than it has runnable
  /// jobs, and a tenant past its spec budget keeps exactly one slot.
  void apply_cost_caps(std::vector<std::size_t>& targets);
  /// Water-fill per-tenant slot totals onto catalog classes: classes in id
  /// order, tenants in admission order, each tenant's preferred
  /// spec.node_class served first. Views come back at full catalog width.
  [[nodiscard]] std::vector<cluster::CapacityView> split_by_class(
      const std::vector<std::size_t>& totals) const;
  /// Drive the autoscaler toward the aggregate demand of `views`, emitting
  /// NodeAcquired/NodeReleased events and elastic.* metrics for each action.
  void reconcile_autoscaler(const std::vector<cluster::CapacityView>& views);
  /// Push new lease targets to tenants (shrink first, then grow) and pump.
  void rebalance(bool count_tick);
  /// Hand free acquired slots to tenants below their lease target
  /// (round-robin per node class).
  void pump();
  void on_study_finished(std::size_t index);
  [[nodiscard]] bool all_finished() const;
  /// Serialize the full resumable coordinator state (manager bookkeeping +
  /// every tenant's cluster state) into the opaque checkpoint fingerprint.
  [[nodiscard]] std::vector<std::uint8_t> capture() const;

  StudyManagerOptions options_;
  /// The effective fleet layout: options_.catalog, or the implicit uniform
  /// single-class catalog when that was empty. Never empty.
  cluster::NodeCatalog catalog_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::shared_ptr<const curve::CurvePredictor> predictor_;
  /// Budget-capped capacity acquisition (created in run(); DESIGN.md §15).
  std::unique_ptr<cluster::Autoscaler> autoscaler_;
  std::unique_ptr<sim::Simulation> sim_;
  std::vector<std::string> event_log_;
  sim::EventHandle arbitration_event_ = 0;
  bool arbitration_armed_ = false;
  /// DeadlineAware: last boosted split and the (finished, urgent) topology
  /// it was computed for — reused verbatim until the topology changes.
  std::vector<char> boost_key_;
  std::vector<std::size_t> boost_targets_;
  std::size_t rebalances_ = 0;
  bool ran_ = false;
  // --- coordinator crash-recovery (DESIGN.md §12) ---------------------------
  std::uint64_t checkpoint_seq_ = 0;
  sim::EventHandle checkpoint_event_ = 0;
  bool checkpoint_armed_ = false;
  ManagerExit exit_ = ManagerExit::Completed;
};

/// Convenience wrapper: admit `specs` into a fresh manager and run.
[[nodiscard]] MultiStudyResult run_multi_study(const std::vector<StudySpec>& specs,
                                               const StudyManagerOptions& options);

}  // namespace hyperdrive::core
