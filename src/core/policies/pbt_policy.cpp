#include "core/policies/pbt_policy.hpp"

#include <algorithm>
#include <stdexcept>

namespace hyperdrive::core {

namespace {
// Seed streams (see util::derive_seed): donor draws vs per-clone explore
// streams must never collide.
constexpr std::uint64_t kDonorDrawStream = 0x10B7;
constexpr std::uint64_t kCloneStreamBase = 0xC10E0000;
}  // namespace

PbtPolicy::PbtPolicy(PbtConfig config)
    : config_(config), rng_(util::derive_seed(config.seed, kDonorDrawStream)) {
  if (config_.bottom_quantile <= 0.0 || config_.bottom_quantile >= 1.0)
    throw std::invalid_argument("pbt bottom quantile must be in (0, 1)");
  if (config_.top_quantile <= 0.0 || config_.top_quantile >= 1.0)
    throw std::invalid_argument("pbt top quantile must be in (0, 1)");
  if (config_.min_population < 2)
    throw std::invalid_argument("pbt needs a population of at least 2");
}

void PbtPolicy::on_allocate(SchedulerOps& ops) {
  // Perform the recorded exploits first: each target was suspended at its
  // decision boundary and is clonable once the substrate reports it idle.
  for (auto it = intents_.begin(); it != intents_.end();) {
    const auto status = ops.job_status(it->target);
    if (status == JobStatus::Running) {
      ++it;  // suspend still in flight (e.g. barrier round); retry next call
      continue;
    }
    if (status == JobStatus::Pending || status == JobStatus::Suspended) {
      const auto stream =
          util::derive_seed(config_.seed, kCloneStreamBase + streams_issued_++);
      if (ops.clone_job(it->target, it->donor, stream)) ++exploits_;
    }
    // Drop the intent whether or not the clone happened (the donor may have
    // no trained state yet; the target will simply resume unchanged).
    it = intents_.erase(it);
  }
  DefaultPolicy::on_allocate(ops);
}

JobDecision PbtPolicy::on_iteration_finish(SchedulerOps& ops, const JobEvent& event) {
  const std::size_t boundary =
      config_.boundary != 0 ? config_.boundary
                            : std::max<std::size_t>(1, ops.evaluation_boundary());
  if (event.epoch % boundary != 0) return JobDecision::Continue;
  if (!ops.supports_clone()) return JobDecision::Continue;

  // Rank the population by latest observed performance (best first, ties by
  // id so the order is deterministic across substrates).
  std::vector<std::pair<double, JobId>> ranked;
  for (const auto job : ops.active_jobs()) {
    const auto& history = ops.perf_history(job);
    if (history.empty()) continue;
    ranked.emplace_back(history.back(), job);
  }
  if (ranked.size() < config_.min_population) return JobDecision::Continue;
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });

  const auto quantile_count = [&](double q) {
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(ranked.size()) * q));
  };
  const std::size_t top = quantile_count(config_.top_quantile);
  const std::size_t bottom = quantile_count(config_.bottom_quantile);

  std::size_t position = ranked.size();
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i].second == event.job_id) {
      position = i;
      break;
    }
  }
  if (position < ranked.size() - bottom) return JobDecision::Continue;
  if (position < top) return JobDecision::Continue;  // degenerate tiny pools

  // Donor pool: the top quantile, minus jobs already slated as exploit
  // targets (their ground truth is about to change under them).
  std::vector<JobId> donors;
  for (std::size_t i = 0; i < top; ++i) {
    const JobId candidate = ranked[i].second;
    const bool is_target =
        std::any_of(intents_.begin(), intents_.end(),
                    [&](const Intent& intent) { return intent.target == candidate; });
    if (!is_target && candidate != event.job_id) donors.push_back(candidate);
  }
  if (donors.empty()) return JobDecision::Continue;

  const auto pick = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(donors.size()) - 1));
  intents_.push_back(Intent{event.job_id, donors[pick]});
  ++intents_recorded_;
  return JobDecision::Suspend;
}

}  // namespace hyperdrive::core
