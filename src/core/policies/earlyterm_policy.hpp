// EarlyTerm SAP (§5.3): a parallel version of Domhan et al.'s "predictive
// termination criterion" [11]. At every evaluation boundary (b = 30 for
// supervised learning, the workload boundary for RL) the policy predicts the
// job's performance at the maximum epoch m and terminates the job iff
//
//     P(y_m >= y_hat | y_1:n) < delta,    delta = 0.05,
//
// where y_hat is the best performance observed across all jobs so far.
// Unlike POP, EarlyTerm never suspends, never prioritizes, and spends a
// prediction only to cut clearly-hopeless jobs.
#pragma once

#include <map>
#include <memory>

#include "core/policies/default_policy.hpp"
#include "curve/predictor.hpp"

namespace hyperdrive::core {

struct EarlyTermConfig {
  double delta = 0.05;
  /// Evaluation boundary; 0 = use the workload's. The paper uses 30 for
  /// supervised learning.
  std::size_t boundary = 30;
  /// Don't attempt a prediction with fewer observations than this.
  std::size_t min_history = 4;
  std::shared_ptr<const curve::CurvePredictor> predictor;
};

class EarlyTermPolicy final : public DefaultPolicy {
 public:
  explicit EarlyTermPolicy(EarlyTermConfig config);

  [[nodiscard]] std::string_view name() const noexcept override { return "earlyterm"; }

  void on_application_stat(SchedulerOps& ops, const JobEvent& event) override;
  JobDecision on_iteration_finish(SchedulerOps& ops, const JobEvent& event) override;

  [[nodiscard]] std::size_t predictions_made() const noexcept { return predictions_; }

 private:
  EarlyTermConfig config_;
  double global_best_ = 0.0;
  std::size_t predictions_ = 0;
};

}  // namespace hyperdrive::core
