#include "core/policies/bandit_policy.hpp"

#include <algorithm>

namespace hyperdrive::core {

void BanditPolicy::on_application_stat(SchedulerOps& /*ops*/, const JobEvent& event) {
  auto& best = job_best_[event.job_id];
  best = std::max(best, event.perf);
  global_best_ = std::max(global_best_, event.perf);
}

JobDecision BanditPolicy::on_iteration_finish(SchedulerOps& ops, const JobEvent& event) {
  const std::size_t boundary =
      config_.boundary != 0 ? config_.boundary : ops.evaluation_boundary();
  if (boundary == 0 || event.epoch % boundary != 0) return JobDecision::Continue;
  const double job_best = job_best_[event.job_id];
  if (job_best * (1.0 + config_.epsilon) > global_best_) return JobDecision::Continue;
  return JobDecision::Terminate;
}

}  // namespace hyperdrive::core
