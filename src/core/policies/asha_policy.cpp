#include "core/policies/asha_policy.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

namespace hyperdrive::core {

AshaPolicy::AshaPolicy(AshaConfig config) : config_(config) {
  if (config_.eta <= 1.0) throw std::invalid_argument("asha eta must be > 1");
}

std::size_t AshaPolicy::rung_at(std::size_t epoch) const {
  double rung = static_cast<double>(config_.min_rung);
  while (static_cast<std::size_t>(std::llround(rung)) < epoch) rung *= config_.eta;
  return static_cast<std::size_t>(std::llround(rung));
}

bool AshaPolicy::promotable(const Paused& at) const {
  const auto it = rung_scores_.find(at.rung);
  if (it == rung_scores_.end()) return false;
  const auto& scores = it->second;
  if (scores.size() < config_.min_rung_population) return false;
  std::size_t strictly_better = 0;
  for (const double s : scores) {
    if (s > at.score) ++strictly_better;
  }
  const double rank =
      static_cast<double>(strictly_better) / static_cast<double>(scores.size());
  return rank <= 1.0 / config_.eta;
}

void AshaPolicy::on_allocate(SchedulerOps& ops) {
  // 1. Promotions: paused jobs whose rung rank has risen into the top 1/eta
  //    as later arrivals filled the rung. Best score first, ties by id.
  while (ops.idle_machines() > 0) {
    std::optional<JobId> best;
    double best_score = 0.0;
    for (const auto& [job, at] : paused_) {
      if (ops.job_status(job) != JobStatus::Suspended) continue;
      if (!promotable(at)) continue;
      if (!best || at.score > best_score) {
        best = job;
        best_score = at.score;
      }
    }
    if (!best) break;
    if (!ops.start_job(*best)) return;
    paused_.erase(*best);
    ++late_promotions_;
  }
  // 2. Pending jobs, FIFO — grow the rung populations with fresh configs.
  while (ops.idle_machines() > 0) {
    std::optional<JobId> pending;
    for (const auto job : ops.active_jobs()) {
      if (ops.job_status(job) == JobStatus::Pending) {
        pending = job;
        break;
      }
    }
    if (!pending) break;
    if (!ops.start_job(*pending)) return;
  }
  // 3. Backfill: nothing promotable or pending, so run the best idle job
  //    rather than stranding the machine (suspended jobs carry no label, so
  //    get_idle_job yields them in FIFO order of suspension).
  if (config_.strict_promotion) return;
  while (ops.idle_machines() > 0) {
    const auto job = ops.get_idle_job();
    if (!job) return;
    if (!ops.start_job(*job)) return;
    if (paused_.erase(*job) > 0) ++backfills_;
  }
}

JobDecision AshaPolicy::on_iteration_finish(SchedulerOps& ops, const JobEvent& event) {
  // Resolve the first rung lazily against the workload if unset.
  if (config_.min_rung == 0)
    config_.min_rung = std::max<std::size_t>(1, ops.evaluation_boundary());

  const std::size_t rung = rung_at(event.epoch);
  if (rung != event.epoch) return JobDecision::Continue;

  auto& scores = rung_scores_[rung];
  scores.push_back(event.perf);
  if (scores.size() < config_.min_rung_population) return JobDecision::Continue;

  std::size_t strictly_better = 0;
  for (const double s : scores) {
    if (s > event.perf) ++strictly_better;
  }
  const double rank =
      static_cast<double>(strictly_better) / static_cast<double>(scores.size());
  if (rank <= 1.0 / config_.eta) {
    ++promotions_;
    return JobDecision::Continue;
  }
  ++pauses_;
  paused_[event.job_id] = Paused{rung, event.perf};
  return JobDecision::Suspend;
}

}  // namespace hyperdrive::core
