#include "core/policies/barrier_policy.hpp"

#include <stdexcept>

namespace hyperdrive::core {

BarrierPolicy::BarrierPolicy(std::unique_ptr<SchedulingPolicy> inner,
                             std::size_t epochs_per_round)
    : inner_(std::move(inner)), epochs_per_round_(epochs_per_round) {
  if (!inner_) throw std::invalid_argument("BarrierPolicy needs an inner policy");
}

void BarrierPolicy::on_experiment_start(SchedulerOps& ops) {
  inner_->on_experiment_start(ops);
  if (epochs_per_round_ == 0) {
    epochs_per_round_ = ops.evaluation_boundary() != 0 ? ops.evaluation_boundary() : 1;
  }
}

void BarrierPolicy::on_allocate(SchedulerOps& ops) { inner_->on_allocate(ops); }

void BarrierPolicy::on_application_stat(SchedulerOps& ops, const JobEvent& event) {
  inner_->on_application_stat(ops, event);
}

JobDecision BarrierPolicy::on_iteration_finish(SchedulerOps& ops, const JobEvent& event) {
  const JobDecision decision = inner_->on_iteration_finish(ops, event);
  if (decision != JobDecision::Continue) return decision;
  // Barrier: at round boundaries, yield the machine if anyone is waiting.
  if (event.epoch % epochs_per_round_ == 0 && ops.get_idle_job().has_value()) {
    return JobDecision::Suspend;
  }
  return JobDecision::Continue;
}

}  // namespace hyperdrive::core
