// Bandit SAP (§5.3): the action-elimination strategy of TuPAQ [25], built on
// Even-Dar et al.'s multi-armed-bandit stopping rule [12]. At every
// evaluation boundary a job survives iff its best performance so far,
// inflated by (1 + epsilon), still beats the global best across all jobs:
//
//     jobBest * (1 + epsilon) > globalBest   ->   continue, else terminate.
//
// Following the paper, epsilon = 0.50 and the boundary is 10 epochs for
// supervised learning; for reinforcement learning (where TuPAQ gives no
// guidance) the same boundary as POP is used — here both come from the
// workload's evaluation_boundary().
#pragma once

#include <map>

#include "core/policies/default_policy.hpp"

namespace hyperdrive::core {

struct BanditConfig {
  double epsilon = 0.50;
  /// Override the evaluation boundary; 0 = use the workload's.
  std::size_t boundary = 0;
};

class BanditPolicy final : public DefaultPolicy {
 public:
  explicit BanditPolicy(BanditConfig config = {}) : config_(config) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "bandit"; }

  void on_application_stat(SchedulerOps& ops, const JobEvent& event) override;
  JobDecision on_iteration_finish(SchedulerOps& ops, const JobEvent& event) override;

 private:
  BanditConfig config_;
  double global_best_ = 0.0;
  std::map<JobId, double> job_best_;
};

}  // namespace hyperdrive::core
