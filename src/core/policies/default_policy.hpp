// Default SAP (§4.2): greedily allocates idle jobs to idle machines and runs
// every job to its maximum epoch. Ignores application statistics. Serves
// both as the paper's "basic approach" baseline (random search with full
// executions) and as the base class the Bandit and EarlyTerm policies extend.
#pragma once

#include "core/sap.hpp"

namespace hyperdrive::core {

class DefaultPolicy : public SchedulingPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "default"; }

  /// Start as many idle jobs as there are idle machines.
  void on_allocate(SchedulerOps& ops) override;

  JobDecision on_iteration_finish(SchedulerOps& ops, const JobEvent& event) override;
};

}  // namespace hyperdrive::core
