#include "core/policies/default_policy.hpp"

namespace hyperdrive::core {

void DefaultPolicy::on_allocate(SchedulerOps& ops) {
  while (ops.idle_machines() > 0) {
    const auto job = ops.get_idle_job();
    if (!job) return;
    if (!ops.start_job(*job)) return;
  }
}

JobDecision DefaultPolicy::on_iteration_finish(SchedulerOps& /*ops*/,
                                               const JobEvent& /*event*/) {
  return JobDecision::Continue;
}

}  // namespace hyperdrive::core
