// PBT — population based training (Jaderberg et al.), implemented as a SAP
// on top of the substrate clone hook (SchedulerOps::clone_job).
//
// At every exploit boundary a job in the bottom quantile of the population
// (ranked by latest observed performance) *exploits* a donor drawn uniformly
// from the top quantile: the substrate clones the donor's trained weights
// into it via the snapshot migration path and *explores* by perturbing the
// donor's hyperparameters through the generator layer with a seed-derived
// RNG stream. The loser resumes training from the donor's snapshot epoch
// under the perturbed configuration.
//
// Cloning mutates the target job's ground truth, so it is never done while
// the decision for that job is still in flight: on_iteration_finish only
// records an exploit *intent* and suspends the target; the clone itself
// happens in the next on_allocate, once the target is provably idle. PBT
// never terminates a job — the wrong-kill oracle reports zero by
// construction.
#pragma once

#include <cstdint>
#include <vector>

#include "core/policies/default_policy.hpp"
#include "util/rng.hpp"

namespace hyperdrive::core {

struct PbtConfig {
  /// Exploit cadence in epochs; 0 = use the workload's evaluation boundary.
  std::size_t boundary = 0;
  /// A job ranked in the bottom `bottom_quantile` of the population exploits.
  double bottom_quantile = 0.25;
  /// Donors are drawn uniformly from the top `top_quantile`.
  double top_quantile = 0.25;
  /// Jobs with at least one observation required before exploits begin.
  std::size_t min_population = 4;
  /// Root seed: donor draws and the per-clone RNG streams handed to
  /// SchedulerOps::clone_job are both derived from it.
  std::uint64_t seed = 1;
};

class PbtPolicy final : public DefaultPolicy {
 public:
  explicit PbtPolicy(PbtConfig config = {});

  [[nodiscard]] std::string_view name() const noexcept override { return "pbt"; }

  void on_allocate(SchedulerOps& ops) override;
  JobDecision on_iteration_finish(SchedulerOps& ops, const JobEvent& event) override;

  /// Exploit intents recorded (bottom-quantile jobs suspended toward a clone).
  [[nodiscard]] std::size_t exploit_intents() const noexcept { return intents_recorded_; }
  /// Clones actually performed by the substrate.
  [[nodiscard]] std::size_t exploits() const noexcept { return exploits_; }

 private:
  struct Intent {
    JobId target = 0;
    JobId donor = 0;
  };

  PbtConfig config_;
  util::Rng rng_;
  std::vector<Intent> intents_;
  std::size_t intents_recorded_ = 0;
  std::size_t exploits_ = 0;
  std::uint64_t streams_issued_ = 0;
};

}  // namespace hyperdrive::core
