// HyperBand-style asynchronous successive halving (Li et al. [21], the
// "Sequential Search Algorithms" related work of §8), implemented as a SAP.
//
// Jobs are assigned round-robin to `num_brackets` brackets; bracket b checks
// its jobs at rungs min_rung * eta^(b), * eta^(b+1), ... (epochs). At each
// rung a job survives only if its performance ranks in the top 1/eta of all
// scores recorded at that rung of its bracket so far — the asynchronous
// (ASHA-style) promotion rule, which suits HyperDrive's schedule-as-it-goes
// execution where jobs reach rungs at different wall-clock times.
//
// Included both as a reusable policy and as the comparison point the paper
// positions POP against: successive halving allocates by *rank at a fixed
// budget*, POP by *predicted probability of reaching the target in the
// remaining time*.
#pragma once

#include <map>
#include <vector>

#include "core/policies/default_policy.hpp"

namespace hyperdrive::core {

struct HyperbandConfig {
  /// First rung (epochs); 0 = use the workload's evaluation boundary.
  std::size_t min_rung = 0;
  /// Downsampling rate between rungs (eta in [21]).
  double eta = 3.0;
  /// Number of brackets; bracket b starts at min_rung * eta^b.
  std::size_t num_brackets = 1;
  /// Don't eliminate at a rung before it has seen this many scores.
  std::size_t min_rung_population = 3;
};

class HyperbandPolicy final : public DefaultPolicy {
 public:
  explicit HyperbandPolicy(HyperbandConfig config = {});

  [[nodiscard]] std::string_view name() const noexcept override { return "hyperband"; }

  JobDecision on_iteration_finish(SchedulerOps& ops, const JobEvent& event) override;

  [[nodiscard]] std::size_t eliminations() const noexcept { return eliminations_; }

 private:
  [[nodiscard]] std::size_t bracket_of(JobId job) const noexcept;
  /// Smallest rung of `bracket` that is >= epoch, or 0 if epoch is below
  /// the bracket's first rung; returns epoch itself iff epoch is a rung.
  [[nodiscard]] std::size_t rung_at(std::size_t bracket, std::size_t epoch) const;

  HyperbandConfig config_;
  /// (bracket, rung) -> scores recorded so far.
  std::map<std::pair<std::size_t, std::size_t>, std::vector<double>> rung_scores_;
  std::size_t eliminations_ = 0;
};

}  // namespace hyperdrive::core
