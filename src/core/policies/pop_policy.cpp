#include "core/policies/pop_policy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace hyperdrive::core {

PopPolicy::PopPolicy(PopConfig config) : config_(std::move(config)) {
  if (!config_.predictor) throw std::invalid_argument("PopPolicy requires a curve predictor");
}

void PopPolicy::on_experiment_start(SchedulerOps& ops) {
  start_time_ = ops.now();
  target_ = std::isnan(config_.target) ? ops.target_performance() : config_.target;
  kill_threshold_ =
      std::isnan(config_.kill_threshold) ? ops.kill_threshold() : config_.kill_threshold;
  boundary_ = config_.boundary != 0 ? config_.boundary : ops.evaluation_boundary();
  if (boundary_ == 0) boundary_ = 10;
  prune_deferred_.clear();
}

double PopPolicy::confidence(JobId job) const {
  const auto it = beliefs_.find(job);
  return it == beliefs_.end() ? std::numeric_limits<double>::quiet_NaN()
                              : it->second.confidence;
}

util::SimTime PopPolicy::expected_remaining_time(JobId job) const {
  const auto it = beliefs_.find(job);
  return it == beliefs_.end() ? util::SimTime::infinity() : it->second.ert;
}

bool PopPolicy::update_belief(SchedulerOps& ops, JobId job,
                              const std::vector<double>& history) {
  if (history.size() < config_.min_history) return false;

  // Already there: a job that has observed the target has confidence 1 and
  // no remaining time (relevant when the experiment runs past the first hit,
  // e.g. best-within-budget mode).
  for (const double y : history) {
    if (y >= target_) {
      beliefs_[job] = JobBelief{1.0, util::SimTime::zero(), history.size()};
      return true;
    }
  }

  const util::SimTime tpass = ops.now() - start_time_;
  const util::SimTime remaining = config_.tmax - tpass;
  if (remaining <= util::SimTime::zero()) {
    beliefs_[job] = JobBelief{0.0, util::SimTime::infinity(), history.size()};
    return true;
  }

  // Speed-aware mode extrapolates from the epoch cost at *nominal* node
  // speed: a configuration is not slow just because its host is (the
  // observed average would inflate ERT and depress confidence for jobs that
  // had the bad luck of a degraded machine). Falls back to the raw average
  // on substrates without a health layer.
  util::SimTime epoch_duration = config_.speed_aware
                                     ? ops.normalized_epoch_duration(job)
                                     : ops.avg_epoch_duration(job);
  if (epoch_duration <= util::SimTime::zero()) return false;

  // M_i = (Tmax - Tpass) / Epoch_i, additionally capped by the epochs the
  // job can still train (it cannot run past the workload's max epoch).
  const auto by_time = static_cast<std::size_t>(remaining / epoch_duration);
  const std::size_t by_epochs =
      ops.max_epochs() > history.size() ? ops.max_epochs() - history.size() : 0;
  const std::size_t m_max = std::min(by_time, by_epochs);
  if (m_max == 0) {
    beliefs_[job] = JobBelief{0.0, util::SimTime::infinity(), history.size()};
    return true;
  }

  std::vector<double> future_epochs(m_max);
  for (std::size_t m = 0; m < m_max; ++m) {
    future_epochs[m] = static_cast<double>(history.size() + m + 1);
  }
  const auto prediction = config_.predictor->predict(
      history, future_epochs, static_cast<double>(ops.max_epochs()));
  ++predictions_;
  if (prediction.empty()) return false;

  // pmf of first reaching the target at the m-th future epoch (Eq. 2), with
  // the §3.1.1 truncation: stop accumulating once the partial ERT exceeds
  // the remaining experiment time.
  double p_sum = 0.0;
  double x = 0.0;  // expected remaining epochs, conditioned on the pmf mass
  double prev_reach = 0.0;
  bool truncated = false;
  for (std::size_t m = 1; m <= m_max; ++m) {
    const double reach = prediction.prob_reached_by(m - 1, target_);
    const double pm = std::max(0.0, reach - prev_reach);
    prev_reach = reach;
    p_sum += pm;
    x += static_cast<double>(m) * pm;
    if (epoch_duration * x > remaining) {
      truncated = true;
      break;
    }
  }

  JobBelief belief;
  belief.confidence = std::clamp(p_sum, 0.0, 1.0);
  belief.ert = truncated ? remaining : epoch_duration * x;
  if (p_sum <= 0.0) belief.ert = util::SimTime::infinity();
  belief.predicted_at_epoch = history.size();
  beliefs_[job] = belief;
  return true;
}

bool PopPolicy::classify_and_label(SchedulerOps& ops, JobId job) {
  const auto active = ops.active_jobs();
  const double total_slots = static_cast<double>(ops.total_machines());

  // Gather the confidence values of active jobs (jobs never predicted count
  // as confidence 0 — they are opportunistic by definition).
  std::vector<std::pair<double, JobId>> confident;  // (p, job), p > 0
  std::size_t with_confidence = 0;
  for (const JobId id : active) {
    const auto it = beliefs_.find(id);
    if (it == beliefs_.end()) continue;
    ++with_confidence;
    if (it->second.confidence > 0.0) confident.emplace_back(it->second.confidence, id);
  }
  std::sort(confident.begin(), confident.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  PopSnapshot snapshot;
  snapshot.time = ops.now();
  snapshot.active_jobs = active.size();
  for (const JobId id : active) {
    const auto status = ops.job_status(id);
    if (status == JobStatus::Running || status == JobStatus::Suspended) {
      ++snapshot.scheduled_jobs;
    }
    if (status == JobStatus::Running) ++snapshot.running_jobs;
  }
  snapshot.jobs_with_confidence = with_confidence;

  // Static-threshold ablation (§2.2c): promising = everyone above the fixed
  // p_thred, regardless of available slots.
  if (!std::isnan(config_.static_threshold)) {
    const std::set<JobId> previous = std::exchange(promising_, {});
    for (const auto& [p, id] : confident) {
      if (p >= config_.static_threshold) promising_.insert(id);
    }
    note_promotions(ops, previous);
    for (const JobId id : active) {
      ops.label_job(id, promising_.count(id) > 0 ? beliefs_[id].confidence : 0.0);
    }
    snapshot.promising_jobs = promising_.size();
    snapshot.threshold = config_.static_threshold;
    snapshot.effective_slots = static_cast<double>(promising_.size());
    snapshots_.push_back(std::move(snapshot));
    return promising_.count(job) > 0;
  }

  // Sweep candidate thresholds: the observed confidence values themselves.
  // After sorting descending, N_satisfying(confident[i].first) == i + 1.
  double best_eff = 0.0;
  double best_p = 0.0;
  std::size_t best_count = 0;
  for (std::size_t i = 0; i < confident.size(); ++i) {
    const double p = confident[i].first;
    const double desired = static_cast<double>(i + 1) * config_.slots_per_job;
    const double deserved = total_slots * p;
    const double eff = std::min(desired, deserved);
    if (config_.record_allocation_curves) {
      snapshot.curves.push_back({p, desired, deserved});
    }
    // Prefer the higher threshold on ties: fewer, stronger promising jobs.
    if (eff > best_eff + 1e-12) {
      best_eff = eff;
      best_p = p;
      best_count = i + 1;
    }
  }

  // The promising pool size is limited by both curves at the chosen p*:
  // S_effective(p*) slots fund floor-ish S_eff/k dedicated jobs. Rounding
  // (rather than flooring) lets a single high-confidence job (p near 1 on a
  // one-machine cluster, S*p slightly below 1) keep its dedicated slot.
  std::size_t n_promising = 0;
  if (best_count > 0 && config_.slots_per_job > 0.0) {
    n_promising = std::min(
        best_count,
        static_cast<std::size_t>(std::llround(best_eff / config_.slots_per_job)));
  }

  const std::set<JobId> previous = std::exchange(promising_, {});
  for (std::size_t i = 0; i < n_promising && i < confident.size(); ++i) {
    promising_.insert(confident[i].second);
  }
  note_promotions(ops, previous);

  // labelJob: promising jobs carry their confidence as priority so the Job
  // Manager resumes them first; everything else rejoins the FIFO class.
  for (const JobId id : active) {
    ops.label_job(id, promising_.count(id) > 0 ? beliefs_[id].confidence : 0.0);
  }

  snapshot.promising_jobs = promising_.size();
  snapshot.threshold = best_p;
  snapshot.effective_slots = best_eff;
  snapshots_.push_back(std::move(snapshot));

  return promising_.count(job) > 0;
}

void PopPolicy::note_promotions(SchedulerOps& ops, const std::set<JobId>& previous) {
  if (config_.obs.sink == nullptr && config_.obs.metrics == nullptr) return;
  for (const JobId id : promising_) {
    if (previous.count(id) > 0) continue;
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->counter("policy.promotions").add();
    }
    obs::TraceEvent event(obs::EventKind::PolicyPromote);
    event.time = ops.now();
    event.job = static_cast<std::int64_t>(id);
    config_.obs.emit(std::move(event));
  }
}

void PopPolicy::on_capacity_change(SchedulerOps& ops) {
  ++capacity_changes_;
  // The promising set was sized against the old S via S_deserved(p) = S * p
  // (§3.2); with a different machine count those slot counts are stale.
  // Drop the set and re-derive labels — the next boundary classification
  // rebuilds it against the new capacity.
  promising_.clear();
  for (const JobId id : ops.active_jobs()) ops.label_job(id, 0.0);
}

JobDecision PopPolicy::on_iteration_finish(SchedulerOps& ops, const JobEvent& event) {
  // Step 0: the model owner's rule sees every iteration first (§9); it can
  // veto POP entirely (e.g. kill on a secondary-metric constraint).
  if (config_.owner_rule) {
    if (const auto forced = config_.owner_rule(event)) return *forced;
  }

  // Dynamic-target mode: once the current target is observed, raise the bar
  // and invalidate the cached beliefs (they were relative to the old target).
  if (config_.dynamic_target_increment > 0.0 && event.perf >= target_) {
    target_ = event.perf + config_.dynamic_target_increment;
    ++target_raises_;
    beliefs_.clear();
    promising_.clear();
  }

  if (event.epoch % boundary_ != 0) return JobDecision::Continue;

  // Step 1 (§5.3): domain-knowledge kill threshold, checked before spending
  // any prediction effort.
  if (config_.use_kill_threshold && event.perf <= kill_threshold_) {
    return JobDecision::Terminate;
  }

  // Step 2: refresh this job's belief (expected remaining time + confidence).
  const auto& history = ops.perf_history(event.job_id);
  if (!update_belief(ops, event.job_id, history)) return JobDecision::Continue;

  // Step 3: prune hopeless jobs (confidence lower bound). On a degraded host
  // the time-based evidence is tainted (even the normalized extrapolation
  // lags while the EWMA converges), so the benefit of the doubt goes to the
  // configuration: migrate it to a healthy node instead of killing it — the
  // wrong-kill a gray failure would otherwise cause. The deferral is one-shot
  // per job: a second hopeless verdict terminates even on a degraded host,
  // otherwise a cluster whose every machine is (intermittently) slow could
  // bounce a doomed job between hosts until it runs to completion.
  if (beliefs_[event.job_id].confidence < config_.prune_confidence) {
    if (config_.speed_aware && ops.host_speed(event.job_id) < config_.degraded_speed &&
        prune_deferred_.insert(event.job_id).second) {
      ++slow_host_migrations_;
      return JobDecision::Suspend;
    }
    return JobDecision::Terminate;
  }

  // Step 4: dynamic threshold + classification + labelling.
  const bool is_promising = classify_and_label(ops, event.job_id);
  if (is_promising) {
    // A promising configuration deserves a healthy host: crawling on a
    // degraded node burns exactly the dedicated slots the classification
    // granted it. Suspend so it resumes — with its confidence as priority —
    // on the fastest machine available.
    if (config_.speed_aware && ops.host_speed(event.job_id) < config_.degraded_speed) {
      ++slow_host_migrations_;
      return JobDecision::Suspend;
    }
    return JobDecision::Continue;
  }

  // Step 5: opportunistic -> rotate, but only if someone is waiting.
  if (config_.rotate_opportunistic && ops.get_idle_job().has_value()) {
    return JobDecision::Suspend;
  }
  return JobDecision::Continue;
}

}  // namespace hyperdrive::core
