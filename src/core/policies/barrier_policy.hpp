// Barrier-like epoch scheduling (§4.2): "HyperDrive also supports
// barrier-like epoch scheduling, which some SAPs may prefer as it can help
// explore job configurations in a breadth-first style ... achieved by
// allowing the SAP to suspend jobs at every epoch boundary."
//
// BarrierPolicy is a decorator: the inner SAP keeps full control of
// termination, but whenever it would Continue at a barrier epoch and other
// idle work is waiting, the job is suspended instead — rotating the whole
// candidate set through the machines, round-robin, `epochs_per_round` epochs
// at a time.
#pragma once

#include <memory>

#include "core/sap.hpp"

namespace hyperdrive::core {

class BarrierPolicy final : public SchedulingPolicy {
 public:
  /// `epochs_per_round` = 0 uses the workload's evaluation boundary.
  BarrierPolicy(std::unique_ptr<SchedulingPolicy> inner, std::size_t epochs_per_round = 0);

  [[nodiscard]] std::string_view name() const noexcept override { return "barrier"; }
  [[nodiscard]] const SchedulingPolicy& inner() const noexcept { return *inner_; }

  void on_experiment_start(SchedulerOps& ops) override;
  void on_allocate(SchedulerOps& ops) override;
  void on_application_stat(SchedulerOps& ops, const JobEvent& event) override;
  JobDecision on_iteration_finish(SchedulerOps& ops, const JobEvent& event) override;

 private:
  std::unique_ptr<SchedulingPolicy> inner_;
  std::size_t epochs_per_round_;
};

}  // namespace hyperdrive::core
