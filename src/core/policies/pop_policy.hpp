// POP — the paper's scheduling algorithm (§3, §5.3). Classifies active
// configurations into Promising / Opportunistic / Poor and infuses the
// classification with resource allocation:
//
//  Poor        — below the domain-knowledge kill threshold at an evaluation
//                boundary, or prediction confidence p < 0.05: terminated.
//  Promising   — high confidence of reaching the target within the remaining
//                experiment time: given dedicated slots, labelled with
//                priority p so they resume first.
//  Opportunistic — everything else: round-robin over the leftover slots
//                (suspended at each boundary so the pool rotates).
//
// Per §3.1.1 the expected remaining time of job i is
//     ERT_i = x_i * Epoch_i,   x_i = sum_m m * p_m   (Eq. 2-3)
// with p_m the pmf of first reaching y_target at future epoch m, derived
// from the learning-curve posterior. The confidence is p = sum_m p_m,
// truncated once the partial ERT exceeds Tmax - Tpass.
//
// Per §3.2 the number of promising slots maximizes
//     S_effective(p) = min(S_desired(p), S_deserved(p))
//                    = min(N_satisfying(p) * k, S * p)
// over the observed confidence values p, which is the crossing point of the
// two curves in Fig. 4a/4b.
//
// Implementation notes vs. the paper:
//   * p_m is computed from P(reached-by-m), the running max over posterior
//     curves, which is monotone in m — this keeps the pmf non-negative even
//     for non-monotone posterior samples (the paper's instantaneous
//     P(y(m) >= y) differences can go negative; the semantics "first epoch
//     the target is reached" are unchanged).
//   * An opportunistic job is only suspended when another idle job is
//     waiting; suspending into an empty queue would pay snapshot cost for
//     nothing.
#pragma once

#include <array>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "core/policies/default_policy.hpp"
#include "curve/predictor.hpp"
#include "obs/scope.hpp"
#include "util/sim_time.hpp"

namespace hyperdrive::core {

struct PopConfig {
  /// The user's maximum experiment time Tmax (§3.1.1 input parameter).
  util::SimTime tmax = util::SimTime::hours(24);
  /// Target performance y_target; NaN = use the workload's.
  double target = std::numeric_limits<double>::quiet_NaN();
  /// Evaluation boundary b; 0 = use the workload's (10 supervised / RL).
  std::size_t boundary = 0;
  /// Kill threshold; NaN = use the workload's domain knowledge.
  double kill_threshold = std::numeric_limits<double>::quiet_NaN();
  /// Terminate jobs whose confidence p falls below this (§5.3).
  double prune_confidence = 0.05;
  /// Dedicated slots per promising configuration (k in §3.2).
  double slots_per_job = 1.0;
  /// Observations required before the first prediction.
  std::size_t min_history = 4;
  /// Suspend opportunistic jobs at boundaries to rotate the pool. Disable
  /// for the no-suspend ablation (jobs then keep running FIFO).
  bool rotate_opportunistic = true;
  /// Ablation of §2.2c: use a fixed confidence threshold p_thred instead of
  /// the dynamic desired/deserved crossing. NaN (default) = dynamic.
  double static_threshold = std::numeric_limits<double>::quiet_NaN();
  /// Ablation of §2.1: disable the domain-knowledge kill rule.
  bool use_kill_threshold = true;
  /// Record the desired/deserved slot curves at every classification
  /// (Fig. 4a/4b); costs memory, off by default.
  bool record_allocation_curves = false;
  /// Gray-failure awareness (DESIGN.md §7). When true, time-to-accuracy is
  /// extrapolated from SchedulerOps::normalized_epoch_duration (epoch cost
  /// at nominal node speed) instead of the raw average, and a job whose host
  /// speed is below `degraded_speed` is migrated (suspend -> resume on a
  /// healthier node) where POP would otherwise kill it on time-based
  /// evidence or leave a promising config crawling. On substrates without a
  /// health layer the hooks default to "everything nominal", so this flag
  /// changes nothing there.
  bool speed_aware = true;
  /// Host speed score below which a node counts as degraded for the
  /// migrate-not-kill rules (mirror of HealthOptions::slow_speed).
  double degraded_speed = 0.6;
  /// Model-owner rule evaluated first at every iteration (§2.1 / §9 "model-
  /// owner-defined metrics and inputs"): may force a decision (e.g. kill a
  /// job whose secondary metric proves it cannot meet a sparsity goal) or
  /// return nullopt to defer to POP.
  std::function<std::optional<JobDecision>(const JobEvent&)> owner_rule;
  /// Dynamic target mode (§9 "User inputs"): when the current target is
  /// reached and the experiment keeps running (stop_on_target = false), the
  /// target is raised by this increment — a way to search without a known
  /// y_target. 0 disables.
  double dynamic_target_increment = 0.0;
  std::shared_ptr<const curve::CurvePredictor> predictor;
  /// Instrumentation handle (DESIGN.md §10): jobs entering the promising set
  /// emit PolicyPromote events and bump policy.promotions. The policy never
  /// writes the cluster's legacy event log, so golden traces are unaffected.
  obs::Scope obs;
};

/// One classification round's bookkeeping, for Fig. 4 and the tests.
struct PopSnapshot {
  util::SimTime time = util::SimTime::zero();
  std::size_t active_jobs = 0;  ///< pending + running + suspended
  /// Jobs actually occupying or contending for machines (running or
  /// suspended).
  std::size_t scheduled_jobs = 0;
  /// Jobs currently holding a machine — the denominator of Fig. 4c's
  /// promising/active ratio (active jobs in the paper's plot are the ones
  /// occupying slots).
  std::size_t running_jobs = 0;
  std::size_t jobs_with_confidence = 0;
  std::size_t promising_jobs = 0;
  double threshold = 0.0;          ///< chosen p* (0 when nothing qualifies)
  double effective_slots = 0.0;    ///< S_effective(p*)
  /// (p, S_desired(p), S_deserved(p)) samples, present only when
  /// record_allocation_curves is set.
  std::vector<std::array<double, 3>> curves;
};

class PopPolicy final : public DefaultPolicy {
 public:
  explicit PopPolicy(PopConfig config);

  [[nodiscard]] std::string_view name() const noexcept override { return "pop"; }

  void on_experiment_start(SchedulerOps& ops) override;
  JobDecision on_iteration_finish(SchedulerOps& ops, const JobEvent& event) override;
  void on_capacity_change(SchedulerOps& ops) override;

  [[nodiscard]] const std::vector<PopSnapshot>& snapshots() const noexcept {
    return snapshots_;
  }
  [[nodiscard]] std::size_t predictions_made() const noexcept { return predictions_; }
  /// Current promising set (the P of P/O/P). Exposed for invariant tests.
  [[nodiscard]] const std::set<JobId>& promising_jobs() const noexcept { return promising_; }
  /// Latest confidence for a job (NaN if never predicted). Exposed for tests.
  [[nodiscard]] double confidence(JobId job) const;
  /// Latest expected remaining time for a job (infinity if unknown).
  [[nodiscard]] util::SimTime expected_remaining_time(JobId job) const;
  /// The target currently in force (rises in dynamic-target mode).
  [[nodiscard]] double current_target() const noexcept { return target_; }
  /// Times the dynamic target was raised.
  [[nodiscard]] std::size_t target_raises() const noexcept { return target_raises_; }
  /// Times cluster membership changed under this policy (crash/restart).
  [[nodiscard]] std::size_t capacity_changes() const noexcept { return capacity_changes_; }
  /// Suspends issued to move a job off a degraded host instead of killing or
  /// continuing it (speed_aware mode).
  [[nodiscard]] std::size_t slow_host_migrations() const noexcept {
    return slow_host_migrations_;
  }

 private:
  struct JobBelief {
    double confidence = 0.0;
    util::SimTime ert = util::SimTime::infinity();
    std::size_t predicted_at_epoch = 0;
  };

  /// Update `belief` for the job from its history (Eq. 1-3). Returns false
  /// if no prediction was possible.
  bool update_belief(SchedulerOps& ops, JobId job, const std::vector<double>& history);
  /// Recompute p*, the promising set, and labels; returns whether `job` is
  /// in the promising set.
  bool classify_and_label(SchedulerOps& ops, JobId job);
  /// Emit a PolicyPromote event for every job in promising_ that was not in
  /// `previous` (no-op with a detached scope).
  void note_promotions(SchedulerOps& ops, const std::set<JobId>& previous);

  PopConfig config_;
  double target_ = 0.0;
  double kill_threshold_ = 0.0;
  std::size_t boundary_ = 10;
  util::SimTime start_time_ = util::SimTime::zero();
  std::map<JobId, JobBelief> beliefs_;
  std::set<JobId> promising_;
  std::vector<PopSnapshot> snapshots_;
  std::size_t predictions_ = 0;
  std::size_t target_raises_ = 0;
  std::size_t capacity_changes_ = 0;
  std::size_t slow_host_migrations_ = 0;
  /// Jobs whose hopeless verdict was already deferred once because they sat
  /// on a degraded host; the next hopeless verdict terminates them.
  std::set<JobId> prune_deferred_;
};

}  // namespace hyperdrive::core
