// ASHA — asynchronous successive halving (Li et al., "A System for
// Massively Parallel Hyperparameter Tuning"), implemented as a SAP.
//
// Like the HyperbandPolicy, jobs are checked at geometrically spaced rungs
// min_rung * eta^k (epochs) and survive a rung only when their score ranks
// in the top 1/eta of everything recorded at that rung so far. The
// difference is what happens to the losers: HyperbandPolicy *terminates*
// them, ASHA *pauses* them. A paused job stays resumable — as later
// arrivals fill in the rung its rank can rise into the promotion zone, and
// on_allocate resumes it ahead of pending work. That asynchronous
// promote-when-ranked rule is what makes the halving schedule-free: no
// bracket ever blocks waiting for stragglers, and no job is irrevocably
// killed on a provisional rank (zero wrong-kills by construction).
//
// Allocation order at every idle resource:
//   1. paused jobs whose rung rank has risen into the top 1/eta (best score
//      first) — the ASHA promotion rule;
//   2. pending jobs in FIFO order — grow the rung populations;
//   3. opportunistic backfill: the best idle job by queue priority, so
//      machines never sit idle while unpromotable work exists (mirrors
//      POP's opportunistic pool; disable via strict_promotion).
#pragma once

#include <map>
#include <vector>

#include "core/policies/default_policy.hpp"

namespace hyperdrive::core {

struct AshaConfig {
  /// First rung (epochs); 0 = use the workload's evaluation boundary.
  std::size_t min_rung = 0;
  /// Downsampling rate between rungs: the top 1/eta of a rung is promoted.
  double eta = 3.0;
  /// Don't pause at a rung before it has seen this many scores.
  std::size_t min_rung_population = 3;
  /// When true, idle machines are only given to promotable or pending jobs
  /// (textbook ASHA: losers wait for their rank to rise). Default keeps the
  /// backfill rule so fixed-size traces don't strand capacity.
  bool strict_promotion = false;
};

class AshaPolicy final : public DefaultPolicy {
 public:
  explicit AshaPolicy(AshaConfig config = {});

  [[nodiscard]] std::string_view name() const noexcept override { return "asha"; }

  void on_allocate(SchedulerOps& ops) override;
  JobDecision on_iteration_finish(SchedulerOps& ops, const JobEvent& event) override;

  /// Rung survivals: jobs that ranked in the top 1/eta when they reported.
  [[nodiscard]] std::size_t promotions() const noexcept { return promotions_; }
  /// Jobs paused at a rung (may later resume).
  [[nodiscard]] std::size_t pauses() const noexcept { return pauses_; }
  /// Paused jobs resumed because their rung rank rose into the top 1/eta.
  [[nodiscard]] std::size_t late_promotions() const noexcept { return late_promotions_; }
  /// Paused jobs resumed by the opportunistic backfill rule.
  [[nodiscard]] std::size_t backfills() const noexcept { return backfills_; }

 private:
  struct Paused {
    std::size_t rung = 0;
    double score = 0.0;
  };

  /// Smallest rung >= epoch (0 if epoch is below the first rung); returns
  /// epoch itself iff epoch is a rung.
  [[nodiscard]] std::size_t rung_at(std::size_t epoch) const;
  /// Whether `score` ranks in the top 1/eta of `rung`'s records right now.
  [[nodiscard]] bool promotable(const Paused& at) const;

  AshaConfig config_;
  /// rung -> scores recorded so far (single shared bracket).
  std::map<std::size_t, std::vector<double>> rung_scores_;
  /// Jobs this policy paused, with the rung and score they paused at.
  std::map<JobId, Paused> paused_;
  std::size_t promotions_ = 0;
  std::size_t pauses_ = 0;
  std::size_t late_promotions_ = 0;
  std::size_t backfills_ = 0;
};

}  // namespace hyperdrive::core
