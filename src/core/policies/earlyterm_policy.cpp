#include "core/policies/earlyterm_policy.hpp"

#include <algorithm>
#include <stdexcept>

namespace hyperdrive::core {

EarlyTermPolicy::EarlyTermPolicy(EarlyTermConfig config) : config_(std::move(config)) {
  if (!config_.predictor) {
    throw std::invalid_argument("EarlyTermPolicy requires a curve predictor");
  }
}

void EarlyTermPolicy::on_application_stat(SchedulerOps& /*ops*/, const JobEvent& event) {
  global_best_ = std::max(global_best_, event.perf);
}

JobDecision EarlyTermPolicy::on_iteration_finish(SchedulerOps& ops, const JobEvent& event) {
  const std::size_t boundary =
      config_.boundary != 0 ? config_.boundary : ops.evaluation_boundary();
  if (boundary == 0 || event.epoch % boundary != 0) return JobDecision::Continue;

  const auto& history = ops.perf_history(event.job_id);
  if (history.size() < config_.min_history) return JobDecision::Continue;
  const std::size_t max_epoch = ops.max_epochs();
  if (history.size() >= max_epoch) return JobDecision::Continue;

  // If the job itself holds the global best it trivially survives.
  const double job_best = *std::max_element(history.begin(), history.end());
  if (job_best >= global_best_) return JobDecision::Continue;

  const std::vector<double> future = {static_cast<double>(max_epoch)};
  const auto prediction = config_.predictor->predict(
      history, future, static_cast<double>(max_epoch));
  ++predictions_;
  if (prediction.empty()) return JobDecision::Continue;

  const double pval = prediction.prob_at_least(0, global_best_);
  return pval < config_.delta ? JobDecision::Terminate : JobDecision::Continue;
}

}  // namespace hyperdrive::core
