#include "core/policies/hyperband_policy.hpp"

#include <cmath>
#include <stdexcept>

namespace hyperdrive::core {

HyperbandPolicy::HyperbandPolicy(HyperbandConfig config) : config_(config) {
  if (config_.eta <= 1.0) throw std::invalid_argument("hyperband eta must be > 1");
  if (config_.num_brackets == 0) throw std::invalid_argument("need >= 1 bracket");
}

std::size_t HyperbandPolicy::bracket_of(JobId job) const noexcept {
  return static_cast<std::size_t>(job) % config_.num_brackets;
}

std::size_t HyperbandPolicy::rung_at(std::size_t bracket, std::size_t epoch) const {
  double rung = static_cast<double>(config_.min_rung);
  for (std::size_t b = 0; b < bracket; ++b) rung *= config_.eta;
  while (static_cast<std::size_t>(std::llround(rung)) < epoch) rung *= config_.eta;
  return static_cast<std::size_t>(std::llround(rung));
}

JobDecision HyperbandPolicy::on_iteration_finish(SchedulerOps& ops, const JobEvent& event) {
  const std::size_t min_rung =
      config_.min_rung != 0 ? config_.min_rung : std::max<std::size_t>(1, ops.evaluation_boundary());
  // Resolve the first rung lazily against the workload if unset.
  if (config_.min_rung == 0) config_.min_rung = min_rung;

  const std::size_t bracket = bracket_of(event.job_id);
  const std::size_t rung = rung_at(bracket, event.epoch);
  if (rung != event.epoch) return JobDecision::Continue;

  auto& scores = rung_scores_[{bracket, rung}];
  scores.push_back(event.perf);
  if (scores.size() < config_.min_rung_population) return JobDecision::Continue;

  std::size_t strictly_better = 0;
  for (const double s : scores) {
    if (s > event.perf) ++strictly_better;
  }
  const double rank =
      static_cast<double>(strictly_better) / static_cast<double>(scores.size());
  if (rank > 1.0 / config_.eta) {
    ++eliminations_;
    return JobDecision::Terminate;
  }
  return JobDecision::Continue;
}

}  // namespace hyperdrive::core
