// Hyperparameter Generator (§4.2 ➁): the pluggable component that produces
// concrete configurations within user-specified ranges. The API is exactly
// the paper's:
//
//     createJob() -> (jobID, hyperparameters)
//     reportFinalPerformance(jobID, performance)
//
// Random and grid generators ignore the feedback call; the adaptive
// generator uses it the way Bayesian-optimization shims would (§4.2
// "Adaptive techniques ... can be plugged into HyperDrive with the use of a
// shim that exposes the HG API").
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "core/sap.hpp"
#include "util/rng.hpp"
#include "workload/hyperparameters.hpp"
#include "workload/trace.hpp"

namespace hyperdrive::core {

class HyperparameterGenerator {
 public:
  virtual ~HyperparameterGenerator() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// createJob(): mint a fresh (jobID, configuration) pair.
  [[nodiscard]] virtual std::pair<JobId, workload::Configuration> create_job() = 0;

  /// reportFinalPerformance(jobID, performance): feedback for adaptive
  /// generators. Default: ignored.
  virtual void report_final_performance(JobId job, double performance);
};

/// Uniform (log-uniform where flagged) random search over the space.
[[nodiscard]] std::unique_ptr<HyperparameterGenerator> make_random_generator(
    const workload::HyperparameterSpace& space, std::uint64_t seed);

/// Grid search: enumerates an axis-aligned grid lazily; wraps around (with a
/// warning count available) if asked for more configs than grid points.
[[nodiscard]] std::unique_ptr<HyperparameterGenerator> make_grid_generator(
    const workload::HyperparameterSpace& space, std::size_t points_per_dim,
    std::size_t max_grid_configs = 100000);

/// A simple adaptive generator standing in for Bayesian-optimization shims:
/// the first `warmup` jobs are random; afterwards each new configuration is
/// (with probability `exploit_prob`) a log-space Gaussian perturbation of
/// the best configuration reported so far, otherwise uniform random.
[[nodiscard]] std::unique_ptr<HyperparameterGenerator> make_adaptive_generator(
    const workload::HyperparameterSpace& space, std::uint64_t seed,
    std::size_t warmup = 10, double exploit_prob = 0.5, double perturb_scale = 0.15);

/// Tree-structured Parzen Estimator (Bergstra et al., the HyperOpt [18]
/// approach): reported results are split into the top `gamma` fraction
/// ("good") and the rest ("bad"); each new configuration is the candidate —
/// out of `n_candidates` draws from a per-dimension KDE over the good set —
/// that maximizes the density ratio l(x)/g(x). Falls back to random until
/// `warmup` results have been reported.
[[nodiscard]] std::unique_ptr<HyperparameterGenerator> make_tpe_generator(
    const workload::HyperparameterSpace& space, std::uint64_t seed,
    std::size_t warmup = 15, double gamma = 0.25, std::size_t n_candidates = 24);

/// Gaussian perturbation of `base`, per dimension of `space`: log-space for
/// log-scaled continuous domains, clamped back into the box; integer domains
/// round to the nearest step; categoricals resample with probability
/// `scale`. This is the exploit/explore move shared by the adaptive
/// generator and PBT's explore step — one rng draw per dimension, in
/// space order.
[[nodiscard]] workload::Configuration perturb_configuration(
    const workload::HyperparameterSpace& space, const workload::Configuration& base,
    util::Rng& rng, double scale);

/// Model-backed explore hook for PBT (workload::ExploreFn): perturb the
/// donor's configuration via perturb_configuration with an Rng seeded from
/// `stream`, re-realize it against `model` under the same stream, then
/// splice — the donor's observed epochs are adopted verbatim and the
/// realized continuation is shifted so the curve is continuous at the clone
/// epoch (the clone resumes from the donor's weights, not from scratch).
[[nodiscard]] workload::ExploreFn make_model_explore(
    std::shared_ptr<const workload::WorkloadModel> model, double perturb_scale = 0.15);

}  // namespace hyperdrive::core
