#include "core/generators/hyperparameter_generator.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <stdexcept>

namespace hyperdrive::core {

void HyperparameterGenerator::report_final_performance(JobId /*job*/, double /*performance*/) {}

namespace {

class RandomGenerator final : public HyperparameterGenerator {
 public:
  RandomGenerator(const workload::HyperparameterSpace& space, std::uint64_t seed)
      : space_(space), rng_(util::derive_seed(seed, 0x9a7d)) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "random"; }

  [[nodiscard]] std::pair<JobId, workload::Configuration> create_job() override {
    return {next_id_++, space_.sample(rng_)};
  }

 private:
  const workload::HyperparameterSpace& space_;
  util::Rng rng_;
  JobId next_id_ = 1;
};

class GridGenerator final : public HyperparameterGenerator {
 public:
  GridGenerator(const workload::HyperparameterSpace& space, std::size_t points_per_dim,
                std::size_t max_grid_configs)
      : grid_(space.grid(points_per_dim, max_grid_configs)) {
    if (grid_.empty()) throw std::invalid_argument("empty grid");
  }

  [[nodiscard]] std::string_view name() const noexcept override { return "grid"; }

  [[nodiscard]] std::pair<JobId, workload::Configuration> create_job() override {
    const auto& config = grid_[cursor_ % grid_.size()];
    if (cursor_ >= grid_.size()) ++wraps_;
    ++cursor_;
    return {next_id_++, config};
  }

  [[nodiscard]] std::size_t wraps() const noexcept { return wraps_; }

 private:
  std::vector<workload::Configuration> grid_;
  std::size_t cursor_ = 0;
  std::size_t wraps_ = 0;
  JobId next_id_ = 1;
};

class AdaptiveGenerator final : public HyperparameterGenerator {
 public:
  AdaptiveGenerator(const workload::HyperparameterSpace& space, std::uint64_t seed,
                    std::size_t warmup, double exploit_prob, double perturb_scale)
      : space_(space),
        rng_(util::derive_seed(seed, 0xada7)),
        warmup_(warmup),
        exploit_prob_(exploit_prob),
        perturb_scale_(perturb_scale) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "adaptive"; }

  [[nodiscard]] std::pair<JobId, workload::Configuration> create_job() override {
    const JobId id = next_id_++;
    workload::Configuration config;
    if (created_ < warmup_ || !best_config_.has_value() ||
        !rng_.bernoulli(exploit_prob_)) {
      config = space_.sample(rng_);
    } else {
      config = perturb(*best_config_);
    }
    ++created_;
    issued_[id] = config;
    return {id, config};
  }

  void report_final_performance(JobId job, double performance) override {
    const auto it = issued_.find(job);
    if (it == issued_.end()) return;
    if (!best_config_.has_value() || performance > best_performance_) {
      best_performance_ = performance;
      best_config_ = it->second;
    }
  }

 private:
  /// The shared exploit/explore move (perturb_configuration below).
  [[nodiscard]] workload::Configuration perturb(const workload::Configuration& base) {
    return perturb_configuration(space_, base, rng_, perturb_scale_);
  }

  const workload::HyperparameterSpace& space_;
  util::Rng rng_;
  std::size_t warmup_;
  double exploit_prob_;
  double perturb_scale_;
  JobId next_id_ = 1;
  std::size_t created_ = 0;
  std::map<JobId, workload::Configuration> issued_;
  std::optional<workload::Configuration> best_config_;
  double best_performance_ = 0.0;
};

/// Tree-structured Parzen Estimator over the (independent) dimensions of the
/// space. Continuous/integer dimensions are handled in a normalized [0, 1]
/// coordinate (log-scaled where flagged); categoricals use smoothed counts.
class TpeGenerator final : public HyperparameterGenerator {
 public:
  TpeGenerator(const workload::HyperparameterSpace& space, std::uint64_t seed,
               std::size_t warmup, double gamma, std::size_t n_candidates)
      : space_(space),
        rng_(util::derive_seed(seed, 0x79e1)),
        warmup_(warmup),
        gamma_(std::clamp(gamma, 0.05, 0.5)),
        n_candidates_(std::max<std::size_t>(2, n_candidates)) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "tpe"; }

  [[nodiscard]] std::pair<JobId, workload::Configuration> create_job() override {
    const JobId id = next_id_++;
    workload::Configuration config;
    if (observed_.size() < warmup_) {
      config = space_.sample(rng_);
    } else {
      config = propose();
    }
    issued_[id] = config;
    return {id, config};
  }

  void report_final_performance(JobId job, double performance) override {
    const auto it = issued_.find(job);
    if (it == issued_.end()) return;
    observed_.emplace_back(it->second, performance);
  }

 private:
  /// Map a dimension's value into [0, 1] (log space where flagged).
  [[nodiscard]] double to_unit(const workload::ParamDomain& domain,
                               const workload::Configuration& config,
                               const std::string& dim_name) const {
    if (const auto* c = std::get_if<workload::ContinuousDomain>(&domain)) {
      const double v = config.get_double(dim_name);
      if (c->log_scale) {
        return (std::log(v) - std::log(c->lo)) / (std::log(c->hi) - std::log(c->lo));
      }
      return (v - c->lo) / (c->hi - c->lo);
    }
    const auto* i = std::get_if<workload::IntegerDomain>(&domain);
    const auto v = static_cast<double>(config.get_int(dim_name));
    if (i->log_scale) {
      return (std::log(v) - std::log(static_cast<double>(i->lo))) /
             (std::log(static_cast<double>(i->hi)) - std::log(static_cast<double>(i->lo)));
    }
    return (v - static_cast<double>(i->lo)) /
           std::max(1.0, static_cast<double>(i->hi - i->lo));
  }

  [[nodiscard]] workload::ParamValue from_unit(const workload::ParamDomain& domain,
                                               double u) const {
    u = std::clamp(u, 0.0, 1.0);
    if (const auto* c = std::get_if<workload::ContinuousDomain>(&domain)) {
      double v;
      if (c->log_scale) {
        // exp(log(lo)) can round a hair below lo; clamp back into the box.
        v = std::exp(std::log(c->lo) + u * (std::log(c->hi) - std::log(c->lo)));
      } else {
        v = c->lo + u * (c->hi - c->lo);
      }
      return std::clamp(v, c->lo, c->hi);
    }
    const auto* i = std::get_if<workload::IntegerDomain>(&domain);
    double v;
    if (i->log_scale) {
      v = std::exp(std::log(static_cast<double>(i->lo)) +
                   u * (std::log(static_cast<double>(i->hi)) -
                        std::log(static_cast<double>(i->lo))));
    } else {
      v = static_cast<double>(i->lo) + u * static_cast<double>(i->hi - i->lo);
    }
    return std::clamp<std::int64_t>(static_cast<std::int64_t>(std::llround(v)), i->lo,
                                    i->hi);
  }

  /// log of a per-dim Gaussian KDE with a minimum bandwidth.
  [[nodiscard]] static double log_kde(double u, const std::vector<double>& centers) {
    if (centers.empty()) return 0.0;
    double mean = 0.0;
    for (const double c : centers) mean += c;
    mean /= static_cast<double>(centers.size());
    double var = 0.0;
    for (const double c : centers) var += (c - mean) * (c - mean);
    var /= static_cast<double>(centers.size());
    const double bandwidth = std::max(0.08, std::sqrt(var));
    double density = 0.0;
    for (const double c : centers) {
      const double z = (u - c) / bandwidth;
      density += std::exp(-0.5 * z * z);
    }
    return std::log(density / (static_cast<double>(centers.size()) * bandwidth) + 1e-12);
  }

  [[nodiscard]] workload::Configuration propose() {
    // Split observations into good (top gamma fraction) and bad.
    auto sorted = observed_;
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    const std::size_t n_good = std::max<std::size_t>(
        2, static_cast<std::size_t>(std::ceil(gamma_ * static_cast<double>(sorted.size()))));

    workload::Configuration best_candidate;
    double best_score = -std::numeric_limits<double>::infinity();
    for (std::size_t cand = 0; cand < n_candidates_; ++cand) {
      workload::Configuration candidate;
      double score = 0.0;
      for (const auto& [dim_name, domain] : space_.dims()) {
        if (const auto* cat = std::get_if<workload::CategoricalDomain>(&domain)) {
          // Smoothed counts over the good set; score = log P_good - log P_bad.
          std::map<std::string, double> good_counts, bad_counts;
          for (const auto& opt : cat->options) {
            good_counts[opt] = 1.0;  // Laplace smoothing
            bad_counts[opt] = 1.0;
          }
          for (std::size_t i = 0; i < sorted.size(); ++i) {
            auto& counts = i < n_good ? good_counts : bad_counts;
            counts[sorted[i].first.get_categorical(dim_name)] += 1.0;
          }
          std::vector<double> weights;
          weights.reserve(cat->options.size());
          double good_total = 0.0, bad_total = 0.0;
          for (const auto& opt : cat->options) {
            weights.push_back(good_counts[opt]);
            good_total += good_counts[opt];
            bad_total += bad_counts[opt];
          }
          const auto idx = rng_.categorical(weights);
          const auto& chosen = cat->options[idx];
          candidate.set(dim_name, chosen);
          score += std::log(good_counts[chosen] / good_total) -
                   std::log(bad_counts[chosen] / bad_total);
          continue;
        }
        std::vector<double> good_units, bad_units;
        for (std::size_t i = 0; i < sorted.size(); ++i) {
          (i < n_good ? good_units : bad_units)
              .push_back(to_unit(domain, sorted[i].first, dim_name));
        }
        // Sample from the good KDE: random good center + bandwidth jitter.
        const auto center = good_units[static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(good_units.size()) - 1))];
        const double u = std::clamp(center + rng_.normal(0.0, 0.1), 0.0, 1.0);
        candidate.set(dim_name, from_unit(domain, u));
        score += log_kde(u, good_units) - log_kde(u, bad_units);
      }
      if (score > best_score) {
        best_score = score;
        best_candidate = std::move(candidate);
      }
    }
    return best_candidate;
  }

  const workload::HyperparameterSpace& space_;
  util::Rng rng_;
  std::size_t warmup_;
  double gamma_;
  std::size_t n_candidates_;
  JobId next_id_ = 1;
  std::map<JobId, workload::Configuration> issued_;
  std::vector<std::pair<workload::Configuration, double>> observed_;
};

}  // namespace

std::unique_ptr<HyperparameterGenerator> make_random_generator(
    const workload::HyperparameterSpace& space, std::uint64_t seed) {
  return std::make_unique<RandomGenerator>(space, seed);
}

std::unique_ptr<HyperparameterGenerator> make_grid_generator(
    const workload::HyperparameterSpace& space, std::size_t points_per_dim,
    std::size_t max_grid_configs) {
  return std::make_unique<GridGenerator>(space, points_per_dim, max_grid_configs);
}

std::unique_ptr<HyperparameterGenerator> make_adaptive_generator(
    const workload::HyperparameterSpace& space, std::uint64_t seed, std::size_t warmup,
    double exploit_prob, double perturb_scale) {
  return std::make_unique<AdaptiveGenerator>(space, seed, warmup, exploit_prob,
                                             perturb_scale);
}

std::unique_ptr<HyperparameterGenerator> make_tpe_generator(
    const workload::HyperparameterSpace& space, std::uint64_t seed, std::size_t warmup,
    double gamma, std::size_t n_candidates) {
  return std::make_unique<TpeGenerator>(space, seed, warmup, gamma, n_candidates);
}

workload::Configuration perturb_configuration(const workload::HyperparameterSpace& space,
                                              const workload::Configuration& base,
                                              util::Rng& rng, double scale) {
  // Gaussian perturbation per dimension, in log space for log-scaled
  // domains, clamped back into the box. Categoricals resample with small
  // probability. Draw order is fixed (space order, one draw per dimension).
  workload::Configuration out;
  for (const auto& [name, domain] : space.dims()) {
    if (const auto* c = std::get_if<workload::ContinuousDomain>(&domain)) {
      double v = base.get_double(name);
      if (c->log_scale) {
        const double span = std::log(c->hi) - std::log(c->lo);
        v = std::exp(std::log(v) + rng.normal(0.0, scale * span));
      } else {
        v += rng.normal(0.0, scale * (c->hi - c->lo));
      }
      out.set(name, std::clamp(v, c->lo, c->hi));
    } else if (const auto* i = std::get_if<workload::IntegerDomain>(&domain)) {
      double v = static_cast<double>(base.get_int(name));
      const double span = static_cast<double>(i->hi - i->lo);
      v += rng.normal(0.0, std::max(1.0, scale * span));
      const auto iv = std::clamp<std::int64_t>(
          static_cast<std::int64_t>(std::llround(v)), i->lo, i->hi);
      out.set(name, iv);
    } else {
      const auto& cat = std::get<workload::CategoricalDomain>(domain);
      if (rng.bernoulli(scale)) {
        const auto idx = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(cat.options.size()) - 1));
        out.set(name, cat.options[idx]);
      } else {
        out.set(name, base.get_categorical(name));
      }
    }
  }
  return out;
}

workload::ExploreFn make_model_explore(
    std::shared_ptr<const workload::WorkloadModel> model, double perturb_scale) {
  return [model, perturb_scale](const workload::TraceJob& target,
                                const workload::TraceJob& donor, std::size_t epoch,
                                std::uint64_t stream) {
    util::Rng rng(stream);
    workload::TraceJob out;
    out.job_id = target.job_id;
    out.config = perturb_configuration(model->space(), donor.config, rng, perturb_scale);
    out.curve = model->realize(out.config, stream);
    // Splice: the donor's observed epochs are ground truth for the clone
    // (same weights), and the realized continuation is shifted so the curve
    // is continuous at the clone epoch — the clone resumes from the donor's
    // weights, it does not restart the perturbed config from scratch.
    const auto& donor_perf = donor.curve.perf;
    const std::size_t prefix =
        std::min({epoch, donor_perf.size(), out.curve.perf.size()});
    const double offset =
        prefix > 0 ? donor_perf[prefix - 1] - out.curve.perf[prefix - 1] : 0.0;
    for (std::size_t e = 0; e < out.curve.perf.size(); ++e) {
      out.curve.perf[e] = e < prefix ? donor_perf[e]
                                     : std::clamp(out.curve.perf[e] + offset, 0.0, 1.0);
    }
    if (out.curve.secondary.size() == donor.curve.secondary.size()) {
      const std::size_t sec_prefix = std::min(prefix, out.curve.secondary.size());
      for (std::size_t e = 0; e < sec_prefix; ++e)
        out.curve.secondary[e] = donor.curve.secondary[e];
    }
    return out;
  };
}

}  // namespace hyperdrive::core
