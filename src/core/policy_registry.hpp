// PolicyRegistry — the scheduling-policy zoo (DESIGN.md §13).
//
// Every SAP is registered under a stable name with a factory taking a typed
// key=value parameter bag (PolicyParams) and the ambient construction inputs
// (PolicyContext: seed, Tmax, obs scope, optional shared predictor). All
// policy construction by name — CLI --policy, StudySpec policy lines, sweep
// axes, bench comparisons, checkpoint resume — goes through this one table,
// so help text, validation, and spec round-trips can never drift from the
// actual policy set.
//
// The built-in factories reproduce the pre-registry direct construction
// byte-for-byte: predictor-backed policies (pop, earlyterm) share one
// make_default_predictor(seed) instance, pop adopts the context's Tmax, and
// an empty parameter bag yields each policy's default config.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/sap.hpp"
#include "curve/predictor.hpp"
#include "obs/scope.hpp"
#include "util/sim_time.hpp"

namespace hyperdrive::core {

/// Typed key=value parameter bag for policy construction. Insertion order is
/// preserved and to_string() re-emits the exact tokens parsed, so a policy
/// line in a spec file round-trips byte-identically. Getters mark their key
/// consumed; PolicyRegistry::make rejects any key the factory never asked
/// for, so typos fail loudly instead of silently running defaults.
class PolicyParams {
 public:
  PolicyParams() = default;

  /// Parse "key=value" tokens. Throws std::invalid_argument on a token
  /// without '=', an empty key, or a duplicate key.
  [[nodiscard]] static PolicyParams parse(const std::vector<std::string>& tokens);
  /// Split `text` on whitespace, then parse.
  [[nodiscard]] static PolicyParams parse(const std::string& text);

  void set(std::string key, std::string value);

  [[nodiscard]] bool empty() const noexcept { return kv_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return kv_.size(); }
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& items()
      const noexcept {
    return kv_;
  }
  /// Canonical text form "k1=v1 k2=v2" in insertion order.
  [[nodiscard]] std::string to_string() const;

  // Typed getters (consume their key). Throw std::invalid_argument when the
  // value does not parse as the requested type.
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] std::size_t get_size(const std::string& key, std::size_t fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;
  [[nodiscard]] std::string get_string(const std::string& key,
                                       std::string fallback) const;

  /// Keys present in the bag that no getter has consumed yet.
  [[nodiscard]] std::vector<std::string> unconsumed() const;

 private:
  [[nodiscard]] const std::string* find(const std::string& key) const;

  std::vector<std::pair<std::string, std::string>> kv_;
  /// Keys read by a getter. Mutable: consumption is bookkeeping, not state.
  mutable std::vector<std::string> consumed_;
};

/// Ambient inputs every policy factory receives alongside its parameters.
struct PolicyContext {
  /// Experiment seed: feeds the default predictor and seed-derived policy
  /// RNG streams (PBT's donor draws / explore streams).
  std::uint64_t seed = 1;
  /// The user's maximum experiment time (POP's Tmax).
  util::SimTime tmax = util::SimTime::hours(48);
  /// Instrumentation handle (byte-invisible; DESIGN.md §10).
  obs::Scope obs;
  /// Predictor shared by predictor-backed policies; when unset, factories
  /// build make_default_predictor(seed, obs) themselves.
  std::shared_ptr<const curve::CurvePredictor> predictor;
};

class PolicyRegistry {
 public:
  using Factory = std::function<std::unique_ptr<SchedulingPolicy>(
      const PolicyParams&, const PolicyContext&)>;

  struct Entry {
    std::string name;
    /// One-line help summary ("predictive POP scheduling (the paper's SAP)").
    std::string summary;
    Factory factory;
  };

  /// The process-wide registry, pre-populated with the built-in policies in
  /// help order: pop|bandit|earlyterm|default|hyperband|asha|pbt.
  [[nodiscard]] static PolicyRegistry& instance();

  /// Register a policy. Throws std::invalid_argument on a duplicate name.
  void add(std::string name, std::string summary, Factory factory);

  [[nodiscard]] bool has(const std::string& name) const noexcept;
  /// Registered names in registration order.
  [[nodiscard]] std::vector<std::string> names() const;
  /// "pop|bandit|earlyterm|..." — the CLI help form.
  [[nodiscard]] std::string name_list(char separator = '|') const;
  [[nodiscard]] const std::vector<Entry>& entries() const noexcept { return entries_; }

  /// Build a fresh policy instance. Throws std::invalid_argument on an
  /// unknown name or a parameter key the policy does not accept.
  [[nodiscard]] std::unique_ptr<SchedulingPolicy> make(
      const std::string& name, const PolicyParams& params = {},
      const PolicyContext& ctx = {}) const;

 private:
  std::vector<Entry> entries_;
};

/// Shorthand for PolicyRegistry::instance().make(...).
[[nodiscard]] std::unique_ptr<SchedulingPolicy> make_registry_policy(
    const std::string& name, const PolicyParams& params = {},
    const PolicyContext& ctx = {});

/// The sweep/bench construction every comparison uses: default parameters,
/// standard predictor from `seed`, POP horizon `tmax` — byte-identical to the
/// old hand-rolled PolicySpec construction the benches used.
[[nodiscard]] std::unique_ptr<SchedulingPolicy> make_standard_policy(
    const std::string& name, std::uint64_t seed,
    util::SimTime tmax = util::SimTime::hours(48));

}  // namespace hyperdrive::core
