// SweepTable — the typed result of executing a SweepSpec: one row per cell
// (in cell-enumeration order, independent of which worker finished first),
// each carrying the full ExperimentResult plus any spec-collected extras.
// Provides the label-keyed selection the figure benches aggregate with
// (select by axis value, never by positional index — see ISSUE 3 on the
// fig07 means[1]/means[0] bug) and a stable CSV export (schema documented in
// EXPERIMENTS.md "Sweep CSV schema").
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/experiment_result.hpp"
#include "core/sweep_spec.hpp"
#include "obs/event.hpp"

namespace hyperdrive::core {

struct SweepRow {
  SweepCell cell;
  ExperimentResult result;
  /// Values of SweepTable::extra_columns, collected in the worker.
  std::vector<double> extra;
  /// Typed event stream of this cell's run (SweepSpec::capture_events only).
  std::vector<obs::TraceEvent> events;

  /// Time-to-target in minutes, censored at the experiment end when the
  /// target was never reached — the quantity Figs. 7/9/12 plot.
  [[nodiscard]] double minutes_to_target() const;
  [[nodiscard]] double hours_to_target() const { return minutes_to_target() / 60.0; }
};

class SweepTable {
 public:
  std::string name;
  std::vector<SweepAxis> axes;
  std::vector<std::string> extra_columns;
  /// One row per cell, in cell-enumeration order.
  std::vector<SweepRow> rows;
  /// Execution accounting (not part of the CSV: timings are not
  /// deterministic, the table contents are).
  std::size_t threads = 1;
  double wall_seconds = 0.0;

  [[nodiscard]] std::size_t axis(const std::string& axis_name) const;
  [[nodiscard]] const std::string& label(const SweepRow& row, std::size_t axis) const;
  [[nodiscard]] const std::string& label(const SweepRow& row,
                                         const std::string& axis_name) const;

  /// Rows whose `axis_name` value equals `value` (label-keyed selection).
  [[nodiscard]] std::vector<const SweepRow*> where(const std::string& axis_name,
                                                   const std::string& value) const;
  /// Apply `metric` over a selection.
  [[nodiscard]] static std::vector<double> collect(
      const std::vector<const SweepRow*>& selection,
      const std::function<double(const SweepRow&)>& metric);
  /// Censored minutes-to-target of every row matching the axis value.
  [[nodiscard]] std::vector<double> minutes_where(const std::string& axis_name,
                                                  const std::string& value) const;
  /// Index of an extra column; throws std::out_of_range if absent.
  [[nodiscard]] std::size_t extra_column(const std::string& column) const;

  /// Write the table as CSV (EXPERIMENTS.md "Sweep CSV schema"). The output
  /// is byte-deterministic: same spec + seeds => same bytes, regardless of
  /// the thread count that produced the table.
  void save_csv(std::ostream& out) const;
  [[nodiscard]] std::string to_csv() const;
  /// save_csv to `path`; throws std::runtime_error if unwritable.
  void save_csv_file(const std::string& path) const;

  /// Write every captured event stream as one timeline CSV (EXPERIMENTS.md
  /// "Timeline CSV schema"): cell + axis-label columns prefixed onto the
  /// obs::timeline_columns fields, rows in cell-enumeration order then event
  /// order. Byte-deterministic across thread counts (rows land in cell
  /// order). Empty event streams contribute no rows.
  void save_timeline_csv(std::ostream& out) const;
  /// save_timeline_csv to `path`; throws std::runtime_error if unwritable.
  void save_timeline_csv_file(const std::string& path) const;
};

}  // namespace hyperdrive::core
