#include "core/experiment_runner.hpp"

#include <algorithm>
#include <stdexcept>

namespace hyperdrive::core {

std::string_view to_string(PolicyKind kind) noexcept {
  switch (kind) {
    case PolicyKind::Default: return "default";
    case PolicyKind::Bandit: return "bandit";
    case PolicyKind::EarlyTerm: return "earlyterm";
    case PolicyKind::Pop: return "pop";
  }
  return "?";
}

std::unique_ptr<SchedulingPolicy> make_policy(const PolicySpec& spec) {
  switch (spec.kind) {
    case PolicyKind::Default:
      return std::make_unique<DefaultPolicy>();
    case PolicyKind::Bandit:
      return std::make_unique<BanditPolicy>(spec.bandit);
    case PolicyKind::EarlyTerm:
      return std::make_unique<EarlyTermPolicy>(spec.earlyterm);
    case PolicyKind::Pop:
      return std::make_unique<PopPolicy>(spec.pop);
  }
  throw std::invalid_argument("unknown policy kind");
}

std::shared_ptr<const curve::CurvePredictor> make_predictor(const PredictorOptions& options,
                                                            std::uint64_t seed,
                                                            obs::Scope scope) {
  curve::PredictorConfig config = options.config;
  config.seed = seed;
  std::shared_ptr<const curve::CurvePredictor> inner;
  switch (options.kind) {
    case PredictorOptions::Kind::Lsq:
      inner = curve::make_lsq_predictor(std::move(config));
      break;
    case PredictorOptions::Kind::Mcmc:
      inner = curve::make_mcmc_predictor(std::move(config));
      break;
    case PredictorOptions::Kind::LastValue:
      inner = curve::make_last_value_predictor(std::move(config));
      break;
  }
  // Memoize: policies re-consult the posterior for the same (history,
  // horizon) within a boundary round (§5.2 node-agent-side caching).
  return curve::with_cache_options(std::move(inner), options.cache, std::move(scope));
}

std::shared_ptr<const curve::CurvePredictor> make_default_predictor(std::uint64_t seed,
                                                                    obs::Scope scope) {
  PredictorOptions options;
  options.config.lsq_samples = 200;
  return make_predictor(options, seed, std::move(scope));
}

ExperimentResult run_experiment(const workload::Trace& trace, const PolicySpec& spec,
                                const RunnerOptions& options) {
  const auto policy = make_policy(spec);
  return run_experiment(trace, *policy, options);
}

ExperimentResult run_experiment(const workload::Trace& trace, SchedulingPolicy& policy,
                                const RunnerOptions& options) {
  if (options.substrate == Substrate::TraceReplay) {
    sim::ReplayOptions replay;
    replay.machines = options.machines;
    replay.max_experiment_time = options.max_experiment_time;
    replay.stop_on_target = options.stop_on_target;
    replay.stop_criterion = options.stop_criterion;
    replay.explore = options.explore;
    return sim::replay_experiment(trace, policy, replay);
  }
  cluster::ClusterOptions copts;
  copts.machines = options.machines;
  copts.max_experiment_time = options.max_experiment_time;
  copts.stop_on_target = options.stop_on_target;
  copts.stop_criterion = options.stop_criterion;
  copts.seed = options.seed;
  copts.epoch_jitter_sigma = options.epoch_jitter_sigma;
  copts.overheads = options.overheads;
  copts.fault_plan = options.fault_plan;
  copts.health = options.health;
  copts.decision_latency = options.decision_latency;
  copts.overlap_decisions = options.overlap_decisions;
  copts.obs = options.obs;
  copts.explore = options.explore;
  return cluster::run_cluster_experiment(trace, policy, copts);
}

AdaptiveSearchResult run_adaptive_search(const workload::WorkloadModel& model,
                                         HyperparameterGenerator& generator,
                                         const PolicySpec& spec,
                                         const RunnerOptions& options, std::size_t rounds,
                                         std::size_t configs_per_round,
                                         std::uint64_t experiment_seed) {
  AdaptiveSearchResult out;
  for (std::size_t round = 0; round < rounds; ++round) {
    const auto trace = trace_from_generator(model, generator, configs_per_round,
                                            experiment_seed ^ round,
                                            /*report_feedback=*/false);
    auto result = run_experiment(trace, spec, options);

    // Close the loop (§4.2 ➁): report what the scheduler actually observed.
    // Jobs killed early report their best-so-far — exactly the signal the
    // paper's reportFinalPerformance carries.
    for (const auto& js : result.job_stats) {
      if (js.epochs_completed > 0) {
        generator.report_final_performance(js.job_id, js.best_perf);
      }
    }
    out.best_perf = std::max(out.best_perf, result.best_perf);
    out.total_time += result.total_time;
    out.reached_target = out.reached_target || result.reached_target;
    out.rounds.push_back(std::move(result));
    if (out.reached_target) break;
  }
  return out;
}

workload::Trace trace_from_generator(const workload::WorkloadModel& model,
                                     HyperparameterGenerator& generator,
                                     std::size_t num_configs,
                                     std::uint64_t experiment_seed, bool report_feedback) {
  workload::Trace trace;
  trace.workload_name = std::string(model.name());
  trace.target_performance = model.target_performance();
  trace.kill_threshold = model.kill_threshold();
  trace.evaluation_boundary = model.evaluation_boundary();
  trace.max_epochs = model.max_epochs();

  trace.jobs.reserve(num_configs);
  for (std::size_t i = 0; i < num_configs; ++i) {
    auto [job_id, config] = generator.create_job();
    workload::TraceJob job;
    job.job_id = job_id;
    job.config = std::move(config);
    job.curve = model.realize(job.config, experiment_seed);
    if (report_feedback) {
      generator.report_final_performance(job_id, job.curve.final_perf());
    }
    trace.jobs.push_back(std::move(job));
  }
  return trace;
}

}  // namespace hyperdrive::core
