#include "core/policy_registry.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "core/experiment_runner.hpp"
#include "core/policies/asha_policy.hpp"
#include "core/policies/bandit_policy.hpp"
#include "core/policies/default_policy.hpp"
#include "core/policies/earlyterm_policy.hpp"
#include "core/policies/hyperband_policy.hpp"
#include "core/policies/pbt_policy.hpp"
#include "core/policies/pop_policy.hpp"

namespace hyperdrive::core {

// --- PolicyParams ----------------------------------------------------------

PolicyParams PolicyParams::parse(const std::vector<std::string>& tokens) {
  PolicyParams params;
  for (const auto& token : tokens) {
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0)
      throw std::invalid_argument("policy option '" + token +
                                  "' is not of the form key=value");
    params.set(token.substr(0, eq), token.substr(eq + 1));
  }
  return params;
}

PolicyParams PolicyParams::parse(const std::string& text) {
  std::istringstream stream(text);
  std::vector<std::string> tokens;
  std::string token;
  while (stream >> token) tokens.push_back(token);
  return parse(tokens);
}

void PolicyParams::set(std::string key, std::string value) {
  if (find(key) != nullptr)
    throw std::invalid_argument("duplicate policy option '" + key + "'");
  kv_.emplace_back(std::move(key), std::move(value));
}

std::string PolicyParams::to_string() const {
  std::string out;
  for (const auto& [key, value] : kv_) {
    if (!out.empty()) out += ' ';
    out += key;
    out += '=';
    out += value;
  }
  return out;
}

const std::string* PolicyParams::find(const std::string& key) const {
  for (const auto& [k, v] : kv_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

[[noreturn]] void bad_value(const std::string& key, const std::string& value,
                            const char* expected) {
  throw std::invalid_argument("policy option '" + key + "': expected " + expected +
                              ", got '" + value + "'");
}

}  // namespace

double PolicyParams::get_double(const std::string& key, double fallback) const {
  const auto* raw = find(key);
  if (raw == nullptr) return fallback;
  consumed_.push_back(key);
  try {
    std::size_t parsed = 0;
    const double value = std::stod(*raw, &parsed);
    if (parsed != raw->size()) bad_value(key, *raw, "a number");
    return value;
  } catch (const std::invalid_argument&) {
    bad_value(key, *raw, "a number");
  } catch (const std::out_of_range&) {
    bad_value(key, *raw, "a number");
  }
}

std::size_t PolicyParams::get_size(const std::string& key, std::size_t fallback) const {
  const auto* raw = find(key);
  if (raw == nullptr) return fallback;
  consumed_.push_back(key);
  if (!raw->empty() && raw->front() == '-')
    bad_value(key, *raw, "a non-negative integer");
  try {
    std::size_t parsed = 0;
    const auto value = std::stoull(*raw, &parsed);
    if (parsed != raw->size()) bad_value(key, *raw, "a non-negative integer");
    return static_cast<std::size_t>(value);
  } catch (const std::invalid_argument&) {
    bad_value(key, *raw, "a non-negative integer");
  } catch (const std::out_of_range&) {
    bad_value(key, *raw, "a non-negative integer");
  }
}

bool PolicyParams::get_bool(const std::string& key, bool fallback) const {
  const auto* raw = find(key);
  if (raw == nullptr) return fallback;
  consumed_.push_back(key);
  if (*raw == "true" || *raw == "on" || *raw == "1") return true;
  if (*raw == "false" || *raw == "off" || *raw == "0") return false;
  bad_value(key, *raw, "true|false");
}

std::string PolicyParams::get_string(const std::string& key, std::string fallback) const {
  const auto* raw = find(key);
  if (raw == nullptr) return fallback;
  consumed_.push_back(key);
  return *raw;
}

std::vector<std::string> PolicyParams::unconsumed() const {
  std::vector<std::string> unknown;
  for (const auto& [key, value] : kv_) {
    if (std::find(consumed_.begin(), consumed_.end(), key) == consumed_.end())
      unknown.push_back(key);
  }
  return unknown;
}

// --- Built-in factories ----------------------------------------------------

namespace {

/// The predictor wiring every deleted construction site used: one shared
/// make_default_predictor(seed) instance per policy build.
std::shared_ptr<const curve::CurvePredictor> context_predictor(const PolicyContext& ctx) {
  if (ctx.predictor) return ctx.predictor;
  return make_default_predictor(ctx.seed, ctx.obs);
}

std::unique_ptr<SchedulingPolicy> make_pop(const PolicyParams& p, const PolicyContext& ctx) {
  PopConfig c;
  c.tmax = ctx.tmax;
  c.target = p.get_double("target", c.target);
  c.boundary = p.get_size("boundary", c.boundary);
  c.kill_threshold = p.get_double("kill-threshold", c.kill_threshold);
  c.prune_confidence = p.get_double("prune-confidence", c.prune_confidence);
  c.slots_per_job = p.get_double("slots-per-job", c.slots_per_job);
  c.min_history = p.get_size("min-history", c.min_history);
  c.rotate_opportunistic = p.get_bool("rotate", c.rotate_opportunistic);
  c.static_threshold = p.get_double("static-threshold", c.static_threshold);
  c.use_kill_threshold = p.get_bool("kill-rule", c.use_kill_threshold);
  c.speed_aware = p.get_bool("speed-aware", c.speed_aware);
  c.degraded_speed = p.get_double("degraded-speed", c.degraded_speed);
  c.dynamic_target_increment =
      p.get_double("dynamic-target-increment", c.dynamic_target_increment);
  c.predictor = context_predictor(ctx);
  c.obs = ctx.obs;
  return std::make_unique<PopPolicy>(std::move(c));
}

std::unique_ptr<SchedulingPolicy> make_bandit(const PolicyParams& p,
                                              const PolicyContext& /*ctx*/) {
  BanditConfig c;
  c.epsilon = p.get_double("epsilon", c.epsilon);
  c.boundary = p.get_size("boundary", c.boundary);
  return std::make_unique<BanditPolicy>(c);
}

std::unique_ptr<SchedulingPolicy> make_earlyterm(const PolicyParams& p,
                                                 const PolicyContext& ctx) {
  EarlyTermConfig c;
  c.delta = p.get_double("delta", c.delta);
  c.boundary = p.get_size("boundary", c.boundary);
  c.min_history = p.get_size("min-history", c.min_history);
  c.predictor = context_predictor(ctx);
  return std::make_unique<EarlyTermPolicy>(std::move(c));
}

std::unique_ptr<SchedulingPolicy> make_default(const PolicyParams& /*p*/,
                                               const PolicyContext& /*ctx*/) {
  return std::make_unique<DefaultPolicy>();
}

std::unique_ptr<SchedulingPolicy> make_hyperband(const PolicyParams& p,
                                                 const PolicyContext& /*ctx*/) {
  HyperbandConfig c;
  c.min_rung = p.get_size("min-rung", c.min_rung);
  c.eta = p.get_double("eta", c.eta);
  c.num_brackets = p.get_size("brackets", c.num_brackets);
  c.min_rung_population = p.get_size("min-rung-population", c.min_rung_population);
  return std::make_unique<HyperbandPolicy>(c);
}

std::unique_ptr<SchedulingPolicy> make_asha(const PolicyParams& p,
                                            const PolicyContext& /*ctx*/) {
  AshaConfig c;
  c.min_rung = p.get_size("min-rung", c.min_rung);
  c.eta = p.get_double("eta", c.eta);
  c.min_rung_population = p.get_size("min-rung-population", c.min_rung_population);
  c.strict_promotion = p.get_bool("strict", c.strict_promotion);
  return std::make_unique<AshaPolicy>(c);
}

std::unique_ptr<SchedulingPolicy> make_pbt(const PolicyParams& p,
                                           const PolicyContext& ctx) {
  PbtConfig c;
  c.seed = ctx.seed;
  c.boundary = p.get_size("boundary", c.boundary);
  c.bottom_quantile = p.get_double("bottom", c.bottom_quantile);
  c.top_quantile = p.get_double("top", c.top_quantile);
  c.min_population = p.get_size("min-population", c.min_population);
  return std::make_unique<PbtPolicy>(c);
}

PolicyRegistry make_builtin_registry() {
  PolicyRegistry registry;
  registry.add("pop", "predictive POP scheduling (the paper's SAP, §3)", make_pop);
  registry.add("bandit", "TuPAQ-style action elimination (§5.3)", make_bandit);
  registry.add("earlyterm", "Domhan-style predictive termination (§5.3)",
               make_earlyterm);
  registry.add("default", "FIFO, run everything to completion", make_default);
  registry.add("hyperband", "successive halving, losers terminated at rungs",
               make_hyperband);
  registry.add("asha", "asynchronous successive halving, losers paused at rungs",
               make_asha);
  registry.add("pbt", "population based training: clone top-quartile weights, "
               "perturb hyperparameters", make_pbt);
  return registry;
}

}  // namespace

// --- PolicyRegistry --------------------------------------------------------

PolicyRegistry& PolicyRegistry::instance() {
  static PolicyRegistry registry = make_builtin_registry();
  return registry;
}

void PolicyRegistry::add(std::string name, std::string summary, Factory factory) {
  if (has(name)) throw std::invalid_argument("policy '" + name + "' already registered");
  entries_.push_back(Entry{std::move(name), std::move(summary), std::move(factory)});
}

bool PolicyRegistry::has(const std::string& name) const noexcept {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const Entry& e) { return e.name == name; });
}

std::vector<std::string> PolicyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry.name);
  return out;
}

std::string PolicyRegistry::name_list(char separator) const {
  std::string out;
  for (const auto& entry : entries_) {
    if (!out.empty()) out += separator;
    out += entry.name;
  }
  return out;
}

std::unique_ptr<SchedulingPolicy> PolicyRegistry::make(const std::string& name,
                                                       const PolicyParams& params,
                                                       const PolicyContext& ctx) const {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [&](const Entry& e) { return e.name == name; });
  if (it == entries_.end())
    throw std::invalid_argument("unknown policy '" + name + "' (expected one of " +
                                name_list() + ")");
  auto policy = it->factory(params, ctx);
  const auto unknown = params.unconsumed();
  if (!unknown.empty()) {
    std::string joined;
    for (const auto& key : unknown) {
      if (!joined.empty()) joined += ", ";
      joined += '\'' + key + '\'';
    }
    throw std::invalid_argument("policy '" + name + "' does not accept option" +
                                (unknown.size() > 1 ? "s " : " ") + joined);
  }
  return policy;
}

std::unique_ptr<SchedulingPolicy> make_registry_policy(const std::string& name,
                                                       const PolicyParams& params,
                                                       const PolicyContext& ctx) {
  return PolicyRegistry::instance().make(name, params, ctx);
}

std::unique_ptr<SchedulingPolicy> make_standard_policy(const std::string& name,
                                                       std::uint64_t seed,
                                                       util::SimTime tmax) {
  PolicyContext ctx;
  ctx.seed = seed;
  ctx.tmax = tmax;
  return make_registry_policy(name, {}, ctx);
}

}  // namespace hyperdrive::core
