// The Scheduling Algorithm Policy (SAP) interface — HyperDrive's central
// abstraction (§4.2 ➃). A user-provided policy is written against three
// up-call events:
//
//   AllocateJobs       — an idle resource was detected; the SAP may start or
//                        resume jobs on it.
//   ApplicationStat    — a training job reported an application statistic
//                        (accuracy / reward) to its Node Agent.
//   OnIterationFinish  — a training iteration (epoch) finished; the SAP
//                        decides continue / suspend / terminate.
//
// The SAP acts on the system through SchedulerOps, which exposes exactly the
// Job Manager / Resource Manager API of §4.2 (getIdleJob, startJob,
// resumeJob, suspendJob, terminateJob, labelJob) plus the read-only
// experiment state a policy needs. Two substrates implement SchedulerOps:
// cluster::HyperDriveCluster (high-fidelity, with overheads) and
// sim::TraceReplaySimulator (the paper's §7.1 simplified simulator) — the
// same policy object runs unchanged on either, which is the design goal the
// paper states in §4 ("separation between hyperparameter search algorithms
// and their runtime environment").
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <string_view>
#include <vector>

#include "util/sim_time.hpp"

namespace hyperdrive::core {

using JobId = std::uint64_t;

enum class JobStatus {
  Pending,     ///< never started
  Running,
  Suspended,   ///< snapshot taken; resumable on any machine
  Terminated,  ///< killed by policy; never resumed
  Completed,   ///< ran to max epochs
};

/// Event payload delivered with ApplicationStat / OnIterationFinish up-calls.
struct JobEvent {
  JobId job_id = 0;
  std::size_t epoch = 0;  ///< epochs completed so far (1-based count)
  double perf = 0.0;      ///< normalized primary performance after that epoch
  /// Optional secondary application metric (§9 "Ongoing Work": e.g. model
  /// sparsity while perplexity is the primary metric). NaN when the
  /// workload reports none.
  double secondary = std::numeric_limits<double>::quiet_NaN();
  util::SimTime epoch_duration = util::SimTime::zero();
  util::SimTime now = util::SimTime::zero();
};

/// Decision returned from OnIterationFinish for the reporting job.
enum class JobDecision {
  Continue,   ///< keep training on the same machine
  Suspend,    ///< snapshot and move to the idle queue (priority-ordered)
  Terminate,  ///< kill for good
};

/// Runtime surface available to a policy.
class SchedulerOps {
 public:
  virtual ~SchedulerOps() = default;

  // --- Job Manager API (§4.2) -------------------------------------------
  /// Highest-priority idle job (suspended or pending). Priority ties and
  /// unlabeled jobs follow FIFO order (§4.2 "Job Manager").
  [[nodiscard]] virtual std::optional<JobId> get_idle_job() = 0;
  /// Start (or resume) an idle job on an idle machine. Returns false if
  /// there is no idle machine or the job is not idle.
  virtual bool start_job(JobId job) = 0;
  /// Attach a scheduling priority to a job (used to order the idle queue).
  virtual void label_job(JobId job, double priority) = 0;

  // --- Resource Manager API ---------------------------------------------
  [[nodiscard]] virtual std::size_t total_machines() const = 0;
  [[nodiscard]] virtual std::size_t idle_machines() const = 0;

  // --- Experiment state (read-only) --------------------------------------
  [[nodiscard]] virtual util::SimTime now() const = 0;
  [[nodiscard]] virtual JobStatus job_status(JobId job) const = 0;
  /// All jobs not yet terminated or completed (pending, running, suspended).
  [[nodiscard]] virtual std::vector<JobId> active_jobs() const = 0;
  /// Full observed performance history of a job (entry i = epoch i+1).
  [[nodiscard]] virtual const std::vector<double>& perf_history(JobId job) const = 0;
  /// Measured average epoch duration of a job (zero if it never ran).
  [[nodiscard]] virtual util::SimTime avg_epoch_duration(JobId job) const = 0;
  [[nodiscard]] virtual std::size_t epochs_done(JobId job) const = 0;

  // --- Node health (gray-failure awareness, DESIGN.md §7) -----------------
  // Substrates without a health layer inherit the defaults (a perfectly
  // healthy, homogeneous cluster — the paper's testbed assumption), so
  // existing policies and test fakes compile and behave unchanged.
  /// EWMA speed score of the job's current host: 1.0 = nominal, below the
  /// monitor's slow threshold = degraded. 1.0 for jobs not running.
  [[nodiscard]] virtual double host_speed(JobId job) const;
  /// avg_epoch_duration with each epoch normalized to nominal node speed —
  /// what the epoch *would* have cost on a healthy machine. Policies that
  /// extrapolate time-to-accuracy should prefer this so a slow host does not
  /// masquerade as a slow configuration.
  [[nodiscard]] virtual util::SimTime normalized_epoch_duration(JobId job) const;

  // --- Weight migration (PBT exploit/explore, DESIGN.md §13) --------------
  // Substrates that can clone one job's trained state into another expose
  // the pair below; the defaults (no support) keep existing policies and
  // test fakes compiling and behaving unchanged.
  /// Whether clone_job is implemented by this substrate.
  [[nodiscard]] virtual bool supports_clone() const;
  /// Clone `donor`'s latest trained state into the idle job `job`: the
  /// target adopts the donor's weights (via the substrate's snapshot
  /// migration path) and observed history up to the donor's last completed
  /// epoch, with hyperparameters re-drawn by the substrate's explore hook
  /// from the seed-derived RNG `stream`. Returns false when cloning is
  /// unsupported, the target is not idle (pending/suspended), or the donor
  /// has no trained state yet; the target is untouched on failure.
  virtual bool clone_job(JobId job, JobId donor, std::uint64_t stream);

  // --- Experiment metadata ------------------------------------------------
  [[nodiscard]] virtual std::size_t max_epochs() const = 0;
  [[nodiscard]] virtual double target_performance() const = 0;
  /// Domain-knowledge kill threshold supplied by the model owner (§2.1).
  [[nodiscard]] virtual double kill_threshold() const = 0;
  /// Evaluation boundary b in epochs (§5.3).
  [[nodiscard]] virtual std::size_t evaluation_boundary() const = 0;
};

/// User-provided scheduling policy (SAP).
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// AllocateJobs up-call: triggered whenever a resource goes idle.
  virtual void on_allocate(SchedulerOps& ops) = 0;

  /// ApplicationStat up-call: a stat arrived (may be more frequent than
  /// iteration boundaries). Default: ignore.
  virtual void on_application_stat(SchedulerOps& ops, const JobEvent& event);

  /// OnIterationFinish up-call: decide the fate of the reporting job.
  virtual JobDecision on_iteration_finish(SchedulerOps& ops, const JobEvent& event) = 0;

  /// Experiment-start hook (before any allocation). Default: no-op.
  virtual void on_experiment_start(SchedulerOps& ops);

  /// Cluster-membership hook: total_machines() just changed (a node crashed
  /// or came back). Policies that cache slot allocations derived from S
  /// should invalidate them here. Default: no-op.
  virtual void on_capacity_change(SchedulerOps& ops);
};

/// Model-owner-defined global termination criterion (§9 "Ongoing Work"):
/// when set on an execution substrate it replaces the default
/// perf >= target_performance experiment-stop check. Evaluated on every
/// delivered application stat; returning true ends the experiment with that
/// event's job recorded as the winner.
using GlobalStopCriterion = std::function<bool(const JobEvent&)>;

}  // namespace hyperdrive::core
