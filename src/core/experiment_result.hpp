// Result record shared by both execution substrates (high-fidelity cluster
// and trace-replay simulator). Everything the evaluation figures need is
// collected here: time-to-target (Fig. 7/9/12), per-job execution durations
// (Fig. 6), suspend/termination counts and overhead samples (Fig. 10,
// §6.2.3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/sap.hpp"
#include "util/sim_time.hpp"

namespace hyperdrive::core {

struct JobRunStats {
  JobId job_id = 0;
  /// Total machine time this job occupied (training + suspend overheads).
  util::SimTime execution_time = util::SimTime::zero();
  std::size_t epochs_completed = 0;
  std::size_t times_suspended = 0;
  JobStatus final_status = JobStatus::Pending;
  double best_perf = 0.0;
  /// Owning study (multi-tenant runs, DESIGN.md §9); empty for single-study.
  std::string study;
};

/// Per-tenant summary row of a multi-study run (DESIGN.md §9): what each
/// study got out of the shared cluster. Emitted on the aggregate
/// ExperimentResult and in the multi-study CSV so sweeps can slice per
/// tenant.
struct StudyRow {
  std::string study;
  bool reached_target = false;
  util::SimTime time_to_target = util::SimTime::infinity();
  /// Integral of leased slots over the study's lifetime (slot-seconds): the
  /// capacity the arbiter charged to this tenant, busy or not.
  util::SimTime slot_seconds = util::SimTime::zero();
  bool had_deadline = false;
  util::SimTime deadline = util::SimTime::infinity();
  /// reached_target && time_to_target <= deadline (false without a deadline).
  bool deadline_met = false;
  bool cancelled = false;
  std::size_t lease_grants = 0;
  std::size_t lease_reclaims = 0;
  /// Dollars charged to this tenant: integral of held slots x their node
  /// class's price over the study's lifetime (DESIGN.md §15).
  double spend_usd = 0.0;
};

/// One suspend operation's overhead sample (§6.2.3 / Fig. 10).
struct SuspendSample {
  JobId job_id = 0;
  util::SimTime latency = util::SimTime::zero();
  double snapshot_bytes = 0.0;
};

/// What the reliability protocol did to survive an injected fault plan: node
/// membership churn, job requeues, training rolled back to the last durable
/// snapshot, and degraded-mode fallbacks. All zero on a fault-free run.
/// Message-level recovery (retries, retransmitted/ack bytes, dedup hits) is
/// accounted in cluster::MessageBusStats.
struct RecoveryStats {
  std::size_t node_crashes = 0;
  std::size_t node_restarts = 0;
  /// Jobs pulled off a dead machine and put back in the idle queue.
  std::size_t jobs_requeued = 0;
  /// Completed epochs whose training state was lost (crash or lost snapshot)
  /// and had to be re-trained from the last good snapshot.
  std::size_t epochs_lost = 0;
  /// Snapshot captures/uploads that never made it to the AppStatDb.
  std::size_t snapshots_lost = 0;
  /// Resumes whose snapshot failed to decode (corruption) and fell back to
  /// replaying AppStatDb records.
  std::size_t snapshot_restore_failures = 0;
  /// Stat-report RPCs abandoned after exhausting every retransmission.
  std::size_t stat_reports_lost = 0;
  /// Re-trained epochs whose (duplicate) stat report was absorbed by the
  /// AppStatDb's epoch dedup.
  std::size_t duplicate_stats_ignored = 0;
  // --- gray-failure mitigation (DESIGN.md §7) ------------------------------
  /// Jobs moved off a degraded node (clean suspend for slow hosts, snapshot
  /// rollback for hung ones) instead of being killed or left to crawl.
  std::size_t jobs_migrated = 0;
  /// Nodes taken out of the membership for persistent slowness or silence.
  std::size_t nodes_quarantined = 0;
  /// Quarantined nodes that served probation and rejoined at nominal speed.
  std::size_t nodes_reinstated = 0;
  /// Progress-deadline expiries (an epoch ran hang_deadline_factor x longer
  /// than expected and the job was presumed hung).
  std::size_t hung_jobs_detected = 0;
  /// Ground-truth oracle (fault injector knowledge, not observable by the
  /// scheduler): jobs terminated while hosted on a degraded node although
  /// their learning curve does reach the target — the exploration-corrupting
  /// mistake speed-aware POP exists to prevent.
  std::size_t wrong_kills = 0;

  [[nodiscard]] bool operator==(const RecoveryStats&) const = default;
};

struct ExperimentResult {
  std::string policy_name;
  bool reached_target = false;
  /// Time at which some job first reported performance >= target
  /// (infinity when the target was never reached).
  util::SimTime time_to_target = util::SimTime::infinity();
  JobId winning_job = 0;
  double best_perf = 0.0;
  /// When the experiment ended (target hit, all jobs finished, or Tmax).
  util::SimTime total_time = util::SimTime::zero();
  /// Sum of busy machine time across the cluster.
  util::SimTime total_machine_time = util::SimTime::zero();
  std::size_t suspends = 0;
  std::size_t terminations = 0;
  std::size_t jobs_started = 0;
  /// PBT exploit clones performed by the substrate (DESIGN.md §13).
  std::size_t clones = 0;
  std::vector<JobRunStats> job_stats;
  std::vector<SuspendSample> suspend_samples;
  /// Fault-recovery accounting (all zero when no faults were injected).
  RecoveryStats recovery;
  /// Message-level recovery summary copied from the cluster RPC fabric
  /// (zero under TraceReplay; full detail in
  /// HyperDriveCluster::message_stats()). Carried here so sweep cells do not
  /// need to keep the cluster object alive past the run.
  std::uint64_t retransmissions = 0;
  // --- multi-study tenancy (DESIGN.md §9) ----------------------------------
  /// Study this result belongs to; empty outside StudyManager runs.
  std::string study;
  /// Integral of leased slots over time. For a single-tenant cluster this is
  /// machines x total_time; under arbitration it tracks the actual lease.
  util::SimTime slot_seconds = util::SimTime::zero();
  /// Capacity handed to / reclaimed from this tenant by the study arbiter.
  std::size_t lease_grants = 0;
  std::size_t lease_reclaims = 0;
  /// Dollars of capacity this run held: integral of held slots x node-class
  /// price over time (DESIGN.md §15). Under the default uniform catalog
  /// (price 1.0/hour) this equals slot_seconds in hours.
  double spend_usd = 0.0;
  /// Per-study rows (populated only on a MultiStudyResult aggregate).
  std::vector<StudyRow> study_rows;
};

}  // namespace hyperdrive::core
