#include "core/sap.hpp"

namespace hyperdrive::core {

double SchedulerOps::host_speed(JobId /*job*/) const { return 1.0; }

util::SimTime SchedulerOps::normalized_epoch_duration(JobId job) const {
  return avg_epoch_duration(job);
}

bool SchedulerOps::supports_clone() const { return false; }

bool SchedulerOps::clone_job(JobId /*job*/, JobId /*donor*/, std::uint64_t /*stream*/) {
  return false;
}

void SchedulingPolicy::on_application_stat(SchedulerOps& /*ops*/, const JobEvent& /*event*/) {}

void SchedulingPolicy::on_experiment_start(SchedulerOps& /*ops*/) {}

void SchedulingPolicy::on_capacity_change(SchedulerOps& /*ops*/) {}

}  // namespace hyperdrive::core
