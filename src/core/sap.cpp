#include "core/sap.hpp"

namespace hyperdrive::core {

void SchedulingPolicy::on_application_stat(SchedulerOps& /*ops*/, const JobEvent& /*event*/) {}

void SchedulingPolicy::on_experiment_start(SchedulerOps& /*ops*/) {}

void SchedulingPolicy::on_capacity_change(SchedulerOps& /*ops*/) {}

}  // namespace hyperdrive::core
