#include "core/sweep_table.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/export.hpp"
#include "util/csv.hpp"

namespace hyperdrive::core {

namespace {

/// Fixed-format double: the CSV must be byte-deterministic, so every number
/// goes through one formatting path. Infinities (censored time-to-target
/// before censoring) print as "inf".
std::string fmt(double x) {
  if (std::isinf(x)) return x > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", x);
  return buf;
}

std::string fmt(std::uint64_t x) { return std::to_string(x); }

}  // namespace

double SweepRow::minutes_to_target() const {
  return result.reached_target ? result.time_to_target.to_minutes()
                               : result.total_time.to_minutes();
}

std::size_t SweepTable::axis(const std::string& axis_name) const {
  for (std::size_t i = 0; i < axes.size(); ++i) {
    if (axes[i].name == axis_name) return i;
  }
  throw std::out_of_range("no sweep axis named '" + axis_name + "'");
}

const std::string& SweepTable::label(const SweepRow& row, std::size_t axis) const {
  return axes.at(axis).values.at(row.cell.at(axis));
}

const std::string& SweepTable::label(const SweepRow& row,
                                     const std::string& axis_name) const {
  return label(row, axis(axis_name));
}

std::vector<const SweepRow*> SweepTable::where(const std::string& axis_name,
                                               const std::string& value) const {
  const std::size_t a = axis(axis_name);
  std::vector<const SweepRow*> out;
  for (const auto& row : rows) {
    if (label(row, a) == value) out.push_back(&row);
  }
  return out;
}

std::vector<double> SweepTable::collect(
    const std::vector<const SweepRow*>& selection,
    const std::function<double(const SweepRow&)>& metric) {
  std::vector<double> out;
  out.reserve(selection.size());
  for (const auto* row : selection) out.push_back(metric(*row));
  return out;
}

std::vector<double> SweepTable::minutes_where(const std::string& axis_name,
                                              const std::string& value) const {
  return collect(where(axis_name, value),
                 [](const SweepRow& row) { return row.minutes_to_target(); });
}

std::size_t SweepTable::extra_column(const std::string& column) const {
  for (std::size_t i = 0; i < extra_columns.size(); ++i) {
    if (extra_columns[i] == column) return i;
  }
  throw std::out_of_range("no sweep extra column named '" + column + "'");
}

void SweepTable::save_csv(std::ostream& out) const {
  std::vector<std::string> header = {"cell"};
  for (const auto& axis : axes) header.push_back(axis.name);
  for (const auto* col :
       {"seed", "policy_name", "reached_target", "time_to_target_min", "total_time_min",
        "best_perf", "machine_time_min", "jobs_started", "suspends", "terminations",
        "clones", "retransmissions", "jobs_requeued", "epochs_lost", "jobs_migrated",
        "nodes_quarantined", "wrong_kills"}) {
    header.emplace_back(col);
  }
  for (const auto& col : extra_columns) header.push_back(col);

  util::CsvWriter writer(out, header);
  for (const auto& row : rows) {
    std::vector<std::string> fields;
    fields.reserve(header.size());
    fields.push_back(fmt(row.cell.linear));
    for (std::size_t a = 0; a < axes.size(); ++a) fields.push_back(label(row, a));
    const auto& r = row.result;
    fields.push_back(fmt(row.cell.seed));
    fields.push_back(r.policy_name);
    fields.push_back(r.reached_target ? "1" : "0");
    fields.push_back(fmt(r.time_to_target.to_minutes()));
    fields.push_back(fmt(r.total_time.to_minutes()));
    fields.push_back(fmt(r.best_perf));
    fields.push_back(fmt(r.total_machine_time.to_minutes()));
    fields.push_back(fmt(r.jobs_started));
    fields.push_back(fmt(r.suspends));
    fields.push_back(fmt(r.terminations));
    fields.push_back(fmt(r.clones));
    fields.push_back(fmt(r.retransmissions));
    fields.push_back(fmt(r.recovery.jobs_requeued));
    fields.push_back(fmt(r.recovery.epochs_lost));
    fields.push_back(fmt(r.recovery.jobs_migrated));
    fields.push_back(fmt(r.recovery.nodes_quarantined));
    fields.push_back(fmt(r.recovery.wrong_kills));
    for (const double x : row.extra) fields.push_back(fmt(x));
    writer.write_row(fields);
  }
}

std::string SweepTable::to_csv() const {
  std::ostringstream os;
  save_csv(os);
  return os.str();
}

void SweepTable::save_csv_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write sweep CSV to '" + path + "'");
  save_csv(out);
}

void SweepTable::save_timeline_csv(std::ostream& out) const {
  std::vector<std::string> header = {"cell"};
  for (const auto& axis : axes) header.push_back(axis.name);
  for (auto& col : obs::timeline_columns()) header.push_back(std::move(col));

  util::CsvWriter writer(out, header);
  for (const auto& row : rows) {
    std::vector<std::string> prefix;
    prefix.reserve(1 + axes.size());
    prefix.push_back(fmt(row.cell.linear));
    for (std::size_t a = 0; a < axes.size(); ++a) prefix.push_back(label(row, a));
    for (const auto& event : row.events) {
      std::vector<std::string> fields = prefix;
      fields.reserve(header.size());
      for (auto& field : obs::timeline_fields(event)) fields.push_back(std::move(field));
      writer.write_row(fields);
    }
  }
}

void SweepTable::save_timeline_csv_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write timeline CSV to '" + path + "'");
  save_timeline_csv(out);
}

}  // namespace hyperdrive::core
