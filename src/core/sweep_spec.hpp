// SweepSpec — a declarative description of an experiment sweep: the cross
// product of named axes (policy, repeat/seed, machine count, trace variant,
// fault scenario, ...) where every cell runs one experiment. The paper's
// whole evaluation is such a grid (Figs. 6–12, the §6.2.3 table, the §8/§9
// extensions); production HPO middleware (Tune, ExpoCloud — PAPERS.md)
// treats this orchestration as a first-class layer, and so does this repo:
// a SweepSpec is executed by the SweepEngine (sweep_engine.hpp), which fans
// independent cells out on a thread pool and returns a typed SweepTable.
//
// Determinism contract (DESIGN.md §8): every per-cell callback must be a
// pure function of the SweepCell it receives (axis indices + derived seed).
// Cells share nothing mutable, so a parallel sweep is byte-identical to a
// serial one.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment_runner.hpp"
#include "workload/trace.hpp"

namespace hyperdrive::core {

/// One named axis of the sweep grid; `values` are the human-readable labels
/// that key the SweepTable (and its CSV column of the same name).
struct SweepAxis {
  std::string name;
  std::vector<std::string> values;

  [[nodiscard]] std::size_t size() const noexcept { return values.size(); }
};

/// One cell of the grid: its linear enumeration index (row-major, first axis
/// slowest), the per-axis value indices, and the derived cell seed.
struct SweepCell {
  std::size_t linear = 0;
  std::vector<std::size_t> index;
  /// Derived via derive_cell_seed (DESIGN.md §8) — statistically
  /// independent per cell, stable under sweep extension along later axes.
  std::uint64_t seed = 0;

  /// Value index of axis `axis` (as returned by SweepSpec::add_axis).
  [[nodiscard]] std::size_t at(std::size_t axis) const { return index.at(axis); }
};

/// Deterministic cell-seed derivation rule (DESIGN.md §8): fold each axis
/// value index into the base seed with util::derive_seed, mixing in the axis
/// ordinal so (i, j) and (j, i) land on different streams.
[[nodiscard]] std::uint64_t derive_cell_seed(std::uint64_t base_seed,
                                             const std::vector<std::size_t>& index);

class SweepSpec {
 public:
  /// Name stamped on the table (and printed by bench reports).
  std::string name = "sweep";
  /// Root of the per-cell seed derivation.
  std::uint64_t base_seed = 1;
  std::vector<SweepAxis> axes;

  /// Custom cell executor (multi-study runs, external substrates): when set,
  /// the engine calls `run` for each cell instead of the trace/policy/options
  /// path (those callbacks may then stay unset, and `collect` must be unset —
  /// there is no policy instance to hand it). Same purity contract: the
  /// result must be a function of the cell alone.
  std::function<ExperimentResult(const SweepCell&)> run;

  /// Build the ground-truth trace for a cell. Required unless `run` is set.
  /// Must be a pure function of the cell (e.g. renoise(base, cell-derived
  /// seed)).
  std::function<workload::Trace(const SweepCell&)> trace;
  /// Build a fresh policy instance for a cell. Required (policies are
  /// stateful — never share one across cells).
  std::function<std::unique_ptr<SchedulingPolicy>(const SweepCell&)> policy;
  /// Runner options for a cell; defaults to RunnerOptions{} when unset.
  std::function<RunnerOptions(const SweepCell&)> options;

  /// Optional per-cell metrics beyond ExperimentResult (e.g. a policy's
  /// prediction count): `collect` runs in the worker right after the cell's
  /// experiment, and its values land in the row's `extra` (one per
  /// `extra_columns` entry, same order).
  std::vector<std::string> extra_columns;
  std::function<std::vector<double>(const SweepCell&, const SchedulingPolicy&,
                                    const ExperimentResult&)>
      collect;

  /// Capture each cell's typed event stream (DESIGN.md §10): the engine
  /// attaches a private obs::RecordingSink per cell (replacing any sink the
  /// options callback set; its metrics registry and study label are kept)
  /// and moves the events into SweepRow::events.
  /// Rows land in cell order, so SweepTable::save_timeline_csv is
  /// byte-identical across thread counts. Not supported with a custom `run`
  /// executor (the engine never sees inside it).
  bool capture_events = false;

  /// Append an axis; returns its index for SweepCell::at.
  std::size_t add_axis(std::string axis_name, std::vector<std::string> values);
  /// Axis "repeat" with values "0".."repeats-1" (the §6.1 fresh-noise axis).
  std::size_t add_repeat_axis(std::size_t repeats);
  /// Axis "policy" over registry policy names (core::PolicyRegistry;
  /// DESIGN.md §13). The labels key the table/CSV and usually feed
  /// core::make_standard_policy in the policy callback.
  std::size_t add_policy_axis(std::vector<std::string> names);

  /// Index of a named axis; throws std::out_of_range if absent.
  [[nodiscard]] std::size_t axis(const std::string& axis_name) const;
  /// Total number of cells (product of axis sizes; 0 when any axis is empty).
  [[nodiscard]] std::size_t cells() const noexcept;
  /// Decode a linear index into a cell (row-major, first axis slowest) and
  /// derive its seed.
  [[nodiscard]] SweepCell cell(std::size_t linear) const;
  /// The label of `cell`'s value on axis `axis`.
  [[nodiscard]] const std::string& label(const SweepCell& cell, std::size_t axis) const;
};

}  // namespace hyperdrive::core
