#include "obs/event.hpp"

#include <iomanip>
#include <sstream>

namespace hyperdrive::obs {

std::string_view to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::JobStart: return "start";
    case EventKind::JobResume: return "resume";
    case EventKind::EpochComplete: return "epoch";
    case EventKind::JobComplete: return "complete";
    case EventKind::JobSuspend: return "suspend";
    case EventKind::JobTerminate: return "terminate";
    case EventKind::JobRequeue: return "requeue";
    case EventKind::JobMigrate: return "migrate";
    case EventKind::JobClone: return "clone";
    case EventKind::TargetReached: return "target";
    case EventKind::SnapshotStored: return "snapshot-stored";
    case EventKind::SnapshotUploadFailed: return "snapshot-upload-failed";
    case EventKind::SnapshotUploadLost: return "snapshot-upload-lost";
    case EventKind::SnapshotCorrupted: return "snapshot-corrupted";
    case EventKind::SnapshotRestoreFailed: return "snapshot-restore-failed";
    case EventKind::NodeCrash: return "crash";
    case EventKind::NodeRestart: return "restart";
    case EventKind::NodeSuspect: return "suspect";
    case EventKind::NodeSuspectCleared: return "suspect-cleared";
    case EventKind::NodeQuarantine: return "quarantine";
    case EventKind::NodeProbation: return "probation";
    case EventKind::NodeReinstate: return "reinstate";
    case EventKind::HangDetected: return "hang-detected";
    case EventKind::WrongKill: return "wrong-kill";
    case EventKind::LeaseGrant: return "lease-grant";
    case EventKind::LeasePark: return "lease-park";
    case EventKind::LeaseMigrate: return "lease-migrate";
    case EventKind::StudyTimeout: return "study-timeout";
    case EventKind::StudyCancelled: return "study-cancelled";
    case EventKind::SpotWarning: return "spot-warning";
    case EventKind::SpotPreempted: return "spot-preempted";
    case EventKind::NodeAcquired: return "node-acquired";
    case EventKind::NodeReleased: return "node-released";
    case EventKind::PolicyPromote: return "promote";
    case EventKind::PredictorFit: return "predictor-fit";
    case EventKind::PredictorCacheHit: return "predictor-cache-hit";
    case EventKind::LogMessage: return "log";
    case EventKind::CheckpointWritten: return "checkpoint-written";
    case EventKind::CheckpointLoaded: return "checkpoint-loaded";
    case EventKind::CheckpointFallback: return "checkpoint-fallback";
    case EventKind::CoordinatorCrash: return "coordinator-crash";
    case EventKind::CoordinatorResume: return "coordinator-resume";
    case EventKind::ColdRestart: return "cold-restart";
    case EventKind::StudySubmitted: return "study-submitted";
    case EventKind::StudyAdmitted: return "study-admitted";
    case EventKind::StudyQueued: return "study-queued";
    case EventKind::StudyRejected: return "study-rejected";
    case EventKind::StudyFinished: return "study-finished";
  }
  return "?";
}

std::string legacy_text(const TraceEvent& e) {
  const auto job = [&] { return " job=" + std::to_string(e.job); };
  const auto machine = [&] { return " machine=" + std::to_string(e.machine); };
  const auto epoch = [&] { return " epoch=" + std::to_string(e.epoch); };
  switch (e.kind) {
    case EventKind::JobStart:
      return "start" + job() + machine();
    case EventKind::JobResume:
      return "resume" + job() + machine() + epoch();
    case EventKind::EpochComplete:
      return "epoch" + job() + epoch();
    case EventKind::JobComplete:
      return "complete" + job();
    case EventKind::JobSuspend:
      return "suspend" + job() + epoch();
    case EventKind::JobTerminate:
      return "terminate" + job() + epoch();
    case EventKind::JobRequeue:
      return "requeue" + job() + epoch();
    case EventKind::JobMigrate:
      return "migrate" + job() + machine() + " reason=" + e.detail;
    case EventKind::JobClone:
      return "clone" + job() + epoch() + " donor=" + e.detail;
    case EventKind::TargetReached:
      return "target" + job() + epoch();
    case EventKind::SnapshotStored:
      return "snapshot-stored" + job() + epoch();
    case EventKind::SnapshotUploadFailed:
      return "snapshot-upload-failed" + job();
    case EventKind::SnapshotUploadLost:
      return "snapshot-upload-lost" + job();
    case EventKind::SnapshotCorrupted:
      return "snapshot-corrupted" + job();
    case EventKind::SnapshotRestoreFailed:
      return "snapshot-restore-failed" + job();
    case EventKind::NodeCrash:
      return "crash" + machine();
    case EventKind::NodeRestart:
      return "restart" + machine() + (e.detail.empty() ? "" : ' ' + e.detail);
    case EventKind::NodeSuspect:
      return "suspect" + machine();
    case EventKind::NodeSuspectCleared:
      return "suspect-cleared" + machine();
    case EventKind::NodeQuarantine:
      return "quarantine" + machine() + (e.detail.empty() ? "" : " reason=" + e.detail);
    case EventKind::NodeProbation:
      return "probation" + machine() + (e.detail.empty() ? "" : ' ' + e.detail);
    case EventKind::NodeReinstate:
      return "reinstate" + machine();
    case EventKind::HangDetected:
      return "hang-detected" + job() + machine();
    case EventKind::WrongKill:
      return "wrong-kill" + job() + machine();
    case EventKind::LeaseGrant:
      return "lease-grant" + machine();
    case EventKind::LeasePark:
      return "lease-park" + machine() + " reason=" + e.detail;
    case EventKind::LeaseMigrate:
      return "lease-migrate" + job() + machine();
    case EventKind::StudyTimeout:
      return "study-timeout";
    case EventKind::StudyCancelled:
      return "study-cancelled";
    case EventKind::SpotWarning:
      return "spot-warning" + machine();
    case EventKind::SpotPreempted:
      return "spot-preempted" + machine();
    case EventKind::NodeAcquired:
      return "node-acquired" + (e.detail.empty() ? "" : ' ' + e.detail);
    case EventKind::NodeReleased:
      return "node-released" + (e.detail.empty() ? "" : ' ' + e.detail);
    case EventKind::PolicyPromote:
      return "promote" + job();
    case EventKind::PredictorFit:
      return "predictor-fit";
    case EventKind::PredictorCacheHit:
      return "predictor-cache-hit";
    case EventKind::LogMessage:
      return "log " + e.detail;
    case EventKind::CheckpointWritten:
      return "checkpoint-written" + (e.detail.empty() ? "" : ' ' + e.detail);
    case EventKind::CheckpointLoaded:
      return "checkpoint-loaded" + (e.detail.empty() ? "" : ' ' + e.detail);
    case EventKind::CheckpointFallback:
      return "checkpoint-fallback" + (e.detail.empty() ? "" : " reason=" + e.detail);
    case EventKind::CoordinatorCrash:
      return "coordinator-crash";
    case EventKind::CoordinatorResume:
      return "coordinator-resume" + (e.detail.empty() ? "" : ' ' + e.detail);
    case EventKind::ColdRestart:
      return "cold-restart" + (e.detail.empty() ? "" : " reason=" + e.detail);
    case EventKind::StudySubmitted:
      return "study-submitted" + job() + (e.detail.empty() ? "" : ' ' + e.detail);
    case EventKind::StudyAdmitted:
      return "study-admitted" + job() + (e.detail.empty() ? "" : ' ' + e.detail);
    case EventKind::StudyQueued:
      return "study-queued" + job() + (e.detail.empty() ? "" : ' ' + e.detail);
    case EventKind::StudyRejected:
      return "study-rejected" + job() + (e.detail.empty() ? "" : " reason=" + e.detail);
    case EventKind::StudyFinished:
      return "study-finished" + job() + (e.detail.empty() ? "" : ' ' + e.detail);
  }
  return "?";
}

std::string render_line(const TraceEvent& event) {
  std::ostringstream os;
  os << "t=" << std::fixed << std::setprecision(9) << event.time.to_seconds() << ' ';
  if (!event.study.empty()) os << "study=" << event.study << ' ';
  os << legacy_text(event);
  return os.str();
}

}  // namespace hyperdrive::obs
