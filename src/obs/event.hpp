// Typed trace events — the unified instrumentation vocabulary (DESIGN.md
// §10). Every scheduling-relevant occurrence in the system (job lifecycle,
// recovery actions, gray-failure transitions, lease protocol steps, policy
// promotions, predictor activity) is one TraceEvent record emitted through an
// obs::Scope. The legacy golden-trace text lines are a *rendering* of these
// records (legacy_text / render_line below), so attaching a structured sink
// can never change what the byte-identity tests compare.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/sim_time.hpp"

namespace hyperdrive::obs {

/// Everything the layers report. The first block mirrors the cluster's
/// event-log lines one-to-one; the second block is only visible through a
/// structured sink (no legacy line ever existed for it, and inventing one
/// would break golden-trace byte-identity).
enum class EventKind {
  // --- cluster job lifecycle ----------------------------------------------
  JobStart,          ///< "start job=J machine=M"
  JobResume,         ///< "resume job=J machine=M epoch=E"
  EpochComplete,     ///< "epoch job=J epoch=E"
  JobComplete,       ///< "complete job=J"
  JobSuspend,        ///< "suspend job=J epoch=E"
  JobTerminate,      ///< "terminate job=J epoch=E"
  JobRequeue,        ///< "requeue job=J epoch=E"
  JobMigrate,        ///< "migrate job=J machine=M reason=<detail>"
  JobClone,          ///< "clone job=J epoch=E donor=<detail>" (PBT exploit)
  TargetReached,     ///< "target job=J epoch=E"
  // --- snapshots & recovery ------------------------------------------------
  SnapshotStored,        ///< "snapshot-stored job=J epoch=E"
  SnapshotUploadFailed,  ///< "snapshot-upload-failed job=J"
  SnapshotUploadLost,    ///< "snapshot-upload-lost job=J"
  SnapshotCorrupted,     ///< "snapshot-corrupted job=J"
  SnapshotRestoreFailed, ///< "snapshot-restore-failed job=J"
  // --- fail-stop faults ----------------------------------------------------
  NodeCrash,    ///< "crash machine=M"
  NodeRestart,  ///< "restart machine=M[ parked]" (detail="parked")
  // --- gray-failure state machine ------------------------------------------
  NodeSuspect,         ///< "suspect machine=M"
  NodeSuspectCleared,  ///< "suspect-cleared machine=M"
  NodeQuarantine,      ///< "quarantine machine=M[ reason=silent]"
  NodeProbation,       ///< "probation machine=M[ parked]" (detail="parked")
  NodeReinstate,       ///< "reinstate machine=M"
  HangDetected,        ///< "hang-detected job=J machine=M"
  WrongKill,           ///< "wrong-kill job=J machine=M" (ground-truth oracle)
  // --- lease protocol / multi-study ----------------------------------------
  LeaseGrant,      ///< "lease-grant machine=M"
  LeasePark,       ///< "lease-park machine=M reason=<detail>"
  LeaseMigrate,    ///< "lease-migrate job=J machine=M"
  StudyTimeout,    ///< "study-timeout"
  StudyCancelled,  ///< "study-cancelled"
  // --- elastic capacity (DESIGN.md §15) -------------------------------------
  SpotWarning,    ///< "spot-warning machine=M"
  SpotPreempted,  ///< "spot-preempted machine=M"
  NodeAcquired,   ///< "node-acquired <detail>" (detail="class=<name> count=N")
  NodeReleased,   ///< "node-released <detail>" (detail="class=<name> count=N")
  // --- structured-only events (no legacy event-log line) -------------------
  PolicyPromote,      ///< job entered a policy's promising set (POP §3.2)
  PredictorFit,       ///< a learning-curve posterior was computed (cache miss)
  PredictorCacheHit,  ///< a memoized posterior was served (§5.2 caching)
  LogMessage,         ///< a util::log line routed through the obs bridge
  // --- coordinator crash-recovery (DESIGN.md §12; structured-only) ----------
  // CheckpointWritten rides the deterministic timeline (it fires at a sim
  // tick in every run, interrupted or not); the rest describe one concrete
  // process's recovery journey and are emitted only through the coordinator's
  // recovery sink, never the golden trace.
  CheckpointWritten,   ///< a coordinator checkpoint was captured (seq/bytes)
  CheckpointLoaded,    ///< a durable checkpoint was loaded for resume
  CheckpointFallback,  ///< newest checkpoint unusable; trying an older one
  CoordinatorCrash,    ///< the coordinator died (in-sim CoordinatorCrashEvent)
  CoordinatorResume,   ///< replay caught up with a loaded checkpoint
  ColdRestart,         ///< no usable checkpoint; restarting from study specs
  // --- service front-end (DESIGN.md §14; structured-only) -------------------
  // Wall-clock events of the hyperdrive_serve admission path; `job` carries
  // the submission id and they never touch a study's deterministic timeline.
  StudySubmitted,  ///< a submission arrived (detail = "tenant=<t>")
  StudyAdmitted,   ///< admission granted a run slot (detail = "tenant=<t>")
  StudyQueued,     ///< admission queued it (detail = "tenant=<t> position=<n>")
  StudyRejected,   ///< admission rejected it (detail = the reason string)
  StudyFinished,   ///< a service-run study completed (detail = "tenant=<t>")
};

[[nodiscard]] std::string_view to_string(EventKind kind) noexcept;

/// One structured observation. Integer ids use -1 for "not applicable";
/// `detail` carries the free-form qualifier of the few events that have one
/// (migration reasons, lease-park reasons, log text). Events emitted from
/// outside the simulation clock (predictor activity) carry time zero and are
/// documented as untimed.
struct TraceEvent {
  EventKind kind = EventKind::LogMessage;
  util::SimTime time = util::SimTime::zero();
  std::string study;
  std::int64_t job = -1;
  std::int64_t machine = -1;
  std::int64_t epoch = -1;
  std::string detail;

  TraceEvent() = default;
  explicit TraceEvent(EventKind k) : kind(k) {}

  // Fluent construction so emit sites stay one readable expression.
  TraceEvent&& with_job(std::int64_t id) && {
    job = id;
    return std::move(*this);
  }
  TraceEvent&& with_machine(std::int64_t id) && {
    machine = id;
    return std::move(*this);
  }
  TraceEvent&& with_epoch(std::int64_t e) && {
    epoch = e;
    return std::move(*this);
  }
  TraceEvent&& with_detail(std::string d) && {
    detail = std::move(d);
    return std::move(*this);
  }

  [[nodiscard]] bool operator==(const TraceEvent&) const = default;
};

/// The legacy event-log body for an event — byte-for-byte the string the
/// pre-obs cluster passed to log_event ("epoch job=3 epoch=7"). Structured-
/// only kinds render a reasonable body of the same style; they never reach
/// the legacy log.
[[nodiscard]] std::string legacy_text(const TraceEvent& event);

/// The full legacy event-log line: "t=<seconds, 9 decimals> [study=<label> ]
/// <legacy_text>" — exactly what HyperDriveCluster::event_log() stores and
/// the golden-trace determinism tests compare.
[[nodiscard]] std::string render_line(const TraceEvent& event);

}  // namespace hyperdrive::obs
