#include "obs/export.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "util/csv.hpp"

namespace hyperdrive::obs {

namespace {

/// Event times use the legacy log's 9-decimal precision so a timeline row
/// and the corresponding event-log line agree on the timestamp bytes.
std::string fmt_time(util::SimTime t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9f", t.to_seconds());
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::vector<std::string> timeline_columns() {
  return {"time_s", "kind", "study", "job", "machine", "epoch", "detail"};
}

std::vector<std::string> timeline_fields(const TraceEvent& e) {
  const auto id = [](std::int64_t v) { return v >= 0 ? std::to_string(v) : std::string(); };
  return {fmt_time(e.time), std::string(to_string(e.kind)), e.study,
          id(e.job),        id(e.machine),                  id(e.epoch),
          e.detail};
}

void write_timeline_csv(std::ostream& out, std::span<const TraceEvent> events) {
  util::CsvWriter writer(out, timeline_columns());
  for (const TraceEvent& event : events) writer.write_row(timeline_fields(event));
}

void write_timeline_jsonl(std::ostream& out, std::span<const TraceEvent> events) {
  for (const TraceEvent& e : events) {
    out << "{\"time_s\":" << fmt_time(e.time) << ",\"kind\":\"" << to_string(e.kind)
        << '"';
    if (!e.study.empty()) out << ",\"study\":\"" << json_escape(e.study) << '"';
    if (e.job >= 0) out << ",\"job\":" << e.job;
    if (e.machine >= 0) out << ",\"machine\":" << e.machine;
    if (e.epoch >= 0) out << ",\"epoch\":" << e.epoch;
    if (!e.detail.empty()) out << ",\"detail\":\"" << json_escape(e.detail) << '"';
    out << "}\n";
  }
}

void save_timeline_file(const std::string& path, std::span<const TraceEvent> events) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write timeline to '" + path + "'");
  const bool jsonl = path.size() >= 6 && path.compare(path.size() - 6, 6, ".jsonl") == 0;
  if (jsonl) {
    write_timeline_jsonl(out, events);
  } else {
    write_timeline_csv(out, events);
  }
}

}  // namespace hyperdrive::obs
