// MetricsRegistry — named counters, gauges and histograms with a fixed
// registration order so the exported snapshot is deterministic (DESIGN.md
// §10). Replaces the ad-hoc per-layer counters (ExperimentResult fields,
// bench-local tallies) as the one export surface for end-of-run metrics.
//
// Thread safety: counter()/gauge()/histogram() lookups and registrations are
// mutex-guarded and return references that stay valid for the registry's
// lifetime (instruments live in deques). Counter::add is a relaxed atomic,
// so concurrent sweep cells publishing into one shared registry produce
// deterministic *totals* (addition commutes). Gauges are last-write-wins and
// therefore only deterministic in single-run contexts; histograms commute
// like counters. For a byte-deterministic export under parallel publication,
// pre-register the metric names up front (registration order is emission
// order of write_csv) — see cluster::preregister_cluster_metrics.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace hyperdrive::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bound bucket histogram (upper bounds ascending; an implicit +inf
/// bucket catches the rest). Observations also accumulate count/sum/min/max.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;
  /// Cumulative count of observations <= bounds()[i].
  [[nodiscard]] std::uint64_t cumulative(std::size_t i) const;
  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

 private:
  std::vector<double> bounds_;
  mutable std::mutex mutex_;
  std::vector<std::uint64_t> buckets_;  // buckets_[i] counts (bounds_[i-1], bounds_[i]]
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-register. Names are unique across instrument types; reusing a
  /// name with a different type throws std::invalid_argument.
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name, std::vector<double> bounds);

  [[nodiscard]] std::size_t size() const;

  /// Snapshot export in registration order: "metric,type,value" rows; a
  /// histogram expands into .count/.sum/.min/.max plus one cumulative
  /// "le_<bound>" row per bucket (EXPERIMENTS.md "Metrics CSV schema").
  /// Byte-deterministic given a deterministic registration order; every
  /// number goes through one fixed %.6f format.
  void write_csv(std::ostream& out) const;
  /// write_csv to `path`; throws std::runtime_error if unwritable.
  void save_csv_file(const std::string& path) const;

 private:
  enum class Type { Counter, Gauge, Histogram };
  struct Entry {
    std::string name;
    Type type;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
  };

  mutable std::mutex mutex_;
  std::deque<Counter> counters_;      // deques: stable addresses across growth
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::vector<Entry> order_;          // registration order drives the export
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace hyperdrive::obs
