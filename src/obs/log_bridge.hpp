// LogCapture — routes util::log lines through the obs layer for the
// lifetime of the guard: each emitted line becomes an EventKind::LogMessage
// event ("component: message" in `detail`, level name in `study`-free
// metadata via the message text) and bumps the "log.lines" counter. Lines
// stop going to stderr while captured, which is how benches silence the
// logger without recompiling.
#pragma once

#include "obs/scope.hpp"
#include "util/log.hpp"

namespace hyperdrive::obs {

class LogCapture {
 public:
  /// Install: every log line at or above the current level is forwarded to
  /// `scope` (sink and/or metrics) instead of stderr. The process-wide
  /// writer hook is single-occupancy — nest captures at your own peril.
  explicit LogCapture(Scope scope) : scope_(std::move(scope)) {
    util::set_log_writer([this](util::LogLevel level, const std::string& component,
                                const std::string& message) {
      if (scope_.metrics != nullptr) scope_.metrics->counter("log.lines").add();
      if (scope_.sink != nullptr) {
        scope_.emit(TraceEvent(EventKind::LogMessage)
                        .with_detail(std::string(util::to_string(level)) + ' ' +
                                     component + ": " + message));
      }
    });
  }
  ~LogCapture() { util::set_log_writer(nullptr); }
  LogCapture(const LogCapture&) = delete;
  LogCapture& operator=(const LogCapture&) = delete;

 private:
  Scope scope_;
};

}  // namespace hyperdrive::obs
