#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace hyperdrive::obs {

namespace {

/// One fixed formatting path, mirroring the sweep CSV's fmt contract.
std::string fmt(double x) {
  if (std::isinf(x)) return x > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", x);
  return buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("histogram bounds must be ascending");
  }
  buckets_.assign(bounds_.size() + 1, 0);  // +1: the implicit +inf bucket
}

void Histogram::observe(double v) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  ++buckets_[i];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

std::uint64_t Histogram::cumulative(std::size_t i) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (std::size_t b = 0; b <= i && b < buckets_.size(); ++b) total += buckets_[b];
  return total;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = index_.find(name); it != index_.end()) {
    const Entry& entry = order_[it->second];
    if (entry.type != Type::Counter) {
      throw std::invalid_argument("metric '" + name + "' is not a counter");
    }
    return *entry.counter;
  }
  counters_.emplace_back();
  Entry entry;
  entry.name = name;
  entry.type = Type::Counter;
  entry.counter = &counters_.back();
  index_.emplace(name, order_.size());
  order_.push_back(entry);
  return counters_.back();
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = index_.find(name); it != index_.end()) {
    const Entry& entry = order_[it->second];
    if (entry.type != Type::Gauge) {
      throw std::invalid_argument("metric '" + name + "' is not a gauge");
    }
    return *entry.gauge;
  }
  gauges_.emplace_back();
  Entry entry;
  entry.name = name;
  entry.type = Type::Gauge;
  entry.gauge = &gauges_.back();
  index_.emplace(name, order_.size());
  order_.push_back(entry);
  return gauges_.back();
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = index_.find(name); it != index_.end()) {
    const Entry& entry = order_[it->second];
    if (entry.type != Type::Histogram) {
      throw std::invalid_argument("metric '" + name + "' is not a histogram");
    }
    return *entry.histogram;
  }
  histograms_.emplace_back(std::move(bounds));
  Entry entry;
  entry.name = name;
  entry.type = Type::Histogram;
  entry.histogram = &histograms_.back();
  index_.emplace(name, order_.size());
  order_.push_back(entry);
  return histograms_.back();
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return order_.size();
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  std::vector<Entry> order;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    order = order_;
  }
  out << "metric,type,value\n";
  for (const Entry& entry : order) {
    switch (entry.type) {
      case Type::Counter:
        out << entry.name << ",counter," << entry.counter->value() << '\n';
        break;
      case Type::Gauge:
        out << entry.name << ",gauge," << fmt(entry.gauge->value()) << '\n';
        break;
      case Type::Histogram: {
        const Histogram& h = *entry.histogram;
        out << entry.name << ".count,histogram," << h.count() << '\n';
        out << entry.name << ".sum,histogram," << fmt(h.sum()) << '\n';
        out << entry.name << ".min,histogram," << fmt(h.count() > 0 ? h.min() : 0.0)
            << '\n';
        out << entry.name << ".max,histogram," << fmt(h.count() > 0 ? h.max() : 0.0)
            << '\n';
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          out << entry.name << ".le_" << fmt(h.bounds()[i]) << ",histogram,"
              << h.cumulative(i) << '\n';
        }
        break;
      }
    }
  }
}

void MetricsRegistry::save_csv_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write metrics CSV to '" + path + "'");
  write_csv(out);
}

}  // namespace hyperdrive::obs
