// EventSink — the receiving end of the instrumentation API. Sinks observe,
// never perturb: a sink must not call back into the emitting component, and
// the emitters draw no randomness and take no decisions on behalf of a sink,
// so a run with a sink attached is byte-identical (golden traces included)
// to the same run without one. That contract is what lets tests and tools
// reimplement oracles (e.g. wrong kills) as queries over the stream.
#pragma once

#include <cstddef>
#include <vector>

#include "obs/event.hpp"

namespace hyperdrive::obs {

class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
};

/// Buffers every event in emission order. Not internally synchronized: one
/// RecordingSink belongs to one run (the SweepEngine hands each cell its
/// own, which is how a parallel sweep's merged timeline stays identical to
/// the serial one).
class RecordingSink final : public EventSink {
 public:
  void on_event(const TraceEvent& event) override { events.push_back(event); }

  /// Number of recorded events of `kind` — the query primitive the oracle
  /// tests use (e.g. count(EventKind::WrongKill)).
  [[nodiscard]] std::size_t count(EventKind kind) const {
    std::size_t n = 0;
    for (const auto& e : events) {
      if (e.kind == kind) ++n;
    }
    return n;
  }
  /// All recorded events of `kind`, in emission order.
  [[nodiscard]] std::vector<const TraceEvent*> of_kind(EventKind kind) const {
    std::vector<const TraceEvent*> out;
    for (const auto& e : events) {
      if (e.kind == kind) out.push_back(&e);
    }
    return out;
  }

  std::vector<TraceEvent> events;
};

}  // namespace hyperdrive::obs
