// Timeline exporters: the per-run event stream as CSV or JSONL (DESIGN.md
// §10, EXPERIMENTS.md "Timeline CSV schema"). Both exports are byte-
// deterministic: events are written in emission order, times through one
// fixed 9-decimal format (the same precision the legacy event log uses).
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace hyperdrive::obs {

/// Column names of one timeline row: time_s,kind,study,job,machine,epoch,
/// detail. Exposed so other exporters (the SweepTable's cell-prefixed
/// timeline) can extend the header without duplicating the schema.
[[nodiscard]] std::vector<std::string> timeline_columns();

/// The CSV field values of `event`, in timeline_columns() order. Absent ids
/// (-1) render as empty fields.
[[nodiscard]] std::vector<std::string> timeline_fields(const TraceEvent& event);

/// Write header + one row per event.
void write_timeline_csv(std::ostream& out, std::span<const TraceEvent> events);
/// One JSON object per line, keys matching timeline_columns(); absent ids
/// and empty strings are omitted.
void write_timeline_jsonl(std::ostream& out, std::span<const TraceEvent> events);

/// write_timeline_csv / write_timeline_jsonl to `path` (picked by extension:
/// ".jsonl" selects JSONL, anything else CSV); throws std::runtime_error if
/// unwritable.
void save_timeline_file(const std::string& path, std::span<const TraceEvent> events);

}  // namespace hyperdrive::obs
