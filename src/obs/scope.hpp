// obs::Scope — the one instrumentation handle threaded through construction
// of every layer (ClusterOptions, RunnerOptions, StudyManagerOptions,
// PopConfig, the caching predictor). A default Scope is detached: emit sites
// cost a single null-pointer test and build nothing, which is the
// zero-overhead-when-null contract the sweep_scaling overhead budget holds
// the subsystem to (DESIGN.md §10).
//
// Scope is a small copyable value, not an owner: the sink and registry must
// outlive every component the scope was handed to.
#pragma once

#include <string>
#include <utility>

#include "obs/event.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"

namespace hyperdrive::obs {

struct Scope {
  EventSink* sink = nullptr;
  MetricsRegistry* metrics = nullptr;
  /// Study label stamped onto emitted events (multi-tenant attribution);
  /// empty outside StudyManager runs.
  std::string study;

  [[nodiscard]] bool attached() const noexcept { return sink != nullptr; }

  /// Emit one event, stamping the scope's study label. Call sites that build
  /// a non-trivial event should gate on attached() first; the null check
  /// here keeps even unguarded sites safe.
  void emit(TraceEvent event) const {
    if (sink == nullptr) return;
    if (event.study.empty()) event.study = study;
    sink->on_event(event);
  }

  /// Derive a tenant scope carrying `label` (same sink and registry).
  [[nodiscard]] Scope labelled(std::string label) const {
    Scope out = *this;
    out.study = std::move(label);
    return out;
  }
};

}  // namespace hyperdrive::obs
