#include "sim/trace_replay.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/log.hpp"

namespace hyperdrive::sim {

TraceReplaySimulator::TraceReplaySimulator(const workload::Trace& trace,
                                           ReplayOptions options)
    : trace_(trace), options_(options), idle_machines_(options.machines) {
  if (options_.machines == 0) throw std::invalid_argument("need at least one machine");
  for (const auto& job : trace_.jobs) {
    JobRuntime rt;
    rt.spec = &job;
    rt.idle_seq = idle_counter_++;
    jobs_.emplace(job.job_id, std::move(rt));
  }
}

TraceReplaySimulator::JobRuntime& TraceReplaySimulator::runtime(core::JobId job) {
  const auto it = jobs_.find(job);
  if (it == jobs_.end()) throw std::out_of_range("unknown job id");
  return it->second;
}

const TraceReplaySimulator::JobRuntime& TraceReplaySimulator::runtime(
    core::JobId job) const {
  const auto it = jobs_.find(job);
  if (it == jobs_.end()) throw std::out_of_range("unknown job id");
  return it->second;
}

std::optional<core::JobId> TraceReplaySimulator::get_idle_job() {
  const JobRuntime* best = nullptr;
  core::JobId best_id = 0;
  for (const auto& [id, rt] : jobs_) {
    if (!rt.idle) continue;
    if (rt.status != core::JobStatus::Pending && rt.status != core::JobStatus::Suspended) {
      continue;
    }
    if (best == nullptr || rt.priority > best->priority ||
        (rt.priority == best->priority && rt.idle_seq < best->idle_seq)) {
      best = &rt;
      best_id = id;
    }
  }
  if (best == nullptr) return std::nullopt;
  return best_id;
}

bool TraceReplaySimulator::start_job(core::JobId job) {
  auto& rt = runtime(job);
  if (idle_machines_ == 0) return false;
  if (!rt.idle) return false;
  if (rt.status != core::JobStatus::Pending && rt.status != core::JobStatus::Suspended) {
    return false;
  }
  if (rt.status == core::JobStatus::Pending) ++result_.jobs_started;
  rt.idle = false;
  rt.status = core::JobStatus::Running;
  --idle_machines_;
  simulation_.schedule_after(rt.spec->curve.epoch_duration,
                             [this, job] { complete_epoch(job); });
  return true;
}

void TraceReplaySimulator::label_job(core::JobId job, double priority) {
  runtime(job).priority = priority;
}

core::JobStatus TraceReplaySimulator::job_status(core::JobId job) const {
  return runtime(job).status;
}

std::vector<core::JobId> TraceReplaySimulator::active_jobs() const {
  std::vector<core::JobId> out;
  for (const auto& [id, rt] : jobs_) {
    if (rt.status == core::JobStatus::Pending || rt.status == core::JobStatus::Running ||
        rt.status == core::JobStatus::Suspended) {
      out.push_back(id);
    }
  }
  return out;
}

const std::vector<double>& TraceReplaySimulator::perf_history(core::JobId job) const {
  return runtime(job).history;
}

util::SimTime TraceReplaySimulator::avg_epoch_duration(core::JobId job) const {
  const auto& rt = runtime(job);
  if (rt.epochs_done == 0) return util::SimTime::zero();
  return rt.execution_time / static_cast<double>(rt.epochs_done);
}

std::size_t TraceReplaySimulator::epochs_done(core::JobId job) const {
  return runtime(job).epochs_done;
}

bool TraceReplaySimulator::supports_clone() const {
  return static_cast<bool>(options_.explore);
}

bool TraceReplaySimulator::clone_job(core::JobId job, core::JobId donor,
                                     std::uint64_t stream) {
  if (!options_.explore || job == donor) return false;
  auto& dst = runtime(job);
  const auto& src = runtime(donor);
  if (!dst.idle) return false;
  if (dst.status != core::JobStatus::Pending && dst.status != core::JobStatus::Suspended) {
    return false;
  }
  if (src.epochs_done == 0) return false;  // donor has no trained state yet

  auto continued = std::make_unique<workload::TraceJob>(
      options_.explore(*dst.spec, *src.spec, src.epochs_done, stream));
  continued->job_id = job;
  // A continuation with nothing left to train would park the clone forever.
  if (continued->curve.perf.size() <= src.epochs_done) return false;

  // The target adopts the donor's weights: its observed history becomes the
  // donor's prefix and it resumes (suspended) at the donor's epoch on the
  // spliced continuation curve. Machine-time accounting stays the target's
  // own — the adopted epochs were paid for by the donor.
  if (dst.status == core::JobStatus::Pending) ++result_.jobs_started;
  dst.spec = continued.get();
  cloned_jobs_.push_back(std::move(continued));
  dst.epochs_done = src.epochs_done;
  dst.history = src.history;
  dst.status = core::JobStatus::Suspended;
  ++result_.clones;
  return true;
}

void TraceReplaySimulator::complete_epoch(core::JobId job) {
  if (done_) return;
  auto& rt = runtime(job);
  const auto& curve = rt.spec->curve;
  rt.execution_time += curve.epoch_duration;
  const double perf = curve.perf.at(rt.epochs_done);
  ++rt.epochs_done;
  rt.history.push_back(perf);

  core::JobEvent event;
  event.job_id = job;
  event.epoch = rt.epochs_done;
  event.perf = perf;
  if (!curve.secondary.empty()) event.secondary = curve.secondary.at(rt.epochs_done - 1);
  event.epoch_duration = curve.epoch_duration;
  event.now = simulation_.now();

  policy_->on_application_stat(*this, event);

  // Experiment-level target monitor (the paper's time-to-target objective),
  // optionally replaced by a model-owner-defined criterion (§9).
  if (perf > result_.best_perf) result_.best_perf = perf;
  const bool hit = options_.stop_criterion ? options_.stop_criterion(event)
                                           : perf >= trace_.target_performance;
  if (options_.stop_on_target && hit) {
    result_.reached_target = true;
    result_.time_to_target = simulation_.now();
    result_.winning_job = job;
    finish_experiment();
    return;
  }

  const core::JobDecision decision = policy_->on_iteration_finish(*this, event);

  if (decision == core::JobDecision::Continue &&
      rt.epochs_done < curve.perf.size()) {
    simulation_.schedule_after(curve.epoch_duration, [this, job] { complete_epoch(job); });
    return;
  }

  switch (decision) {
    case core::JobDecision::Continue:
      // Ran out of epochs: natural completion.
      rt.status = core::JobStatus::Completed;
      break;
    case core::JobDecision::Suspend:
      if (rt.epochs_done >= curve.perf.size()) {
        // Nothing left to train; a suspend would park the job forever.
        rt.status = core::JobStatus::Completed;
        break;
      }
      rt.status = core::JobStatus::Suspended;
      rt.idle = true;
      rt.idle_seq = idle_counter_++;
      ++rt.times_suspended;
      ++result_.suspends;
      break;
    case core::JobDecision::Terminate:
      rt.status = core::JobStatus::Terminated;
      ++result_.terminations;
      break;
  }
  release_machine_and_allocate();
}

void TraceReplaySimulator::release_machine_and_allocate() {
  ++idle_machines_;
  policy_->on_allocate(*this);
  // If nothing could be scheduled and nothing is running, the experiment is
  // over (every job completed or terminated, or the policy starved itself).
  if (idle_machines_ == options_.machines && simulation_.events_pending() == 0) {
    finish_experiment();
  }
}

void TraceReplaySimulator::finish_experiment() {
  if (done_) return;
  done_ = true;
  simulation_.stop();
}

core::ExperimentResult TraceReplaySimulator::run(core::SchedulingPolicy& policy) {
  policy_ = &policy;
  result_ = core::ExperimentResult{};
  result_.policy_name = std::string(policy.name());

  policy.on_experiment_start(*this);
  policy.on_allocate(*this);
  if (idle_machines_ == options_.machines && simulation_.events_pending() == 0) {
    // Policy refused to start anything.
    result_.total_time = util::SimTime::zero();
    return result_;
  }
  simulation_.run_until(options_.max_experiment_time);

  result_.total_time =
      done_ ? simulation_.now() : std::min(simulation_.now(), options_.max_experiment_time);
  for (const auto& [id, rt] : jobs_) {
    core::JobRunStats stats;
    stats.job_id = id;
    stats.execution_time = rt.execution_time;
    stats.epochs_completed = rt.epochs_done;
    stats.times_suspended = rt.times_suspended;
    stats.final_status = rt.status;
    stats.best_perf =
        rt.history.empty() ? 0.0 : *std::max_element(rt.history.begin(), rt.history.end());
    result_.total_machine_time += rt.execution_time;
    result_.job_stats.push_back(stats);
  }
  policy_ = nullptr;
  return result_;
}

core::ExperimentResult replay_experiment(const workload::Trace& trace,
                                         core::SchedulingPolicy& policy,
                                         const ReplayOptions& options) {
  TraceReplaySimulator simulator(trace, options);
  return simulator.run(policy);
}

}  // namespace hyperdrive::sim
