#include "sim/simulation.hpp"

#include <utility>

namespace hyperdrive::sim {

EventHandle Simulation::schedule_at(util::SimTime t, Callback cb, int priority) {
  if (t < now_) t = now_;
  Event ev;
  ev.time = t;
  ev.priority = priority;
  ev.seq = next_seq_++;
  ev.handle = next_handle_++;
  pending_.emplace(ev.handle, std::move(cb));
  queue_.push(ev);
  return ev.handle;
}

EventHandle Simulation::schedule_after(util::SimTime delay, Callback cb, int priority) {
  return schedule_at(now_ + delay, std::move(cb), priority);
}

bool Simulation::cancel(EventHandle handle) { return pending_.erase(handle) > 0; }

std::size_t Simulation::events_pending() const noexcept { return pending_.size(); }

void Simulation::drain(util::SimTime until) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    const Event ev = queue_.top();
    if (ev.time > until) break;
    queue_.pop();
    const auto it = pending_.find(ev.handle);
    if (it == pending_.end()) continue;  // cancelled tombstone
    Callback cb = std::move(it->second);
    pending_.erase(it);
    now_ = ev.time;
    ++processed_;
    cb();
  }
}

void Simulation::run() { drain(util::SimTime::infinity()); }

void Simulation::run_until(util::SimTime until) {
  drain(until);
  // Advance the clock to the boundary only for finite horizons; an infinite
  // horizon means "run to completion" and the clock stays at the last event.
  if (until < util::SimTime::infinity() && now_ < until && !stopped_) now_ = until;
}

}  // namespace hyperdrive::sim
