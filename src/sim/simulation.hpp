// Discrete-event simulation engine — the "Simulator Engine" of §7.1.
//
// Both execution substrates in this repository run on virtual time:
//   * cluster::HyperDriveCluster, the high-fidelity model of the live
//     HyperDrive deployment (node agents, suspend/resume and message
//     overheads, epoch jitter), and
//   * sim::TraceReplaySimulator, the paper's simplified trace-driven
//     simulator used for the sensitivity studies (§7.2).
// Comparing the two reproduces the simulator-validation experiment
// (Fig. 12a).
//
// Events fire in (time, priority, insertion order) order, so simulations are
// fully deterministic. Events can be cancelled via the handle returned by
// schedule_*.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>

#include "util/sim_time.hpp"

namespace hyperdrive::sim {

using EventHandle = std::uint64_t;

class Simulation {
 public:
  using Callback = std::function<void()>;

  [[nodiscard]] util::SimTime now() const noexcept { return now_; }

  /// Schedule `cb` at absolute time `t` (>= now(), else clamped to now()).
  /// Lower `priority` fires first among same-time events.
  EventHandle schedule_at(util::SimTime t, Callback cb, int priority = 0);
  EventHandle schedule_after(util::SimTime delay, Callback cb, int priority = 0);

  /// Cancel a pending event; returns false if it already fired or was
  /// cancelled before.
  bool cancel(EventHandle handle);

  /// Run until the queue drains, `stop()` is called, or the optional
  /// `until` time is passed (events at exactly `until` still fire).
  void run();
  void run_until(util::SimTime until);
  void stop() noexcept { stopped_ = true; }
  [[nodiscard]] bool stopped() const noexcept { return stopped_; }

  [[nodiscard]] std::size_t events_processed() const noexcept { return processed_; }
  [[nodiscard]] std::size_t events_pending() const noexcept;

 private:
  struct Event {
    util::SimTime time;
    int priority = 0;
    std::uint64_t seq = 0;
    EventHandle handle = 0;
    // Ordering for the min-heap (std::priority_queue is a max-heap, so the
    // comparator is reversed).
    bool operator<(const Event& other) const noexcept {
      if (time != other.time) return time > other.time;
      if (priority != other.priority) return priority > other.priority;
      return seq > other.seq;
    }
  };

  void drain(util::SimTime until);

  util::SimTime now_ = util::SimTime::zero();
  std::priority_queue<Event> queue_;
  /// handle -> callback; erased on fire or cancel, so a queue entry whose
  /// handle is absent here is a cancelled tombstone.
  std::unordered_map<EventHandle, Callback> pending_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_handle_ = 1;
  std::size_t processed_ = 0;
  bool stopped_ = false;
};

}  // namespace hyperdrive::sim
