// TraceReplaySimulator — the paper's trace-driven simulator (§7.1).
//
// Replays a frozen workload::Trace under a pluggable SchedulingPolicy with
// idealized resource-management logic: epoch durations are exactly the
// trace's recorded averages and suspend/resume, messaging and prediction
// overheads are all zero. This is deliberately simpler than
// cluster::HyperDriveCluster; the difference between the two on the same
// trace is the simulator-validation error of Fig. 12a (the paper reports a
// max error of 13% against its live system).
#pragma once

#include <map>
#include <memory>

#include "core/experiment_result.hpp"
#include "core/sap.hpp"
#include "sim/simulation.hpp"
#include "workload/trace.hpp"

namespace hyperdrive::sim {

struct ReplayOptions {
  std::size_t machines = 4;
  /// Experiment cutoff (the user's Tmax); infinity disables it.
  util::SimTime max_experiment_time = util::SimTime::infinity();
  /// Stop as soon as any job reports perf >= target (the paper's
  /// time-to-target objective). When false the experiment runs all jobs to
  /// completion/termination (used to study best-within-budget).
  bool stop_on_target = true;
  /// Model-owner-defined global termination criterion (§9); when set it
  /// replaces the perf >= target check (stop_on_target still gates it).
  core::GlobalStopCriterion stop_criterion;
  /// Exploit/explore continuation hook (PBT; DESIGN.md §13). When set, the
  /// simulator supports SchedulerOps::clone_job: the target job adopts the
  /// donor's observed prefix and trains on against the continuation curve
  /// this hook returns. Unset = cloning unsupported (the default).
  workload::ExploreFn explore;
};

class TraceReplaySimulator final : public core::SchedulerOps {
 public:
  TraceReplaySimulator(const workload::Trace& trace, ReplayOptions options);

  /// Run the experiment under `policy` and collect the result. The
  /// simulator object is single-use.
  [[nodiscard]] core::ExperimentResult run(core::SchedulingPolicy& policy);

  // --- SchedulerOps -------------------------------------------------------
  [[nodiscard]] std::optional<core::JobId> get_idle_job() override;
  bool start_job(core::JobId job) override;
  void label_job(core::JobId job, double priority) override;
  [[nodiscard]] std::size_t total_machines() const override { return options_.machines; }
  [[nodiscard]] std::size_t idle_machines() const override { return idle_machines_; }
  [[nodiscard]] util::SimTime now() const override { return simulation_.now(); }
  [[nodiscard]] core::JobStatus job_status(core::JobId job) const override;
  [[nodiscard]] std::vector<core::JobId> active_jobs() const override;
  [[nodiscard]] const std::vector<double>& perf_history(core::JobId job) const override;
  [[nodiscard]] util::SimTime avg_epoch_duration(core::JobId job) const override;
  [[nodiscard]] std::size_t epochs_done(core::JobId job) const override;
  // Gray-failure hooks (DESIGN.md §7): the idealized simulator models the
  // paper's testbed — homogeneous, healthy nodes — so every host runs at
  // nominal speed and the normalized epoch cost equals the observed average.
  // Spelled out (rather than inherited) so the §7.1 simplification is
  // explicit and speed-aware policies behave identically here.
  [[nodiscard]] double host_speed(core::JobId /*job*/) const override { return 1.0; }
  [[nodiscard]] util::SimTime normalized_epoch_duration(core::JobId job) const override {
    return avg_epoch_duration(job);
  }
  // Weight migration (PBT; DESIGN.md §13): available iff an explore hook is
  // configured. The clone is instantaneous here — the idealized simulator
  // charges no snapshot-transfer overhead, matching its zero-cost
  // suspend/resume model.
  [[nodiscard]] bool supports_clone() const override;
  bool clone_job(core::JobId job, core::JobId donor, std::uint64_t stream) override;
  [[nodiscard]] std::size_t max_epochs() const override { return trace_.max_epochs; }
  [[nodiscard]] double target_performance() const override {
    return trace_.target_performance;
  }
  [[nodiscard]] double kill_threshold() const override { return trace_.kill_threshold; }
  [[nodiscard]] std::size_t evaluation_boundary() const override {
    return trace_.evaluation_boundary;
  }

 private:
  struct JobRuntime {
    const workload::TraceJob* spec = nullptr;
    core::JobStatus status = core::JobStatus::Pending;
    std::size_t epochs_done = 0;
    std::vector<double> history;
    util::SimTime execution_time = util::SimTime::zero();
    std::size_t times_suspended = 0;
    double priority = 0.0;
    std::uint64_t idle_seq = 0;  ///< FIFO tie-break within equal priority
    bool idle = true;            ///< in the idle queue (pending or suspended)
  };

  JobRuntime& runtime(core::JobId job);
  [[nodiscard]] const JobRuntime& runtime(core::JobId job) const;
  void complete_epoch(core::JobId job);
  void release_machine_and_allocate();
  void finish_experiment();

  const workload::Trace& trace_;
  ReplayOptions options_;
  Simulation simulation_;
  core::SchedulingPolicy* policy_ = nullptr;
  std::map<core::JobId, JobRuntime> jobs_;  // ordered => deterministic iteration
  /// Continuation ground truth minted by clone_job; owned here because the
  /// input trace is frozen and shared across cells.
  std::vector<std::unique_ptr<workload::TraceJob>> cloned_jobs_;
  std::size_t idle_machines_ = 0;
  std::uint64_t idle_counter_ = 0;
  core::ExperimentResult result_;
  bool done_ = false;
};

/// Convenience wrapper: build, run, return.
[[nodiscard]] core::ExperimentResult replay_experiment(const workload::Trace& trace,
                                                       core::SchedulingPolicy& policy,
                                                       const ReplayOptions& options);

}  // namespace hyperdrive::sim
