// Server — the TCP front of hyperdrive_serve (DESIGN.md §14): a poll()-based
// event loop on one thread, speaking the svc wire protocol to any number of
// concurrent clients and translating each request into one StudyService
// call. Connections are independent: each owns a FrameReader (incremental
// framing with the pre-allocation bound check) and an outbound byte queue;
// a decode failure answers with an Error frame and drops the connection, an
// oversized length prefix drops it without a reply (the framing itself can
// no longer be trusted).
//
// The server never blocks on a study: StudyService runs studies on its own
// worker threads, so submit/status/list round-trips stay fast while runs are
// in flight.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "svc/protocol.hpp"
#include "svc/service.hpp"

namespace hyperdrive::svc {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (read the bound port back via port()).
  std::uint16_t port = 0;
  /// Accepted-but-over-limit connections are closed immediately (and counted
  /// as svc.connections_dropped).
  std::size_t max_connections = 64;
  std::size_t max_frame_bytes = kMaxFrameBytes;
  /// svc.connection/frame/byte counters + the Metrics request's snapshot.
  obs::MetricsRegistry* metrics = nullptr;
};

class Server {
 public:
  /// Binds and listens; throws std::runtime_error on socket failure.
  Server(StudyService& service, ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawn the event-loop thread. Call once.
  void start();
  /// Ask the loop to exit (wakes poll); idempotent, callable from signal-ish
  /// contexts via a flag + self-pipe write.
  void request_stop();
  /// Block until the loop exited (protocol Shutdown or request_stop).
  void wait_shutdown();

  /// The bound TCP port (resolves port 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

 private:
  struct Connection {
    FrameReader reader;
    std::vector<std::uint8_t> out;
    std::size_t out_pos = 0;
    bool close_after_flush = false;
    explicit Connection(std::size_t max_frame) : reader(max_frame) {}
  };

  void loop();
  /// Handle one decoded request; returns the response message.
  [[nodiscard]] Message handle(const Message& request);
  void enqueue(Connection& conn, const Message& response);
  void bump(const char* name, std::uint64_t n = 1) const;

  StudyService& service_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int wake_rd_ = -1;
  int wake_wr_ = -1;
  std::uint16_t port_ = 0;
  std::map<int, Connection> conns_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  bool shutdown_seen_ = false;  ///< loop-thread only
};

}  // namespace hyperdrive::svc
