#include "svc/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace hyperdrive::svc {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

Server::Server(StudyService& service, ServerOptions options)
    : service_(service), options_(std::move(options)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket: " + std::string(std::strerror(errno)));
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bad listen address '" + options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind " + options_.host + ":" + std::to_string(options_.port) +
                             ": " + err);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("listen: " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  (void)::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  set_nonblocking(listen_fd_);

  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("pipe: " + std::string(std::strerror(errno)));
  }
  wake_rd_ = pipe_fds[0];
  wake_wr_ = pipe_fds[1];
  set_nonblocking(wake_rd_);
  set_nonblocking(wake_wr_);
}

Server::~Server() {
  request_stop();
  wait_shutdown();
  for (auto& [fd, conn] : conns_) {
    (void)conn;
    ::close(fd);
  }
  conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
}

void Server::start() { thread_ = std::thread(&Server::loop, this); }

void Server::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (wake_wr_ >= 0) {
    const char byte = 1;
    (void)!::write(wake_wr_, &byte, 1);
  }
}

void Server::wait_shutdown() {
  if (thread_.joinable()) thread_.join();
}

void Server::bump(const char* name, std::uint64_t n) const {
  if (options_.metrics != nullptr && n > 0) options_.metrics->counter(name).add(n);
}

Message Server::handle(const Message& request) {
  Message reply;
  switch (request.type) {
    case MsgType::Submit: {
      const SubmitOutcome out = service_.submit(request.tenant, request.text);
      if (!out.accepted) {
        reply.type = MsgType::Rejected;
        reply.text = out.reason;
        break;
      }
      reply.type = MsgType::Submitted;
      reply.id = out.id;
      reply.state = out.state;
      reply.position = static_cast<std::uint32_t>(out.queue_position);
      break;
    }
    case MsgType::Cancel: {
      std::string error;
      if (service_.cancel(request.id, error)) {
        reply.type = MsgType::Ok;
      } else {
        reply.type = MsgType::Error;
        reply.text = error;
      }
      break;
    }
    case MsgType::Status: {
      const auto info = service_.status(request.id);
      if (info.has_value()) {
        reply.type = MsgType::StatusInfo;
        reply.info = *info;
      } else {
        reply.type = MsgType::Error;
        reply.text = "unknown id " + std::to_string(request.id);
      }
      break;
    }
    case MsgType::List:
      reply.type = MsgType::ListResult;
      reply.studies = service_.list(request.tenant);
      break;
    case MsgType::Fetch: {
      std::string bytes;
      std::string error;
      if (service_.artifact(request.id, request.artifact, bytes, error)) {
        reply.type = MsgType::Artifact;
        reply.text = std::move(bytes);
      } else {
        reply.type = MsgType::Error;
        reply.text = error;
      }
      break;
    }
    case MsgType::Metrics: {
      reply.type = MsgType::MetricsText;
      if (options_.metrics != nullptr) {
        std::ostringstream os;
        options_.metrics->write_csv(os);
        reply.text = os.str();
      }
      break;
    }
    case MsgType::Shutdown:
      shutdown_seen_ = true;
      reply.type = MsgType::Ok;
      break;
    default:
      reply.type = MsgType::Error;
      reply.text = "unexpected message type";
      break;
  }
  return reply;
}

void Server::enqueue(Connection& conn, const Message& response) {
  const std::vector<std::uint8_t> frame = encode_frame(response);
  conn.out.insert(conn.out.end(), frame.begin(), frame.end());
  bump("svc.frames_tx");
}

void Server::loop() {
  std::vector<pollfd> fds;
  std::vector<std::uint8_t> buf(64 * 1024);
  while (true) {
    const bool stopping = stop_.load(std::memory_order_relaxed) || shutdown_seen_;
    bool flushing = false;
    for (const auto& [fd, conn] : conns_) {
      (void)fd;
      if (conn.out_pos < conn.out.size()) flushing = true;
    }
    if (stopping && !flushing) break;

    fds.clear();
    if (!stopping) fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_rd_, POLLIN, 0});
    for (const auto& [fd, conn] : conns_) {
      short events = stopping ? 0 : POLLIN;
      if (conn.out_pos < conn.out.size()) events |= POLLOUT;
      if (events != 0) fds.push_back({fd, events, 0});
    }

    const int n = ::poll(fds.data(), fds.size(), stopping ? 100 : 500);
    if (n < 0 && errno != EINTR) break;
    if (stopping && n == 0) break;  // flush stalled; don't hang shutdown
    if (n <= 0) continue;

    std::vector<int> to_close;
    for (const pollfd& p : fds) {
      if (p.fd == wake_rd_) {
        if (p.revents & POLLIN) {
          char drain[64];
          while (::read(wake_rd_, drain, sizeof drain) > 0) {
          }
        }
        continue;
      }
      if (p.fd == listen_fd_) {
        if ((p.revents & POLLIN) != 0) {
          for (;;) {
            const int cfd = ::accept(listen_fd_, nullptr, nullptr);
            if (cfd < 0) break;
            if (conns_.size() >= options_.max_connections) {
              ::close(cfd);
              bump("svc.connections_dropped");
              continue;
            }
            set_nonblocking(cfd);
            const int one = 1;
            (void)::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
            conns_.emplace(cfd, Connection(options_.max_frame_bytes));
            bump("svc.connections");
          }
        }
        continue;
      }

      const auto it = conns_.find(p.fd);
      if (it == conns_.end()) continue;
      Connection& conn = it->second;
      bool drop = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;

      if (!drop && (p.revents & POLLIN) != 0) {
        for (;;) {
          const ssize_t got = ::recv(p.fd, buf.data(), buf.size(), 0);
          if (got == 0) {
            drop = true;
            break;
          }
          if (got < 0) {
            if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) drop = true;
            break;
          }
          bump("svc.bytes_rx", static_cast<std::uint64_t>(got));
          std::vector<std::vector<std::uint8_t>> payloads;
          if (!conn.reader.feed(buf.data(), static_cast<std::size_t>(got), payloads)) {
            // Oversized length prefix: the framing itself is hostile; no
            // reply can be delimited reliably, so the connection just dies.
            bump("svc.decode_errors");
            drop = true;
            break;
          }
          for (const auto& payload : payloads) {
            bump("svc.frames_rx");
            const MessageDecodeResult decoded = decode_message(payload);
            if (!decoded.message.has_value()) {
              bump("svc.decode_errors");
              Message err;
              err.type = MsgType::Error;
              err.text = std::string("decode-error: ") + cluster::to_string(*decoded.error);
              enqueue(conn, err);
              conn.close_after_flush = true;
              break;
            }
            enqueue(conn, handle(*decoded.message));
            if (shutdown_seen_) conn.close_after_flush = true;
          }
          if (conn.close_after_flush) break;
        }
      }

      if (!drop && conn.out_pos < conn.out.size()) {
        for (;;) {
          const std::size_t left = conn.out.size() - conn.out_pos;
          if (left == 0) break;
          const ssize_t sent = ::send(p.fd, conn.out.data() + conn.out_pos, left, MSG_NOSIGNAL);
          if (sent < 0) {
            if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) drop = true;
            break;
          }
          conn.out_pos += static_cast<std::size_t>(sent);
          bump("svc.bytes_tx", static_cast<std::uint64_t>(sent));
        }
        if (conn.out_pos == conn.out.size()) {
          conn.out.clear();
          conn.out_pos = 0;
          if (conn.close_after_flush) drop = true;
        }
      }

      if (drop) to_close.push_back(p.fd);
    }
    for (const int fd : to_close) {
      ::close(fd);
      conns_.erase(fd);
    }
  }
}

}  // namespace hyperdrive::svc
