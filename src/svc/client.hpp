// Client — the session side of the svc wire protocol. Wraps one TCP
// connection to hyperdrive_serve with connect-timeout + retry semantics (the
// server may still be coming up, or be restarting after a crash — exactly
// the window serve_smoke.sh exercises) and per-call I/O timeouts, so a dead
// server fails a call with a clear error instead of hanging the tool.
//
// One Client is one session used from one thread; calls are strictly
// request→response (the protocol has no server pushes).
#pragma once

#include <cstdint>
#include <string>

#include "svc/protocol.hpp"

namespace hyperdrive::svc {

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Per-attempt connect timeout.
  int connect_timeout_ms = 2000;
  /// Socket send/recv timeout per call.
  int io_timeout_ms = 30000;
  /// Connect attempts before giving up (covers server restarts).
  int retries = 10;
  int retry_delay_ms = 200;
};

class Client {
 public:
  explicit Client(ClientOptions options);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One request→response round trip; connects (with retries) on first use
  /// and reconnects after a broken connection. Throws std::runtime_error on
  /// connect exhaustion, I/O timeout, or an undecodable reply.
  [[nodiscard]] Message call(const Message& request);

  // Convenience wrappers over call().
  [[nodiscard]] Message submit(const std::string& tenant, const std::string& spec_text);
  [[nodiscard]] Message cancel(std::uint64_t id);
  [[nodiscard]] Message status(std::uint64_t id);
  [[nodiscard]] Message list(const std::string& tenant = "");
  [[nodiscard]] Message fetch(std::uint64_t id, ArtifactKind kind);
  [[nodiscard]] Message metrics();
  [[nodiscard]] Message shutdown();

 private:
  void connect();
  void disconnect();
  void send_all(const std::uint8_t* data, std::size_t size);
  void recv_all(std::uint8_t* data, std::size_t size);

  ClientOptions options_;
  int fd_ = -1;
};

}  // namespace hyperdrive::svc
