// Admission control and per-tenant quotas for the service front-end
// (DESIGN.md §14). Pure bookkeeping — no I/O, no threads, no clock — so the
// whole decision surface is unit-testable and the StudyService can hold it
// under its own mutex.
//
// Lifecycle of one submission id:
//
//   submit() ──► Run      (counted against global running + tenant slots)
//            ──► Queue    (counted against global + tenant queue depth)
//            ──► Reject   (pinned reason string; nothing is counted)
//   next_runnable()       Queue ──► Run, under the arbitration mode
//   cancel_queued()       Queue ──► gone (queue quota released)
//   release()             Run   ──► gone (slot quota released)
//
// Quota accounting is in machine slots: every running study holds its
// `slots` (the service's per-study machine count) against its tenant's
// max_slots until release(). Queue accounting is in studies.
//
// Rejection reasons are part of the protocol surface (clients and tests
// match on them); their formats are pinned by AdmissionTest and documented
// in DESIGN.md §14.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/study/study_manager.hpp"
#include "util/sim_time.hpp"

namespace hyperdrive::svc {

/// Per-tenant limits, applied uniformly to every tenant.
struct TenantQuota {
  /// Machine slots a tenant's *running* studies may hold in total.
  std::size_t max_slots = 16;
  /// Studies a tenant may have waiting in the queue.
  std::size_t max_queued = 8;
};

struct AdmissionOptions {
  /// Server-wide cap on concurrently running studies.
  std::size_t max_running = 4;
  /// Server-wide cap on queued studies.
  std::size_t max_queued = 16;
  TenantQuota tenant;
  /// Dequeue order across tenants when capacity frees up:
  ///   static    strict FIFO (submission order);
  ///   fair      tenant holding the fewest running slots first;
  ///   deadline  earliest study deadline first (none = last).
  /// Ties always break by submission order.
  core::ArbitrationMode arbitration = core::ArbitrationMode::FairShare;
};

enum class AdmissionVerdict { Run, Queue, Reject };

struct AdmissionDecision {
  AdmissionVerdict verdict = AdmissionVerdict::Reject;
  /// Pinned reason string (Reject only).
  std::string reason;
  /// 1-based queue position (Queue only).
  std::size_t queue_position = 0;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  /// Decide for a new submission of `slots` machine slots by `tenant`.
  /// `deadline` orders the queue under deadline arbitration. Run/Queue are
  /// recorded; Reject leaves no trace. Not thread-safe (caller locks).
  AdmissionDecision submit(std::uint64_t id, const std::string& tenant, std::size_t slots,
                           util::SimTime deadline);

  /// A running study finished or was cancelled: release its slots. Returns
  /// false for an id that was not running (already released / never ran).
  bool release(std::uint64_t id);

  /// Remove a queued submission (cancel-while-queued). Returns false when
  /// the id is not in the queue.
  bool cancel_queued(std::uint64_t id);

  /// Pop the next queued submission that can start now — global running
  /// headroom plus its tenant's slot headroom — under the arbitration mode.
  /// The returned id is immediately counted as running. nullopt when nothing
  /// is runnable (empty queue, server full, or every waiter's tenant at
  /// quota).
  [[nodiscard]] std::optional<std::uint64_t> next_runnable();

  [[nodiscard]] std::size_t running_count() const noexcept { return running_.size(); }
  [[nodiscard]] std::size_t queued_count() const noexcept { return queue_.size(); }
  [[nodiscard]] std::size_t tenant_running_slots(const std::string& tenant) const;
  [[nodiscard]] std::size_t tenant_queued(const std::string& tenant) const;
  [[nodiscard]] const AdmissionOptions& options() const noexcept { return options_; }

 private:
  struct Waiter {
    std::uint64_t id = 0;
    std::string tenant;
    std::size_t slots = 0;
    util::SimTime deadline = util::SimTime::infinity();
    std::uint64_t seq = 0;  ///< submission order, the universal tie-breaker
  };
  struct TenantUsage {
    std::size_t running_slots = 0;
    std::size_t queued = 0;
  };

  [[nodiscard]] bool can_run_now(const std::string& tenant, std::size_t slots) const;
  void mark_running(const Waiter& w);

  AdmissionOptions options_;
  std::uint64_t next_seq_ = 0;
  std::deque<Waiter> queue_;  ///< submission order
  std::unordered_map<std::uint64_t, Waiter> running_;
  std::unordered_map<std::string, TenantUsage> tenants_;
};

}  // namespace hyperdrive::svc
