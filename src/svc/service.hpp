// StudyService — the always-on execution core behind hyperdrive_serve
// (DESIGN.md §14). Accepts study-spec submissions from multiple tenants,
// pushes them through the AdmissionController, and runs each admitted study
// as its own crash-recoverable coordinator run (core::run_recoverable_
// multi_study) on a worker thread.
//
// Byte-identity contract: a study submitted to the service produces result
// and timeline artifacts byte-identical to the batch run
//
//   hyperdrive_cli --study spec --machines M --seed S
//       --checkpoint-out D --checkpoint-every E --csv r.csv --trace-out t.csv
//
// because the service builds the exact same StudyManagerOptions the batch
// CLI builds (same machines/seed, FairShare arbitration, health off, empty
// fault plan) and exports through the same save_csv / save_timeline_file
// code paths. Studies run on the deterministic sim clock; the service's own
// wall-clock concurrency is byte-invisible to every study.
//
// Durability: every accepted submission is journaled under
// state_dir/sub-<id>/ *before* the client sees its Submitted reply —
// spec.study (the submitted text, verbatim) plus a meta file — and each run
// writes durable HDCK checkpoints into sub-<id>/ckpt. A SIGKILL'd server
// therefore resumes every in-flight study on restart: finished submissions
// are reloaded from their meta, unfinished ones are re-admitted in id order
// and their runs resume from the newest valid checkpoint frame (deterministic
// replay with byte-verification), so the final artifacts are identical to an
// uninterrupted run. Rejected submissions are deliberately memory-only.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/study/study_spec.hpp"
#include "obs/scope.hpp"
#include "svc/admission.hpp"
#include "svc/protocol.hpp"

namespace hyperdrive::svc {

struct ServiceOptions {
  /// Machine slots for every study's cluster (mirrors the batch --machines).
  std::size_t machines = 4;
  /// Base seed for every study manager (mirrors the batch --seed).
  std::uint64_t seed = 1;
  /// Tenant allowlist (--tenants). Empty (default) admits any tenant name;
  /// non-empty rejects unlisted tenants with the pinned reason
  /// "unknown-tenant: <tenant>" before admission control sees them.
  std::vector<std::string> allowed_tenants;
  AdmissionOptions admission;
  /// Durable journal root; empty = memory-only (no resume, tests only).
  std::string state_dir;
  /// Per-study durable checkpoint cadence in simulated seconds (0 = only the
  /// final frame). Mirrors the batch --checkpoint-every.
  double checkpoint_every_s = 0.0;
  /// Testing hook forwarded into every study run's CheckpointOptions: the
  /// process SIGKILLs itself after its Nth durable checkpoint write
  /// (serve_smoke.sh uses this to die mid-flight deterministically).
  std::size_t kill_after_checkpoints = 0;
  /// svc.* events and metrics (admission path only, never study-internal).
  obs::Scope obs;
};

struct SubmitOutcome {
  bool accepted = false;
  std::uint64_t id = 0;            ///< allocated for every submission
  StudyState state = StudyState::Queued;  ///< Running|Queued when accepted
  std::string reason;              ///< pinned rejection reason (rejects only)
  std::size_t queue_position = 0;  ///< 1-based (queued only)
};

class StudyService {
 public:
  /// Scans state_dir (when set): finished/cancelled submissions are reloaded
  /// into the index, unfinished ones are re-admitted in id order and resume
  /// from their checkpoints.
  explicit StudyService(ServiceOptions options);
  ~StudyService();
  StudyService(const StudyService&) = delete;
  StudyService& operator=(const StudyService&) = delete;

  /// Parse + admit one submission. Never throws on bad input: a spec the
  /// parser rejects comes back as a rejection with reason "bad-spec: ...".
  [[nodiscard]] SubmitOutcome submit(const std::string& tenant, const std::string& spec_text);

  /// Cancel a submission. Queued: removed immediately (quota released).
  /// Running: cooperative — the deterministic study run is not interruptible
  /// mid-sim, so the cancel latches and the submission is marked Cancelled
  /// when its worker returns (artifacts are still written). Returns false
  /// with `error` set for unknown ids and terminal states.
  bool cancel(std::uint64_t id, std::string& error);

  [[nodiscard]] std::optional<StudyInfo> status(std::uint64_t id) const;
  /// All submissions in id order; `tenant` filters when non-empty.
  [[nodiscard]] std::vector<StudyInfo> list(const std::string& tenant) const;

  /// Fetch a finished submission's result/timeline CSV bytes (read back from
  /// the journal). False + `error` for unknown ids or non-finished states.
  bool artifact(std::uint64_t id, ArtifactKind kind, std::string& bytes,
                std::string& error) const;

  /// Block until nothing is running or queued.
  void wait_idle();
  /// Stop accepting, let running studies finish, leave queued submissions
  /// journaled for the next incarnation, join all workers. Idempotent;
  /// the destructor calls it.
  void stop();

  [[nodiscard]] std::size_t running_count() const;
  [[nodiscard]] std::size_t queued_count() const;
  /// Unfinished submissions re-admitted by the startup scan.
  [[nodiscard]] std::size_t resumed_count() const noexcept { return resumed_; }
  [[nodiscard]] const ServiceOptions& options() const noexcept { return options_; }

 private:
  struct Submission {
    std::uint64_t id = 0;
    std::string tenant;
    std::string spec_text;
    core::StudySpec spec;
    StudyState state = StudyState::Queued;
    std::string detail;
    bool cancel_requested = false;
    // Final summary (Finished only).
    double best_perf = 0.0;
    bool reached_target = false;
    double time_to_target_s = 0.0;
    double total_time_s = 0.0;
    // Finished artifacts, cached in memory (also journaled when durable).
    std::string result_csv;
    std::string timeline_csv;
  };

  [[nodiscard]] std::string sub_dir(std::uint64_t id) const;
  void journal_locked(const Submission& sub) const;   ///< spec.study + meta
  void write_meta_locked(const Submission& sub) const;
  void launch_locked(std::uint64_t id);
  void drain_locked();  ///< start every next_runnable() (unless stopping)
  void run_study(std::uint64_t id);
  void resume_scan();
  [[nodiscard]] StudyInfo info_locked(const Submission& sub) const;
  void bump(const char* name) const;  ///< svc.* counter, null-safe

  ServiceOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;
  AdmissionController admission_;
  std::map<std::uint64_t, Submission> subs_;  ///< id order = list order
  /// Wall-clock queue-entry stamps (ms) feeding svc.queue_wait_ms only —
  /// never any study artifact.
  std::map<std::uint64_t, double> queued_at_ms_;
  std::uint64_t next_id_ = 1;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
  std::size_t resumed_ = 0;
};

/// Pin the registration (= CSV export) order of every svc.* metric, so a
/// server --metrics-out snapshot is byte-deterministic regardless of which
/// admission path fires first. Call after preregister_checkpoint_metrics.
void preregister_service_metrics(obs::MetricsRegistry& registry);

}  // namespace hyperdrive::svc
