#include "svc/admission.hpp"

#include <algorithm>
#include <limits>

namespace hyperdrive::svc {

AdmissionController::AdmissionController(AdmissionOptions options) : options_(std::move(options)) {}

std::size_t AdmissionController::tenant_running_slots(const std::string& tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.running_slots;
}

std::size_t AdmissionController::tenant_queued(const std::string& tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.queued;
}

bool AdmissionController::can_run_now(const std::string& tenant, std::size_t slots) const {
  if (running_.size() >= options_.max_running) return false;
  return tenant_running_slots(tenant) + slots <= options_.tenant.max_slots;
}

void AdmissionController::mark_running(const Waiter& w) {
  tenants_[w.tenant].running_slots += w.slots;
  running_.emplace(w.id, w);
}

AdmissionDecision AdmissionController::submit(std::uint64_t id, const std::string& tenant,
                                              std::size_t slots, util::SimTime deadline) {
  AdmissionDecision d;
  // A study asking for more slots than its tenant may ever hold can never
  // run, so queueing it would wedge the queue; reject it outright.
  if (slots > options_.tenant.max_slots) {
    d.verdict = AdmissionVerdict::Reject;
    d.reason = "tenant-quota-slots: need=" + std::to_string(slots) +
               " limit=" + std::to_string(options_.tenant.max_slots);
    return d;
  }
  // Run immediately only when nothing is already waiting — a newcomer must
  // not overtake the queue even if its tenant happens to have headroom.
  if (queue_.empty() && can_run_now(tenant, slots)) {
    Waiter w{id, tenant, slots, deadline, next_seq_++};
    mark_running(w);
    d.verdict = AdmissionVerdict::Run;
    return d;
  }
  if (queue_.size() >= options_.max_queued) {
    d.verdict = AdmissionVerdict::Reject;
    d.reason = "server-full: running=" + std::to_string(running_.size()) + "/" +
               std::to_string(options_.max_running) + " queued=" + std::to_string(queue_.size()) +
               "/" + std::to_string(options_.max_queued);
    return d;
  }
  if (tenant_queued(tenant) >= options_.tenant.max_queued) {
    d.verdict = AdmissionVerdict::Reject;
    d.reason = "tenant-quota-queued: tenant=" + tenant +
               " queued=" + std::to_string(tenant_queued(tenant)) + "/" +
               std::to_string(options_.tenant.max_queued);
    return d;
  }
  queue_.push_back(Waiter{id, tenant, slots, deadline, next_seq_++});
  tenants_[tenant].queued += 1;
  d.verdict = AdmissionVerdict::Queue;
  d.queue_position = queue_.size();
  return d;
}

bool AdmissionController::release(std::uint64_t id) {
  const auto it = running_.find(id);
  if (it == running_.end()) return false;
  auto& usage = tenants_[it->second.tenant];
  usage.running_slots -= std::min(usage.running_slots, it->second.slots);
  running_.erase(it);
  return true;
}

bool AdmissionController::cancel_queued(std::uint64_t id) {
  const auto it = std::find_if(queue_.begin(), queue_.end(),
                               [&](const Waiter& w) { return w.id == id; });
  if (it == queue_.end()) return false;
  auto& usage = tenants_[it->tenant];
  usage.queued -= std::min<std::size_t>(usage.queued, 1);
  queue_.erase(it);
  return true;
}

std::optional<std::uint64_t> AdmissionController::next_runnable() {
  if (running_.size() >= options_.max_running) return std::nullopt;

  auto best = queue_.end();
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (!can_run_now(it->tenant, it->slots)) continue;
    if (best == queue_.end()) {
      best = it;
      if (options_.arbitration == core::ArbitrationMode::StaticPartition) break;  // FIFO
      continue;
    }
    switch (options_.arbitration) {
      case core::ArbitrationMode::StaticPartition:
        break;  // unreachable: FIFO takes the first candidate
      case core::ArbitrationMode::FairShare: {
        // The tenant holding the fewest running slots goes first; queue order
        // (seq) breaks ties, so equal tenants behave exactly like FIFO.
        const std::size_t best_held = tenant_running_slots(best->tenant);
        const std::size_t cand_held = tenant_running_slots(it->tenant);
        if (cand_held < best_held) best = it;
        break;
      }
      case core::ArbitrationMode::DeadlineAware:
        if (it->deadline.to_seconds() < best->deadline.to_seconds()) best = it;
        break;
    }
  }
  if (best == queue_.end()) return std::nullopt;

  const Waiter w = *best;
  auto& usage = tenants_[w.tenant];
  usage.queued -= std::min<std::size_t>(usage.queued, 1);
  queue_.erase(best);
  mark_running(w);
  return w.id;
}

}  // namespace hyperdrive::svc
