#include "svc/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/study/coordinator.hpp"
#include "obs/export.hpp"
#include "obs/sink.hpp"

namespace hyperdrive::svc {

namespace fs = std::filesystem;

namespace {

/// Durable-write discipline shared with the checkpoint store: the journal is
/// only ever observed in a complete state (tmp + rename).
void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write '" + tmp + "'");
    out << content;
  }
  fs::rename(tmp, path);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool parse_state(const std::string& text, StudyState& out) {
  for (const StudyState s : {StudyState::Queued, StudyState::Running, StudyState::Finished,
                             StudyState::Cancelled, StudyState::Failed}) {
    if (text == to_string(s)) {
      out = s;
      return true;
    }
  }
  return false;
}

std::string one_line(std::string text) {
  for (char& c : text) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return text;
}

bool has_checkpoint_frames(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return false;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("ckpt-", 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".hdck") == 0) {
      return true;
    }
  }
  return false;
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void preregister_service_metrics(obs::MetricsRegistry& registry) {
  for (const char* name :
       {"svc.submissions", "svc.admitted", "svc.queued", "svc.rejected", "svc.cancelled",
        "svc.completed", "svc.failed", "svc.resumed", "svc.connections",
        "svc.connections_dropped", "svc.frames_rx", "svc.frames_tx", "svc.decode_errors",
        "svc.bytes_rx", "svc.bytes_tx"}) {
    (void)registry.counter(name);
  }
  (void)registry.histogram("svc.queue_wait_ms", {1.0, 10.0, 100.0, 1000.0, 10000.0});
}

StudyService::StudyService(ServiceOptions options)
    : options_(std::move(options)), admission_(options_.admission) {
  if (!options_.state_dir.empty()) {
    fs::create_directories(options_.state_dir);
    resume_scan();
  }
}

StudyService::~StudyService() { stop(); }

void StudyService::bump(const char* name) const {
  if (options_.obs.metrics != nullptr) options_.obs.metrics->counter(name).add();
}

std::string StudyService::sub_dir(std::uint64_t id) const {
  return options_.state_dir + "/sub-" + std::to_string(id);
}

void StudyService::write_meta_locked(const Submission& sub) const {
  if (options_.state_dir.empty()) return;
  std::ostringstream os;
  os << "tenant " << sub.tenant << "\n";
  os << "state " << to_string(sub.state) << "\n";
  if (!sub.detail.empty()) os << "detail " << one_line(sub.detail) << "\n";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", sub.best_perf);
  os << "best " << buf << "\n";
  os << "reached " << (sub.reached_target ? 1 : 0) << "\n";
  std::snprintf(buf, sizeof buf, "%.17g", sub.time_to_target_s);
  os << "ttt " << buf << "\n";
  std::snprintf(buf, sizeof buf, "%.17g", sub.total_time_s);
  os << "total " << buf << "\n";
  write_file_atomic(sub_dir(sub.id) + "/meta", os.str());
}

void StudyService::journal_locked(const Submission& sub) const {
  if (options_.state_dir.empty()) return;
  fs::create_directories(sub_dir(sub.id));
  // The spec text is journaled verbatim: the resume scan re-parses exactly
  // the bytes the tenant submitted, so re-admission sees the same spec.
  write_file_atomic(sub_dir(sub.id) + "/spec.study", sub.spec_text);
  write_meta_locked(sub);
}

StudyInfo StudyService::info_locked(const Submission& sub) const {
  StudyInfo info;
  info.id = sub.id;
  info.tenant = sub.tenant;
  info.study_name = sub.spec.name;
  info.state = sub.state;
  info.detail = sub.detail;
  info.best_perf = sub.best_perf;
  info.reached_target = sub.reached_target;
  info.time_to_target_s = sub.time_to_target_s;
  info.total_time_s = sub.total_time_s;
  return info;
}

SubmitOutcome StudyService::submit(const std::string& tenant, const std::string& spec_text) {
  SubmitOutcome out;
  core::StudySpec spec;
  try {
    std::istringstream in(spec_text);
    spec = core::load_study_spec(in);
  } catch (const std::exception& e) {
    out.reason = std::string("bad-spec: ") + e.what();
    std::lock_guard<std::mutex> lock(mutex_);
    bump("svc.submissions");
    bump("svc.rejected");
    options_.obs.emit(obs::TraceEvent(obs::EventKind::StudyRejected).with_detail(out.reason));
    return out;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  bump("svc.submissions");
  if (stopping_) {
    out.reason = "server-stopping";
    bump("svc.rejected");
    options_.obs.emit(obs::TraceEvent(obs::EventKind::StudyRejected).with_detail(out.reason));
    return out;
  }
  // Tenant allowlist gate (memory-only, like every rejection: the journal
  // never records unauthorized traffic).
  if (!options_.allowed_tenants.empty() &&
      std::find(options_.allowed_tenants.begin(), options_.allowed_tenants.end(),
                tenant) == options_.allowed_tenants.end()) {
    out.reason = "unknown-tenant: " + tenant;
    bump("svc.rejected");
    options_.obs.emit(obs::TraceEvent(obs::EventKind::StudyRejected).with_detail(out.reason));
    return out;
  }
  const std::uint64_t id = next_id_++;
  options_.obs.emit(obs::TraceEvent(obs::EventKind::StudySubmitted)
                        .with_job(static_cast<std::int64_t>(id))
                        .with_detail("tenant=" + tenant));
  const AdmissionDecision decision =
      admission_.submit(id, tenant, options_.machines, spec.deadline);
  out.id = id;
  if (decision.verdict == AdmissionVerdict::Reject) {
    out.reason = decision.reason;
    bump("svc.rejected");
    options_.obs.emit(obs::TraceEvent(obs::EventKind::StudyRejected)
                          .with_job(static_cast<std::int64_t>(id))
                          .with_detail(decision.reason));
    // Rejections are memory-only: the submission index remembers them until
    // the process exits, the journal never sees them (DESIGN.md §14).
    Submission sub;
    sub.id = id;
    sub.tenant = tenant;
    sub.spec = spec;
    sub.state = StudyState::Failed;
    sub.detail = decision.reason;
    subs_.emplace(id, std::move(sub));
    return out;
  }

  Submission sub;
  sub.id = id;
  sub.tenant = tenant;
  sub.spec_text = spec_text;
  sub.spec = std::move(spec);
  sub.state =
      decision.verdict == AdmissionVerdict::Run ? StudyState::Running : StudyState::Queued;
  auto [it, inserted] = subs_.emplace(id, std::move(sub));
  (void)inserted;
  // Journal BEFORE the reply: once the client hears "Submitted", a SIGKILL
  // can no longer lose the submission.
  journal_locked(it->second);

  out.accepted = true;
  out.state = it->second.state;
  if (decision.verdict == AdmissionVerdict::Run) {
    bump("svc.admitted");
    options_.obs.emit(obs::TraceEvent(obs::EventKind::StudyAdmitted)
                          .with_job(static_cast<std::int64_t>(id))
                          .with_detail("tenant=" + tenant));
    launch_locked(id);
  } else {
    out.queue_position = decision.queue_position;
    bump("svc.queued");
    it->second.detail = "queued";
    options_.obs.emit(obs::TraceEvent(obs::EventKind::StudyQueued)
                          .with_job(static_cast<std::int64_t>(id))
                          .with_detail("tenant=" + tenant + " position=" +
                                       std::to_string(decision.queue_position)));
    queued_at_ms_[id] = now_ms();
  }
  return out;
}

void StudyService::launch_locked(std::uint64_t id) {
  workers_.emplace_back(&StudyService::run_study, this, id);
}

void StudyService::drain_locked() {
  if (stopping_) return;  // queued work stays journaled for the next incarnation
  while (auto next = admission_.next_runnable()) {
    auto it = subs_.find(*next);
    if (it == subs_.end()) continue;
    it->second.state = StudyState::Running;
    it->second.detail.clear();
    write_meta_locked(it->second);
    bump("svc.admitted");
    options_.obs.emit(obs::TraceEvent(obs::EventKind::StudyAdmitted)
                          .with_job(static_cast<std::int64_t>(*next))
                          .with_detail("tenant=" + it->second.tenant));
    const auto qit = queued_at_ms_.find(*next);
    if (qit != queued_at_ms_.end()) {
      if (options_.obs.metrics != nullptr) {
        options_.obs.metrics
            ->histogram("svc.queue_wait_ms", {1.0, 10.0, 100.0, 1000.0, 10000.0})
            .observe(now_ms() - qit->second);
      }
      queued_at_ms_.erase(qit);
    }
    launch_locked(*next);
  }
}

void StudyService::run_study(std::uint64_t id) {
  core::StudySpec spec;
  std::string dir;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = subs_.find(id);
    if (it == subs_.end()) return;
    spec = it->second.spec;
    if (!options_.state_dir.empty()) dir = sub_dir(id);
  }

  // Exactly the StudyManagerOptions the batch CLI builds for
  //   hyperdrive_cli --study ... --machines M --seed S
  // (fair arbitration, health off, no fault plan): this is what makes the
  // service's artifacts byte-identical to batch mode.
  core::StudyManagerOptions mopts;
  mopts.machines = options_.machines;
  mopts.seed = options_.seed;
  mopts.arbitration = core::ArbitrationMode::FairShare;
  obs::RecordingSink sink;
  mopts.obs.sink = &sink;

  core::CheckpointOptions ckpt;
  if (!dir.empty()) {
    ckpt.dir = dir + "/ckpt";
    ckpt.every = util::SimTime::seconds(options_.checkpoint_every_s);
    ckpt.resume = has_checkpoint_frames(ckpt.dir);
    ckpt.kill_after_checkpoints = options_.kill_after_checkpoints;
  }

  std::string failure;
  core::RecoverableRunResult run;
  try {
    run = core::run_recoverable_multi_study({spec}, mopts, ckpt);
  } catch (const std::exception& e) {
    failure = e.what();
  }

  std::string result_csv;
  std::string timeline_csv;
  if (failure.empty()) {
    std::ostringstream rs;
    run.result.save_csv(rs);
    result_csv = rs.str();
    std::ostringstream ts;
    obs::write_timeline_csv(ts, sink.events);
    timeline_csv = ts.str();
    if (!dir.empty()) {
      write_file_atomic(dir + "/result.csv", result_csv);
      write_file_atomic(dir + "/timeline.csv", timeline_csv);
    }
  }

  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = subs_.find(id);
  if (it == subs_.end()) return;
  Submission& sub = it->second;
  if (!failure.empty()) {
    sub.state = StudyState::Failed;
    sub.detail = "run-failed: " + failure;
    bump("svc.failed");
  } else {
    sub.result_csv = std::move(result_csv);
    sub.timeline_csv = std::move(timeline_csv);
    if (!run.result.studies.empty()) {
      const auto& r = run.result.studies.front().result;
      sub.best_perf = r.best_perf;
      sub.reached_target = r.reached_target;
      sub.time_to_target_s = r.time_to_target.to_seconds();
    }
    sub.total_time_s = run.result.total_time.to_seconds();
    if (sub.cancel_requested) {
      // The deterministic run is not interruptible mid-sim: the cancel
      // latched and resolves here. Artifacts stay on disk (the run did
      // complete); the state records the tenant's intent.
      sub.state = StudyState::Cancelled;
      sub.detail = "cancelled while running; run completed first";
      bump("svc.cancelled");
    } else {
      sub.state = StudyState::Finished;
      sub.detail.clear();
      bump("svc.completed");
    }
  }
  write_meta_locked(sub);
  options_.obs.emit(obs::TraceEvent(obs::EventKind::StudyFinished)
                        .with_job(static_cast<std::int64_t>(id))
                        .with_detail("tenant=" + sub.tenant));
  admission_.release(id);
  drain_locked();
  idle_cv_.notify_all();
}

bool StudyService::cancel(std::uint64_t id, std::string& error) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = subs_.find(id);
  if (it == subs_.end()) {
    error = "unknown id " + std::to_string(id);
    return false;
  }
  Submission& sub = it->second;
  switch (sub.state) {
    case StudyState::Queued:
      (void)admission_.cancel_queued(id);
      queued_at_ms_.erase(id);
      sub.state = StudyState::Cancelled;
      sub.detail = "cancelled while queued";
      write_meta_locked(sub);
      bump("svc.cancelled");
      idle_cv_.notify_all();
      return true;
    case StudyState::Running:
      sub.cancel_requested = true;
      return true;
    case StudyState::Finished:
    case StudyState::Cancelled:
    case StudyState::Failed:
      error = std::string("already ") + to_string(sub.state);
      return false;
  }
  error = "unknown state";
  return false;
}

std::optional<StudyInfo> StudyService::status(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = subs_.find(id);
  if (it == subs_.end()) return std::nullopt;
  return info_locked(it->second);
}

std::vector<StudyInfo> StudyService::list(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<StudyInfo> out;
  for (const auto& [id, sub] : subs_) {
    (void)id;
    if (!tenant.empty() && sub.tenant != tenant) continue;
    out.push_back(info_locked(sub));
  }
  return out;
}

bool StudyService::artifact(std::uint64_t id, ArtifactKind kind, std::string& bytes,
                            std::string& error) const {
  std::string dir;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = subs_.find(id);
    if (it == subs_.end()) {
      error = "unknown id " + std::to_string(id);
      return false;
    }
    const Submission& sub = it->second;
    if (sub.state != StudyState::Finished && sub.state != StudyState::Cancelled) {
      error = std::string("not finished (state=") + to_string(sub.state) + ")";
      return false;
    }
    const std::string& cached =
        kind == ArtifactKind::ResultCsv ? sub.result_csv : sub.timeline_csv;
    if (!cached.empty()) {
      bytes = cached;
      return true;
    }
    if (options_.state_dir.empty()) {
      error = "no artifacts recorded";
      return false;
    }
    dir = sub_dir(id);
  }
  try {
    bytes = read_file(dir + (kind == ArtifactKind::ResultCsv ? "/result.csv"
                                                             : "/timeline.csv"));
  } catch (const std::exception& e) {
    error = e.what();
    return false;
  }
  return true;
}

void StudyService::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [&] {
    return admission_.running_count() == 0 && admission_.queued_count() == 0;
  });
}

void StudyService::stop() {
  std::vector<std::thread> workers;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
    idle_cv_.wait(lock, [&] { return admission_.running_count() == 0; });
    workers.swap(workers_);
  }
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
}

std::size_t StudyService::running_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return admission_.running_count();
}

std::size_t StudyService::queued_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return admission_.queued_count();
}

void StudyService::resume_scan() {
  // Constructor-time only: no workers exist yet, so no lock is needed, but
  // launch_locked starts threads that immediately block on mutex_ — they
  // proceed once construction returns.
  std::vector<std::uint64_t> ids;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.state_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("sub-", 0) != 0) continue;
    char* end = nullptr;
    const unsigned long long id = std::strtoull(name.c_str() + 4, &end, 10);
    if (end == nullptr || *end != '\0' || id == 0) continue;
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());

  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::uint64_t id : ids) {
    Submission sub;
    sub.id = id;
    try {
      sub.spec_text = read_file(sub_dir(id) + "/spec.study");
      std::istringstream spec_in(sub.spec_text);
      sub.spec = core::load_study_spec(spec_in);
      std::istringstream meta(read_file(sub_dir(id) + "/meta"));
      std::string line;
      while (std::getline(meta, line)) {
        const auto space = line.find(' ');
        if (space == std::string::npos) continue;
        const std::string key = line.substr(0, space);
        const std::string value = line.substr(space + 1);
        if (key == "tenant") sub.tenant = value;
        else if (key == "state") (void)parse_state(value, sub.state);
        else if (key == "detail") sub.detail = value;
        else if (key == "best") sub.best_perf = std::strtod(value.c_str(), nullptr);
        else if (key == "reached") sub.reached_target = value == "1";
        else if (key == "ttt") sub.time_to_target_s = std::strtod(value.c_str(), nullptr);
        else if (key == "total") sub.total_time_s = std::strtod(value.c_str(), nullptr);
      }
    } catch (const std::exception&) {
      continue;  // half-written journal entry (crash mid-journal): skip it
    }
    next_id_ = std::max(next_id_, id + 1);

    if (sub.state == StudyState::Finished || sub.state == StudyState::Cancelled ||
        sub.state == StudyState::Failed) {
      subs_.emplace(id, std::move(sub));
      continue;
    }
    // Unfinished (queued or running when the last incarnation died):
    // re-admit in id order; the run resumes from its durable checkpoints.
    const AdmissionDecision decision =
        admission_.submit(id, sub.tenant, options_.machines, sub.spec.deadline);
    if (decision.verdict == AdmissionVerdict::Reject) {
      sub.state = StudyState::Failed;
      sub.detail = "resume rejected: " + decision.reason;
      auto [it, ok] = subs_.emplace(id, std::move(sub));
      (void)ok;
      write_meta_locked(it->second);
      continue;
    }
    sub.state =
        decision.verdict == AdmissionVerdict::Run ? StudyState::Running : StudyState::Queued;
    sub.detail = decision.verdict == AdmissionVerdict::Run ? "" : "queued";
    auto [it, ok] = subs_.emplace(id, std::move(sub));
    (void)ok;
    write_meta_locked(it->second);
    ++resumed_;
    bump("svc.resumed");
    if (decision.verdict == AdmissionVerdict::Run) launch_locked(id);
    else queued_at_ms_[id] = now_ms();
  }
}

}  // namespace hyperdrive::svc
