#include "svc/protocol.hpp"

#include <cstring>

#include "util/bytes.hpp"

namespace hyperdrive::svc {

namespace {

using cluster::SnapshotDecodeError;

/// Smallest possible encoding of one StudyInfo (three empty strings): the
/// hostile-count bound for ListResult entries.
constexpr std::size_t kMinStudyInfoBytes = 8 + 4 + 4 + 1 + 4 + 8 + 1 + 8 + 8;

void write_info(util::ByteWriter& w, const StudyInfo& info) {
  w.u64(info.id);
  w.str(info.tenant);
  w.str(info.study_name);
  w.u8(static_cast<std::uint8_t>(info.state));
  w.str(info.detail);
  w.f64(info.best_perf);
  w.u8(info.reached_target ? 1 : 0);
  w.f64(info.time_to_target_s);
  w.f64(info.total_time_s);
}

bool valid_state(std::uint8_t v) noexcept {
  return v <= static_cast<std::uint8_t>(StudyState::Failed);
}

/// Reads one StudyInfo; nullopt-style bool return, sets `error` on failure.
bool read_info(util::ByteReader& r, StudyInfo& info, SnapshotDecodeError& error) {
  std::uint8_t state = 0;
  std::uint8_t reached = 0;
  if (!r.u64(info.id) || !r.str(info.tenant) || !r.str(info.study_name) || !r.u8(state) ||
      !r.str(info.detail) || !r.f64(info.best_perf) || !r.u8(reached) ||
      !r.f64(info.time_to_target_s) || !r.f64(info.total_time_s)) {
    error = SnapshotDecodeError::Truncated;
    return false;
  }
  if (!valid_state(state) || reached > 1) {
    error = SnapshotDecodeError::Malformed;
    return false;
  }
  info.state = static_cast<StudyState>(state);
  info.reached_target = reached == 1;
  return true;
}

}  // namespace

const char* to_string(StudyState state) noexcept {
  switch (state) {
    case StudyState::Queued: return "queued";
    case StudyState::Running: return "running";
    case StudyState::Finished: return "finished";
    case StudyState::Cancelled: return "cancelled";
    case StudyState::Failed: return "failed";
  }
  return "?";
}

std::vector<std::uint8_t> encode_message(const Message& m) {
  util::ByteWriter w;
  w.u32(kProtocolMagic);
  w.u32(kProtocolVersion);
  w.u8(static_cast<std::uint8_t>(m.type));
  switch (m.type) {
    case MsgType::Submit:
      w.str(m.tenant);
      w.str(m.text);
      break;
    case MsgType::Cancel:
    case MsgType::Status:
      w.u64(m.id);
      break;
    case MsgType::List:
      w.str(m.tenant);
      break;
    case MsgType::Fetch:
      w.u64(m.id);
      w.u8(static_cast<std::uint8_t>(m.artifact));
      break;
    case MsgType::Metrics:
    case MsgType::Shutdown:
    case MsgType::Ok:
      break;
    case MsgType::Submitted:
      w.u64(m.id);
      w.u8(static_cast<std::uint8_t>(m.state));
      w.u32(m.position);
      break;
    case MsgType::Rejected:
    case MsgType::Artifact:
    case MsgType::MetricsText:
    case MsgType::Error:
      w.str(m.text);
      break;
    case MsgType::StatusInfo:
      write_info(w, m.info);
      break;
    case MsgType::ListResult:
      w.u32(static_cast<std::uint32_t>(m.studies.size()));
      for (const StudyInfo& info : m.studies) write_info(w, info);
      break;
  }
  const std::uint32_t crc = cluster::crc32(w.bytes().data(), w.size());
  w.u32(crc);
  return std::move(w.bytes());
}

std::vector<std::uint8_t> encode_frame(const Message& m) {
  std::vector<std::uint8_t> payload = encode_message(m);
  util::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.raw(payload.data(), payload.size());
  return std::move(w.bytes());
}

MessageDecodeResult decode_message(const std::uint8_t* data, std::size_t size) {
  const auto fail = [](SnapshotDecodeError error) {
    MessageDecodeResult r;
    r.error = error;
    return r;
  };

  // Frame tail first: the CRC is over everything before it, so a payload too
  // small to even hold header + CRC is truncated, and a checksum mismatch is
  // reported before any field is trusted.
  if (size < 4 + 4 + 1 + 4) return fail(SnapshotDecodeError::Truncated);
  util::ByteReader r(data, size - 4);
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint8_t type = 0;
  if (!r.u32(magic)) return fail(SnapshotDecodeError::Truncated);
  if (magic != kProtocolMagic) return fail(SnapshotDecodeError::BadMagic);
  if (!r.u32(version)) return fail(SnapshotDecodeError::Truncated);
  if (version != kProtocolVersion) return fail(SnapshotDecodeError::UnknownVersion);
  {
    std::uint32_t stored = 0;
    util::ByteReader tail(data + size - 4, 4);
    (void)tail.u32(stored);
    if (stored != cluster::crc32(data, size - 4)) {
      return fail(SnapshotDecodeError::BadChecksum);
    }
  }
  if (!r.u8(type)) return fail(SnapshotDecodeError::Truncated);

  Message m;
  switch (static_cast<MsgType>(type)) {
    case MsgType::Submit:
      m.type = MsgType::Submit;
      if (!r.str(m.tenant) || !r.str(m.text)) return fail(SnapshotDecodeError::Truncated);
      break;
    case MsgType::Cancel:
    case MsgType::Status:
      m.type = static_cast<MsgType>(type);
      if (!r.u64(m.id)) return fail(SnapshotDecodeError::Truncated);
      break;
    case MsgType::List:
      m.type = MsgType::List;
      if (!r.str(m.tenant)) return fail(SnapshotDecodeError::Truncated);
      break;
    case MsgType::Fetch: {
      m.type = MsgType::Fetch;
      std::uint8_t what = 0;
      if (!r.u64(m.id) || !r.u8(what)) return fail(SnapshotDecodeError::Truncated);
      if (what > static_cast<std::uint8_t>(ArtifactKind::TimelineCsv)) {
        return fail(SnapshotDecodeError::Malformed);
      }
      m.artifact = static_cast<ArtifactKind>(what);
      break;
    }
    case MsgType::Metrics:
    case MsgType::Shutdown:
    case MsgType::Ok:
      m.type = static_cast<MsgType>(type);
      break;
    case MsgType::Submitted: {
      m.type = MsgType::Submitted;
      std::uint8_t state = 0;
      if (!r.u64(m.id) || !r.u8(state) || !r.u32(m.position)) {
        return fail(SnapshotDecodeError::Truncated);
      }
      if (!valid_state(state)) return fail(SnapshotDecodeError::Malformed);
      m.state = static_cast<StudyState>(state);
      break;
    }
    case MsgType::Rejected:
    case MsgType::Artifact:
    case MsgType::MetricsText:
    case MsgType::Error:
      m.type = static_cast<MsgType>(type);
      if (!r.str(m.text)) return fail(SnapshotDecodeError::Truncated);
      break;
    case MsgType::StatusInfo: {
      m.type = MsgType::StatusInfo;
      SnapshotDecodeError error{};
      if (!read_info(r, m.info, error)) return fail(error);
      break;
    }
    case MsgType::ListResult: {
      m.type = MsgType::ListResult;
      std::uint32_t count = 0;
      if (!r.u32(count)) return fail(SnapshotDecodeError::Truncated);
      // Hostile-count bound: every entry needs at least kMinStudyInfoBytes,
      // so a count the remaining payload cannot possibly hold is rejected
      // here — before the vector reserves anything.
      if (count > r.remaining() / kMinStudyInfoBytes) {
        return fail(SnapshotDecodeError::Malformed);
      }
      m.studies.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        StudyInfo info;
        SnapshotDecodeError error{};
        if (!read_info(r, info, error)) return fail(error);
        m.studies.push_back(std::move(info));
      }
      break;
    }
    default:
      return fail(SnapshotDecodeError::Malformed);
  }

  if (r.remaining() != 0) return fail(SnapshotDecodeError::TrailingGarbage);
  MessageDecodeResult result;
  result.message = std::move(m);
  return result;
}

MessageDecodeResult decode_message(const std::vector<std::uint8_t>& payload) {
  return decode_message(payload.data(), payload.size());
}

FrameReader::FrameReader(std::size_t max_frame_bytes) : max_frame_bytes_(max_frame_bytes) {}

bool FrameReader::feed(const std::uint8_t* data, std::size_t size,
                       std::vector<std::vector<std::uint8_t>>& out) {
  if (poisoned_) return false;
  std::size_t pos = 0;
  while (pos < size) {
    if (!have_length_) {
      while (buffer_.size() < 4 && pos < size) buffer_.push_back(data[pos++]);
      if (buffer_.size() < 4) return true;  // header still incomplete
      payload_length_ = 0;
      for (int i = 0; i < 4; ++i) {
        payload_length_ |= static_cast<std::uint32_t>(buffer_[static_cast<std::size_t>(i)])
                           << (8 * i);
      }
      if (payload_length_ > max_frame_bytes_) {
        // The bound check happens before any payload buffer is reserved: a
        // hostile 4 GiB prefix poisons the stream at the cost of 4 bytes.
        poisoned_ = true;
        buffer_.clear();
        return false;
      }
      buffer_.clear();
      buffer_.reserve(payload_length_);
      have_length_ = true;
    }
    const std::size_t want = payload_length_ - buffer_.size();
    const std::size_t take = std::min(want, size - pos);
    buffer_.insert(buffer_.end(), data + pos, data + pos + take);
    pos += take;
    if (buffer_.size() == payload_length_) {
      out.push_back(std::move(buffer_));
      buffer_ = {};
      have_length_ = false;
      payload_length_ = 0;
    }
  }
  return true;
}

}  // namespace hyperdrive::svc
