#include "svc/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/bytes.hpp"

namespace hyperdrive::svc {

namespace {

void sleep_ms(int ms) {
  timespec ts{};
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = static_cast<long>(ms % 1000) * 1000000L;
  (void)::nanosleep(&ts, nullptr);
}

void set_io_timeout(int fd, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<long>(ms % 1000) * 1000L;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

/// One non-blocking connect attempt bounded by `timeout_ms`. Returns the
/// connected fd or -1.
int try_connect(const ClientOptions& options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }

  const int flags = ::fcntl(fd, F_GETFL, 0);
  (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return -1;
    }
    pollfd p{fd, POLLOUT, 0};
    if (::poll(&p, 1, options.connect_timeout_ms) <= 0) {
      ::close(fd);
      return -1;
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return -1;
    }
  }
  (void)::fcntl(fd, F_SETFL, flags);  // back to blocking for the call path
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  set_io_timeout(fd, options.io_timeout_ms);
  return fd;
}

}  // namespace

Client::Client(ClientOptions options) : options_(std::move(options)) {}

Client::~Client() { disconnect(); }

void Client::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::connect() {
  for (int attempt = 0; attempt <= options_.retries; ++attempt) {
    fd_ = try_connect(options_);
    if (fd_ >= 0) return;
    if (attempt < options_.retries) sleep_ms(options_.retry_delay_ms);
  }
  throw std::runtime_error("cannot connect to " + options_.host + ":" +
                           std::to_string(options_.port) + " after " +
                           std::to_string(options_.retries + 1) + " attempts");
}

void Client::send_all(const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      disconnect();
      throw std::runtime_error("send failed: " + std::string(std::strerror(errno)));
    }
    sent += static_cast<std::size_t>(n);
  }
}

void Client::recv_all(std::uint8_t* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd_, data + got, size - got, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      disconnect();
      throw std::runtime_error(n == 0 ? "server closed the connection"
                                      : "recv failed: " + std::string(std::strerror(errno)));
    }
    got += static_cast<std::size_t>(n);
  }
}

Message Client::call(const Message& request) {
  if (fd_ < 0) connect();
  const std::vector<std::uint8_t> frame = encode_frame(request);
  send_all(frame.data(), frame.size());

  std::uint8_t header[4];
  recv_all(header, sizeof header);
  std::uint32_t length = 0;
  util::ByteReader hr(header, sizeof header);
  (void)hr.u32(length);
  if (length > kMaxFrameBytes) {
    disconnect();
    throw std::runtime_error("reply frame too large (" + std::to_string(length) + " bytes)");
  }
  std::vector<std::uint8_t> payload(length);
  recv_all(payload.data(), payload.size());
  MessageDecodeResult decoded = decode_message(payload);
  if (!decoded.message.has_value()) {
    disconnect();
    throw std::runtime_error(std::string("undecodable reply: ") +
                             cluster::to_string(*decoded.error));
  }
  return std::move(*decoded.message);
}

Message Client::submit(const std::string& tenant, const std::string& spec_text) {
  Message m;
  m.type = MsgType::Submit;
  m.tenant = tenant;
  m.text = spec_text;
  return call(m);
}

Message Client::cancel(std::uint64_t id) {
  Message m;
  m.type = MsgType::Cancel;
  m.id = id;
  return call(m);
}

Message Client::status(std::uint64_t id) {
  Message m;
  m.type = MsgType::Status;
  m.id = id;
  return call(m);
}

Message Client::list(const std::string& tenant) {
  Message m;
  m.type = MsgType::List;
  m.tenant = tenant;
  return call(m);
}

Message Client::fetch(std::uint64_t id, ArtifactKind kind) {
  Message m;
  m.type = MsgType::Fetch;
  m.id = id;
  m.artifact = kind;
  return call(m);
}

Message Client::metrics() {
  Message m;
  m.type = MsgType::Metrics;
  return call(m);
}

Message Client::shutdown() {
  Message m;
  m.type = MsgType::Shutdown;
  return call(m);
}

}  // namespace hyperdrive::svc
