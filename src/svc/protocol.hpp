// Service wire protocol (DESIGN.md §14) — the length-prefixed binary framing
// between hyperdrive_serve and its clients.
//
// A frame on the wire is a 4-byte little-endian payload length followed by
// the payload; the payload borrows the snapshot/HDCK codec discipline:
//
//   magic   u32  'HDRV'
//   version u32
//   type    u8   MsgType
//   body         (type-specific, see encode_message)
//   crc32   u32  over everything before it
//
// Hostile-input contract (the same one the snapshot and checkpoint codecs
// hold): every size field is validated against the bytes actually present
// BEFORE any allocation happens — an oversized length prefix poisons the
// connection without reserving a byte (FrameReader), an inner string length
// beyond the payload fails in ByteReader before assign, and a ListResult
// count is bounded by the remaining payload over the minimal entry size.
// Decode failures are classified with the shared
// cluster::SnapshotDecodeError taxonomy so tests and logs speak one
// vocabulary across all three framed formats.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/snapshot_codec.hpp"

namespace hyperdrive::svc {

inline constexpr std::uint32_t kProtocolMagic = 0x56524448;  // "HDRV" little-endian
inline constexpr std::uint32_t kProtocolVersion = 1;
/// Upper bound on one payload; a length prefix above this is rejected before
/// allocation. Generous: the largest legitimate frame is a timeline artifact.
inline constexpr std::uint32_t kMaxFrameBytes = 8u << 20;

enum class MsgType : std::uint8_t {
  // --- requests -------------------------------------------------------------
  Submit = 1,    ///< tenant + study-spec text
  Cancel = 2,    ///< submission id
  Status = 3,    ///< submission id
  List = 4,      ///< optional tenant filter
  Fetch = 5,     ///< submission id + ArtifactKind
  Metrics = 6,   ///< server metrics snapshot (CSV text)
  Shutdown = 7,  ///< ask the server to stop accepting and exit
  // --- responses ------------------------------------------------------------
  Submitted = 64,    ///< id + state (Running|Queued) + queue position
  Rejected = 65,     ///< admission said no; text = pinned reason string
  StatusInfo = 66,   ///< one StudyInfo
  ListResult = 67,   ///< StudyInfo per submission
  Artifact = 68,     ///< text = result/timeline CSV bytes
  MetricsText = 69,  ///< text = metrics CSV bytes
  Error = 70,        ///< text = diagnostic (unknown id, bad spec, ...)
  Ok = 71,           ///< Cancel/Shutdown acknowledgement
};

/// Submission lifecycle as reported over the wire (mirrors
/// svc::SubmissionState; re-declared here so the protocol layer stays
/// decoupled from the service internals).
enum class StudyState : std::uint8_t {
  Queued = 0,
  Running = 1,
  Finished = 2,
  Cancelled = 3,
  Failed = 4,
};

[[nodiscard]] const char* to_string(StudyState state) noexcept;

enum class ArtifactKind : std::uint8_t {
  ResultCsv = 0,    ///< MultiStudyResult::save_csv bytes (one-study run)
  TimelineCsv = 1,  ///< obs timeline CSV of the study's event stream
};

/// One submission's status row (StatusInfo / ListResult entries).
struct StudyInfo {
  std::uint64_t id = 0;
  std::string tenant;
  std::string study_name;
  StudyState state = StudyState::Queued;
  /// Rejection/cancel/failure reason; empty otherwise.
  std::string detail;
  double best_perf = 0.0;
  bool reached_target = false;
  double time_to_target_s = 0.0;
  double total_time_s = 0.0;

  [[nodiscard]] bool operator==(const StudyInfo&) const = default;
};

/// One protocol message, requests and responses alike: a type tag plus the
/// union of all fields (unused ones stay at their defaults and occupy no
/// wire bytes — each type encodes exactly its own body).
struct Message {
  MsgType type = MsgType::Ok;
  std::uint64_t id = 0;          ///< Cancel/Status/Fetch/Submitted
  std::string tenant;            ///< Submit; List filter (empty = all)
  std::string text;              ///< Submit spec / Rejected reason / Artifact /
                                 ///< MetricsText / Error message
  StudyState state = StudyState::Queued;  ///< Submitted
  ArtifactKind artifact = ArtifactKind::ResultCsv;  ///< Fetch
  std::uint32_t position = 0;    ///< Submitted: queue position (0 = running)
  StudyInfo info;                ///< StatusInfo
  std::vector<StudyInfo> studies;  ///< ListResult

  [[nodiscard]] bool operator==(const Message&) const = default;
};

/// Serialize the payload (magic..crc, no length prefix).
[[nodiscard]] std::vector<std::uint8_t> encode_message(const Message& message);
/// Serialize a full wire frame: u32 payload length + payload.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Message& message);

/// Decode verdict: exactly one of {message, error} is set.
struct MessageDecodeResult {
  std::optional<Message> message;
  std::optional<cluster::SnapshotDecodeError> error;
};

[[nodiscard]] MessageDecodeResult decode_message(const std::uint8_t* data, std::size_t size);
[[nodiscard]] MessageDecodeResult decode_message(const std::vector<std::uint8_t>& payload);

/// Incremental frame splitter for one connection's byte stream. Buffers wire
/// bytes until whole payloads are available; the payload buffer is only
/// reserved after the length prefix passed the bound check, so a hostile
/// 4 GiB prefix costs nothing.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_frame_bytes = kMaxFrameBytes);

  /// Consume `size` wire bytes, appending every completed payload to `out`.
  /// Returns false when the stream declared an oversized frame — the
  /// connection is poisoned and must be dropped (no partial state survives).
  [[nodiscard]] bool feed(const std::uint8_t* data, std::size_t size,
                          std::vector<std::vector<std::uint8_t>>& out);

  /// Bytes of the frame currently being assembled (diagnostics/tests).
  [[nodiscard]] std::size_t pending() const noexcept { return buffer_.size(); }

 private:
  std::size_t max_frame_bytes_;
  bool poisoned_ = false;
  std::vector<std::uint8_t> buffer_;  ///< header-then-payload accumulator
  bool have_length_ = false;
  std::uint32_t payload_length_ = 0;
};

}  // namespace hyperdrive::svc
