// Little-endian byte (de)serialization primitives shared by every framed
// binary format in the repo (job snapshots in cluster::SnapshotCodec,
// coordinator checkpoints in core::CoordinatorCheckpoint).
//
// ByteWriter appends; ByteReader consumes with bool-returning accessors so
// decoders can classify *where* a truncated or malformed image failed instead
// of throwing. Both are deliberately dumb: framing, versioning and checksums
// belong to the codecs built on top.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace hyperdrive::util {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  void raw(const std::uint8_t* data, std::size_t size) { bytes_.insert(bytes_.end(), data, data + size); }
  void blob(const std::vector<std::uint8_t>& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    raw(b.data(), b.size());
  }

  [[nodiscard]] std::vector<std::uint8_t>& bytes() noexcept { return bytes_; }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > size_) return false;
    v = data_[pos_++];
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (pos_ + 4 > size_) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (pos_ + 8 > size_) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return true;
  }
  bool f64(double& v) {
    std::uint64_t bits;
    if (!u64(bits)) return false;
    std::memcpy(&v, &bits, sizeof(v));
    return true;
  }
  bool str(std::string& s) {
    std::uint32_t len;
    if (!u32(len)) return false;
    if (pos_ + len > size_) return false;
    s.assign(reinterpret_cast<const char*>(data_) + pos_, len);
    pos_ += len;
    return true;
  }
  bool blob(std::vector<std::uint8_t>& b) {
    std::uint32_t len;
    if (!u32(len)) return false;
    if (pos_ + len > size_) return false;
    b.assign(data_ + pos_, data_ + pos_ + len);
    pos_ += len;
    return true;
  }
  bool skip(std::size_t n) {
    if (pos_ + n > size_) return false;
    pos_ += n;
    return true;
  }

  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace hyperdrive::util
