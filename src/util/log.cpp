#include "util/log.hpp"

#include <atomic>
#include <iostream>

namespace hyperdrive::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& component, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << '[' << level_name(level) << "] " << component << ": " << message << '\n';
}

}  // namespace hyperdrive::util
