#include "util/log.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace hyperdrive::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_mutex;
LogWriter g_writer;  // guarded by g_mutex; empty = stderr
}  // namespace

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}

LogLevel log_level_from_string(const std::string& name) {
  for (const auto level : {LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                           LogLevel::Error, LogLevel::Off}) {
    if (name == to_string(level)) return level;
  }
  throw std::invalid_argument("unknown log level '" + name +
                              "' (want debug|info|warn|error|off)");
}

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

bool init_log_level_from_env() {
  const char* env = std::getenv("HD_LOG");
  if (env == nullptr || *env == '\0') return false;
  try {
    set_log_level(log_level_from_string(env));
    return true;
  } catch (const std::invalid_argument&) {
    return false;  // invalid HD_LOG is ignored, not fatal
  }
}

void set_log_writer(LogWriter writer) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_writer = std::move(writer);
}

void log_line(LogLevel level, const std::string& component, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_writer) {
    g_writer(level, component, message);
    return;
  }
  std::cerr << '[' << to_string(level) << "] " << component << ": " << message << '\n';
}

}  // namespace hyperdrive::util
