#include "util/sim_time.hpp"

#include <cmath>
#include <limits>
#include <sstream>

namespace hyperdrive::util {

SimTime SimTime::infinity() noexcept {
  return SimTime(std::numeric_limits<double>::infinity());
}

std::string format_duration(SimTime t) {
  const double s = t.to_seconds();
  std::ostringstream os;
  os.precision(4);
  if (!std::isfinite(s)) {
    os << (s > 0 ? "inf" : "-inf");
  } else if (std::fabs(s) >= 3600.0) {
    os << s / 3600.0 << "h";
  } else if (std::fabs(s) >= 60.0) {
    os << s / 60.0 << "min";
  } else if (std::fabs(s) >= 1.0) {
    os << s << "s";
  } else {
    os << s * 1000.0 << "ms";
  }
  return os.str();
}

}  // namespace hyperdrive::util
