#include "util/spec_parser.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace hyperdrive::util {

SpecParser::SpecParser(std::istream& in, std::string format_name)
    : in_(in), format_(std::move(format_name)) {}

bool SpecParser::next_line() {
  std::string raw;
  while (std::getline(in_, raw)) {
    ++line_no_;
    if (const auto hash = raw.find('#'); hash != std::string::npos) raw.erase(hash);
    tokens_.clear();
    tokens_.str(raw);
    if (tokens_ >> directive_) return true;  // skip blank / comment-only lines
  }
  return false;
}

std::string SpecParser::word(const char* what) {
  std::string token;
  if (!(tokens_ >> token)) fail(std::string("missing ") + what);
  return token;
}

std::optional<std::string> SpecParser::optional_word() {
  std::string token;
  if (!(tokens_ >> token)) return std::nullopt;
  return token;
}

double SpecParser::number(const char* what) {
  std::string token;
  if (!(tokens_ >> token)) fail(std::string("missing ") + what);
  if (token == "inf") return std::numeric_limits<double>::infinity();
  try {
    std::size_t used = 0;
    const double value = std::stod(token, &used);
    if (used != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    fail(std::string("bad ") + what + " '" + token + "'");
  }
}

std::optional<double> SpecParser::optional_number(const char* what) {
  std::string token;
  if (!(tokens_ >> token)) return std::nullopt;
  if (token == "inf") return std::numeric_limits<double>::infinity();
  try {
    std::size_t used = 0;
    const double value = std::stod(token, &used);
    if (used != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    fail(std::string("bad ") + what + " '" + token + "'");
  }
}

void SpecParser::finish_line() {
  std::string trailing;
  if (tokens_ >> trailing) fail("trailing token '" + trailing + "'");
}

void SpecParser::fail(const std::string& what) const {
  throw std::invalid_argument(format_ + " line " + std::to_string(line_no_) + ": " + what);
}

void write_spec_time(std::ostream& out, SimTime t) {
  if (t == SimTime::infinity()) {
    out << "inf";
  } else {
    out << t.to_seconds();
  }
}

}  // namespace hyperdrive::util
