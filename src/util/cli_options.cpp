#include "util/cli_options.hpp"

#include <cerrno>
#include <cstdlib>
#include <utility>

namespace hyperdrive::cli {

Options::Options(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

void Options::section(std::string title) { current_section_ = std::move(title); }

void Options::add(std::string name, std::string value_name, std::string help,
                  ValueHandler handler) {
  Entry entry;
  entry.name = std::move(name);
  entry.value_name = std::move(value_name);
  entry.help = std::move(help);
  entry.value_handler = std::move(handler);
  entry.section = current_section_;
  entries_.push_back(std::move(entry));
}

void Options::add_flag(std::string name, std::string help, FlagHandler handler) {
  Entry entry;
  entry.name = std::move(name);
  entry.help = std::move(help);
  entry.flag_handler = std::move(handler);
  entry.section = current_section_;
  entries_.push_back(std::move(entry));
}

void Options::add_flag(std::string name, std::string help, bool& target) {
  add_flag(std::move(name), std::move(help), [&target]() { target = true; });
}

const Options::Entry* Options::find(const std::string& name) const {
  for (const auto& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

bool Options::parse(int argc, char** argv) const {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help(stdout);
      std::exit(0);
    }
    const Entry* entry = find(arg);
    if (entry == nullptr) {
      std::fprintf(stderr, "unknown option: %s (try --help)\n", arg.c_str());
      return false;
    }
    if (entry->flag_handler) {
      entry->flag_handler();
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", arg.c_str());
      return false;
    }
    const std::string value = argv[++i];
    try {
      if (!entry->value_handler(value)) {
        std::fprintf(stderr, "bad value for %s: '%s'\n", arg.c_str(), value.c_str());
        return false;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad value for %s: %s\n", arg.c_str(), e.what());
      return false;
    }
  }
  return true;
}

void Options::print_help(std::FILE* out) const {
  std::fprintf(out, "%s — %s\n", program_.c_str(), summary_.c_str());

  // One fixed column for "--name VALUE" so the help lines up regardless of
  // which section a flag lives in.
  std::size_t width = 0;
  for (const auto& entry : entries_) {
    std::size_t w = entry.name.size();
    if (!entry.value_name.empty()) w += 1 + entry.value_name.size();
    if (w > width) width = w;
  }

  std::string section;
  bool first_section = true;
  for (const auto& entry : entries_) {
    if (first_section || entry.section != section) {
      section = entry.section;
      first_section = false;
      std::fprintf(out, "\n%s:\n", section.empty() ? "options" : section.c_str());
    }
    std::string left = entry.name;
    if (!entry.value_name.empty()) left += ' ' + entry.value_name;
    left.resize(width, ' ');
    // Continuation lines of a multi-line help string align under the first.
    std::size_t start = 0;
    bool first_line = true;
    while (start <= entry.help.size()) {
      const std::size_t end = entry.help.find('\n', start);
      const std::string line =
          entry.help.substr(start, end == std::string::npos ? std::string::npos
                                                            : end - start);
      if (first_line) {
        std::fprintf(out, "  %s  %s\n", left.c_str(), line.c_str());
        first_line = false;
      } else {
        std::fprintf(out, "  %*s  %s\n", static_cast<int>(width), "", line.c_str());
      }
      if (end == std::string::npos) break;
      start = end + 1;
    }
  }
}

bool Options::parse_uint(const std::string& text, std::uint64_t& out) {
  if (text.empty() || text[0] == '-' || text[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  out = static_cast<std::uint64_t>(parsed);
  return true;
}

bool Options::parse_double(const std::string& text, double& out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  out = parsed;
  return true;
}

}  // namespace hyperdrive::cli
