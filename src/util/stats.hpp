// Descriptive statistics used throughout the evaluation harness: percentiles
// and quartile summaries for the paper's box plots (Fig. 7 / Fig. 9), ECDFs
// for the duration and overhead distributions (Fig. 6 / Fig. 10 / Fig. 12c),
// and streaming moments for overhead accounting (§6.2.3).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hyperdrive::util {

[[nodiscard]] double mean(const std::vector<double>& xs);
/// Sample variance (divides by n-1); returns 0 for fewer than two samples.
[[nodiscard]] double variance(const std::vector<double>& xs);
[[nodiscard]] double stddev(const std::vector<double>& xs);
[[nodiscard]] double min_of(const std::vector<double>& xs);
[[nodiscard]] double max_of(const std::vector<double>& xs);

/// Linear-interpolation percentile (same convention as numpy.percentile).
/// q is in [0, 100]. Throws std::invalid_argument on empty input.
[[nodiscard]] double percentile(std::vector<double> xs, double q);
[[nodiscard]] double median(std::vector<double> xs);

/// Five-number summary used to print box plots as text.
struct BoxStats {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0;
  double mean = 0;
  std::size_t n = 0;
};
[[nodiscard]] BoxStats box_stats(const std::vector<double>& xs);
/// Render "min/Q1/med/Q3/max (mean, n)" for the bench reports.
[[nodiscard]] std::string to_string(const BoxStats& b);

/// Empirical CDF over the samples. eval(x) = fraction of samples <= x.
class Ecdf {
 public:
  explicit Ecdf(std::vector<double> samples);
  [[nodiscard]] double eval(double x) const noexcept;
  /// Inverse ECDF: the q-quantile, q in [0, 1].
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] const std::vector<double>& sorted() const noexcept { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// Welford's online mean/variance — used where samples arrive one at a time
/// (e.g. suspend latencies recorded during a live cluster run).
class OnlineStats {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width histogram over [lo, hi) with `bins` buckets; out-of-range
/// samples are clamped into the edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t i) const noexcept;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace hyperdrive::util
