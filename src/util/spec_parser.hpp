// SpecParser — the shared line-oriented text-format reader behind the fault
// plan and study spec loaders (and any future "one directive per line"
// format). Handles the common plumbing both formats duplicated: '#'
// comments, blank-line skipping, line numbering, typed token extraction with
// "inf" support, trailing-token rejection, and uniformly formatted errors
// ("<format> line N: <what>") so the existing *_io_test expectations stay
// byte-identical.
#pragma once

#include <iosfwd>
#include <optional>
#include <sstream>
#include <string>

#include "util/sim_time.hpp"

namespace hyperdrive::util {

class SpecParser {
 public:
  /// `format_name` prefixes every error ("fault plan", "study spec").
  SpecParser(std::istream& in, std::string format_name);

  /// Advance to the next line with content (comments stripped, blanks
  /// skipped) and read its leading directive. Returns false at end of input.
  bool next_line();
  /// The current line's first token (valid after next_line() returned true).
  [[nodiscard]] const std::string& directive() const noexcept { return directive_; }
  /// 1-based number of the current line (after EOF: of the last line read).
  [[nodiscard]] int line() const noexcept { return line_no_; }

  /// Next token on the current line; fails with "missing <what>".
  std::string word(const char* what);
  /// As word(), but std::nullopt when the line has no tokens left (directives
  /// with a variable-length operand tail, e.g. `policy asha eta=4`).
  std::optional<std::string> optional_word();
  /// Next token as a double, accepting "inf"; fails with "missing <what>" or
  /// "bad <what> '<token>'".
  double number(const char* what);
  /// As number(), but std::nullopt when the line has no tokens left.
  std::optional<double> optional_number(const char* what);
  /// Reject any leftover token ("trailing token '<tok>'"). Call once all the
  /// directive's operands are consumed.
  void finish_line();

  /// Throw std::invalid_argument("<format> line N: <what>").
  [[noreturn]] void fail(const std::string& what) const;

 private:
  std::istream& in_;
  std::string format_;
  std::istringstream tokens_;
  std::string directive_;
  int line_no_ = 0;
};

/// Writes `inf` for unbounded durations, otherwise plain seconds with enough
/// digits that load(save(x)) == x — the saver-side counterpart of the
/// parser's "inf" acceptance, shared by both text formats.
void write_spec_time(std::ostream& out, SimTime t);

}  // namespace hyperdrive::util
