#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace hyperdrive::util {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers = std::min(std::max<std::size_t>(1, threads), n);
  if (workers == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace hyperdrive::util
