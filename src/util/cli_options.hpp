// cli::Options — a declarative command-line flag table shared by the
// executables (hyperdrive_cli, tools/trace_sweep). Each flag is registered
// once with its value placeholder and help text; `--help` output is generated
// from the table, so the usage screen can never drift from the parser again
// (the old hand-written print_usage had exactly that failure mode).
//
// Deliberately tiny: long options only ("--name value"), sections for help
// grouping, typed bind() helpers for the common scalar targets, and a custom
// handler escape hatch for anything structured (fault-crash specs, repeated
// study files). Parse errors print to stderr and return false — the caller
// decides the exit code.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace hyperdrive::cli {

class Options {
 public:
  /// `program` is the executable name printed in the help header; `summary`
  /// is the one-line description under it.
  Options(std::string program, std::string summary);

  /// Handler of a value-taking flag. Throw std::invalid_argument (or return
  /// false) to reject the value; parse() prints the diagnostic.
  using ValueHandler = std::function<bool(const std::string&)>;
  /// Handler of a bare flag (no value).
  using FlagHandler = std::function<void()>;

  /// Start a new help section; subsequent flags are listed under `title`.
  void section(std::string title);

  /// Register "--name <value_name>" with a custom handler. Repeatable flags
  /// are just flags whose handler appends.
  void add(std::string name, std::string value_name, std::string help,
           ValueHandler handler);
  /// Register a bare "--name" flag.
  void add_flag(std::string name, std::string help, FlagHandler handler);
  /// Register a bare "--name" flag that sets `target` to true.
  void add_flag(std::string name, std::string help, bool& target);

  /// Register "--name <value_name>" bound to a scalar target. Supported T:
  /// std::string, integral types (parsed base-10, must consume the whole
  /// token), and floating-point types.
  template <typename T>
  void bind(std::string name, std::string value_name, std::string help, T& target) {
    add(std::move(name), std::move(value_name), std::move(help),
        [&target](const std::string& text) {
          if constexpr (std::is_same_v<T, std::string>) {
            target = text;
            return true;
          } else if constexpr (std::is_integral_v<T>) {
            std::uint64_t parsed = 0;
            if (!parse_uint(text, parsed)) return false;
            target = static_cast<T>(parsed);
            return true;
          } else {
            static_assert(std::is_floating_point_v<T>, "unsupported bind target");
            double parsed = 0.0;
            if (!parse_double(text, parsed)) return false;
            target = static_cast<T>(parsed);
            return true;
          }
        });
  }

  /// Parse argv. "--help" / "-h" print the generated help and exit(0). On an
  /// unknown flag, a missing value, or a rejected value: prints a diagnostic
  /// to stderr and returns false.
  [[nodiscard]] bool parse(int argc, char** argv) const;

  /// The generated usage screen (what --help prints to stdout).
  void print_help(std::FILE* out) const;

  /// Strict base-10 unsigned parse (whole token, no sign); false on failure.
  static bool parse_uint(const std::string& text, std::uint64_t& out);
  /// Strict double parse (whole token); false on failure.
  static bool parse_double(const std::string& text, double& out);

 private:
  struct Entry {
    std::string name;        // "--flag"
    std::string value_name;  // empty for bare flags
    std::string help;
    ValueHandler value_handler;  // set iff value-taking
    FlagHandler flag_handler;    // set iff bare
    std::string section;         // section title active at registration
  };

  [[nodiscard]] const Entry* find(const std::string& name) const;

  std::string program_;
  std::string summary_;
  std::string current_section_;
  std::vector<Entry> entries_;
};

}  // namespace hyperdrive::cli
