#include "util/csv.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hyperdrive::util {

std::size_t CsvTable::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw std::out_of_range("csv column not found: " + name);
}

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(out), width_(header.size()) {
  write_fields(header);
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  if (fields.size() != width_) {
    throw std::invalid_argument("csv row width mismatch");
  }
  write_fields(fields);
}

void CsvWriter::write_fields(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << csv_escape(fields[i]);
  }
  out_ << '\n';
}

std::string csv_escape(const std::string& field) {
  const bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvTable parse_csv(std::istream& in) {
  CsvTable table;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_started = false;  // true once the current row has any content
  bool header_done = false;

  auto finish_row = [&] {
    row.push_back(std::move(field));
    field.clear();
    if (!header_done) {
      table.header = std::move(row);
      header_done = true;
    } else {
      if (row.size() != table.header.size()) throw std::runtime_error("csv ragged row");
      table.rows.push_back(std::move(row));
    }
    row.clear();
    row_started = false;
  };

  char c;
  while (in.get(c)) {
    if (in_quotes) {
      if (c == '"') {
        if (in.peek() == '"') {
          in.get(c);
          field += '"';
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      row_started = true;
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_started = true;
        break;
      case ',':
        row.push_back(std::move(field));
        field.clear();
        row_started = true;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        if (row_started || !field.empty()) finish_row();
        break;
      default:
        field += c;
        row_started = true;
    }
  }
  if (in_quotes) throw std::runtime_error("csv unterminated quote");
  if (row_started || !field.empty()) finish_row();
  return table;
}

CsvTable parse_csv_string(const std::string& text) {
  std::istringstream in(text);
  return parse_csv(in);
}

CsvTable read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open csv file: " + path);
  return parse_csv(in);
}

}  // namespace hyperdrive::util
