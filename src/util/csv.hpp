// Minimal CSV reader/writer for experiment traces (§7.1 Trace Generator).
// Handles quoting for fields containing commas, quotes, or newlines; that is
// all the trace format needs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hyperdrive::util {

/// A parsed CSV table: a header row plus data rows of equal width.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column; throws std::out_of_range if absent.
  [[nodiscard]] std::size_t column(const std::string& name) const;
};

class CsvWriter {
 public:
  /// Writes the header immediately. The stream must outlive the writer.
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  /// Writes one row; throws std::invalid_argument if the width differs
  /// from the header width.
  void write_row(const std::vector<std::string>& fields);

 private:
  std::ostream& out_;
  std::size_t width_;
  void write_fields(const std::vector<std::string>& fields);
};

/// Quote a single field if needed (RFC-4180 style).
[[nodiscard]] std::string csv_escape(const std::string& field);

/// Parse an entire CSV document (first row = header).
/// Throws std::runtime_error on ragged rows or unterminated quotes.
[[nodiscard]] CsvTable parse_csv(std::istream& in);
[[nodiscard]] CsvTable parse_csv_string(const std::string& text);

/// Read and parse a CSV file; throws std::runtime_error if unreadable.
[[nodiscard]] CsvTable read_csv_file(const std::string& path);

}  // namespace hyperdrive::util
