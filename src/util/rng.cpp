#include "util/rng.hpp"

#include <cmath>

namespace hyperdrive::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t root, std::uint64_t stream) noexcept {
  // Mix the stream id into the root with two splitmix rounds so that nearby
  // stream ids (0, 1, 2, ...) yield uncorrelated child seeds.
  std::uint64_t s = root ^ (0x6a09e667f3bcc909ULL + stream * 0x9e3779b97f4a7c15ULL);
  (void)splitmix64(s);
  return splitmix64(s);
}

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Rng::result_type Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53-bit mantissa trick: uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t x = next();
  while (x >= limit) x = next();
  return lo + static_cast<std::int64_t>(x % span);
}

double Rng::normal() noexcept {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  spare_normal_ = radius * std::sin(theta);
  has_spare_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

double Rng::lognormal(double mu, double sigma) noexcept { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double lambda) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / lambda;
}

bool Rng::bernoulli(double prob) noexcept {
  if (prob <= 0.0) return false;
  if (prob >= 1.0) return true;
  return uniform() < prob;
}

std::size_t Rng::categorical(const std::vector<double>& weights) noexcept {
  if (weights.empty()) return 0;
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) {
    return static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(weights.size()) - 1));
  }
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (x < w) return i;
    x -= w;
  }
  return weights.size() - 1;
}

Rng Rng::fork(std::uint64_t stream) const noexcept { return Rng(derive_seed(seed_, stream)); }

}  // namespace hyperdrive::util
