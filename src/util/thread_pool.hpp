// Fixed-size thread pool. The paper pushes learning-curve prediction onto
// Node Agents so predictions run in parallel with training (§5.2); in this
// reproduction the MCMC predictor can likewise be fanned out across a pool.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hyperdrive::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the returned future reports its result or exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("submit on stopped ThreadPool");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Run fn(i) for i in [0, n) across `threads` workers and wait. Exceptions
/// from any invocation are rethrown (first one wins).
void parallel_for(std::size_t n, std::size_t threads, const std::function<void(std::size_t)>& fn);

}  // namespace hyperdrive::util
