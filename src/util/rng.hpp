// Deterministic random number generation for reproducible experiments.
//
// All stochastic components in HyperDrive (workload synthesis, MCMC inference,
// policy tie-breaking, latency models) draw from an explicitly seeded Rng so
// that a whole experiment — and therefore every figure in EXPERIMENTS.md — is
// bit-reproducible given the seed printed in its header.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace hyperdrive::util {

/// Complete generator state, exposed for coordinator checkpoints (DESIGN.md
/// §12). Restoring it resumes the exact deviate sequence — including the
/// cached Box-Muller spare, which an in-flight normal() may have left behind.
struct RngState {
  std::array<std::uint64_t, 4> state{};
  std::uint64_t seed = 0;
  double spare_normal = 0.0;
  bool has_spare_normal = false;
};

/// SplitMix64: used to expand a single 64-bit seed into a full generator
/// state and to derive independent child seeds from a parent seed + stream id.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Derive a child seed that is statistically independent of other stream ids.
/// Used to give every job / walker / model its own stream from one root seed.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t root, std::uint64_t stream) noexcept;

/// xoshiro256** 1.0 — fast, high-quality 64-bit PRNG (Blackman & Vigna).
/// Satisfies (most of) UniformRandomBitGenerator so it can also be handed to
/// <random> distributions, though the members below avoid that dependency.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Standard normal via Box-Muller (cached spare deviate).
  double normal() noexcept;
  double normal(double mean, double stddev) noexcept;
  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma) noexcept;
  /// Exponential with rate lambda (> 0).
  double exponential(double lambda) noexcept;
  /// Bernoulli trial with success probability prob (clamped to [0,1]).
  bool bernoulli(double prob) noexcept;
  /// Sample an index in [0, weights.size()) proportional to weights.
  /// Non-positive weights are treated as zero; if all are zero, uniform.
  std::size_t categorical(const std::vector<double>& weights) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Fork an independent child generator for the given stream id.
  [[nodiscard]] Rng fork(std::uint64_t stream) const noexcept;

  /// Capture / restore the full state (checkpoint support).
  [[nodiscard]] RngState state() const noexcept {
    return RngState{state_, seed_, spare_normal_, has_spare_normal_};
  }
  void restore(const RngState& s) noexcept {
    state_ = s.state;
    seed_ = s.seed;
    spare_normal_ = s.spare_normal;
    has_spare_normal_ = s.has_spare_normal;
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  std::uint64_t seed_ = 0;
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace hyperdrive::util
