// Leveled, thread-safe logging. The simulator and cluster components log at
// Debug; experiment drivers log progress at Info. Benches default to Warn so
// figure output stays clean.
//
// The level is runtime-configurable: set_log_level, the HD_LOG environment
// variable (init_log_level_from_env, called by the executables' option
// tables), or a driver's --log-level flag. A writer hook (set_log_writer)
// lets the obs layer capture log lines as structured events instead of
// stderr — see obs/log_bridge.hpp.
#pragma once

#include <functional>
#include <mutex>
#include <sstream>
#include <string>

namespace hyperdrive::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

[[nodiscard]] const char* to_string(LogLevel level) noexcept;
/// Parses "debug" | "info" | "warn" | "error" | "off"; throws
/// std::invalid_argument on anything else.
[[nodiscard]] LogLevel log_level_from_string(const std::string& name);

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Apply the HD_LOG environment variable (same vocabulary as
/// log_level_from_string) if set and valid; an unset or invalid value leaves
/// the current level untouched. Returns true when a level was applied.
bool init_log_level_from_env();

/// Route emitted lines to `writer` instead of stderr (nullptr restores the
/// stderr path). The writer runs under the log lock, so it may be installed
/// and removed concurrently with emission; it must not log re-entrantly.
using LogWriter = std::function<void(LogLevel, const std::string& component,
                                     const std::string& message)>;
void set_log_writer(LogWriter writer);

/// Emit one line ("[level] component: message") to stderr (or the installed
/// writer) under a lock.
void log_line(LogLevel level, const std::string& component, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  if constexpr (sizeof...(Args) > 0) {
    (os << ... << std::forward<Args>(args));
  }
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(const std::string& component, Args&&... args) {
  if (log_level() <= LogLevel::Debug)
    log_line(LogLevel::Debug, component, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(const std::string& component, Args&&... args) {
  if (log_level() <= LogLevel::Info)
    log_line(LogLevel::Info, component, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(const std::string& component, Args&&... args) {
  if (log_level() <= LogLevel::Warn)
    log_line(LogLevel::Warn, component, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(const std::string& component, Args&&... args) {
  if (log_level() <= LogLevel::Error)
    log_line(LogLevel::Error, component, detail::concat(std::forward<Args>(args)...));
}

}  // namespace hyperdrive::util
