// Leveled, thread-safe logging. The simulator and cluster components log at
// Debug; experiment drivers log progress at Info. Benches default to Warn so
// figure output stays clean.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace hyperdrive::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emit one line ("[level] component: message") to stderr under a lock.
void log_line(LogLevel level, const std::string& component, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  if constexpr (sizeof...(Args) > 0) {
    (os << ... << std::forward<Args>(args));
  }
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(const std::string& component, Args&&... args) {
  if (log_level() <= LogLevel::Debug)
    log_line(LogLevel::Debug, component, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(const std::string& component, Args&&... args) {
  if (log_level() <= LogLevel::Info)
    log_line(LogLevel::Info, component, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(const std::string& component, Args&&... args) {
  if (log_level() <= LogLevel::Warn)
    log_line(LogLevel::Warn, component, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(const std::string& component, Args&&... args) {
  if (log_level() <= LogLevel::Error)
    log_line(LogLevel::Error, component, detail::concat(std::forward<Args>(args)...));
}

}  // namespace hyperdrive::util
