#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace hyperdrive::util {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double min_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("percentile of empty sample");
  if (q < 0.0) q = 0.0;
  if (q > 100.0) q = 100.0;
  std::sort(xs.begin(), xs.end());
  const double pos = q / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

BoxStats box_stats(const std::vector<double>& xs) {
  BoxStats b;
  if (xs.empty()) return b;
  b.min = min_of(xs);
  b.q1 = percentile(xs, 25.0);
  b.median = percentile(xs, 50.0);
  b.q3 = percentile(xs, 75.0);
  b.max = max_of(xs);
  b.mean = mean(xs);
  b.n = xs.size();
  return b;
}

std::string to_string(const BoxStats& b) {
  std::ostringstream os;
  os.precision(4);
  os << "min=" << b.min << " q1=" << b.q1 << " med=" << b.median << " q3=" << b.q3
     << " max=" << b.max << " (mean=" << b.mean << ", n=" << b.n << ")";
  return os.str();
}

Ecdf::Ecdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::eval(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const {
  if (sorted_.empty()) throw std::invalid_argument("quantile of empty ECDF");
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) throw std::invalid_argument("bad histogram range");
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) / static_cast<double>(counts_.size());
}

}  // namespace hyperdrive::util
