// Simulated-time type. HyperDrive's discrete-event simulator (§7.1) advances
// a virtual clock measured in seconds; using a distinct strong type prevents
// mixing simulated durations with wall-clock values from std::chrono.
#pragma once

#include <compare>
#include <string>

namespace hyperdrive::util {

/// A point or span on the simulated timeline, in seconds.
///
/// SimTime is deliberately a plain value type: arithmetic, comparisons and
/// helpers only. Negative values are allowed for spans (e.g. time deltas).
class SimTime {
 public:
  constexpr SimTime() noexcept = default;
  constexpr explicit SimTime(double seconds) noexcept : seconds_(seconds) {}

  [[nodiscard]] static constexpr SimTime seconds(double s) noexcept { return SimTime(s); }
  [[nodiscard]] static constexpr SimTime minutes(double m) noexcept { return SimTime(m * 60.0); }
  [[nodiscard]] static constexpr SimTime hours(double h) noexcept { return SimTime(h * 3600.0); }
  [[nodiscard]] static constexpr SimTime milliseconds(double ms) noexcept {
    return SimTime(ms / 1000.0);
  }
  [[nodiscard]] static constexpr SimTime zero() noexcept { return SimTime(0.0); }
  [[nodiscard]] static SimTime infinity() noexcept;

  [[nodiscard]] constexpr double to_seconds() const noexcept { return seconds_; }
  [[nodiscard]] constexpr double to_minutes() const noexcept { return seconds_ / 60.0; }
  [[nodiscard]] constexpr double to_hours() const noexcept { return seconds_ / 3600.0; }
  [[nodiscard]] constexpr double to_milliseconds() const noexcept { return seconds_ * 1000.0; }

  constexpr auto operator<=>(const SimTime&) const noexcept = default;

  constexpr SimTime operator+(SimTime other) const noexcept {
    return SimTime(seconds_ + other.seconds_);
  }
  constexpr SimTime operator-(SimTime other) const noexcept {
    return SimTime(seconds_ - other.seconds_);
  }
  constexpr SimTime operator*(double k) const noexcept { return SimTime(seconds_ * k); }
  constexpr SimTime operator/(double k) const noexcept { return SimTime(seconds_ / k); }
  [[nodiscard]] constexpr double operator/(SimTime other) const noexcept {
    return seconds_ / other.seconds_;
  }
  constexpr SimTime& operator+=(SimTime other) noexcept {
    seconds_ += other.seconds_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime other) noexcept {
    seconds_ -= other.seconds_;
    return *this;
  }

 private:
  double seconds_ = 0.0;
};

/// Human-readable rendering, e.g. "2.81h", "47.3min", "158ms".
[[nodiscard]] std::string format_duration(SimTime t);

}  // namespace hyperdrive::util
