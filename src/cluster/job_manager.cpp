#include "cluster/job_manager.hpp"

#include <stdexcept>

namespace hyperdrive::cluster {

JobManager::JobManager(const workload::Trace& trace) {
  for (const auto& spec : trace.jobs) {
    ManagedJob job;
    job.id = spec.job_id;
    job.spec = &spec;
    job.idle_seq = idle_counter_++;
    jobs_.emplace(job.id, std::move(job));
  }
}

ManagedJob& JobManager::job(core::JobId id) {
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) throw std::out_of_range("unknown job id");
  return it->second;
}

const ManagedJob& JobManager::job(core::JobId id) const {
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) throw std::out_of_range("unknown job id");
  return it->second;
}

std::optional<core::JobId> JobManager::get_idle_job() const {
  const ManagedJob* best = nullptr;
  for (const auto& [id, job] : jobs_) {
    if (!job.idle) continue;
    if (job.status != core::JobStatus::Pending &&
        job.status != core::JobStatus::Suspended) {
      continue;
    }
    if (best == nullptr || job.priority > best->priority ||
        (job.priority == best->priority && job.idle_seq < best->idle_seq)) {
      best = &job;
    }
  }
  if (best == nullptr) return std::nullopt;
  return best->id;
}

void JobManager::label_job(core::JobId id, double priority) { job(id).priority = priority; }

void JobManager::enqueue_idle(core::JobId id) {
  auto& j = job(id);
  j.idle = true;
  j.idle_seq = idle_counter_++;
}

void JobManager::dequeue_idle(core::JobId id) { job(id).idle = false; }

std::vector<core::JobId> JobManager::active_jobs() const {
  std::vector<core::JobId> out;
  for (const auto& [id, job] : jobs_) {
    if (job.status == core::JobStatus::Pending || job.status == core::JobStatus::Running ||
        job.status == core::JobStatus::Suspended) {
      out.push_back(id);
    }
  }
  return out;
}

}  // namespace hyperdrive::cluster
