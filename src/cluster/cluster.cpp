#include "cluster/cluster.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/log.hpp"

namespace hyperdrive::cluster {

namespace {
/// The RPC fabric inherits its latency model from the overhead model so the
/// calibrated stat-report timings (§6.2.3) are preserved.
MessageBusOptions bus_options_from(const OverheadModel& overheads) {
  MessageBusOptions options;
  options.latency_mu = overheads.stat_latency_s.mu;
  options.latency_sigma = overheads.stat_latency_s.sigma;
  options.latency_min_s = overheads.stat_latency_s.lo;
  options.latency_max_s = overheads.stat_latency_s.hi;
  options.bandwidth_bps = overheads.resume_bandwidth_bps;
  return options;
}

/// Approximate serialized size of one application-stat RPC.
constexpr double kStatRpcBytes = 256.0;
}  // namespace

HyperDriveCluster::HyperDriveCluster(const workload::Trace& trace, ClusterOptions options)
    : trace_(trace),
      options_(std::move(options)),
      rm_(options_.machines),
      jm_(trace),
      rng_(util::derive_seed(options_.seed, 0xC105)),
      bus_(simulation_, bus_options_from(options_.overheads), options_.seed) {
  agents_.reserve(options_.machines);
  for (std::size_t i = 0; i < options_.machines; ++i) {
    agents_.emplace_back(static_cast<MachineId>(i));
  }
  // The scheduler receives application stats; the AppStatDB storage service
  // receives snapshot uploads (it enqueues the suspended job once stored).
  scheduler_endpoint_ = bus_.register_endpoint("scheduler", [this](const Message& m) {
    const auto stat = std::static_pointer_cast<const AppStat>(m.payload);
    if (stat) deliver_stat(*stat);
  });
  storage_endpoint_ = bus_.register_endpoint("appstatdb", [this](const Message& m) {
    const auto snapshot = std::static_pointer_cast<const ModelSnapshot>(m.payload);
    if (!snapshot) return;
    const core::JobId id = snapshot->job_id;
    db_.store_snapshot(*snapshot);
    jm_.enqueue_idle(id);
    release_and_allocate(id);
  });
}

std::optional<core::JobId> HyperDriveCluster::get_idle_job() { return jm_.get_idle_job(); }

bool HyperDriveCluster::start_job(core::JobId id) {
  auto& job = jm_.job(id);
  if (!job.idle) return false;
  if (job.status != core::JobStatus::Pending && job.status != core::JobStatus::Suspended) {
    return false;
  }
  const auto machine = rm_.reserve_idle_machine();
  if (!machine) return false;

  jm_.dequeue_idle(id);
  job.machine = *machine;
  auto& agent = agents_[*machine];

  util::SimTime startup_cost;
  if (job.status == core::JobStatus::Pending) {
    startup_cost = options_.overheads.job_start_cost;
    ++result_.jobs_started;
  } else {
    // Resume: ship the snapshot to the new host, restore (decode) the
    // process state, and hand over the learning-curve history (§5.2).
    SuspendOverheadSample snapshot_info;
    if (const auto snapshot = db_.latest_snapshot(id)) {
      snapshot_info.snapshot_bytes = snapshot->size_bytes;
      const auto state = SnapshotCodec::decode(snapshot->image);
      if (!state || state->job_id != id || state->epoch != job.epochs_done) {
        throw std::logic_error("corrupt or mismatched job snapshot on resume");
      }
      agent.install_history(id, state->history);
    } else {
      agent.install_history(id, db_.perf_history(id));
    }
    startup_cost = options_.overheads.resume_cost(snapshot_info, rng_);
  }
  job.status = core::JobStatus::Running;
  job.execution_time += startup_cost;
  agent.note_busy(startup_cost);
  simulation_.schedule_after(startup_cost, [this, id] { begin_epoch(id); });
  return true;
}

void HyperDriveCluster::label_job(core::JobId job, double priority) {
  jm_.label_job(job, priority);
}

core::JobStatus HyperDriveCluster::job_status(core::JobId job) const {
  return jm_.job(job).status;
}

std::vector<core::JobId> HyperDriveCluster::active_jobs() const { return jm_.active_jobs(); }

const std::vector<double>& HyperDriveCluster::perf_history(core::JobId job) const {
  return db_.perf_history(job);
}

util::SimTime HyperDriveCluster::avg_epoch_duration(core::JobId job) const {
  const auto& j = jm_.job(job);
  if (j.epochs_done == 0) return util::SimTime::zero();
  return j.training_time / static_cast<double>(j.epochs_done);
}

std::size_t HyperDriveCluster::epochs_done(core::JobId job) const {
  return jm_.job(job).epochs_done;
}

void HyperDriveCluster::begin_epoch(core::JobId id) {
  if (done_) return;
  auto& job = jm_.job(id);
  if (job.status != core::JobStatus::Running) return;
  const double jitter =
      options_.epoch_jitter_sigma > 0.0 ? rng_.lognormal(0.0, options_.epoch_jitter_sigma)
                                        : 1.0;
  const util::SimTime duration = job.spec->curve.epoch_duration * jitter;
  job.epoch_started_at = simulation_.now();
  job.epoch_in_flight = true;
  job.pending_epoch =
      simulation_.schedule_after(duration, [this, id] { complete_epoch(id); });
}

void HyperDriveCluster::complete_epoch(core::JobId id) {
  if (done_) return;
  auto& job = jm_.job(id);
  if (job.status != core::JobStatus::Running || !job.machine) return;
  const util::SimTime duration = simulation_.now() - job.epoch_started_at;
  job.epoch_in_flight = false;
  job.execution_time += duration;
  job.training_time += duration;

  auto& agent = agents_[*job.machine];
  agent.note_busy(duration);
  agent.note_epoch();

  const double perf = job.spec->curve.perf.at(job.epochs_done);
  ++job.epochs_done;
  agent.append_history(id, perf);

  AppStat stat;
  stat.job_id = id;
  stat.epoch = job.epochs_done;
  stat.perf = perf;
  if (!job.spec->curve.secondary.empty()) {
    stat.secondary = job.spec->curve.secondary.at(job.epochs_done - 1);
  }
  stat.epoch_duration = duration;
  stat.node = *job.machine;
  stat.reported_at = simulation_.now();

  // The stat report must be in flight before the machine can be released,
  // otherwise a completing job could end the experiment with its final
  // (possibly target-reaching) report undelivered. It travels as an RPC
  // from the Node Agent to the scheduler (§5).
  Message report;
  report.type = MessageType::ReportStat;
  report.from = static_cast<EndpointId>(*job.machine);
  report.to = scheduler_endpoint_;
  report.job_id = id;
  report.payload_bytes = kStatRpcBytes;
  report.payload = std::make_shared<const AppStat>(stat);
  bus_.send(std::move(report));

  if (job.epochs_done >= job.spec->curve.perf.size()) {
    job.status = core::JobStatus::Completed;
    release_and_allocate(id);
  } else if (!options_.overlap_decisions && options_.decision_latency &&
             trace_.evaluation_boundary > 0 &&
             job.epochs_done % trace_.evaluation_boundary == 0) {
    // Naive (non-overlapped) mode: the job idles on its machine until the
    // prediction-based decision arrives; decide() resumes it.
    job.waiting_decision = true;
    job.wait_started_at = simulation_.now();
  } else {
    // Schedule-as-it-goes with overlapped decisions (§4.2/§5.2): training
    // proceeds optimistically while the stat report and any prediction-based
    // decision are in flight.
    begin_epoch(id);
  }
}

void HyperDriveCluster::deliver_stat(const AppStat& stat) {
  if (done_) return;
  db_.record_stat(stat);

  core::JobEvent event;
  event.job_id = stat.job_id;
  event.epoch = stat.epoch;
  event.perf = stat.perf;
  event.secondary = stat.secondary;
  event.epoch_duration = stat.epoch_duration;
  event.now = simulation_.now();

  policy_->on_application_stat(*this, event);

  if (stat.perf > result_.best_perf) result_.best_perf = stat.perf;
  const bool hit = options_.stop_criterion ? options_.stop_criterion(event)
                                           : stat.perf >= trace_.target_performance;
  if (options_.stop_on_target && hit) {
    result_.reached_target = true;
    result_.time_to_target = simulation_.now();
    result_.winning_job = stat.job_id;
    finish();
    return;
  }

  // A decision is only worth computing for a job that is still running; a
  // completed/terminated job's pending stat must not spawn a prediction that
  // would needlessly extend the experiment.
  if (jm_.job(stat.job_id).status != core::JobStatus::Running) return;

  // Decision latency models the learning-curve prediction cost at
  // evaluation-boundary epochs; elsewhere decisions are immediate.
  util::SimTime decision_delay = util::SimTime::zero();
  if (options_.decision_latency && trace_.evaluation_boundary > 0 &&
      stat.epoch % trace_.evaluation_boundary == 0) {
    decision_delay = options_.decision_latency(stat.job_id, stat.epoch, rng_);
    if (stat.node < agents_.size()) agents_[stat.node].note_prediction();
  }
  if (decision_delay <= util::SimTime::zero()) {
    decide(stat.job_id, event);
  } else {
    simulation_.schedule_after(decision_delay,
                               [this, id = stat.job_id, event] { decide(id, event); });
  }
}

void HyperDriveCluster::decide(core::JobId id, core::JobEvent event) {
  if (done_) return;
  auto& job = jm_.job(id);
  // The job may have completed, been suspended, or been terminated by a
  // decision for a later epoch while this one was in flight.
  if (job.status != core::JobStatus::Running) return;

  // Blocking mode: charge the machine-held wait time before acting.
  if (job.waiting_decision) {
    const util::SimTime wait = simulation_.now() - job.wait_started_at;
    job.execution_time += wait;
    if (job.machine) agents_[*job.machine].note_busy(wait);
    job.waiting_decision = false;
  }

  const core::JobDecision decision = policy_->on_iteration_finish(*this, event);
  switch (decision) {
    case core::JobDecision::Continue:
      // In overlapped mode training never stopped; in blocking mode resume
      // the paused job now.
      if (!job.epoch_in_flight && job.epochs_done < job.spec->curve.perf.size()) {
        begin_epoch(id);
      }
      return;
    case core::JobDecision::Suspend:
      if (job.epochs_done >= job.spec->curve.perf.size()) return;  // done anyway
      do_suspend(id);
      return;
    case core::JobDecision::Terminate:
      do_terminate(id);
      return;
  }
}

void HyperDriveCluster::interrupt_training(ManagedJob& job) {
  if (!job.epoch_in_flight) return;
  // Abandon the partial epoch: it produced no validation point and its
  // progress is not in the snapshot (which was taken at the last boundary).
  simulation_.cancel(job.pending_epoch);
  const util::SimTime partial = simulation_.now() - job.epoch_started_at;
  job.execution_time += partial;
  if (job.machine) agents_[*job.machine].note_busy(partial);
  job.epoch_in_flight = false;
}

void HyperDriveCluster::do_suspend(core::JobId id) {
  auto& job = jm_.job(id);
  interrupt_training(job);
  const SuspendOverheadSample overhead = options_.overheads.sample_suspend(rng_);

  core::SuspendSample sample;
  sample.job_id = id;
  sample.latency = overhead.latency;
  sample.snapshot_bytes = overhead.snapshot_bytes;
  db_.record_suspend_sample(sample);
  result_.suspend_samples.push_back(sample);
  ++result_.suspends;
  ++job.times_suspended;

  job.status = core::JobStatus::Suspended;
  job.execution_time += overhead.latency;
  if (job.machine) agents_[*job.machine].note_busy(overhead.latency);

  // The machine is occupied until the snapshot has been captured; the image
  // is then shipped to the AppStatDB over the RPC fabric (§5.1: "captured
  // model state ... sent to HyperDrive for storage"), whose handler stores
  // it and releases the machine.
  simulation_.schedule_after(overhead.latency, [this, id, overhead] {
    auto& j = jm_.job(id);
    auto snapshot = std::make_shared<ModelSnapshot>();
    snapshot->job_id = id;
    snapshot->epoch = j.epochs_done;
    snapshot->size_bytes = overhead.snapshot_bytes;
    // Serialize the actual schedulable state (§5.1): resume decodes this.
    JobSnapshotState state;
    state.job_id = id;
    state.epoch = j.epochs_done;
    state.config = j.spec->config;
    state.history = db_.perf_history(id);
    snapshot->image = SnapshotCodec::encode(state);
    snapshot->stored_at = simulation_.now();

    Message upload;
    upload.type = MessageType::SnapshotUpload;
    upload.from = j.machine ? static_cast<EndpointId>(*j.machine) : 0;
    upload.to = storage_endpoint_;
    upload.job_id = id;
    upload.payload_bytes = overhead.snapshot_bytes;
    upload.payload = std::move(snapshot);
    bus_.send(std::move(upload));
  });
}

void HyperDriveCluster::do_terminate(core::JobId id) {
  auto& job = jm_.job(id);
  interrupt_training(job);
  job.status = core::JobStatus::Terminated;
  ++result_.terminations;
  release_and_allocate(id);
}

void HyperDriveCluster::release_and_allocate(core::JobId id) {
  auto& job = jm_.job(id);
  if (job.machine) {
    rm_.release_machine(*job.machine);
    job.machine.reset();
  }
  if (done_) return;
  policy_->on_allocate(*this);
  maybe_finish();
}

void HyperDriveCluster::maybe_finish() {
  if (rm_.idle() == rm_.total() && simulation_.events_pending() == 0) finish();
}

void HyperDriveCluster::finish() {
  if (done_) return;
  done_ = true;
  simulation_.stop();
}

core::ExperimentResult HyperDriveCluster::run(core::SchedulingPolicy& policy) {
  policy_ = &policy;
  result_ = core::ExperimentResult{};
  result_.policy_name = std::string(policy.name());

  policy.on_experiment_start(*this);
  policy.on_allocate(*this);
  if (rm_.idle() == rm_.total() && simulation_.events_pending() == 0) {
    result_.total_time = util::SimTime::zero();
    return result_;
  }
  simulation_.run_until(options_.max_experiment_time);

  result_.total_time = done_ ? simulation_.now()
                             : std::min(simulation_.now(), options_.max_experiment_time);
  for (const auto& [id, job] : jm_.all()) {
    core::JobRunStats stats;
    stats.job_id = id;
    stats.execution_time = job.execution_time;
    stats.epochs_completed = job.epochs_done;
    stats.times_suspended = job.times_suspended;
    stats.final_status = job.status;
    const auto& history = db_.perf_history(id);
    stats.best_perf =
        history.empty() ? 0.0 : *std::max_element(history.begin(), history.end());
    result_.total_machine_time += job.execution_time;
    result_.job_stats.push_back(stats);
  }
  policy_ = nullptr;
  return result_;
}

core::ExperimentResult run_cluster_experiment(const workload::Trace& trace,
                                              core::SchedulingPolicy& policy,
                                              const ClusterOptions& options) {
  HyperDriveCluster cluster(trace, options);
  return cluster.run(policy);
}

}  // namespace hyperdrive::cluster
