#include "cluster/cluster.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "util/log.hpp"

namespace hyperdrive::cluster {

namespace {
/// The RPC fabric inherits its latency model from the overhead model so the
/// calibrated stat-report timings (§6.2.3) are preserved. The reliability
/// layer turns on automatically as soon as any fault is injected — an
/// unreliable fabric under faults would silently lose experiment results.
MessageBusOptions bus_options_from(const ClusterOptions& cluster_options) {
  const OverheadModel& overheads = cluster_options.overheads;
  MessageBusOptions options;
  options.latency_mu = overheads.stat_latency_s.mu;
  options.latency_sigma = overheads.stat_latency_s.sigma;
  options.latency_min_s = overheads.stat_latency_s.lo;
  options.latency_max_s = overheads.stat_latency_s.hi;
  options.bandwidth_bps = overheads.resume_bandwidth_bps;
  options.reliability = cluster_options.reliability;
  if (cluster_options.fault_plan.any()) options.reliability.enabled = true;
  return options;
}

/// Approximate serialized size of one application-stat RPC.
constexpr double kStatRpcBytes = 256.0;
/// Approximate serialized size of one heartbeat probe.
constexpr double kHeartbeatRpcBytes = 64.0;
}  // namespace

HyperDriveCluster::HyperDriveCluster(const workload::Trace& trace, ClusterOptions options)
    : HyperDriveCluster(trace, std::move(options), std::make_unique<sim::Simulation>(),
                        nullptr) {}

HyperDriveCluster::HyperDriveCluster(const workload::Trace& trace, ClusterOptions options,
                                     sim::Simulation& simulation)
    : HyperDriveCluster(trace, std::move(options), nullptr, &simulation) {}

ClusterOptions HyperDriveCluster::normalize(ClusterOptions options) {
  if (!options.catalog.empty()) options.machines = options.catalog.total_nodes();
  return options;
}

HyperDriveCluster::HyperDriveCluster(const workload::Trace& trace, ClusterOptions options,
                                     std::unique_ptr<sim::Simulation> owned,
                                     sim::Simulation* external)
    : trace_(trace),
      options_(normalize(std::move(options))),
      catalog_(options_.catalog.empty() ? NodeCatalog::uniform(options_.machines)
                                        : options_.catalog),
      owned_sim_(std::move(owned)),
      simulation_(external != nullptr ? *external : *owned_sim_),
      rm_(options_.machines),
      jm_(trace),
      rng_(util::derive_seed(options_.seed, 0xC105)),
      injector_(options_.fault_plan, options_.seed),
      health_(options_.machines, options_.health),
      bus_(simulation_, bus_options_from(options_), options_.seed) {
  tenant_ = external != nullptr;
  // Tenant clusters inherit one shared scope from the StudyManager; stamp the
  // per-study label onto it so every emitted event stays attributable.
  if (options_.obs.study.empty() && !options_.study_label.empty()) {
    options_.obs.study = options_.study_label;
  }
  lease_target_ = catalog_.full();
  slots_accrued_until_ = simulation_.now();
  if (options_.initial_lease.total() > 0 &&
      options_.initial_lease.total() < options_.machines) {
    // Keep the lowest `target` ids of each class block online; the rest start
    // parked (leasable later). Single-class: identical to parking
    // [initial_lease, machines), highest id first.
    for (NodeClassId c = 0; c < catalog_.classes(); ++c) {
      const std::size_t begin = catalog_.block_begin(c);
      const std::size_t end = catalog_.block_end(c);
      const std::size_t target = std::min(options_.initial_lease.of(c), end - begin);
      lease_target_.set(c, target);
      for (std::size_t m = end; m-- > begin + target;) {
        rm_.park_machine(static_cast<MachineId>(m));
      }
    }
  }
  agents_.reserve(options_.machines);
  for (std::size_t i = 0; i < options_.machines; ++i) {
    agents_.emplace_back(static_cast<MachineId>(i));
  }
  if (injector_.active()) bus_.set_fault_injector(&injector_);
  // The last event of a run is often the final stat report's ack settling
  // inside the bus; re-check quiescence then so a scheduled far-future crash
  // can be cancelled instead of keeping the clock alive.
  bus_.set_drain_handler([this] { maybe_finish(); });
  // The scheduler receives application stats; the AppStatDB storage service
  // receives snapshot uploads (it enqueues the suspended job once stored).
  scheduler_endpoint_ = bus_.register_endpoint("scheduler", [this](const Message& m) {
    if (m.type == MessageType::Heartbeat) {
      const auto beat = std::static_pointer_cast<const Heartbeat>(m.payload);
      if (beat) handle_heartbeat(*beat);
      return;
    }
    const auto stat = std::static_pointer_cast<const AppStat>(m.payload);
    if (stat) deliver_stat(*stat);
    // A tenant's last event is often this delivery (the owned path notices
    // quiescence when the shared queue drains — a tenant must check itself).
    if (tenant_) maybe_finish();
  });
  storage_endpoint_ = bus_.register_endpoint("appstatdb", [this](const Message& m) {
    const auto snapshot = std::static_pointer_cast<const ModelSnapshot>(m.payload);
    if (!snapshot) return;
    const core::JobId id = snapshot->job_id;
    auto& job = jm_.job(id);
    // A duplicate upload (injected, on the fire-and-forget fabric) or one
    // that raced a crash requeue must not double-release the machine or
    // store an image newer than the job's rolled-back epoch.
    if (job.idle || job.status != core::JobStatus::Suspended ||
        snapshot->epoch != job.epochs_done) {
      if (tenant_) maybe_finish();
      return;
    }
    db_.store_snapshot(*snapshot);
    record(obs::TraceEvent(obs::EventKind::SnapshotStored)
               .with_job(static_cast<std::int64_t>(id))
               .with_epoch(static_cast<std::int64_t>(snapshot->epoch)));
    jm_.enqueue_idle(id);
    release_and_allocate(id);
  });
}

std::optional<core::JobId> HyperDriveCluster::get_idle_job() { return jm_.get_idle_job(); }

bool HyperDriveCluster::start_job(core::JobId id) {
  auto& job = jm_.job(id);
  if (!job.idle) return false;
  if (job.status != core::JobStatus::Pending && job.status != core::JobStatus::Suspended) {
    return false;
  }
  // With the health layer on, prefer the fastest-scoring idle machine (ties
  // to the lowest id, so a uniformly healthy cluster places identically to
  // the unscored path). Degraded-but-not-yet-quarantined nodes are avoided
  // whenever a better host is free.
  const auto machine =
      options_.health.enabled
          ? rm_.reserve_idle_machine([this](MachineId m) { return health_.speed_score(m); })
          : rm_.reserve_idle_machine();
  if (!machine) return false;

  jm_.dequeue_idle(id);
  job.machine = *machine;
  auto& agent = agents_[*machine];

  util::SimTime startup_cost;
  if (job.status == core::JobStatus::Pending) {
    startup_cost = options_.overheads.job_start_cost;
    ++result_.jobs_started;
    record(obs::TraceEvent(obs::EventKind::JobStart)
               .with_job(static_cast<std::int64_t>(id))
               .with_machine(static_cast<std::int64_t>(*machine)));
  } else {
    // Resume: ship the snapshot to the new host, restore (decode) the model
    // state, and hand over the learning-curve history (§5.2). A snapshot
    // that fails to decode (bit-flipped in storage) is skipped in favour of
    // the next older one; with no usable snapshot at all the model state is
    // lost — training restarts from epoch 0 and only the curve history
    // survives, replayed from the AppStatDb records.
    SuspendOverheadSample snapshot_info;
    const auto& snaps = db_.snapshots(id);
    if (!snaps.empty()) snapshot_info.snapshot_bytes = snaps.back().size_bytes;
    bool restored = false;
    bool decode_failed = false;
    for (auto it = snaps.rbegin(); it != snaps.rend(); ++it) {
      if (it->epoch > job.epochs_done) continue;  // newer than the rolled-back state
      const auto state = SnapshotCodec::decode(it->image);
      if (!state || state->job_id != id || state->epoch != it->epoch) {
        decode_failed = true;
        continue;
      }
      if (it->epoch < job.epochs_done) {
        result_.recovery.epochs_lost += job.epochs_done - it->epoch;
        job.epochs_done = it->epoch;
      }
      agent.install_history(id, state->history);
      restored = true;
      break;
    }
    if (decode_failed) {
      ++result_.recovery.snapshot_restore_failures;
      record(obs::TraceEvent(obs::EventKind::SnapshotRestoreFailed)
                 .with_job(static_cast<std::int64_t>(id)));
    }
    if (!restored) {
      if (!snaps.empty()) {
        // Every stored image was unusable: restart from scratch.
        result_.recovery.epochs_lost += job.epochs_done;
        job.epochs_done = 0;
        ++job.incarnation;
      }
      agent.install_history(id, db_.perf_history(id));
    }
    startup_cost = options_.overheads.resume_cost(snapshot_info, rng_);
    record(obs::TraceEvent(obs::EventKind::JobResume)
               .with_job(static_cast<std::int64_t>(id))
               .with_machine(static_cast<std::int64_t>(*machine))
               .with_epoch(static_cast<std::int64_t>(job.epochs_done)));
  }
  job.status = core::JobStatus::Running;
  job.execution_time += startup_cost;
  agent.note_busy(startup_cost);
  simulation_.schedule_after(startup_cost, [this, id, inc = job.incarnation] {
    if (jm_.job(id).incarnation != inc) return;  // crashed during startup
    begin_epoch(id);
  });
  return true;
}

void HyperDriveCluster::label_job(core::JobId job, double priority) {
  jm_.label_job(job, priority);
}

core::JobStatus HyperDriveCluster::job_status(core::JobId job) const {
  return jm_.job(job).status;
}

std::vector<core::JobId> HyperDriveCluster::active_jobs() const { return jm_.active_jobs(); }

const std::vector<double>& HyperDriveCluster::perf_history(core::JobId job) const {
  return db_.perf_history(job);
}

util::SimTime HyperDriveCluster::avg_epoch_duration(core::JobId job) const {
  const auto& j = jm_.job(job);
  if (j.epochs_done == 0) return util::SimTime::zero();
  return j.training_time / static_cast<double>(j.epochs_done);
}

std::size_t HyperDriveCluster::epochs_done(core::JobId job) const {
  return jm_.job(job).epochs_done;
}

double HyperDriveCluster::host_speed(core::JobId job) const {
  const auto& j = jm_.job(job);
  // Catalog speed × health EWMA; both factors are 1.0 on a homogeneous,
  // health-less cluster, so this path stays bit-exact with the pre-elastic
  // behavior (×1.0 is an IEEE no-op).
  double speed = j.machine ? catalog_.speed(*j.machine) : 1.0;
  if (options_.health.enabled && j.machine) speed *= health_.speed_score(*j.machine);
  return speed;
}

util::SimTime HyperDriveCluster::normalized_epoch_duration(core::JobId job) const {
  if (!options_.health.enabled && !catalog_.heterogeneous()) return avg_epoch_duration(job);
  const auto& j = jm_.job(job);
  if (j.epochs_done == 0) return util::SimTime::zero();
  return j.normalized_training_time / static_cast<double>(j.epochs_done);
}

bool HyperDriveCluster::supports_clone() const {
  return static_cast<bool>(options_.explore);
}

bool HyperDriveCluster::clone_job(core::JobId id, core::JobId donor, std::uint64_t stream) {
  if (!options_.explore || id == donor) return false;
  auto& job = jm_.job(id);
  const auto& src = jm_.job(donor);
  if (!job.idle) return false;
  if (job.status != core::JobStatus::Pending && job.status != core::JobStatus::Suspended) {
    return false;
  }
  // The donated state is the donor's durable record (§5.1): the AppStatDb's
  // contiguous stat prefix, which is also as far as any stored weight
  // snapshot can reach. An untrained donor has nothing to donate.
  const std::size_t epoch = db_.perf_history(donor).size();
  if (epoch == 0) return false;

  auto continued = std::make_unique<workload::TraceJob>(
      options_.explore(*job.spec, *src.spec, epoch, stream));
  continued->job_id = id;
  // A continuation with nothing left to train would park the clone forever.
  if (continued->curve.perf.size() <= epoch) return false;

  // The target adopts the donor's stats up to the clone epoch and gets
  // exactly one durable snapshot there, so the ordinary start_job resume path
  // restores it like any suspended job: ship the image, decode, install the
  // history on the new host's agent, charge the resume-transfer cost.
  if (job.status == core::JobStatus::Pending) ++result_.jobs_started;
  db_.adopt_history(id, donor, epoch);
  double size_bytes;
  if (const auto donor_snap = db_.latest_snapshot(donor)) {
    size_bytes = donor_snap->size_bytes;  // the model being copied
  } else {
    size_bytes = options_.overheads.sample_suspend(rng_).snapshot_bytes;
  }
  JobSnapshotState state;
  state.job_id = id;
  state.epoch = epoch;
  state.config = continued->config;
  state.history = db_.perf_history(id);
  ModelSnapshot snapshot;
  snapshot.job_id = id;
  snapshot.epoch = epoch;
  snapshot.size_bytes = size_bytes;
  snapshot.image = SnapshotCodec::encode(state);
  snapshot.stored_at = simulation_.now();
  db_.store_snapshot(std::move(snapshot));

  job.spec = continued.get();
  cloned_jobs_.push_back(std::move(continued));
  job.epochs_done = epoch;
  // Any in-flight decision or deadline for the pre-clone job is stale now.
  ++job.incarnation;
  job.status = core::JobStatus::Suspended;
  ++result_.clones;
  record(obs::TraceEvent(obs::EventKind::JobClone)
             .with_job(static_cast<std::int64_t>(id))
             .with_epoch(static_cast<std::int64_t>(epoch))
             .with_detail(std::to_string(donor)));
  return true;
}

void HyperDriveCluster::begin_epoch(core::JobId id) {
  if (done_) return;
  auto& job = jm_.job(id);
  if (job.status != core::JobStatus::Running) return;
  const double jitter =
      options_.epoch_jitter_sigma > 0.0 ? rng_.lognormal(0.0, options_.epoch_jitter_sigma)
                                        : 1.0;
  util::SimTime duration = job.spec->curve.epoch_duration * jitter;
  // Heterogeneous fleets: a speed-2.0 host trains epochs in half the time.
  // Guarded so the 1.0 (homogeneous) case leaves the value bit-identical.
  if (job.machine) {
    const double speed = catalog_.speed(*job.machine);
    if (speed != 1.0) duration = duration / speed;
  }
  job.epoch_expected = duration;
  job.epoch_started_at = simulation_.now();
  job.epoch_in_flight = true;

  // Gray faults stretch (or freeze) the epoch. Both queries are RNG-free, so
  // a plan without them leaves the jitter/fault decision streams untouched.
  if (injector_.active() && job.machine) {
    const double slow = injector_.slowdown_factor(*job.machine, simulation_.now());
    if (slow > 1.0) {
      duration = duration * slow;
      injector_.note_slow_epoch();
    }
    const util::SimTime stall =
        injector_.hang_stall(*job.machine, simulation_.now(), duration);
    if (stall == util::SimTime::infinity()) {
      // The epoch never completes: no completion event is scheduled, the
      // machine is wedged. Only the progress deadline (below) or the
      // missed-heartbeat watchdog can recover the job.
      injector_.note_hung_epoch();
      job.pending_epoch = 0;
      arm_progress_deadline(job);
      return;
    }
    if (stall > util::SimTime::zero()) {
      duration += stall;
      injector_.note_stalled_epoch();
    }
  }

  job.pending_epoch =
      simulation_.schedule_after(duration, [this, id] { complete_epoch(id); });
  arm_progress_deadline(job);
}

void HyperDriveCluster::complete_epoch(core::JobId id) {
  if (done_) return;
  auto& job = jm_.job(id);
  if (job.status != core::JobStatus::Running || !job.machine) return;
  const util::SimTime duration = simulation_.now() - job.epoch_started_at;
  job.epoch_in_flight = false;
  disarm_progress_deadline(job);
  job.execution_time += duration;
  job.training_time += duration;

  auto& agent = agents_[*job.machine];
  agent.note_busy(duration);
  agent.note_epoch();

  // Feed the health layer: update the host's EWMA speed score and charge the
  // job's normalized training time (what the epoch would have cost at
  // nominal speed) for SchedulerOps::normalized_epoch_duration.
  auto transition = HealthMonitor::Transition::None;
  // Normalized time = what the epoch would have cost at nominal (speed-1.0,
  // healthy) pace: catalog speed scales it back up for fast hosts, the health
  // EWMA discounts degraded ones. Both factors are exactly 1.0 on the
  // homogeneous health-less path.
  const double catalog_speed = catalog_.speed(*job.machine);
  if (options_.health.enabled) {
    transition = health_.note_epoch(*job.machine, job.epoch_expected, duration,
                                    simulation_.now());
    double normalize = std::min(1.0, health_.speed_score(*job.machine));
    if (catalog_speed != 1.0) normalize *= catalog_speed;
    job.normalized_training_time += duration * normalize;
  } else if (catalog_speed != 1.0) {
    job.normalized_training_time += duration * catalog_speed;
  } else {
    job.normalized_training_time += duration;
  }

  const double perf = job.spec->curve.perf.at(job.epochs_done);
  ++job.epochs_done;
  agent.append_history(id, perf);
  record(obs::TraceEvent(obs::EventKind::EpochComplete)
             .with_job(static_cast<std::int64_t>(id))
             .with_epoch(static_cast<std::int64_t>(job.epochs_done)));

  AppStat stat;
  stat.job_id = id;
  stat.epoch = job.epochs_done;
  stat.perf = perf;
  if (!job.spec->curve.secondary.empty()) {
    stat.secondary = job.spec->curve.secondary.at(job.epochs_done - 1);
  }
  stat.epoch_duration = duration;
  stat.node = *job.machine;
  stat.reported_at = simulation_.now();

  // The stat report must be in flight before the machine can be released,
  // otherwise a completing job could end the experiment with its final
  // (possibly target-reaching) report undelivered. It travels as an RPC
  // from the Node Agent to the scheduler (§5). Under the reliability layer
  // it is retransmitted until acked; if every attempt is lost the epoch's
  // stat is gone for good (training went on regardless — §5.2 overlap).
  Message report;
  report.type = MessageType::ReportStat;
  report.from = static_cast<EndpointId>(*job.machine);
  report.to = scheduler_endpoint_;
  report.job_id = id;
  report.payload_bytes = kStatRpcBytes;
  report.payload = std::make_shared<const AppStat>(stat);
  bus_.send(std::move(report),
            [this](const Message&) { ++result_.recovery.stat_reports_lost; });

  const MachineId host = *job.machine;
  if (transition == HealthMonitor::Transition::Quarantine) {
    // The monitor condemned the host for persistent slowness. The machine
    // goes offline as soon as it is free; its job (if unfinished) is cleanly
    // suspended — snapshot at the boundary it just reached, zero epochs
    // lost — and resumes on a healthy node.
    pending_quarantine_.insert(host);
  } else if (transition == HealthMonitor::Transition::Reinstate) {
    ++result_.recovery.nodes_reinstated;
    record(obs::TraceEvent(obs::EventKind::NodeReinstate)
               .with_machine(static_cast<std::int64_t>(host)));
  }

  if (job.epochs_done >= job.spec->curve.perf.size()) {
    job.status = core::JobStatus::Completed;
    record(obs::TraceEvent(obs::EventKind::JobComplete).with_job(static_cast<std::int64_t>(id)));
    release_and_allocate(id);
  } else if (transition == HealthMonitor::Transition::Quarantine) {
    ++result_.recovery.jobs_migrated;
    record(obs::TraceEvent(obs::EventKind::JobMigrate)
               .with_job(static_cast<std::int64_t>(id))
               .with_machine(static_cast<std::int64_t>(host))
               .with_detail("slow"));
    do_suspend(id);
  } else if (!options_.overlap_decisions && options_.decision_latency &&
             trace_.evaluation_boundary > 0 &&
             job.epochs_done % trace_.evaluation_boundary == 0) {
    // Naive (non-overlapped) mode: the job idles on its machine until the
    // prediction-based decision arrives; decide() resumes it.
    job.waiting_decision = true;
    job.wait_started_at = simulation_.now();
  } else {
    // Schedule-as-it-goes with overlapped decisions (§4.2/§5.2): training
    // proceeds optimistically while the stat report and any prediction-based
    // decision are in flight.
    begin_epoch(id);
  }
}

void HyperDriveCluster::deliver_stat(const AppStat& stat) {
  if (done_) return;
  // (job, epoch) dedup: a retransmitted/duplicated RPC or an epoch re-trained
  // after a crash rollback reports nothing new — recording it again would
  // double-count history, and re-running the policy on it could double-fire
  // decisions that were already taken.
  if (!db_.record_stat(stat)) {
    ++result_.recovery.duplicate_stats_ignored;
    return;
  }

  core::JobEvent event;
  event.job_id = stat.job_id;
  event.epoch = stat.epoch;
  event.perf = stat.perf;
  event.secondary = stat.secondary;
  event.epoch_duration = stat.epoch_duration;
  event.now = simulation_.now();

  policy_->on_application_stat(*this, event);

  if (stat.perf > result_.best_perf) result_.best_perf = stat.perf;
  const bool hit = options_.stop_criterion ? options_.stop_criterion(event)
                                           : stat.perf >= trace_.target_performance;
  if (options_.stop_on_target && hit) {
    result_.reached_target = true;
    result_.time_to_target = simulation_.now();
    result_.winning_job = stat.job_id;
    record(obs::TraceEvent(obs::EventKind::TargetReached)
               .with_job(static_cast<std::int64_t>(stat.job_id))
               .with_epoch(static_cast<std::int64_t>(stat.epoch)));
    finish();
    return;
  }

  // A decision is only worth computing for a job that is still running; a
  // completed/terminated job's pending stat must not spawn a prediction that
  // would needlessly extend the experiment.
  const auto& job = jm_.job(stat.job_id);
  if (job.status != core::JobStatus::Running) return;

  // Decision latency models the learning-curve prediction cost at
  // evaluation-boundary epochs; elsewhere decisions are immediate.
  util::SimTime decision_delay = util::SimTime::zero();
  if (options_.decision_latency && trace_.evaluation_boundary > 0 &&
      stat.epoch % trace_.evaluation_boundary == 0) {
    decision_delay = options_.decision_latency(stat.job_id, stat.epoch, rng_);
    if (stat.node < agents_.size()) agents_[stat.node].note_prediction();
  }
  if (decision_delay <= util::SimTime::zero()) {
    decide(stat.job_id, event, job.incarnation);
  } else {
    simulation_.schedule_after(
        decision_delay, [this, id = stat.job_id, event, inc = job.incarnation] {
          decide(id, event, inc);
        });
  }
}

void HyperDriveCluster::decide(core::JobId id, core::JobEvent event,
                               std::uint64_t incarnation) {
  if (done_) return;
  auto& job = jm_.job(id);
  // The job may have completed, been suspended, or been terminated by a
  // decision for a later epoch while this one was in flight — or crashed and
  // restarted as a new incarnation, for which this decision is stale.
  if (job.incarnation != incarnation) return;
  if (job.status != core::JobStatus::Running) return;

  // Blocking mode: charge the machine-held wait time before acting.
  if (job.waiting_decision) {
    const util::SimTime wait = simulation_.now() - job.wait_started_at;
    job.execution_time += wait;
    if (job.machine) agents_[*job.machine].note_busy(wait);
    job.waiting_decision = false;
  }

  const core::JobDecision decision = policy_->on_iteration_finish(*this, event);
  switch (decision) {
    case core::JobDecision::Continue:
      // In overlapped mode training never stopped; in blocking mode resume
      // the paused job now.
      if (!job.epoch_in_flight && job.epochs_done < job.spec->curve.perf.size()) {
        begin_epoch(id);
      }
      return;
    case core::JobDecision::Suspend:
      if (job.epochs_done >= job.spec->curve.perf.size()) return;  // done anyway
      record(obs::TraceEvent(obs::EventKind::JobSuspend)
                 .with_job(static_cast<std::int64_t>(id))
                 .with_epoch(static_cast<std::int64_t>(job.epochs_done)));
      do_suspend(id);
      return;
    case core::JobDecision::Terminate:
      record(obs::TraceEvent(obs::EventKind::JobTerminate)
                 .with_job(static_cast<std::int64_t>(id))
                 .with_epoch(static_cast<std::int64_t>(job.epochs_done)));
      do_terminate(id);
      return;
  }
}

void HyperDriveCluster::interrupt_training(ManagedJob& job) {
  if (!job.epoch_in_flight) return;
  // Abandon the partial epoch: it produced no validation point and its
  // progress is not in the snapshot (which was taken at the last boundary).
  disarm_progress_deadline(job);
  simulation_.cancel(job.pending_epoch);
  const util::SimTime partial = simulation_.now() - job.epoch_started_at;
  job.execution_time += partial;
  if (job.machine) agents_[*job.machine].note_busy(partial);
  job.epoch_in_flight = false;
}

void HyperDriveCluster::do_suspend(core::JobId id) {
  auto& job = jm_.job(id);
  interrupt_training(job);
  const SuspendOverheadSample overhead = options_.overheads.sample_suspend(rng_);

  core::SuspendSample sample;
  sample.job_id = id;
  sample.latency = overhead.latency;
  sample.snapshot_bytes = overhead.snapshot_bytes;
  db_.record_suspend_sample(sample);
  result_.suspend_samples.push_back(sample);
  ++result_.suspends;
  ++job.times_suspended;

  job.status = core::JobStatus::Suspended;
  job.execution_time += overhead.latency;
  if (job.machine) agents_[*job.machine].note_busy(overhead.latency);

  // The machine is occupied until the snapshot has been captured; the image
  // is then shipped to the AppStatDB over the RPC fabric (§5.1: "captured
  // model state ... sent to HyperDrive for storage"), whose handler stores
  // it and releases the machine. The capture is cancelled if the node
  // crashes inside this window.
  job.suspend_in_flight = true;
  job.pending_suspend = simulation_.schedule_after(
      overhead.latency, [this, id, overhead] { finish_suspend(id, overhead); });
}

void HyperDriveCluster::finish_suspend(core::JobId id, SuspendOverheadSample overhead) {
  if (done_) return;
  auto& j = jm_.job(id);
  j.suspend_in_flight = false;

  // Agent-side capture/upload failure: nothing durable was produced, so the
  // suspended state is gone — roll back to the previous snapshot (or
  // scratch) and requeue.
  if (injector_.active() && injector_.should_fail_upload()) {
    ++result_.recovery.snapshots_lost;
    record(obs::TraceEvent(obs::EventKind::SnapshotUploadFailed)
               .with_job(static_cast<std::int64_t>(id)));
    rollback_to_durable(j);
    jm_.enqueue_idle(id);
    release_and_allocate(id);
    return;
  }

  auto snapshot = std::make_shared<ModelSnapshot>();
  snapshot->job_id = id;
  snapshot->epoch = j.epochs_done;
  snapshot->size_bytes = overhead.snapshot_bytes;
  // Serialize the actual schedulable state (§5.1): resume decodes this.
  JobSnapshotState state;
  state.job_id = id;
  state.epoch = j.epochs_done;
  state.config = j.spec->config;
  state.history = db_.perf_history(id);
  snapshot->image = SnapshotCodec::encode(state);
  snapshot->stored_at = simulation_.now();
  // Storage-level corruption: the upload arrives but a bit flips. Detected
  // only when a resume tries to decode it (the codec's CRC rejects it) —
  // recovery then falls back to an older snapshot or an AppStatDb replay.
  if (injector_.active() && injector_.should_corrupt_snapshot()) {
    injector_.corrupt(snapshot->image);
    record(obs::TraceEvent(obs::EventKind::SnapshotCorrupted)
               .with_job(static_cast<std::int64_t>(id)));
  }

  Message upload;
  upload.type = MessageType::SnapshotUpload;
  upload.from = j.machine ? static_cast<EndpointId>(*j.machine) : 0;
  upload.to = storage_endpoint_;
  upload.job_id = id;
  upload.payload_bytes = overhead.snapshot_bytes;
  upload.payload = std::move(snapshot);
  bus_.send(std::move(upload), [this, id](const Message&) {
    // Every retransmission was lost: the snapshot never reached storage and
    // the machine is still held — recover exactly like a capture failure.
    if (done_) return;
    auto& job = jm_.job(id);
    if (job.idle || job.status != core::JobStatus::Suspended) return;
    ++result_.recovery.snapshots_lost;
    record(obs::TraceEvent(obs::EventKind::SnapshotUploadLost)
               .with_job(static_cast<std::int64_t>(id)));
    rollback_to_durable(job);
    jm_.enqueue_idle(id);
    release_and_allocate(id);
  });
}

void HyperDriveCluster::do_terminate(core::JobId id) {
  auto& job = jm_.job(id);
  // Wrong-kill oracle (ground truth the scheduler cannot see): this config's
  // curve does reach the target, yet it is being killed while hosted on a
  // node the fault plan has degraded — the decision was corrupted by the
  // gray failure. Benchmarked by bench/ext_straggler; speed-aware POP is
  // expected to drive this to zero.
  if (injector_.active() && job.machine) {
    const bool degraded_host =
        injector_.slowdown_factor(*job.machine, simulation_.now()) > 1.0 ||
        injector_.is_hung(*job.machine, simulation_.now());
    if (degraded_host &&
        job.spec->curve.first_epoch_reaching(trace_.target_performance) != 0) {
      ++result_.recovery.wrong_kills;
      record(obs::TraceEvent(obs::EventKind::WrongKill)
                 .with_job(static_cast<std::int64_t>(id))
                 .with_machine(static_cast<std::int64_t>(*job.machine)));
    }
  }
  interrupt_training(job);
  job.status = core::JobStatus::Terminated;
  ++result_.terminations;
  release_and_allocate(id);
}

void HyperDriveCluster::rollback_to_durable(ManagedJob& job) {
  std::size_t durable = 0;
  if (const auto snap = db_.latest_snapshot(job.id)) {
    durable = std::min(snap->epoch, job.epochs_done);
  }
  result_.recovery.epochs_lost += job.epochs_done - durable;
  job.epochs_done = durable;
  job.status = durable > 0 ? core::JobStatus::Suspended : core::JobStatus::Pending;
  ++job.incarnation;
  ++result_.recovery.jobs_requeued;
  record(obs::TraceEvent(obs::EventKind::JobRequeue)
             .with_job(static_cast<std::int64_t>(job.id))
             .with_epoch(static_cast<std::int64_t>(durable)));
}

void HyperDriveCluster::fail_job_on_crash(ManagedJob& job) {
  // The machine did the partial work even though its result is lost.
  if (job.epoch_in_flight) {
    disarm_progress_deadline(job);
    simulation_.cancel(job.pending_epoch);
    const util::SimTime partial = simulation_.now() - job.epoch_started_at;
    job.execution_time += partial;
    agents_[*job.machine].note_busy(partial);
    job.epoch_in_flight = false;
  }
  if (job.waiting_decision) {
    const util::SimTime wait = simulation_.now() - job.wait_started_at;
    job.execution_time += wait;
    agents_[*job.machine].note_busy(wait);
    job.waiting_decision = false;
  }
  if (job.suspend_in_flight) {
    // The snapshot capture died with the node.
    simulation_.cancel(job.pending_suspend);
    job.suspend_in_flight = false;
    ++result_.recovery.snapshots_lost;
  }
  rollback_to_durable(job);
  rm_.release_machine(*job.machine);
  job.machine.reset();
  jm_.enqueue_idle(job.id);
}

void HyperDriveCluster::crash_node(const NodeCrashEvent& crash) {
  if (done_) return;
  const MachineId m = crash.machine;
  if (m >= agents_.size() || !rm_.is_online(m)) return;

  injector_.note_crash();
  ++result_.recovery.node_crashes;
  record(obs::TraceEvent(obs::EventKind::NodeCrash).with_machine(static_cast<std::int64_t>(m)));

  // Fail whatever occupies the machine: a running job, or one whose snapshot
  // capture / upload is still holding it.
  for (auto& [id, job] : jm_.all()) {
    if (job.machine && *job.machine == m) {
      fail_job_on_crash(job);
      break;  // one job per machine
    }
  }
  rm_.set_offline(m);
  // The node's local §5.2 curve caches die with it; resumes re-install them
  // from snapshots or AppStatDb replay.
  agents_[m].clear_histories();
  // A dead node is the fail-stop machinery's problem: exclude it from
  // heartbeat scrutiny so the watchdog doesn't also quarantine the corpse.
  health_.set_excluded(m, true, simulation_.now());
  // A lease reclaim pending on this machine absorbs the corpse: the slot
  // returns to the pool sick and stays ungrantable until a restart heals it.
  if (pending_reclaim_.erase(m) > 0) {
    parked_sick_.insert(m);
    surrender_slot(m, "reclaim-crash");
  }
  policy_->on_capacity_change(*this);

  if (crash.restart_after < util::SimTime::infinity()) {
    auto handle_box = std::make_shared<sim::EventHandle>(0);
    *handle_box = simulation_.schedule_after(crash.restart_after, [this, m, handle_box] {
      fault_events_.erase(*handle_box);
      restart_node(m);
    });
    fault_events_.emplace(*handle_box, true);
  }

  policy_->on_allocate(*this);
  maybe_finish();
}

void HyperDriveCluster::restart_node(MachineId m) {
  if (done_) return;
  if (rm_.is_online(m)) return;
  if (rm_.is_parked(m)) {
    // The slot was reclaimed by the study arbiter while the node was down:
    // the restart heals it (grantable again) but does not re-admit it — only
    // a lease grant can.
    parked_sick_.erase(m);
    health_.set_excluded(m, false, simulation_.now());
    record(obs::TraceEvent(obs::EventKind::NodeRestart)
               .with_machine(static_cast<std::int64_t>(m))
               .with_detail("parked"));
    return;
  }
  rm_.set_online(m);
  ++result_.recovery.node_restarts;
  // Re-admit to health scrutiny with a fresh liveness clock (a node must not
  // be Suspect the instant it restarts).
  health_.set_excluded(m, false, simulation_.now());
  record(obs::TraceEvent(obs::EventKind::NodeRestart).with_machine(static_cast<std::int64_t>(m)));
  policy_->on_capacity_change(*this);
  policy_->on_allocate(*this);
  maybe_finish();
}

void HyperDriveCluster::spot_warning(const SpotPreemptionEvent& preemption) {
  if (done_) return;
  const MachineId m = preemption.machine;
  if (m >= agents_.size() || !rm_.is_online(m)) return;

  injector_.note_spot_warning();
  record(obs::TraceEvent(obs::EventKind::SpotWarning)
             .with_machine(static_cast<std::int64_t>(m)));
  draining_.insert(m);
  // The provider reclaims the node at warning + grace, busy or not.
  auto handle_box = std::make_shared<sim::EventHandle>(0);
  *handle_box = simulation_.schedule_after(preemption.warning, [this, preemption, handle_box] {
    fault_events_.erase(*handle_box);
    spot_preempt(preemption);
  });
  fault_events_.emplace(*handle_box, false);

  if (!rm_.is_busy(m)) {
    // Idle: nothing to drain — hand the node back immediately.
    spot_offline(m);
  } else {
    // Drain: cleanly snapshot-migrate the occupant (the PR-2 straggler path —
    // never a kill, so the wrong-kill oracle stays at zero); the machine goes
    // offline the moment its release fires.
    for (auto& [id, job] : jm_.all()) {
      if (job.machine && *job.machine == m) {
        if (job.suspend_in_flight || job.status != core::JobStatus::Running) break;
        ++result_.recovery.jobs_migrated;
        record(obs::TraceEvent(obs::EventKind::JobMigrate)
                   .with_job(static_cast<std::int64_t>(id))
                   .with_machine(static_cast<std::int64_t>(m))
                   .with_detail("spot"));
        do_suspend(id);
        break;  // one job per machine
      }
    }
  }
  policy_->on_allocate(*this);
  maybe_finish();
}

void HyperDriveCluster::spot_preempt(const SpotPreemptionEvent& preemption) {
  if (done_) return;
  const MachineId m = preemption.machine;
  injector_.note_spot_preemption();
  record(obs::TraceEvent(obs::EventKind::SpotPreempted)
             .with_machine(static_cast<std::int64_t>(m)));
  if (draining_.count(m) > 0) {
    // Still draining at the deadline: the provider yanks the node — whatever
    // occupies it fails exactly like a crash (snapshot rollback + requeue).
    for (auto& [id, job] : jm_.all()) {
      if (job.machine && *job.machine == m) {
        fail_job_on_crash(job);
        break;  // one job per machine
      }
    }
    spot_offline(m);
  }
  // else: the drain completed early — the node already left the membership.
  policy_->on_allocate(*this);
  maybe_finish();
}

void HyperDriveCluster::spot_offline(MachineId m) {
  draining_.erase(m);
  // The node's local curve caches die with it; it never returns (no restart
  // event), so it parks permanently sick — ungrantable by the arbiter.
  agents_[m].clear_histories();
  health_.set_excluded(m, true, simulation_.now());
  parked_sick_.insert(m);
  if (rm_.is_parked(m)) {
    // A lease reclaim surrendered the slot mid-window; it just stays sick.
    if (!done_ && policy_ != nullptr) policy_->on_capacity_change(*this);
    return;
  }
  if (rm_.is_online(m)) rm_.set_offline(m);
  // Park the corpse so the tenant stops paying for it; a reclaim that was
  // already pending is absorbed, like the crash path.
  const char* reason = pending_reclaim_.erase(m) > 0 ? "reclaim-spot" : "spot";
  surrender_slot(m, reason);
}

void HyperDriveCluster::schedule_crashes() {
  for (const auto& crash : options_.fault_plan.crashes) {
    auto handle_box = std::make_shared<sim::EventHandle>(0);
    *handle_box = simulation_.schedule_at(crash.at, [this, crash, handle_box] {
      fault_events_.erase(*handle_box);
      crash_node(crash);
    });
    fault_events_.emplace(*handle_box, false);
  }
  for (const auto& preemption : options_.fault_plan.spot_preemptions) {
    auto handle_box = std::make_shared<sim::EventHandle>(0);
    *handle_box = simulation_.schedule_at(preemption.at, [this, preemption, handle_box] {
      fault_events_.erase(*handle_box);
      spot_warning(preemption);
    });
    fault_events_.emplace(*handle_box, false);
  }
}

// --- gray-failure detection & mitigation (DESIGN.md §7) ----------------------

void HyperDriveCluster::schedule_health() {
  if (!options_.health.enabled) return;
  const util::SimTime interval = options_.health.heartbeat_interval;
  for (std::size_t m = 0; m < agents_.size(); ++m) {
    auto handle_box = std::make_shared<sim::EventHandle>(0);
    *handle_box = simulation_.schedule_after(
        interval, [this, m, handle_box] {
          heartbeat_tick(static_cast<MachineId>(m), *handle_box);
        });
    infra_events_.emplace(*handle_box, false);
  }
  auto handle_box = std::make_shared<sim::EventHandle>(0);
  *handle_box =
      simulation_.schedule_after(interval, [this, handle_box] { watchdog_tick(*handle_box); });
  infra_events_.emplace(*handle_box, false);
}

void HyperDriveCluster::heartbeat_tick(MachineId m, sim::EventHandle self) {
  infra_events_.erase(self);
  if (done_) return;
  // A crashed node is silent because it is dead (the fail-stop machinery's
  // problem); a hung node is silent because it is wedged (exactly the signal
  // the watchdog exists to catch). Everyone else probes on schedule —
  // including quarantined and probation nodes, whose liveness still matters.
  if (!health_.is_excluded(m) && !injector_.is_hung(m, simulation_.now())) {
    auto beat = std::make_shared<Heartbeat>();
    beat->machine = m;
    beat->seq = agents_[m].next_heartbeat_seq();
    beat->epochs_run = agents_[m].epochs_run();
    beat->sent_at = simulation_.now();
    Message probe;
    probe.type = MessageType::Heartbeat;
    probe.from = static_cast<EndpointId>(m);
    probe.to = scheduler_endpoint_;
    probe.payload_bytes = kHeartbeatRpcBytes;
    probe.payload = std::move(beat);
    bus_.send(std::move(probe));
  }
  auto handle_box = std::make_shared<sim::EventHandle>(0);
  *handle_box = simulation_.schedule_after(
      options_.health.heartbeat_interval,
      [this, m, handle_box] { heartbeat_tick(m, *handle_box); });
  infra_events_.emplace(*handle_box, false);
}

void HyperDriveCluster::handle_heartbeat(const Heartbeat& beat) {
  if (done_) return;
  const bool was_suspect = health_.health(beat.machine) == NodeHealth::Suspect;
  health_.note_heartbeat(beat, simulation_.now());
  if (was_suspect) {
    record(obs::TraceEvent(obs::EventKind::NodeSuspectCleared)
               .with_machine(static_cast<std::int64_t>(beat.machine)));
  }
  maybe_finish();
}

void HyperDriveCluster::watchdog_tick(sim::EventHandle self) {
  infra_events_.erase(self);
  if (done_) return;
  const auto report = health_.watchdog_scan(simulation_.now());
  for (const MachineId m : report.newly_suspect) {
    record(obs::TraceEvent(obs::EventKind::NodeSuspect)
               .with_machine(static_cast<std::int64_t>(m)));
  }
  for (const MachineId m : report.to_quarantine) {
    // Silent past the escalation deadline: treat the node as wedged. Its job
    // cannot be cleanly suspended (the node does not respond), so it is
    // rolled back to its last durable snapshot and requeued — the same
    // recovery a crash uses — and the node goes offline pending probation.
    health_.force_quarantine(m);
    record(obs::TraceEvent(obs::EventKind::NodeQuarantine)
               .with_machine(static_cast<std::int64_t>(m))
               .with_detail("silent"));
    for (auto& [id, job] : jm_.all()) {
      if (job.machine && *job.machine == m) {
        ++result_.recovery.jobs_migrated;
        record(obs::TraceEvent(obs::EventKind::JobMigrate)
                   .with_job(static_cast<std::int64_t>(id))
                   .with_machine(static_cast<std::int64_t>(m))
                   .with_detail("silent"));
        fail_job_on_crash(job);
        break;  // one job per machine
      }
    }
    finalize_quarantine(m);
    policy_->on_allocate(*this);
  }
  auto handle_box = std::make_shared<sim::EventHandle>(0);
  *handle_box = simulation_.schedule_after(
      options_.health.heartbeat_interval,
      [this, handle_box] { watchdog_tick(*handle_box); });
  infra_events_.emplace(*handle_box, false);
  maybe_finish();
}

void HyperDriveCluster::arm_progress_deadline(ManagedJob& job) {
  if (!options_.health.enabled || options_.health.hang_deadline_factor <= 0.0) return;
  const util::SimTime deadline = job.epoch_expected * options_.health.hang_deadline_factor;
  job.deadline_armed = true;
  job.progress_deadline = simulation_.schedule_after(
      deadline, [this, id = job.id, inc = job.incarnation] { on_progress_deadline(id, inc); });
}

void HyperDriveCluster::disarm_progress_deadline(ManagedJob& job) {
  if (!job.deadline_armed) return;
  simulation_.cancel(job.progress_deadline);
  job.deadline_armed = false;
}

void HyperDriveCluster::on_progress_deadline(core::JobId id, std::uint64_t incarnation) {
  if (done_) return;
  auto& job = jm_.job(id);
  // Stale if the epoch completed, the job migrated/crashed (new incarnation),
  // or a policy decision already pulled it off the machine.
  if (job.incarnation != incarnation || !job.epoch_in_flight || !job.machine) return;
  job.deadline_armed = false;
  const MachineId m = *job.machine;
  ++result_.recovery.hung_jobs_detected;
  record(obs::TraceEvent(obs::EventKind::HangDetected)
             .with_job(static_cast<std::int64_t>(id))
             .with_machine(static_cast<std::int64_t>(m)));
  // The epoch made no observable progress for hang_deadline_factor x its
  // expected duration: presume the node wedged. Snapshot-rollback migration
  // (the PR-1 crash path — the hung node cannot serve a clean suspend) plus
  // quarantine of the host.
  health_.force_quarantine(m);
  ++result_.recovery.jobs_migrated;
  record(obs::TraceEvent(obs::EventKind::JobMigrate)
             .with_job(static_cast<std::int64_t>(id))
             .with_machine(static_cast<std::int64_t>(m))
             .with_detail("hung"));
  fail_job_on_crash(job);
  finalize_quarantine(m);
  policy_->on_allocate(*this);
  maybe_finish();
}

void HyperDriveCluster::finalize_quarantine(MachineId m) {
  rm_.set_offline(m);
  ++result_.recovery.nodes_quarantined;
  record(obs::TraceEvent(obs::EventKind::NodeQuarantine)
             .with_machine(static_cast<std::int64_t>(m)));
  auto handle_box = std::make_shared<sim::EventHandle>(0);
  // Probation re-admission restores capacity exactly like a crash restart,
  // so it registers as a restart-flavoured fault event: maybe_finish keeps
  // the experiment alive while jobs wait for the node to come back.
  *handle_box = simulation_.schedule_after(
      options_.health.probation_after, [this, m, handle_box] {
        fault_events_.erase(*handle_box);
        begin_probation_for(m);
      });
  fault_events_.emplace(*handle_box, true);
  // A lease reclaim pending on this machine absorbs it in place: the slot is
  // returned to the pool sick and stays ungrantable until probation clears it.
  if (pending_reclaim_.erase(m) > 0) {
    parked_sick_.insert(m);
    surrender_slot(m, "reclaim-quarantine");
  }
  policy_->on_capacity_change(*this);
}

void HyperDriveCluster::begin_probation_for(MachineId m) {
  if (done_) return;
  if (rm_.is_online(m)) return;
  if (rm_.is_parked(m)) {
    // Quarantined slot absorbed by a lease reclaim: probation clears the
    // sickness, the slot becomes grantable, membership waits for a grant.
    parked_sick_.erase(m);
    health_.begin_probation(m, simulation_.now());
    record(obs::TraceEvent(obs::EventKind::NodeProbation)
               .with_machine(static_cast<std::int64_t>(m))
               .with_detail("parked"));
    return;
  }
  health_.begin_probation(m, simulation_.now());
  rm_.set_online(m);
  record(obs::TraceEvent(obs::EventKind::NodeProbation)
             .with_machine(static_cast<std::int64_t>(m)));
  policy_->on_capacity_change(*this);
  policy_->on_allocate(*this);
  maybe_finish();
}

void HyperDriveCluster::release_and_allocate(core::JobId id) {
  auto& job = jm_.job(id);
  std::optional<MachineId> released;
  if (job.machine) {
    released = *job.machine;
    rm_.release_machine(*job.machine);
    job.machine.reset();
  }
  if (done_) return;
  // A machine condemned while its job was being suspended off it goes
  // offline the moment it is free (set_offline requires an idle machine);
  // finalize_quarantine absorbs a pending lease reclaim itself.
  if (released && pending_quarantine_.erase(*released) > 0) {
    finalize_quarantine(*released);
  }
  // A machine picked for lease reclaim parks the moment it is free.
  if (released && pending_reclaim_.erase(*released) > 0) {
    surrender_slot(*released, "reclaim");
  }
  // A draining spot machine is handed back to the provider the moment it is
  // free (spot_offline handles the already-parked race itself).
  if (released && draining_.count(*released) > 0) {
    spot_offline(*released);
  }
  policy_->on_allocate(*this);
  maybe_finish();
}

void HyperDriveCluster::maybe_finish() {
  if (tenant_) {
    tenant_maybe_finish();
    return;
  }
  if (rm_.idle() != rm_.total()) return;
  const std::size_t pending = simulation_.events_pending();
  // Health-infrastructure ticks (heartbeats, watchdog) are bookkeeping, not
  // work: like scheduled fault events they must never keep a finished
  // experiment's clock alive.
  if (pending > fault_events_.size() + infra_events_.size()) {
    return;  // real work still in flight
  }
  if (pending > 0) {
    // Only scheduled fault/infra events remain. A pending node restart — or
    // a quarantined node's probation re-admission, which restores capacity
    // the same way — can still revive progress if jobs are waiting; a bare
    // future crash (or a restart with nothing left to run) cannot affect the
    // outcome and must not keep the clock running — cancel and finish.
    const bool restart_pending = std::any_of(fault_events_.begin(), fault_events_.end(),
                                             [](const auto& e) { return e.second; });
    if (restart_pending && !jm_.active_jobs().empty()) return;
    for (const auto& [handle, is_restart] : fault_events_) simulation_.cancel(handle);
    fault_events_.clear();
    for (const auto& [handle, unused] : infra_events_) simulation_.cancel(handle);
    infra_events_.clear();
  }
  finish();
}

void HyperDriveCluster::tenant_maybe_finish() {
  if (done_) return;
  // The owned-mode check reads the global event queue — meaningless on a
  // shared simulation. A tenant is quiescent when every held slot is idle,
  // none of its RPCs (stat reports, snapshot uploads, heartbeats) is still
  // in flight, and no queued work remains — or no capacity path that could
  // run the queued work remains.
  if (rm_.idle() != rm_.total()) return;
  if (bus_.in_flight() > 0) return;
  if (!jm_.active_jobs().empty()) {
    const bool restart_pending = std::any_of(fault_events_.begin(), fault_events_.end(),
                                             [](const auto& e) { return e.second; });
    if (restart_pending) return;     // crashed/quarantined capacity will return
    if (rm_.parked() > 0) return;    // the arbiter can still grant more lease
    if (rm_.total() > 0) return;     // idle capacity exists; a later event may use it
    // Capacity is gone for good: give up exactly like the owned path.
  }
  for (const auto& [handle, is_restart] : fault_events_) simulation_.cancel(handle);
  fault_events_.clear();
  for (const auto& [handle, unused] : infra_events_) simulation_.cancel(handle);
  infra_events_.clear();
  finish();
}

void HyperDriveCluster::finish() {
  if (done_) return;
  done_ = true;
  if (!tenant_) {
    simulation_.stop();
    return;
  }
  // Tenant epilogue: the shared clock keeps running for the other studies,
  // so everything this study scheduled must be cancelled explicitly, and
  // every leased slot drains back to the arbiter. Held jobs keep exactly the
  // accounting they have (the owned path's run_until stop charges neither
  // partial epochs nor status changes — collect() mirrors that).
  finished_at_ = simulation_.now();
  accrue_slot_time();
  for (const auto& [handle, is_restart] : fault_events_) simulation_.cancel(handle);
  fault_events_.clear();
  for (const auto& [handle, unused] : infra_events_) simulation_.cancel(handle);
  infra_events_.clear();
  if (timeout_armed_) {
    simulation_.cancel(timeout_event_);
    timeout_armed_ = false;
  }
  pending_quarantine_.clear();
  pending_reclaim_.clear();
  draining_.clear();
  for (auto& [id, job] : jm_.all()) {
    if (job.epoch_in_flight) {
      disarm_progress_deadline(job);
      simulation_.cancel(job.pending_epoch);
      job.epoch_in_flight = false;
    }
    if (job.suspend_in_flight) {
      simulation_.cancel(job.pending_suspend);
      job.suspend_in_flight = false;
    }
    if (job.deadline_armed) disarm_progress_deadline(job);
    if (job.machine) {
      rm_.release_machine(*job.machine);
      job.machine.reset();
    }
  }
  // Park every slot still charged to this study and hand each back (drain
  // parks are not counted as arbiter reclaims).
  for (std::size_t m = 0; m < rm_.configured(); ++m) {
    const auto id = static_cast<MachineId>(m);
    if (rm_.is_parked(id)) continue;
    rm_.park_machine(id);
    if (on_slot_released) on_slot_released();
  }
  if (on_finished) on_finished();
}

void HyperDriveCluster::record(obs::TraceEvent event) {
  event.time = simulation_.now();
  // The structured sink observes first; it sees exactly the events the legacy
  // log would render, whether or not the legacy log is on.
  if (options_.obs.sink != nullptr) options_.obs.emit(event);
  if (!options_.record_event_log && !log_sink) return;
  std::ostringstream os;
  os << "t=" << std::fixed << std::setprecision(9) << event.time.to_seconds() << ' ';
  if (!options_.study_label.empty()) os << "study=" << options_.study_label << ' ';
  os << obs::legacy_text(event);
  if (log_sink) {
    log_sink(os.str());
  } else {
    event_log_.push_back(os.str());
  }
}

core::ExperimentResult HyperDriveCluster::run(core::SchedulingPolicy& policy) {
  if (tenant_) throw std::logic_error("run() is owned-simulation mode; tenants use start()");
  policy_ = &policy;
  result_ = core::ExperimentResult{};
  result_.policy_name = std::string(policy.name());

  policy.on_experiment_start(*this);
  policy.on_allocate(*this);
  if (rm_.idle() == rm_.total() && simulation_.events_pending() == 0) {
    result_.total_time = util::SimTime::zero();
    return result_;
  }
  schedule_crashes();
  schedule_health();
  simulation_.run_until(options_.max_experiment_time);

  finalize_result();
  policy_ = nullptr;
  return result_;
}

void HyperDriveCluster::finalize_result() {
  if (tenant_) {
    result_.total_time =
        done_ ? finished_at_ : std::min(simulation_.now(), options_.max_experiment_time);
  } else {
    result_.total_time = done_ ? simulation_.now()
                               : std::min(simulation_.now(), options_.max_experiment_time);
  }
  for (const auto& [id, job] : jm_.all()) {
    core::JobRunStats stats;
    stats.job_id = id;
    stats.execution_time = job.execution_time;
    stats.epochs_completed = job.epochs_done;
    stats.times_suspended = job.times_suspended;
    stats.final_status = job.status;
    stats.study = options_.study_label;
    const auto& history = db_.perf_history(id);
    stats.best_perf =
        history.empty() ? 0.0 : *std::max_element(history.begin(), history.end());
    result_.total_machine_time += job.execution_time;
    result_.job_stats.push_back(stats);
  }
  result_.retransmissions = bus_.stats().retransmissions;
  result_.study = options_.study_label;
  // Close the slot-seconds and spend integrals at the experiment's end time.
  if (result_.total_time > slots_accrued_until_) {
    const util::SimTime dt = result_.total_time - slots_accrued_until_;
    slot_seconds_ +=
        util::SimTime::seconds(static_cast<double>(held_slots()) * dt.to_seconds());
    spend_usd_ += held_price_rate() * dt.to_hours();
    slots_accrued_until_ = result_.total_time;
  }
  result_.slot_seconds = slot_seconds_;
  result_.spend_usd = spend_usd_;
  result_.lease_grants = lease_grants_;
  result_.lease_reclaims = lease_reclaims_;
  if (options_.obs.metrics != nullptr) publish_metrics();
}

namespace {
/// Suspend-latency histogram buckets (seconds): the calibrated overhead
/// models put typical suspends in the low seconds, with resume-transfer
/// outliers reaching minutes.
const std::vector<double> kSuspendLatencyBounds = {0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0};
}  // namespace

void preregister_cluster_metrics(obs::MetricsRegistry& registry) {
  // Must list, in order, exactly the metrics publish_metrics() touches.
  for (const char* name : {
           "cluster.jobs_started", "cluster.suspends", "cluster.terminations",
           "cluster.clones", "cluster.epochs_trained", "cluster.retransmissions",
           "recovery.node_crashes", "recovery.node_restarts", "recovery.jobs_requeued",
           "recovery.epochs_lost", "recovery.snapshots_lost",
           "recovery.snapshot_restore_failures", "recovery.stat_reports_lost",
           "recovery.duplicate_stats_ignored", "recovery.jobs_migrated",
           "recovery.nodes_quarantined", "recovery.nodes_reinstated",
           "recovery.hung_jobs_detected", "recovery.wrong_kills",
           "bus.messages", "bus.retransmissions", "bus.acks_sent", "bus.dropped",
           "bus.dropped_endpoint_down", "bus.duplicates_suppressed",
           "bus.duplicates_delivered", "bus.delayed", "bus.undeliverable",
           "fault.messages_dropped", "fault.messages_duplicated", "fault.messages_delayed",
           "fault.snapshot_uploads_failed", "fault.snapshots_corrupted",
           "fault.node_crashes", "fault.epochs_slowed", "fault.epochs_stalled",
           "fault.epochs_hung", "lease.grants", "lease.reclaims",
           "elastic.nodes_acquired", "elastic.nodes_released",
           "elastic.spot_warnings", "elastic.spot_preemptions",
       }) {
    (void)registry.counter(name);
  }
  (void)registry.gauge("elastic.spend_usd");
  (void)registry.histogram("cluster.suspend_latency_s", kSuspendLatencyBounds);
}

void HyperDriveCluster::publish_metrics() {
  obs::MetricsRegistry& reg = *options_.obs.metrics;
  const auto add = [&reg](const char* name, std::uint64_t value) {
    if (value > 0) reg.counter(name).add(value);
  };
  std::size_t epochs_trained = 0;
  for (const core::JobRunStats& stats : result_.job_stats) {
    epochs_trained += stats.epochs_completed;
  }
  add("cluster.jobs_started", result_.jobs_started);
  add("cluster.suspends", result_.suspends);
  add("cluster.terminations", result_.terminations);
  add("cluster.clones", result_.clones);
  add("cluster.epochs_trained", epochs_trained);
  add("cluster.retransmissions", result_.retransmissions);
  const core::RecoveryStats& rec = result_.recovery;
  add("recovery.node_crashes", rec.node_crashes);
  add("recovery.node_restarts", rec.node_restarts);
  add("recovery.jobs_requeued", rec.jobs_requeued);
  add("recovery.epochs_lost", rec.epochs_lost);
  add("recovery.snapshots_lost", rec.snapshots_lost);
  add("recovery.snapshot_restore_failures", rec.snapshot_restore_failures);
  add("recovery.stat_reports_lost", rec.stat_reports_lost);
  add("recovery.duplicate_stats_ignored", rec.duplicate_stats_ignored);
  add("recovery.jobs_migrated", rec.jobs_migrated);
  add("recovery.nodes_quarantined", rec.nodes_quarantined);
  add("recovery.nodes_reinstated", rec.nodes_reinstated);
  add("recovery.hung_jobs_detected", rec.hung_jobs_detected);
  add("recovery.wrong_kills", rec.wrong_kills);
  const MessageBusStats& bus = bus_.stats();
  add("bus.messages", bus.messages);
  add("bus.retransmissions", bus.retransmissions);
  add("bus.acks_sent", bus.acks_sent);
  add("bus.dropped", bus.dropped);
  add("bus.dropped_endpoint_down", bus.dropped_endpoint_down);
  add("bus.duplicates_suppressed", bus.duplicates_suppressed);
  add("bus.duplicates_delivered", bus.duplicates_delivered);
  add("bus.delayed", bus.delayed);
  add("bus.undeliverable", bus.undeliverable);
  const FaultStats& fault = injector_.stats();
  add("fault.messages_dropped", fault.messages_dropped);
  add("fault.messages_duplicated", fault.messages_duplicated);
  add("fault.messages_delayed", fault.messages_delayed);
  add("fault.snapshot_uploads_failed", fault.snapshot_uploads_failed);
  add("fault.snapshots_corrupted", fault.snapshots_corrupted);
  add("fault.node_crashes", fault.node_crashes);
  add("fault.epochs_slowed", fault.epochs_slowed);
  add("fault.epochs_stalled", fault.epochs_stalled);
  add("fault.epochs_hung", fault.epochs_hung);
  add("lease.grants", lease_grants_);
  add("lease.reclaims", lease_reclaims_);
  add("elastic.spot_warnings", fault.spot_warnings);
  add("elastic.spot_preemptions", fault.spot_preemptions);
  if (!result_.suspend_samples.empty()) {
    obs::Histogram& latency =
        reg.histogram("cluster.suspend_latency_s", kSuspendLatencyBounds);
    for (const core::SuspendSample& sample : result_.suspend_samples) {
      latency.observe(sample.latency.to_seconds());
    }
  }
}

// --- tenant protocol (multi-study scheduling, DESIGN.md §9) ------------------

void HyperDriveCluster::start(core::SchedulingPolicy& policy) {
  if (!tenant_) throw std::logic_error("start() is tenant mode; owned clusters use run()");
  policy_ = &policy;
  result_ = core::ExperimentResult{};
  result_.policy_name = std::string(policy.name());
  slots_accrued_until_ = simulation_.now();

  // Same preamble order as run(): the single-study-through-StudyManager path
  // must replay the owned path event for event.
  policy.on_experiment_start(*this);
  policy.on_allocate(*this);
  schedule_crashes();
  schedule_health();
  // A tenant cannot truncate via run_until (the clock is shared), so the
  // study Tmax is an explicit event. Priority 100: same-time job events
  // complete before the study is declared out of time.
  if (options_.max_experiment_time < util::SimTime::infinity()) {
    timeout_event_ = simulation_.schedule_at(
        options_.max_experiment_time,
        [this] {
          timeout_armed_ = false;
          if (done_) return;
          record(obs::TraceEvent(obs::EventKind::StudyTimeout));
          finish();
        },
        /*priority=*/100);
    timeout_armed_ = true;
  }
  maybe_finish();  // empty trace / nothing runnable: finish at t=0
}

void HyperDriveCluster::accrue_slot_time() {
  const util::SimTime now = simulation_.now();
  if (now > slots_accrued_until_) {
    const util::SimTime dt = now - slots_accrued_until_;
    slot_seconds_ +=
        util::SimTime::seconds(static_cast<double>(held_slots()) * dt.to_seconds());
    spend_usd_ += held_price_rate() * dt.to_hours();
    slots_accrued_until_ = now;
  }
}

double HyperDriveCluster::held_price_rate() const {
  double rate = 0.0;
  for (NodeClassId c = 0; c < catalog_.classes(); ++c) {
    const double price = catalog_.at(c).price_per_hour;
    const std::size_t end = std::min(catalog_.block_end(c), rm_.configured());
    for (std::size_t m = catalog_.block_begin(c); m < end; ++m) {
      if (!rm_.is_parked(static_cast<MachineId>(m))) rate += price;
    }
  }
  return rate;
}

CapacityView HyperDriveCluster::held_capacity() const {
  CapacityView view;
  for (NodeClassId c = 0; c < catalog_.classes(); ++c) {
    std::size_t held = 0;
    const std::size_t end = std::min(catalog_.block_end(c), rm_.configured());
    for (std::size_t m = catalog_.block_begin(c); m < end; ++m) {
      if (!rm_.is_parked(static_cast<MachineId>(m))) ++held;
    }
    view.set(c, held);
  }
  return view;
}

void HyperDriveCluster::surrender_slot(MachineId machine, const char* reason) {
  accrue_slot_time();
  rm_.park_machine(machine);
  ++lease_reclaims_;
  record(obs::TraceEvent(obs::EventKind::LeasePark)
             .with_machine(static_cast<std::int64_t>(machine))
             .with_detail(reason));
  if (!done_ && policy_ != nullptr) policy_->on_capacity_change(*this);
  if (on_slot_released) on_slot_released();
}

void HyperDriveCluster::set_lease_target(const CapacityView& capacity) {
  if (!tenant_) throw std::logic_error("set_lease_target() requires tenant mode");
  // Always store the full catalog width, clamped to each class block, so
  // lease_target_ comparisons are well-defined.
  for (NodeClassId c = 0; c < catalog_.classes(); ++c) {
    const std::size_t end = std::min(catalog_.block_end(c), rm_.configured());
    const std::size_t block = end - std::min(catalog_.block_begin(c), end);
    lease_target_.set(c, std::min(capacity.of(c), block));
  }
  if (!done_) apply_lease();
}

void HyperDriveCluster::apply_lease() {
  // Reclaim class by class (id order); within a class the original 3-tier
  // scan runs over the class's machine block — for the single-class catalog
  // this is exactly the pre-elastic global scan.
  for (NodeClassId c = 0; c < catalog_.classes(); ++c) {
    const std::size_t begin = std::min(catalog_.block_begin(c), rm_.configured());
    const std::size_t end = std::min(catalog_.block_end(c), rm_.configured());
    const auto excess = [&] {
      std::size_t held = 0;
      for (std::size_t m = begin; m < end; ++m) {
        if (!rm_.is_parked(static_cast<MachineId>(m))) ++held;
      }
      for (const MachineId m : pending_reclaim_) {
        if (m >= begin && m < end) --held;
      }
      return held > lease_target_.of(c) ? held - lease_target_.of(c) : 0;
    };
    while (excess() > 0) {
      // 1. An idle online slot parks immediately (highest id first, so grants
      //    — which unpark the lowest id — walk the same frontier).
      std::optional<MachineId> idle_pick;
      for (std::size_t m = end; m-- > begin;) {
        const auto id = static_cast<MachineId>(m);
        if (rm_.is_online(id) && !rm_.is_busy(id) && pending_quarantine_.count(id) == 0) {
          idle_pick = id;
          break;
        }
      }
      if (idle_pick) {
        surrender_slot(*idle_pick, "reclaim");
        continue;
      }
      // 2. A crashed/quarantined slot is absorbed: the arbiter takes the
      //    capacity charge off this study, and the slot becomes grantable only
      //    after its restart/probation event declares it healthy again.
      std::optional<MachineId> sick_pick;
      for (std::size_t m = end; m-- > begin;) {
        const auto id = static_cast<MachineId>(m);
        if (!rm_.is_online(id) && !rm_.is_parked(id)) {
          sick_pick = id;
          break;
        }
      }
      if (sick_pick) {
        parked_sick_.insert(*sick_pick);
        surrender_slot(*sick_pick, "reclaim-offline");
        continue;
      }
      // 3. A busy slot: snapshot-migrate the job off it (never kill — the
      //    reclaim is the arbiter's decision, not the policy's), park on
      //    release.
      std::optional<MachineId> busy_pick;
      for (std::size_t m = end; m-- > begin;) {
        const auto id = static_cast<MachineId>(m);
        if (rm_.is_busy(id) && pending_reclaim_.count(id) == 0) {
          busy_pick = id;
          break;
        }
      }
      if (!busy_pick) break;  // everything left is already being reclaimed
      pending_reclaim_.insert(*busy_pick);
      for (auto& [id, job] : jm_.all()) {
        if (job.machine && *job.machine == *busy_pick) {
          if (job.suspend_in_flight || job.status != core::JobStatus::Running) break;
          ++result_.recovery.jobs_migrated;
          record(obs::TraceEvent(obs::EventKind::LeaseMigrate)
                     .with_job(static_cast<std::int64_t>(id))
                     .with_machine(static_cast<std::int64_t>(*busy_pick)));
          do_suspend(id);
          break;  // one job per machine
        }
      }
    }
  }
}

bool HyperDriveCluster::grant_one(NodeClassId node_class) {
  if (!tenant_) throw std::logic_error("grant_one() requires tenant mode");
  if (done_) return false;
  if (node_class >= catalog_.classes()) return false;
  const std::size_t begin = std::min(catalog_.block_begin(node_class), rm_.configured());
  const std::size_t end = std::min(catalog_.block_end(node_class), rm_.configured());
  std::size_t held = 0;
  for (std::size_t m = begin; m < end; ++m) {
    if (!rm_.is_parked(static_cast<MachineId>(m))) ++held;
  }
  if (held >= lease_target_.of(node_class)) return false;
  for (std::size_t m = begin; m < end; ++m) {
    const auto id = static_cast<MachineId>(m);
    if (!rm_.is_parked(id) || parked_sick_.count(id) > 0) continue;
    accrue_slot_time();
    rm_.unpark_machine(id);
    ++lease_grants_;
    record(obs::TraceEvent(obs::EventKind::LeaseGrant)
               .with_machine(static_cast<std::int64_t>(id)));
    // A slot can sit parked for a long stretch; restart its liveness clock so
    // the watchdog judges it from the grant, not from before the lease.
    if (options_.health.enabled) health_.set_excluded(id, false, simulation_.now());
    policy_->on_capacity_change(*this);
    policy_->on_allocate(*this);
    return true;
  }
  return false;
}

void HyperDriveCluster::cancel() {
  if (!tenant_) throw std::logic_error("cancel() requires tenant mode");
  if (done_) return;
  record(obs::TraceEvent(obs::EventKind::StudyCancelled));
  finish();
}

core::ExperimentResult HyperDriveCluster::collect() {
  if (!tenant_) throw std::logic_error("collect() requires tenant mode");
  finalize_result();
  return result_;
}

void HyperDriveCluster::encode_state(util::ByteWriter& w) const {
  const auto time = [&w](util::SimTime t) { w.f64(t.to_seconds()); };
  const auto rng = [&w](const util::RngState& s) {
    for (const std::uint64_t word : s.state) w.u64(word);
    w.u64(s.seed);
    w.f64(s.spare_normal);
    w.u8(s.has_spare_normal ? 1 : 0);
  };

  // Machines: membership, lease, occupancy.
  w.u32(static_cast<std::uint32_t>(rm_.configured()));
  for (MachineId m = 0; m < rm_.configured(); ++m) {
    std::uint8_t bits = 0;
    if (rm_.is_online(m)) bits |= 1;
    if (rm_.is_parked(m)) bits |= 2;
    if (rm_.is_busy(m)) bits |= 4;
    w.u8(bits);
  }

  // Jobs: every lifecycle field except sim event handles (those are process-
  // local names for closures the replay rebuilds deterministically).
  w.u64(jm_.idle_counter());
  w.u32(static_cast<std::uint32_t>(jm_.all().size()));
  for (const auto& [id, job] : jm_.all()) {
    w.u64(id);
    w.u8(static_cast<std::uint8_t>(job.status));
    w.u64(job.epochs_done);
    w.f64(job.priority);
    w.u64(job.idle_seq);
    w.u8(static_cast<std::uint8_t>((job.idle ? 1 : 0) | (job.epoch_in_flight ? 2 : 0) |
                                   (job.waiting_decision ? 4 : 0) |
                                   (job.suspend_in_flight ? 8 : 0) |
                                   (job.deadline_armed ? 16 : 0)));
    w.u32(job.machine ? *job.machine + 1 : 0);
    time(job.execution_time);
    time(job.training_time);
    time(job.normalized_training_time);
    w.u64(job.times_suspended);
    time(job.epoch_started_at);
    time(job.wait_started_at);
    time(job.epoch_expected);
    w.u64(job.incarnation);

    // AppStatDb fingerprint for this job: contiguous history values plus a
    // summary of every durable snapshot (image bytes digested by CRC — the
    // images themselves can dwarf the rest of the checkpoint).
    const auto& history = db_.perf_history(id);
    w.u32(static_cast<std::uint32_t>(db_.stats(id).size()));
    w.u32(static_cast<std::uint32_t>(history.size()));
    for (const double y : history) w.f64(y);
    const auto& snaps = db_.snapshots(id);
    w.u32(static_cast<std::uint32_t>(snaps.size()));
    for (const ModelSnapshot& snap : snaps) {
      w.u64(snap.epoch);
      w.f64(snap.size_bytes);
      w.u64(snap.image.size());
      w.u32(crc32(snap.image.data(), snap.image.size()));
      time(snap.stored_at);
    }
  }
  w.u32(static_cast<std::uint32_t>(db_.suspend_samples().size()));

  // Node agents (execution accounting + heartbeat sequencing).
  for (const NodeAgent& agent : agents_) {
    time(agent.busy_time());
    w.u64(agent.epochs_run());
    w.u64(agent.predictions_run());
    w.u64(agent.heartbeats_sent());
  }

  // RNG streams: the cluster's jitter/latency stream and the injector's
  // fault-decision stream.
  rng(rng_.state());
  rng(injector_.rng_state());

  // Message fabric: logical traffic so far plus in-flight deliveries.
  const MessageBusStats& bus = bus_.stats();
  w.u64(bus.messages);
  w.f64(bus.bytes);
  w.u32(static_cast<std::uint32_t>(bus.per_type.size()));
  for (const auto& [type, count] : bus.per_type) {
    w.u8(static_cast<std::uint8_t>(type));
    w.u64(count);
  }
  w.u64(bus.retransmissions);
  w.f64(bus.retransmitted_bytes);
  w.u64(bus.acks_sent);
  w.f64(bus.ack_bytes);
  w.u64(bus.dropped);
  w.u64(bus.dropped_endpoint_down);
  w.u64(bus.duplicates_suppressed);
  w.u64(bus.duplicates_delivered);
  w.u64(bus.delayed);
  w.u64(bus.undeliverable);
  w.u64(bus_.in_flight());

  // Fault + health accounting.
  const FaultStats& faults = injector_.stats();
  w.u64(faults.messages_dropped);
  w.u64(faults.messages_duplicated);
  w.u64(faults.messages_delayed);
  w.u64(faults.snapshot_uploads_failed);
  w.u64(faults.snapshots_corrupted);
  w.u64(faults.node_crashes);
  w.u64(faults.epochs_slowed);
  w.u64(faults.epochs_stalled);
  w.u64(faults.epochs_hung);
  w.u64(faults.spot_warnings);
  w.u64(faults.spot_preemptions);
  for (MachineId m = 0; m < rm_.configured(); ++m) {
    w.u8(static_cast<std::uint8_t>(health_.health(m)));
    w.f64(health_.speed_score(m));
    w.u8(health_.is_excluded(m) ? 1 : 0);
  }
  const HealthStats& hs = health_.stats();
  w.u64(hs.heartbeats_received);
  w.u64(hs.suspects_declared);
  w.u64(hs.suspects_recovered);
  w.u64(hs.slow_strikes);
  w.u64(hs.quarantines);
  w.u64(hs.probations);
  w.u64(hs.reinstatements);

  // Result accumulators mutated mid-run.
  w.u8(result_.reached_target ? 1 : 0);
  time(result_.time_to_target);
  w.u64(result_.winning_job);
  w.f64(result_.best_perf);
  w.u64(result_.suspends);
  w.u64(result_.terminations);
  w.u64(result_.jobs_started);
  w.u64(result_.clones);
  w.u64(result_.recovery.node_crashes);
  w.u64(result_.recovery.node_restarts);
  w.u64(result_.recovery.jobs_requeued);
  w.u64(result_.recovery.epochs_lost);
  w.u64(result_.recovery.snapshots_lost);
  w.u64(result_.recovery.snapshot_restore_failures);
  w.u64(result_.recovery.stat_reports_lost);
  w.u64(result_.recovery.duplicate_stats_ignored);
  w.u64(result_.recovery.jobs_migrated);
  w.u64(result_.recovery.nodes_quarantined);
  w.u64(result_.recovery.nodes_reinstated);
  w.u64(result_.recovery.hung_jobs_detected);
  w.u64(result_.recovery.wrong_kills);

  // Tenant / lease protocol state.
  w.u8(static_cast<std::uint8_t>((done_ ? 1 : 0) | (tenant_ ? 2 : 0) |
                                 (timeout_armed_ ? 4 : 0)));
  w.u32(static_cast<std::uint32_t>(lease_target_.classes()));
  for (NodeClassId c = 0; c < lease_target_.classes(); ++c) w.u64(lease_target_.of(c));
  w.u32(static_cast<std::uint32_t>(pending_reclaim_.size()));
  for (const MachineId m : pending_reclaim_) w.u32(m);
  w.u32(static_cast<std::uint32_t>(parked_sick_.size()));
  for (const MachineId m : parked_sick_) w.u32(m);
  w.u32(static_cast<std::uint32_t>(pending_quarantine_.size()));
  for (const MachineId m : pending_quarantine_) w.u32(m);
  w.u32(static_cast<std::uint32_t>(draining_.size()));
  for (const MachineId m : draining_) w.u32(m);
  time(finished_at_);
  time(slot_seconds_);
  time(slots_accrued_until_);
  w.f64(spend_usd_);
  w.u64(lease_grants_);
  w.u64(lease_reclaims_);

  // Event log digest: order-sensitive rolling CRC mix, no concatenation.
  w.u64(event_log_.size());
  std::uint64_t digest = 0;
  for (const std::string& line : event_log_) {
    digest = digest * 1099511628211ULL +
             crc32(reinterpret_cast<const std::uint8_t*>(line.data()), line.size());
  }
  w.u64(digest);
}

core::ExperimentResult run_cluster_experiment(const workload::Trace& trace,
                                              core::SchedulingPolicy& policy,
                                              const ClusterOptions& options) {
  HyperDriveCluster cluster(trace, options);
  return cluster.run(policy);
}

}  // namespace hyperdrive::cluster
