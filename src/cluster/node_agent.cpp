#include "cluster/node_agent.hpp"

namespace hyperdrive::cluster {

const std::vector<double> NodeAgent::kEmpty{};

void NodeAgent::append_history(core::JobId job, double perf) {
  histories_[job].push_back(perf);
}

void NodeAgent::install_history(core::JobId job, std::vector<double> history) {
  histories_[job] = std::move(history);
}

std::vector<double> NodeAgent::take_history(core::JobId job) {
  const auto it = histories_.find(job);
  if (it == histories_.end()) return {};
  std::vector<double> out = std::move(it->second);
  histories_.erase(it);
  return out;
}

const std::vector<double>& NodeAgent::history(core::JobId job) const {
  const auto it = histories_.find(job);
  return it == histories_.end() ? kEmpty : it->second;
}

bool NodeAgent::hosts_history(core::JobId job) const noexcept {
  return histories_.find(job) != histories_.end();
}

}  // namespace hyperdrive::cluster
