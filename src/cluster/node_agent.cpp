#include "cluster/node_agent.hpp"

#include <stdexcept>

namespace hyperdrive::cluster {

void NodeAgent::append_history(core::JobId job, double perf) {
  histories_[job].push_back(perf);
}

void NodeAgent::install_history(core::JobId job, std::vector<double> history) {
  histories_[job] = std::move(history);
}

std::vector<double> NodeAgent::take_history(core::JobId job) {
  const auto it = histories_.find(job);
  if (it == histories_.end()) {
    throw std::out_of_range("NodeAgent::take_history: job not hosted on this agent");
  }
  std::vector<double> out = std::move(it->second);
  histories_.erase(it);
  return out;
}

const std::vector<double>& NodeAgent::history(core::JobId job) const {
  const auto it = histories_.find(job);
  if (it == histories_.end()) {
    throw std::out_of_range("NodeAgent::history: job not hosted on this agent");
  }
  return it->second;
}

bool NodeAgent::hosts_history(core::JobId job) const noexcept {
  return histories_.find(job) != histories_.end();
}

}  // namespace hyperdrive::cluster
