#include "cluster/health_monitor.hpp"

#include <algorithm>
#include <stdexcept>

namespace hyperdrive::cluster {

std::string_view to_string(NodeHealth health) noexcept {
  switch (health) {
    case NodeHealth::Healthy: return "healthy";
    case NodeHealth::Suspect: return "suspect";
    case NodeHealth::Quarantined: return "quarantined";
    case NodeHealth::Probation: return "probation";
  }
  return "?";
}

HealthMonitor::HealthMonitor(std::size_t machines, HealthOptions options)
    : options_(options), nodes_(machines) {
  if (options_.enabled) {
    if (options_.heartbeat_interval <= util::SimTime::zero()) {
      throw std::invalid_argument("HealthOptions: heartbeat_interval must be > 0");
    }
    if (options_.watchdog_intervals == 0) {
      throw std::invalid_argument("HealthOptions: watchdog_intervals must be >= 1");
    }
    if (options_.ewma_alpha <= 0.0 || options_.ewma_alpha > 1.0) {
      throw std::invalid_argument("HealthOptions: ewma_alpha must be in (0, 1]");
    }
  }
}

HealthMonitor::Node& HealthMonitor::node(MachineId machine) {
  return nodes_.at(static_cast<std::size_t>(machine));
}

const HealthMonitor::Node& HealthMonitor::node(MachineId machine) const {
  return nodes_.at(static_cast<std::size_t>(machine));
}

void HealthMonitor::note_heartbeat(const Heartbeat& beat, util::SimTime now) {
  Node& n = node(beat.machine);
  ++stats_.heartbeats_received;
  n.last_seen = now;
  if (n.state == NodeHealth::Suspect) {
    n.state = NodeHealth::Healthy;
    ++stats_.suspects_recovered;
  }
}

HealthMonitor::Transition HealthMonitor::note_epoch(MachineId machine,
                                                    util::SimTime expected,
                                                    util::SimTime observed,
                                                    util::SimTime now) {
  Node& n = node(machine);
  n.last_seen = now;  // a finished epoch proves the node is alive
  if (n.state == NodeHealth::Suspect) {
    n.state = NodeHealth::Healthy;
    ++stats_.suspects_recovered;
  }

  const double obs =
      observed > util::SimTime::zero()
          ? std::clamp(expected.to_seconds() / observed.to_seconds(), 0.0, 2.0)
          : 1.0;
  n.score = (1.0 - options_.ewma_alpha) * n.score + options_.ewma_alpha * obs;

  switch (n.state) {
    case NodeHealth::Healthy: {
      if (n.score < options_.slow_speed) {
        ++n.slow_strikes;
        ++stats_.slow_strikes;
        if (n.slow_strikes >= options_.quarantine_strikes) {
          force_quarantine(machine);
          return Transition::Quarantine;
        }
      } else {
        n.slow_strikes = 0;
      }
      return Transition::None;
    }
    case NodeHealth::Probation: {
      // Probation judges the raw per-epoch observation, not the EWMA: the
      // score still carries the pre-quarantine slowness, and a recovered
      // node must not be re-quarantined for its history.
      if (obs < options_.slow_speed) {
        force_quarantine(machine);
        return Transition::Quarantine;
      }
      if (++n.probation_good >= options_.reinstate_epochs) {
        n.state = NodeHealth::Healthy;
        n.score = 1.0;  // fresh start; the EWMA re-learns from here
        n.slow_strikes = 0;
        ++stats_.reinstatements;
        return Transition::Reinstate;
      }
      return Transition::None;
    }
    case NodeHealth::Suspect:       // handled above
    case NodeHealth::Quarantined:   // no jobs should run here
      return Transition::None;
  }
  return Transition::None;
}

HealthMonitor::WatchdogReport HealthMonitor::watchdog_scan(util::SimTime now) {
  WatchdogReport report;
  const util::SimTime suspect_after =
      options_.heartbeat_interval * static_cast<double>(options_.watchdog_intervals);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& n = nodes_[i];
    if (n.excluded || n.state == NodeHealth::Quarantined) continue;
    const util::SimTime silent = now - n.last_seen;
    if (n.state == NodeHealth::Suspect) {
      if (silent >= suspect_after * 2.0) {
        report.to_quarantine.push_back(static_cast<MachineId>(i));
      }
    } else if (silent >= suspect_after) {
      n.state = NodeHealth::Suspect;
      ++stats_.suspects_declared;
      report.newly_suspect.push_back(static_cast<MachineId>(i));
    }
  }
  return report;
}

void HealthMonitor::force_quarantine(MachineId machine) {
  Node& n = node(machine);
  if (n.state == NodeHealth::Quarantined) return;
  n.state = NodeHealth::Quarantined;
  n.slow_strikes = 0;
  n.probation_good = 0;
  ++stats_.quarantines;
}

void HealthMonitor::begin_probation(MachineId machine, util::SimTime now) {
  Node& n = node(machine);
  n.state = NodeHealth::Probation;
  n.probation_good = 0;
  n.last_seen = now;
  ++stats_.probations;
}

void HealthMonitor::set_excluded(MachineId machine, bool excluded, util::SimTime now) {
  Node& n = node(machine);
  if (n.excluded && !excluded) n.last_seen = now;  // restart is not silence
  n.excluded = excluded;
}

NodeHealth HealthMonitor::health(MachineId machine) const { return node(machine).state; }

double HealthMonitor::speed_score(MachineId machine) const { return node(machine).score; }

}  // namespace hyperdrive::cluster
