#include "cluster/app_stat_db.hpp"

namespace hyperdrive::cluster {

const std::vector<AppStat> AppStatDb::kEmptyStats{};
const std::vector<double> AppStatDb::kEmptyPerf{};
const std::vector<ModelSnapshot> AppStatDb::kEmptySnapshots{};

bool AppStatDb::record_stat(const AppStat& stat) {
  if (stat.epoch == 0) return false;  // epochs are 1-based completion counts
  auto& epochs = by_epoch_[stat.job_id];
  if (!epochs.emplace(stat.epoch, stat.perf).second) return false;  // duplicate
  stats_[stat.job_id].push_back(stat);
  // Extend the contiguous prefix as far as the buffered epochs allow; a gap
  // (an out-of-order arrival whose predecessor is still in flight) holds the
  // history back until the missing epoch lands.
  auto& perf = perf_[stat.job_id];
  for (auto it = epochs.find(perf.size() + 1); it != epochs.end();
       it = epochs.find(perf.size() + 1)) {
    perf.push_back(it->second);
  }
  return true;
}

void AppStatDb::adopt_history(core::JobId target, core::JobId donor, std::size_t epochs) {
  stats_.erase(target);
  perf_.erase(target);
  by_epoch_.erase(target);
  snapshots_.erase(target);
  const auto it = stats_.find(donor);
  if (it == stats_.end()) return;
  for (const AppStat& stat : it->second) {
    if (stat.epoch > epochs) continue;
    AppStat copy = stat;
    copy.job_id = target;
    record_stat(copy);
  }
}

const std::vector<AppStat>& AppStatDb::stats(core::JobId job) const {
  const auto it = stats_.find(job);
  return it == stats_.end() ? kEmptyStats : it->second;
}

const std::vector<double>& AppStatDb::perf_history(core::JobId job) const {
  const auto it = perf_.find(job);
  return it == perf_.end() ? kEmptyPerf : it->second;
}

void AppStatDb::store_snapshot(ModelSnapshot snapshot) {
  snapshots_[snapshot.job_id].push_back(snapshot);
}

std::optional<ModelSnapshot> AppStatDb::latest_snapshot(core::JobId job) const {
  const auto it = snapshots_.find(job);
  if (it == snapshots_.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

const std::vector<ModelSnapshot>& AppStatDb::snapshots(core::JobId job) const {
  const auto it = snapshots_.find(job);
  return it == snapshots_.end() ? kEmptySnapshots : it->second;
}

void AppStatDb::record_suspend_sample(core::SuspendSample sample) {
  suspend_samples_.push_back(sample);
}

}  // namespace hyperdrive::cluster
