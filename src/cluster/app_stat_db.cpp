#include "cluster/app_stat_db.hpp"

namespace hyperdrive::cluster {

const std::vector<AppStat> AppStatDb::kEmptyStats{};
const std::vector<double> AppStatDb::kEmptyPerf{};

void AppStatDb::record_stat(const AppStat& stat) {
  stats_[stat.job_id].push_back(stat);
  perf_[stat.job_id].push_back(stat.perf);
}

const std::vector<AppStat>& AppStatDb::stats(core::JobId job) const {
  const auto it = stats_.find(job);
  return it == stats_.end() ? kEmptyStats : it->second;
}

const std::vector<double>& AppStatDb::perf_history(core::JobId job) const {
  const auto it = perf_.find(job);
  return it == perf_.end() ? kEmptyPerf : it->second;
}

void AppStatDb::store_snapshot(ModelSnapshot snapshot) {
  snapshots_[snapshot.job_id].push_back(snapshot);
}

std::optional<ModelSnapshot> AppStatDb::latest_snapshot(core::JobId job) const {
  const auto it = snapshots_.find(job);
  if (it == snapshots_.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

void AppStatDb::record_suspend_sample(core::SuspendSample sample) {
  suspend_samples_.push_back(sample);
}

}  // namespace hyperdrive::cluster
