// Simulated RPC messaging between the HyperDrive scheduler and the Node
// Agents (§5: "All communication between the scheduler, node agents, and
// applications is done via GRPC").
//
// The MessageBus delivers typed messages over the discrete-event simulation
// with a per-message latency (network + RPC overhead) plus a serialization
// delay proportional to the payload size (snapshot uploads are MBs, stat
// reports are bytes). It also keeps the traffic accounting a deployment
// would export as metrics: message and byte counters per type.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "sim/simulation.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace hyperdrive::cluster {

enum class MessageType {
  StartJob,          // scheduler -> agent
  SuspendJob,        // scheduler -> agent
  TerminateJob,      // scheduler -> agent
  ReportStat,        // agent -> scheduler (ApplicationStat upcall payload)
  SnapshotUpload,    // agent -> scheduler/storage
  SnapshotDownload,  // storage -> agent (resume)
  Ack,
};

[[nodiscard]] std::string_view to_string(MessageType type) noexcept;

using EndpointId = std::uint32_t;

struct Message {
  MessageType type = MessageType::Ack;
  EndpointId from = 0;
  EndpointId to = 0;
  std::uint64_t job_id = 0;
  double payload_bytes = 0.0;
  /// Opaque application payload (e.g. the AppStat behind a ReportStat).
  /// Handlers downcast with std::static_pointer_cast.
  std::shared_ptr<const void> payload;
  util::SimTime sent_at = util::SimTime::zero();
  std::uint64_t seq = 0;
};

struct MessageBusOptions {
  /// Base one-way latency: lognormal(mu, sigma) seconds clamped to
  /// [min_s, max_s]. Defaults model a ~1 ms LAN RPC.
  double latency_mu = -6.9;
  double latency_sigma = 0.3;
  double latency_min_s = 2e-4;
  double latency_max_s = 0.01;
  /// Serialization/transfer bandwidth (bytes/second); 0 = infinite.
  double bandwidth_bps = 1.25e9;
};

struct MessageBusStats {
  std::uint64_t messages = 0;
  double bytes = 0.0;
  std::map<MessageType, std::uint64_t> per_type;
};

class MessageBus {
 public:
  using Handler = std::function<void(const Message&)>;

  MessageBus(sim::Simulation& simulation, MessageBusOptions options, std::uint64_t seed);

  /// Register a named endpoint; messages addressed to the returned id invoke
  /// `handler` after the modelled delay. Names are for diagnostics only.
  EndpointId register_endpoint(std::string name, Handler handler);

  /// Send a message. Delivery time = now + latency + payload/bandwidth.
  /// Returns the assigned sequence number. Throws std::out_of_range for an
  /// unknown destination.
  std::uint64_t send(Message message);

  [[nodiscard]] const MessageBusStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::string& endpoint_name(EndpointId id) const;

 private:
  struct Endpoint {
    std::string name;
    Handler handler;
  };

  sim::Simulation& simulation_;
  MessageBusOptions options_;
  util::Rng rng_;
  std::map<EndpointId, Endpoint> endpoints_;
  EndpointId next_id_ = 1;
  std::uint64_t next_seq_ = 1;
  MessageBusStats stats_;
};

}  // namespace hyperdrive::cluster
