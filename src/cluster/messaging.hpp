// Simulated RPC messaging between the HyperDrive scheduler and the Node
// Agents (§5: "All communication between the scheduler, node agents, and
// applications is done via GRPC").
//
// The MessageBus delivers typed messages over the discrete-event simulation
// with a per-message latency (network + RPC overhead) plus a serialization
// delay proportional to the payload size (snapshot uploads are MBs, stat
// reports are bytes). It also keeps the traffic accounting a deployment
// would export as metrics: message and byte counters per type.
//
// Reliability layer: with ReliabilityOptions::enabled the bus implements an
// at-least-once delivery protocol hardened against an attached FaultInjector
// (drop / duplication / extra delay per MessageType, endpoints going down
// when their node crashes):
//   * every data message is acked by the receiving bus end; the sender
//     retransmits on an exponential-backoff timeout until acked or
//     max_attempts is exhausted (then an optional per-send failure callback
//     fires so the caller can recover, e.g. requeue a job whose snapshot
//     upload was lost);
//   * receivers deduplicate by sequence number, so retransmissions and
//     injected duplicates invoke the application handler exactly once;
//   * retries, retransmitted bytes and ack traffic are accounted separately
//     in MessageBusStats so overhead-under-faults is reportable.
// With reliability disabled (the default) the bus behaves exactly like the
// original fire-and-forget fabric — byte-for-byte, since no extra RNG draws
// happen unless an injector is attached.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "cluster/fault_injector.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace hyperdrive::cluster {

enum class MessageType {
  StartJob,          // scheduler -> agent
  SuspendJob,        // scheduler -> agent
  TerminateJob,      // scheduler -> agent
  ReportStat,        // agent -> scheduler (ApplicationStat upcall payload)
  SnapshotUpload,    // agent -> scheduler/storage
  SnapshotDownload,  // storage -> agent (resume)
  Heartbeat,         // agent -> scheduler (liveness probe; never retried)
  Ack,
};

[[nodiscard]] std::string_view to_string(MessageType type) noexcept;

using EndpointId = std::uint32_t;

struct Message {
  MessageType type = MessageType::Ack;
  EndpointId from = 0;
  EndpointId to = 0;
  std::uint64_t job_id = 0;
  double payload_bytes = 0.0;
  /// Opaque application payload (e.g. the AppStat behind a ReportStat).
  /// Handlers downcast with std::static_pointer_cast.
  std::shared_ptr<const void> payload;
  util::SimTime sent_at = util::SimTime::zero();
  std::uint64_t seq = 0;
};

/// Ack-based retransmission parameters (only used when `enabled`).
struct ReliabilityOptions {
  bool enabled = false;
  /// Initial retransmit timeout; doubles (x backoff) after every attempt.
  double ack_timeout_s = 0.25;
  double backoff = 2.0;
  /// Total delivery attempts (first send + retries) before giving up.
  std::size_t max_attempts = 8;
};

struct MessageBusOptions {
  /// Base one-way latency: lognormal(mu, sigma) seconds clamped to
  /// [min_s, max_s]. Defaults model a ~1 ms LAN RPC.
  double latency_mu = -6.9;
  double latency_sigma = 0.3;
  double latency_min_s = 2e-4;
  double latency_max_s = 0.01;
  /// Serialization/transfer bandwidth (bytes/second); 0 = infinite.
  double bandwidth_bps = 1.25e9;
  ReliabilityOptions reliability;
};

struct MessageBusStats {
  std::uint64_t messages = 0;  ///< logical sends (first attempts)
  double bytes = 0.0;          ///< payload bytes of logical sends
  std::map<MessageType, std::uint64_t> per_type;
  // --- reliability / fault accounting ------------------------------------
  std::uint64_t retransmissions = 0;
  double retransmitted_bytes = 0.0;
  std::uint64_t acks_sent = 0;
  double ack_bytes = 0.0;
  std::uint64_t dropped = 0;                ///< injected in-flight losses
  std::uint64_t dropped_endpoint_down = 0;  ///< arrived at a crashed endpoint
  std::uint64_t duplicates_suppressed = 0;  ///< dedup hits at the receiver
  std::uint64_t duplicates_delivered = 0;   ///< injected dups handed to handlers
                                            ///< (only without reliability)
  std::uint64_t delayed = 0;                ///< messages given injected delay
  std::uint64_t undeliverable = 0;          ///< gave up after max_attempts
};

class MessageBus {
 public:
  using Handler = std::function<void(const Message&)>;
  /// Invoked (reliability mode only) when a message exhausts max_attempts.
  using FailureHandler = std::function<void(const Message&)>;

  MessageBus(sim::Simulation& simulation, MessageBusOptions options, std::uint64_t seed);

  /// Attach a fault injector; nullptr detaches. The bus does not own it.
  void set_fault_injector(FaultInjector* injector) noexcept { injector_ = injector; }

  /// Invoked whenever the last in-flight reliable transmission settles (acked
  /// or given up). Lets the owner re-evaluate quiescence: the final event of
  /// an experiment is often the last stat report's ack, which otherwise ends
  /// inside the bus with nobody left to notice the cluster is idle.
  void set_drain_handler(std::function<void()> handler) noexcept {
    on_drain_ = std::move(handler);
  }

  /// Register a named endpoint; messages addressed to the returned id invoke
  /// `handler` after the modelled delay. Names are for diagnostics only.
  EndpointId register_endpoint(std::string name, Handler handler);

  /// Mark an endpoint down (its node crashed): deliveries are dropped until
  /// it is marked up again. Throws std::out_of_range for unknown endpoints.
  void set_endpoint_up(EndpointId id, bool up);

  /// Send a message. Delivery time = now + latency + payload/bandwidth
  /// (+ injected delay). Returns the assigned sequence number. Throws
  /// std::out_of_range for an unknown destination. In reliability mode the
  /// message is retransmitted until acked; `on_failure` (optional) fires if
  /// every attempt is lost.
  std::uint64_t send(Message message, FailureHandler on_failure = nullptr);

  [[nodiscard]] const MessageBusStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::string& endpoint_name(EndpointId id) const;
  /// Messages still in the fabric: reliable sends neither acked nor given
  /// up, plus fire-and-forget deliveries not yet handed to their endpoint.
  /// The multi-study tenant quiescence check (DESIGN.md §9) relies on this
  /// covering both paths — a completing job's final stat report must keep
  /// its study alive until delivered.
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return transmissions_.size() + unreliable_pending_;
  }
  /// Size of an endpoint's receiver-side dedup table (diagnostics: a message
  /// that exhausts its retries must leave no entry behind). Throws
  /// std::out_of_range for unknown endpoints.
  [[nodiscard]] std::size_t dedup_entries(EndpointId id) const;

 private:
  struct Endpoint {
    std::string name;
    Handler handler;
    bool up = true;
    /// Sequence numbers already delivered to this endpoint (dedup state;
    /// populated only in reliability mode).
    std::unordered_set<std::uint64_t> seen;
  };

  struct Transmission {
    Message message;
    FailureHandler on_failure;
    std::size_t attempts = 0;
    double timeout_s = 0.0;
    sim::EventHandle timeout_event = 0;
  };

  [[nodiscard]] util::SimTime transit_time(const Message& message);
  void attempt(std::uint64_t seq);
  void deliver(const Message& message, bool reliable);
  void handle_ack(std::uint64_t seq);
  void on_ack_timeout(std::uint64_t seq);

  sim::Simulation& simulation_;
  MessageBusOptions options_;
  util::Rng rng_;
  FaultInjector* injector_ = nullptr;
  std::function<void()> on_drain_;
  std::map<EndpointId, Endpoint> endpoints_;
  std::unordered_map<std::uint64_t, Transmission> transmissions_;
  EndpointId next_id_ = 1;
  std::uint64_t next_seq_ = 1;
  /// Fire-and-forget deliveries scheduled but not yet delivered.
  std::size_t unreliable_pending_ = 0;
  MessageBusStats stats_;
};

}  // namespace hyperdrive::cluster
