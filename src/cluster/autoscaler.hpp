// Autoscaler — budget-capped elastic capacity control (DESIGN.md §15).
//
// Owns the "cloud bill": which nodes of each catalog class are currently
// acquired, the running spend integral over their hourly prices, and the
// reconcile step that moves acquired capacity toward a demand target. The
// controller is deterministic — a pure function of the (demand, now)
// sequence it is fed — so autoscaled runs stay golden-trace byte-identical
// across `--jobs` counts and checkpoint resume.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "cluster/node_catalog.hpp"
#include "util/sim_time.hpp"

namespace hyperdrive::cluster {

/// One acquire/release decision, reported back so the caller (StudyManager)
/// can emit NodeAcquired/NodeReleased events and bump `elastic.*` metrics.
struct ScaleAction {
  enum class Kind { Acquire, Release };
  Kind kind = Kind::Acquire;
  NodeClassId node_class = 0;
  std::size_t count = 0;

  [[nodiscard]] bool operator==(const ScaleAction&) const = default;
};

class Autoscaler {
 public:
  struct Options {
    NodeCatalog catalog;
    /// Hard spend cap: at or over it, no further acquisitions and all free
    /// (undemanded) capacity is released.
    double budget_usd = std::numeric_limits<double>::infinity();
  };

  /// `initial` is the capacity already acquired at t=0 (no events for it).
  /// An empty catalog makes the autoscaler inert: acquired() stays empty and
  /// reconcile() never acts.
  Autoscaler(Options options, CapacityView initial);

  /// Integrate spend at the current hourly rate up to `now` (monotonic).
  void advance(util::SimTime now);

  /// Move acquired capacity toward `demand` (per-class desired slots,
  /// clamped to the catalog's configured counts). Releases most-expensive
  /// free capacity first, then acquires cheapest-per-effective-speed first
  /// while under budget; ties break on lowest class id. Calls advance(now)
  /// itself, so spend is integrated at the pre-action rate.
  std::vector<ScaleAction> reconcile(const CapacityView& demand, util::SimTime now);

  [[nodiscard]] const CapacityView& acquired() const noexcept { return acquired_; }
  [[nodiscard]] double spend_usd() const noexcept { return spend_usd_; }
  [[nodiscard]] double hourly_rate() const noexcept;
  [[nodiscard]] bool over_budget() const noexcept {
    return spend_usd_ >= options_.budget_usd;
  }
  [[nodiscard]] const NodeCatalog& catalog() const noexcept { return options_.catalog; }

 private:
  Options options_;
  CapacityView acquired_;
  double spend_usd_ = 0.0;
  util::SimTime billed_until_ = util::SimTime::zero();
};

}  // namespace hyperdrive::cluster
