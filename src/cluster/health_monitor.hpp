// Node-health tracking for gray (fail-slow) failures.
//
// Fail-stop faults announce themselves: a crashed node's endpoint goes down
// and every in-flight RPC to it dies. Gray failures do not — a degraded node
// keeps answering RPCs, just slowly, so a job hosted there looks like a Poor
// configuration and POP kills it, corrupting the *exploration result* rather
// than merely the schedule. The HealthMonitor turns raw liveness and timing
// signals into a per-node health verdict the scheduler can act on:
//
//   * every NodeAgent emits periodic Heartbeat messages (fire-and-forget —
//     a lost probe is itself signal, so retransmitting one would be
//     self-defeating); a node that misses `watchdog_intervals` consecutive
//     beats is declared Suspect, and one that stays silent twice that long
//     is quarantined;
//   * every completed epoch updates an EWMA *speed score* — the ratio of the
//     expected to the observed epoch duration, 1.0 = nominal — and
//     `quarantine_strikes` consecutive slow epochs quarantine the node;
//   * quarantined nodes re-enter via probation: after `probation_after` the
//     node is put back online and must complete `reinstate_epochs` epochs at
//     nominal speed to be reinstated; one slow probation epoch re-quarantines
//     it (this is what defeats flapping degradation).
//
// The monitor is deliberately simulation-free: it consumes (machine, time,
// duration) observations and returns verdicts, so its state machine is unit
// testable without a cluster. All mutation is driven by the single-threaded
// event loop; determinism follows from the inputs being deterministic.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "cluster/resource_manager.hpp"
#include "util/sim_time.hpp"

namespace hyperdrive::cluster {

/// Quarantine state machine (DESIGN.md §7 has the full diagram):
/// Healthy -> Suspect (missed heartbeats) -> Healthy (beat resumes) or
/// Quarantined (still silent / hang detected); Healthy -> Quarantined
/// (consecutive slow epochs); Quarantined -> Probation (timer) ->
/// Healthy (nominal-speed epochs) or back to Quarantined (still slow).
enum class NodeHealth { Healthy, Suspect, Quarantined, Probation };

[[nodiscard]] std::string_view to_string(NodeHealth health) noexcept;

/// Heartbeat payload (MessageType::Heartbeat), agent -> scheduler.
struct Heartbeat {
  MachineId machine = 0;
  std::uint64_t seq = 0;
  std::size_t epochs_run = 0;
  util::SimTime sent_at = util::SimTime::zero();
};

struct HealthOptions {
  /// Master switch: off = no heartbeats, no watchdog, no quarantine, no
  /// speed normalization — byte-for-byte the pre-health cluster.
  bool enabled = false;
  util::SimTime heartbeat_interval = util::SimTime::seconds(10.0);
  /// Missed consecutive heartbeats before a node is declared Suspect; a node
  /// silent for twice this long escalates Suspect -> Quarantined.
  std::size_t watchdog_intervals = 3;
  /// EWMA smoothing for the speed score (higher = reacts faster).
  double ewma_alpha = 0.4;
  /// Score below this marks an epoch "slow" (a strike); also the threshold
  /// POP uses to prefer migration over termination.
  double slow_speed = 0.6;
  /// Consecutive slow epochs before quarantine.
  std::size_t quarantine_strikes = 3;
  /// How long a quarantined node sits out before probation.
  util::SimTime probation_after = util::SimTime::minutes(20.0);
  /// Nominal-speed epochs a probation node must complete to be reinstated.
  std::size_t reinstate_epochs = 2;
  /// A job whose epoch exceeds `hang_deadline_factor` x its expected duration
  /// is presumed hung: the progress deadline fires and the job is migrated.
  double hang_deadline_factor = 6.0;
};

struct HealthStats {
  std::uint64_t heartbeats_received = 0;
  std::uint64_t suspects_declared = 0;
  std::uint64_t suspects_recovered = 0;
  std::uint64_t slow_strikes = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t probations = 0;
  std::uint64_t reinstatements = 0;
};

class HealthMonitor {
 public:
  /// Verdict returned by note_epoch: what the caller must do about the node.
  enum class Transition { None, Quarantine, Reinstate };

  struct WatchdogReport {
    std::vector<MachineId> newly_suspect;
    /// Suspect nodes silent past the escalation deadline; the caller
    /// quarantines them (migrating their jobs) and calls force_quarantine.
    std::vector<MachineId> to_quarantine;
  };

  HealthMonitor(std::size_t machines, HealthOptions options);

  [[nodiscard]] const HealthOptions& options() const noexcept { return options_; }
  [[nodiscard]] const HealthStats& stats() const noexcept { return stats_; }

  /// A heartbeat arrived. Refreshes liveness; a Suspect node recovers.
  void note_heartbeat(const Heartbeat& beat, util::SimTime now);

  /// An epoch with expected duration `expected` completed on `machine` after
  /// `observed` simulated time. Updates the EWMA speed score, counts slow
  /// strikes, and drives probation; an epoch completion also counts as a
  /// liveness signal.
  [[nodiscard]] Transition note_epoch(MachineId machine, util::SimTime expected,
                                      util::SimTime observed, util::SimTime now);

  /// Periodic watchdog sweep: declares silent nodes Suspect and reports the
  /// ones silent long enough to quarantine. Excluded (crashed/offline) and
  /// already-quarantined nodes are skipped.
  [[nodiscard]] WatchdogReport watchdog_scan(util::SimTime now);

  /// Quarantine immediately (watchdog escalation or a hung-job detection).
  /// No-op if the node is already Quarantined.
  void force_quarantine(MachineId machine);

  /// Quarantined -> Probation: the node is about to come back online and must
  /// prove itself. Resets the probation ledger and the liveness clock.
  void begin_probation(MachineId machine, util::SimTime now);

  /// Exclude a node from watchdog scrutiny (it crashed — that is the fail-stop
  /// machinery's problem). Un-excluding resets the liveness clock so a node
  /// is never Suspect the instant it restarts.
  void set_excluded(MachineId machine, bool excluded, util::SimTime now);

  [[nodiscard]] NodeHealth health(MachineId machine) const;
  [[nodiscard]] bool is_excluded(MachineId machine) const { return node(machine).excluded; }
  /// EWMA speed score in (0, ~1]; 1.0 = nominal speed. Starts optimistic.
  [[nodiscard]] double speed_score(MachineId machine) const;
  /// Below the slow_speed threshold (the "treat as degraded" predicate).
  [[nodiscard]] bool degraded(MachineId machine) const {
    return speed_score(machine) < options_.slow_speed;
  }

 private:
  struct Node {
    NodeHealth state = NodeHealth::Healthy;
    double score = 1.0;
    util::SimTime last_seen = util::SimTime::zero();
    std::size_t slow_strikes = 0;
    std::size_t probation_good = 0;
    bool excluded = false;
  };

  [[nodiscard]] Node& node(MachineId machine);
  [[nodiscard]] const Node& node(MachineId machine) const;

  HealthOptions options_;
  std::vector<Node> nodes_;
  HealthStats stats_;
};

}  // namespace hyperdrive::cluster
